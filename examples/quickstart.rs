//! Quickstart: simulate a small cluster under static backfill and under
//! SD-Policy, and compare the paper's metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sd_sched::prelude::*;

fn main() {
    // A RICC-like workload scaled to ~2000 jobs on a 204-node machine.
    let workload = PaperWorkload::W3Ricc;
    let scale = 0.2;
    let seed = 42;
    let trace = workload.generate(seed, scale);
    let cluster = workload.cluster(scale);
    println!(
        "workload: {} — {} jobs on {} nodes ({} cores)",
        workload.label(),
        trace.len(),
        cluster.nodes,
        cluster.total_cores()
    );

    // Baseline: SLURM-style conservative backfill, exclusive nodes.
    let baseline = run_trace(
        cluster.clone(),
        SlurmConfig::default(),
        &trace,
        Box::new(IdealModel),
        SharingFactor::HALF,
        StaticBackfill,
    );

    // SD-Policy: same machine, same trace, malleable co-scheduling.
    let sd = run_trace(
        cluster.clone(),
        SlurmConfig::default(),
        &trace,
        Box::new(IdealModel),
        SharingFactor::HALF,
        SdPolicy::default(),
    );

    let base = Summary::from_result("static backfill", &baseline, cluster.total_cores());
    let sdm = Summary::from_result("SD-Policy (DynAVGSD)", &sd, cluster.total_cores());

    let mut t = sched_metrics::Table::new(&["metric", "static", "SD-Policy", "change"]);
    let pct = |a: f64, b: f64| format!("{:+.1}%", (b / a - 1.0) * 100.0);
    t.row(vec![
        "makespan (s)".into(),
        format!("{}", base.makespan),
        format!("{}", sdm.makespan),
        pct(base.makespan as f64, sdm.makespan as f64),
    ]);
    t.row(vec![
        "avg response (s)".into(),
        format!("{:.0}", base.mean_response),
        format!("{:.0}", sdm.mean_response),
        pct(base.mean_response, sdm.mean_response),
    ]);
    t.row(vec![
        "avg slowdown".into(),
        format!("{:.1}", base.mean_slowdown),
        format!("{:.1}", sdm.mean_slowdown),
        pct(base.mean_slowdown, sdm.mean_slowdown),
    ]);
    t.row(vec![
        "energy (kWh)".into(),
        format!("{:.0}", base.energy_kwh),
        format!("{:.0}", sdm.energy_kwh),
        pct(base.energy_kwh, sdm.energy_kwh),
    ]);
    println!("\n{}", t.render());
    println!(
        "jobs started through malleable backfill: {} ({} mates were shrunk, {} borrowers relocated)",
        sd.stats.started_malleable, sd.stats.unique_mates, sd.stats.relocations
    );
    println!(
        "\nnote: single-seed makespan/energy deltas at CI scale are tail noise of a few\n\
         percent either way; the paper's signs are checked on a fixed seed panel by\n\
         `cargo run --release --bin sd_validate` (see DESIGN.md §8)."
    );
}
