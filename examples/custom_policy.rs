//! Implementing your own scheduling policy against the simulator.
//!
//! The `Scheduler` trait is the extension point SD-Policy itself uses; this
//! example builds a naive **FCFS** scheduler (no backfill at all) in a few
//! lines and shows how much backfill and malleability each buy on the same
//! trace — the textbook progression FCFS → backfill → SD-Policy.
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```

use sd_sched::prelude::*;

/// Strict first-come-first-served: only the queue head may start.
struct Fcfs;

impl Scheduler for Fcfs {
    fn schedule(&mut self, st: &mut SimState) {
        // Start jobs strictly in priority order; stop at the first that
        // does not fit (no jumping the queue).
        while let Some(head) = st.queue.head() {
            if !st.start_static(head) {
                break;
            }
        }
    }

    fn name(&self) -> &'static str {
        "fcfs"
    }
}

fn main() {
    let w = PaperWorkload::W3Ricc;
    let scale = 0.1;
    let trace = w.generate(11, scale);
    let cluster = w.cluster(scale);
    println!(
        "{}: {} jobs on {} nodes\n",
        w.label(),
        trace.len(),
        cluster.nodes
    );

    let fcfs = run_trace(
        cluster.clone(),
        SlurmConfig::default(),
        &trace,
        Box::new(IdealModel),
        SharingFactor::HALF,
        Fcfs,
    );
    let backfill = run_trace(
        cluster.clone(),
        SlurmConfig::default(),
        &trace,
        Box::new(IdealModel),
        SharingFactor::HALF,
        StaticBackfill,
    );
    let sd = run_trace(
        cluster.clone(),
        SlurmConfig::default(),
        &trace,
        Box::new(IdealModel),
        SharingFactor::HALF,
        SdPolicy::default(),
    );

    let mut t = sched_metrics::Table::new(&["policy", "makespan", "response", "slowdown"]);
    for res in [&fcfs, &backfill, &sd] {
        let s = Summary::from_result(res.scheduler, res, cluster.total_cores());
        t.row(vec![
            res.scheduler.to_string(),
            format!("{}", s.makespan),
            format!("{:.0}", s.mean_response),
            format!("{:.1}", s.mean_slowdown),
        ]);
    }
    println!("{}", t.render());
    assert!(backfill.mean_slowdown() <= fcfs.mean_slowdown());
    println!("each step — backfill, then malleability — lowers the slowdown.");
}
