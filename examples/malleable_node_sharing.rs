//! Node-level walkthrough of DROM malleability (the paper's Listing 3).
//!
//! Shows exactly what happens inside one MareNostrum4 node when SD-Policy
//! co-schedules a job: the resident is shrunk to one socket, the incoming
//! job takes the other, and cores flow back when jobs finish.
//!
//! ```sh
//! cargo run --example malleable_node_sharing
//! ```

use sd_sched::prelude::*;

fn dump(label: &str, nm: &NodeManager, reg: &DromRegistry) {
    println!("--- {label} ---");
    for entry in reg.processes_on(nm.node()) {
        println!(
            "  {}: {:?} ({} cores)",
            entry.job,
            entry.current,
            entry.current.count()
        );
    }
    println!("  free: {:?}\n", nm.free_mask());
}

fn main() {
    // One MN4 node: 2 sockets × 24 cores.
    let spec = ClusterSpec::marenostrum4(1);
    let mut nm = NodeManager::new(NodeId(0), spec.node.clone());
    let mut reg = DromRegistry::new();

    // 1. A malleable job launches exclusively: full node.
    nm.launch(&mut reg, JobId(1), 48, true).expect("empty node");
    dump("job1 running exclusively", &nm, &reg);

    // 2. SD-Policy co-schedules job2: job1 shrinks to one socket (the
    //    SharingFactor 0.5 the paper uses on two-socket nodes), job2 takes
    //    the other socket. DROM applies the masks at the next malleability
    //    point.
    let updates = nm
        .co_launch(&mut reg, JobId(2), JobId(1), SharingFactor::HALF, 2)
        .expect("job1 is malleable");
    for u in &updates {
        println!("reconfig: {} -> {} cores", u.job, u.cores());
    }
    dump("after co-scheduling job2", &nm, &reg);
    assert!(reg.validate_node(NodeId(0)).is_ok(), "masks stay disjoint");

    // 3. Job2 (the backfilled job) finishes first: its cores return to the
    //    owner — job1 expands back to the full node.
    let updates = nm.finish(&mut reg, JobId(2));
    for u in &updates {
        println!("expand: {} -> {} cores", u.job, u.cores());
    }
    dump("after job2 finished (owner expanded)", &nm, &reg);

    // 4. The opposite ending: co-schedule job3, then finish the OWNER first.
    //    Job3 inherits the freed cores ("distributed to remaining running
    //    tasks, to increase node utilization").
    nm.co_launch(&mut reg, JobId(3), JobId(1), SharingFactor::HALF, 2)
        .unwrap();
    dump("job3 co-scheduled with job1", &nm, &reg);
    let updates = nm.finish(&mut reg, JobId(1));
    for u in &updates {
        println!("redistribute: {} -> {} cores", u.job, u.cores());
    }
    dump("after the owner (job1) finished", &nm, &reg);
}
