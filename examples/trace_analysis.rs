//! SWF trace tooling: generate a synthetic trace, write it in Standard
//! Workload Format, parse it back, clean it, and print archive-style
//! statistics. The same pipeline accepts genuine Parallel Workloads Archive
//! files (pass a path as the first argument).
//!
//! ```sh
//! cargo run --release --example trace_analysis [trace.swf]
//! ```

use sd_sched::prelude::*;
use swf::TraceStats;

fn main() {
    let arg = std::env::args().nth(1);
    let mut trace = match &arg {
        Some(path) => {
            let (trace, skipped) =
                swf::parse_file(std::path::Path::new(path)).expect("readable SWF file");
            println!("parsed {} ({} malformed lines skipped)", path, skipped);
            trace
        }
        None => {
            // No file given: generate a RICC-like trace and round-trip it
            // through the SWF text format to prove fidelity.
            let generated = PaperWorkload::W3Ricc.generate(7, 0.1);
            let text = swf::write_string(&generated);
            println!(
                "generated {} jobs, serialised to {} KiB of SWF",
                generated.len(),
                text.len() / 1024
            );
            let parsed = swf::parse_str(&text).expect("own output parses");
            assert_eq!(parsed.jobs, generated.jobs, "write→parse is lossless");
            parsed
        }
    };

    let stats = TraceStats::compute(&trace);
    println!("\n== raw trace ==");
    print_stats(&stats);

    // The cleaning the paper applies to CEA-Curie: primary partition only,
    // unusable records dropped, estimates sanitised, rebased to t=0.
    swf::filter::clean_like_curie(&mut trace, 4 * 86_400);
    let cleaned = TraceStats::compute(&trace);
    println!("\n== after clean_like_curie ==");
    print_stats(&cleaned);

    // Per-size histogram (powers of two), like the archive's summary pages.
    let mut hist = simkit::Histogram::pow2(12);
    for j in &trace.jobs {
        if let Some(p) = j.procs() {
            hist.add(p as f64);
        }
    }
    println!("\njob-size histogram (procs, power-of-two buckets):");
    for (i, count) in hist.counts().iter().enumerate() {
        if *count > 0 {
            let label = if i == 0 {
                "<1".to_string()
            } else {
                format!("{}", 1u64 << (i - 1))
            };
            println!("  {label:>6}: {count}");
        }
    }
}

fn print_stats(s: &TraceStats) {
    println!("  jobs:            {} ({} simulatable)", s.jobs, s.simulatable);
    println!("  max procs:       {}", s.max_procs_requested);
    println!("  mean runtime:    {:.0} s", s.mean_runtime);
    println!("  mean procs:      {:.1}", s.mean_procs);
    println!("  mean response:   {:.0} s", s.mean_response);
    println!("  mean slowdown:   {:.1}", s.mean_slowdown);
    println!("  makespan:        {} s", s.makespan);
    println!("  core-seconds:    {:.3e}", s.total_core_seconds);
}
