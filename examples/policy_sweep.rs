//! Mini MAX_SLOWDOWN sweep (a fast, single-workload version of the
//! Figs. 1–3 experiment) showing how the cut-off trades mate protection
//! against malleability opportunities.
//!
//! ```sh
//! cargo run --release --example policy_sweep
//! ```

use sd_sched::prelude::*;

fn main() {
    let w = PaperWorkload::W4Curie;
    let scale = 0.01;
    let seed = 42;
    let trace = w.generate(seed, scale);
    let cluster = w.cluster(scale);
    println!(
        "{}: {} jobs on {} nodes\n",
        w.label(),
        trace.len(),
        cluster.nodes
    );

    let baseline = run_trace(
        cluster.clone(),
        SlurmConfig::default(),
        &trace,
        Box::new(IdealModel),
        SharingFactor::HALF,
        StaticBackfill,
    );
    let base = Summary::from_result("static", &baseline, cluster.total_cores());

    let mut t = sched_metrics::Table::new(&[
        "cut-off",
        "slowdown",
        "norm",
        "response",
        "norm",
        "malleable",
    ]);
    t.row(vec![
        "static".into(),
        format!("{:.1}", base.mean_slowdown),
        "1.000".into(),
        format!("{:.0}", base.mean_response),
        "1.000".into(),
        "0".into(),
    ]);
    for cutoff in MaxSlowdown::paper_sweep() {
        let res = run_trace(
            cluster.clone(),
            SlurmConfig::default(),
            &trace,
            Box::new(IdealModel),
            SharingFactor::HALF,
            SdPolicy::new(SdPolicyConfig {
                max_slowdown: cutoff,
                ..SdPolicyConfig::default()
            }),
        );
        let s = Summary::from_result(&cutoff.label(), &res, cluster.total_cores());
        t.row(vec![
            cutoff.label(),
            format!("{:.1}", s.mean_slowdown),
            format!("{:.3}", s.mean_slowdown / base.mean_slowdown),
            format!("{:.0}", s.mean_response),
            format!("{:.3}", s.mean_response / base.mean_response),
            format!("{}", s.malleable_started),
        ]);
    }
    println!("{}", t.render());
    println!("low cut-offs protect running jobs but forgo malleability;");
    println!("the dynamic cut-off (DynAVGSD) adapts to the system's own slowdown.");
}
