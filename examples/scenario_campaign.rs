//! Build a scenario in code (no file needed), sweep MAXSD ∈ {5, 10, ∞},
//! and print a slowdown table — the declarative twin of `policy_sweep.rs`.
//!
//! ```sh
//! cargo run --release --example scenario_campaign
//! ```

use sd_sched::prelude::*;
use sd_sched::sd_scenario::{MaxSdDecl, PolicyKindDecl};

fn main() {
    let mut scenario = Scenario::new("code-built-campaign", SourceKind::Ricc);
    scenario.description = "MAXSD sweep on a bursty half-malleable RICC".into();
    scenario.scale = Some(0.05);
    scenario.workload.batch_p = Some(0.6);
    scenario.workload.batch_mean = Some(12.0);
    scenario.slurm.malleable_fraction = 0.5;
    scenario.sweep.maxsd = vec![
        MaxSdDecl::Value(5.0),
        MaxSdDecl::Value(10.0),
        MaxSdDecl::Infinite,
    ];

    // The scenario is data: it can be rendered, diffed, checked in, and
    // parsed back identically.
    println!("{}", scenario.render());
    assert_eq!(
        Scenario::parse(&scenario.render()).expect("canonical render parses"),
        scenario
    );

    // The static-backfill baseline is the same scenario with the policy
    // swapped out — one field, not a new binary.
    let mut baseline = scenario.clone();
    baseline.policy.kind = PolicyKindDecl::Static;
    baseline.sweep.maxsd.clear();
    let base_out = execute(&expand(&baseline)[0]).expect("baseline runs");
    let base = Summary::from_result("static", &base_out.result, base_out.total_cores);

    let mut table = sched_metrics::Table::new(&["cut-off", "slowdown", "norm", "malleable"]);
    table.row(vec![
        "static".into(),
        format!("{:.1}", base.mean_slowdown),
        "1.000".into(),
        "0".into(),
    ]);
    for point in expand(&scenario) {
        let out = execute(&point).expect("sweep point runs");
        assert_eq!(out.result.leftover_pending, 0, "every job completes");
        let s = Summary::from_result(&out.policy_label, &out.result, out.total_cores);
        table.row(vec![
            out.policy_label.clone(),
            format!("{:.1}", s.mean_slowdown),
            format!("{:.3}", s.mean_slowdown / base.mean_slowdown),
            format!("{}", s.malleable_started),
        ]);
    }
    println!("{}", table.render());
    println!("half the jobs are rigid (malleable_fraction = 0.5) — a mix no");
    println!("hand-coded figure binary exercises; the cut-off still trades");
    println!("mate protection against malleability exactly as in Figs. 1-3.");
}
