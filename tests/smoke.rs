//! Smoke test for the umbrella crate's headline promise: the exact workflow
//! from the `src/lib.rs` doctest, kept as a plain integration test so it runs
//! even when doctests are skipped (e.g. `cargo test --tests`).

use sd_sched::prelude::*;

#[test]
fn sd_policy_does_not_regress_mean_slowdown() {
    let workload = PaperWorkload::W3Ricc;
    let trace = workload.generate(7, 0.02);
    let cluster = workload.cluster(0.02);

    let baseline = run_trace(
        cluster.clone(),
        SlurmConfig::default(),
        &trace,
        Box::new(IdealModel),
        SharingFactor::HALF,
        StaticBackfill,
    );
    let sd = run_trace(
        cluster,
        SlurmConfig::default(),
        &trace,
        Box::new(IdealModel),
        SharingFactor::HALF,
        SdPolicy::default(),
    );

    assert!(
        sd.mean_slowdown() <= baseline.mean_slowdown() * 1.05,
        "SD-Policy mean slowdown {} vs baseline {}",
        sd.mean_slowdown(),
        baseline.mean_slowdown()
    );
    // Both runs must actually finish the trace for the comparison to mean
    // anything.
    assert_eq!(baseline.leftover_pending, 0);
    assert_eq!(sd.leftover_pending, 0);
}
