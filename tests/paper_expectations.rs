//! Regression pin for the makespan/energy fidelity fix (ISSUE 3).
//!
//! The CI-scale W3 quickstart (RICC-like trace, scale 0.2, ideal model,
//! DynAVGSD) must keep the paper's *signs*: SD-Policy reduces slowdown,
//! response, makespan and energy vs static backfill. A single seed's
//! makespan/energy delta is tail-composition noise of several percent
//! either way (DESIGN.md §8), so the pin is the mean over the same fixed
//! seed panel `sd_validate` uses — that is what the original regression
//! (+35 % makespan, +22 % energy on every seed) violated and what the
//! req_end-extension fix plus borrower relocation restored.

use sd_sched::prelude::*;
use slurm_sim::SimResult;

const SEEDS: [u64; 5] = [1, 7, 13, 42, 99];
const SCALE: f64 = 0.2;

fn run_pair(seed: u64) -> (SimResult, SimResult) {
    let workload = PaperWorkload::W3Ricc;
    let trace = workload.generate(seed, SCALE);
    let cluster = workload.cluster(SCALE);
    let baseline = run_trace(
        cluster.clone(),
        SlurmConfig::default(),
        &trace,
        Box::new(IdealModel),
        SharingFactor::HALF,
        StaticBackfill,
    );
    let sd = run_trace(
        cluster,
        SlurmConfig::default(),
        &trace,
        Box::new(IdealModel),
        SharingFactor::HALF,
        SdPolicy::default(),
    );
    (baseline, sd)
}

#[test]
fn w3_ci_scale_panel_keeps_paper_signs() {
    // One thread per pair: ~10 debug-mode runs, wall time bounded by cores.
    let pairs: Vec<(SimResult, SimResult)> = std::thread::scope(|s| {
        let handles: Vec<_> = SEEDS.iter().map(|&seed| s.spawn(move || run_pair(seed))).collect();
        handles.into_iter().map(|h| h.join().expect("run pair")).collect()
    });

    let mut d_makespan = 0.0;
    let mut d_energy = 0.0;
    let mut d_slowdown = 0.0;
    let mut d_response = 0.0;
    for (seed, (base, sd)) in SEEDS.iter().zip(&pairs) {
        assert_eq!(sd.leftover_pending, 0, "seed {seed}: jobs stranded");
        assert_eq!(sd.leftover_running, 0, "seed {seed}: jobs still running");
        assert!(sd.stats.started_malleable > 0, "seed {seed}: malleability unused");
        d_makespan += sd.makespan as f64 / base.makespan as f64 - 1.0;
        d_energy += sd.energy_joules / base.energy_joules - 1.0;
        d_slowdown += sd.mean_slowdown() / base.mean_slowdown() - 1.0;
        d_response += sd.mean_response() / base.mean_response() - 1.0;
    }
    // The borrower-relocation path (expand half of the resource manager)
    // must actually fire — without it the makespan sign flips back.
    for (seed, (_, sd)) in SEEDS.iter().zip(&pairs) {
        assert!(
            sd.stats.relocations > 0,
            "seed {seed}: no borrower relocations (stats: {:?})",
            sd.stats
        );
        assert!(sd.stats.expand_events >= sd.stats.relocations);
    }

    let n = SEEDS.len() as f64;
    let (d_makespan, d_energy, d_slowdown, d_response) =
        (d_makespan / n, d_energy / n, d_slowdown / n, d_response / n);

    // The pinned signs (and loose magnitudes) of the paper's claims.
    assert!(
        d_makespan < 0.0,
        "panel-mean Δmakespan regressed to {:+.2}% (paper: negative)",
        d_makespan * 100.0
    );
    assert!(
        d_energy < 0.0,
        "panel-mean Δenergy regressed to {:+.2}% (paper: negative)",
        d_energy * 100.0
    );
    assert!(
        d_slowdown < -0.35,
        "panel-mean Δslowdown only {:+.1}% (expected ≤ -35%)",
        d_slowdown * 100.0
    );
    assert!(
        d_response < -0.15,
        "panel-mean Δresponse only {:+.1}% (expected ≤ -15%)",
        d_response * 100.0
    );
}
