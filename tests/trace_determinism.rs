//! Decision tracing must not perturb the simulation, and the stream itself
//! must be reproducible: running the same workload twice with tracing armed
//! yields byte-identical virtual-time renderings (DESIGN.md §12), on both
//! the incremental hot path and the legacy rebuild-everything path. Wall
//! clock readings are confined to the `wall_ns` field that
//! [`render_virtual`] deliberately omits.

use sd_sched::prelude::*;
use sd_sched::sd_scenario::{execute, execute_traced, find_builtin};
use sd_sched::slurm_sim::{render_virtual, TraceEvent, TraceRing};
use std::sync::Arc;

/// Runs one traced simulation and returns (result, events).
fn traced_run(
    w: PaperWorkload,
    seed: u64,
    sd: bool,
    incremental: bool,
) -> (SimResult, Vec<TraceEvent>) {
    let scale = 0.02;
    let trace = w.generate(seed, scale);
    let cfg = SlurmConfig {
        incremental,
        ..SlurmConfig::default()
    };
    let ring = Arc::new(TraceRing::new(1 << 20));
    let mut state = SimState::new(
        w.cluster(scale),
        cfg,
        &trace,
        Box::new(IdealModel),
        SharingFactor::HALF,
    );
    state.attach_trace(ring.clone());
    let res = if sd {
        Controller::new(state, SdPolicy::default()).run()
    } else {
        Controller::new(state, StaticBackfill).run()
    };
    assert_eq!(ring.overwritten(), 0, "ring sized for the whole run");
    (res, ring.snapshot())
}

fn assert_deterministic(w: PaperWorkload, seed: u64, sd: bool, incremental: bool) {
    let (res_a, ev_a) = traced_run(w, seed, sd, incremental);
    let (res_b, ev_b) = traced_run(w, seed, sd, incremental);
    assert_eq!(
        res_a, res_b,
        "{w:?} sd={sd} incremental={incremental}: results diverged"
    );
    let virt_a = render_virtual(&ev_a);
    let virt_b = render_virtual(&ev_b);
    assert!(!virt_a.is_empty(), "traced run produced events");
    assert_eq!(
        virt_a, virt_b,
        "{w:?} sd={sd} incremental={incremental}: virtual-time streams diverged"
    );
    // Sequence numbers are dense from 0 — nothing was lost or reordered.
    for (i, ev) in ev_a.iter().enumerate() {
        assert_eq!(ev.seq, i as u64);
    }
}

#[test]
fn virtual_stream_is_identical_across_runs_incremental() {
    assert_deterministic(PaperWorkload::W3Ricc, 42, true, true);
    assert_deterministic(PaperWorkload::W3Ricc, 42, false, true);
}

#[test]
fn virtual_stream_is_identical_across_runs_legacy_path() {
    assert_deterministic(PaperWorkload::W3Ricc, 42, true, false);
    assert_deterministic(PaperWorkload::W3Ricc, 42, false, false);
}

#[test]
fn virtual_stream_is_seed_sensitive() {
    let (_, ev_a) = traced_run(PaperWorkload::W3Ricc, 1, true, true);
    let (_, ev_b) = traced_run(PaperWorkload::W3Ricc, 2, true, true);
    assert_ne!(
        render_virtual(&ev_a),
        render_virtual(&ev_b),
        "different seeds produce different decision streams"
    );
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    // The traced result equals the untraced result bit-for-bit: emission is
    // observation only, and a dormant sink costs nothing behaviourally.
    let w = PaperWorkload::W3Ricc;
    let trace = w.generate(42, 0.02);
    let bare = run_trace(
        w.cluster(0.02),
        SlurmConfig::default(),
        &trace,
        Box::new(IdealModel),
        SharingFactor::HALF,
        SdPolicy::default(),
    );
    let (traced, events) = traced_run(w, 42, true, true);
    assert_eq!(bare, traced, "attaching a trace ring changed the simulation");
    assert!(events.len() > bare.outcomes.len(), "at least one event per job");
}

#[test]
fn scenario_execute_traced_matches_execute() {
    let s = find_builtin("bursty").expect("bursty is a built-in scenario");
    let mut points = sd_sched::sd_scenario::expand(&s);
    points.truncate(1);
    let plain = execute(&points[0]).expect("bursty runs");
    let ring = Arc::new(TraceRing::new(1 << 20));
    let traced = execute_traced(&points[0], ring.clone()).expect("bursty runs traced");
    assert_eq!(plain.result, traced.result);
    let again = Arc::new(TraceRing::new(1 << 20));
    execute_traced(&points[0], again.clone()).expect("bursty runs traced again");
    assert_eq!(
        render_virtual(&ring.snapshot()),
        render_virtual(&again.snapshot()),
        "scenario-level traced runs are reproducible"
    );
}
