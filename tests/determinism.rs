//! Whole-pipeline determinism: identical seeds must give bit-identical
//! results across repeated runs, for both policies and all runtime models.

use sd_sched::prelude::*;

fn run(policy_sd: bool, seed: u64, ideal: bool) -> SimResult {
    let w = PaperWorkload::W3Ricc;
    let trace = w.generate(seed, 0.02);
    let cluster = w.cluster(0.02);
    let model: Box<dyn slurm_sim::RateModel> = if ideal {
        Box::new(IdealModel)
    } else {
        Box::new(WorstCaseModel)
    };
    if policy_sd {
        run_trace(
            cluster,
            SlurmConfig::default(),
            &trace,
            model,
            SharingFactor::HALF,
            SdPolicy::default(),
        )
    } else {
        run_trace(
            cluster,
            SlurmConfig::default(),
            &trace,
            model,
            SharingFactor::HALF,
            StaticBackfill,
        )
    }
}

#[test]
fn static_runs_are_reproducible() {
    let a = run(false, 11, true);
    let b = run(false, 11, true);
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.energy_joules, b.energy_joules);
    assert_eq!(a.makespan, b.makespan);
}

#[test]
fn sd_runs_are_reproducible() {
    let a = run(true, 11, true);
    let b = run(true, 11, true);
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.stats.started_malleable, b.stats.started_malleable);
    assert_eq!(a.stats.unique_mates, b.stats.unique_mates);
}

#[test]
fn different_seeds_differ() {
    let a = run(true, 1, true);
    let b = run(true, 2, true);
    assert_ne!(a.outcomes, b.outcomes);
}

#[test]
fn models_change_results_only_when_shrinking_happens() {
    // Static backfill never reconfigures, so the model is irrelevant.
    let a = run(false, 5, true);
    let b = run(false, 5, false);
    assert_eq!(a.outcomes, b.outcomes);
    // SD-Policy shrinks jobs; ideal vs worst-case must differ somewhere.
    let c = run(true, 5, true);
    let d = run(true, 5, false);
    if c.stats.started_malleable > 0 {
        assert_ne!(
            c.outcomes, d.outcomes,
            "runtime model must matter once malleability is applied"
        );
    }
}
