//! The virtual-clock equivalence obligation (DESIGN.md §10): a scripted
//! live session over loopback HTTP — every job submitted through the wire
//! with its trace timestamp, then one drain — must produce a [`SimResult`]
//! **identical** to the offline replay of the same workload. Both
//! `incremental` settings are pinned; the result travels back through the
//! JSON protocol, so floats surviving bit-for-bit is part of the claim.
//!
//! The recovery variant (DESIGN.md §14) extends the obligation through a
//! crash: a session that loses its process mid-traffic and recovers from
//! checkpoint + WAL must still finish bit-identical to the offline replay —
//! for both `incremental` settings and both availability backends, and even
//! when the WAL carries a torn tail.

use sd_sched::prelude::*;
use sd_serve::engine::{ClockMode, Engine};
use sd_serve::proto::SubmitRequest;
use sd_serve::server::{self, ServerConfig};
use sd_serve::{Client, FsyncPolicy, Json, WalStatus};

fn cfg_for(incremental: bool, fraction: f64) -> SlurmConfig {
    SlurmConfig {
        incremental,
        malleable_fraction: fraction,
        ..SlurmConfig::default()
    }
}

fn offline(trace: &Trace, cluster: ClusterSpec, cfg: SlurmConfig, sd: bool) -> SimResult {
    if sd {
        run_trace(
            cluster,
            cfg,
            trace,
            Box::new(IdealModel),
            SharingFactor::HALF,
            SdPolicy::default(),
        )
    } else {
        run_trace(
            cluster,
            cfg,
            trace,
            Box::new(IdealModel),
            SharingFactor::HALF,
            StaticBackfill,
        )
    }
}

/// Runs the same workload through a live sd-serve over loopback.
fn online(trace: &Trace, cluster: ClusterSpec, cfg: SlurmConfig, sd: bool) -> SimResult {
    let state = SimState::new_online(cluster, cfg, Box::new(IdealModel), SharingFactor::HALF);
    let scheduler: Box<dyn Scheduler + Send> = if sd {
        Box::new(SdPolicy::default())
    } else {
        Box::new(StaticBackfill)
    };
    let engine = Engine::new(state, scheduler, ClockMode::Virtual);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("ephemeral bind");
    let addr = listener.local_addr().unwrap();
    let handle =
        std::thread::spawn(move || server::run(engine, listener, ServerConfig { workers: 4, ..Default::default() }));

    let mut client = Client::connect(addr).expect("connect to sd-serve");
    for j in &trace.jobs {
        let (id, _) = client
            .submit(&SubmitRequest {
                procs: j.procs().expect("generated jobs have procs"),
                req_time: j.requested_time().unwrap_or(0),
                run_time: j.runtime().expect("generated jobs have runtimes"),
                submit: Some(j.submit.max(0) as u64),
                malleable: None,
                trace_id: Some(j.job_id),
                // Outcomes record the tenant, so the wire must carry the
                // trace's user/group for the results to compare equal.
                tenant: Some(j.user.max(0) as u64),
                project: Some(j.group.max(0) as u64),
            })
            .expect("live submission accepted");
        assert_eq!(id, j.job_id, "service assigns trace ids in order");
    }
    client.drain().expect("drain the virtual clock");
    let wire_result = client.shutdown().expect("shutdown returns the final result");
    let server_result = handle
        .join()
        .expect("server thread")
        .expect("server produced a result");
    assert_eq!(
        wire_result, server_result,
        "the JSON wire encoding is lossless (floats bit-for-bit)"
    );
    wire_result
}

fn assert_equivalent(scale: f64, seed: u64, sd: bool, fraction: f64) {
    let w = PaperWorkload::W3Ricc;
    let trace = w.generate(seed, scale);
    let cluster = w.cluster(scale);
    assert!(!trace.jobs.is_empty());
    for incremental in [true, false] {
        let cfg = cfg_for(incremental, fraction);
        let off = offline(&trace, cluster.clone(), cfg.clone(), sd);
        let on = online(&trace, cluster.clone(), cfg, sd);
        assert_eq!(
            on, off,
            "online session diverged from offline replay \
             (sd={sd} incremental={incremental} seed={seed} fraction={fraction})"
        );
    }
}

#[test]
fn scripted_session_matches_offline_replay_sd_policy() {
    assert_equivalent(0.03, 7, true, 1.0);
}

#[test]
fn scripted_session_matches_offline_replay_static() {
    assert_equivalent(0.03, 7, false, 1.0);
}

#[test]
fn mixed_rigid_malleable_population_matches_offline_replay() {
    // fraction < 1 exercises the per-job malleability draw: the wire's
    // `trace_id` must seed it exactly like the offline constructor, or the
    // rigid/malleable populations (and thus the schedules) diverge.
    assert_equivalent(0.03, 13, true, 0.5);
}

#[test]
fn tenanted_fair_share_session_matches_offline_replay() {
    // A Zipf tenant mix under fair-share ordering with a running-width
    // quota: the wire carries each job's tenant/project, so the online
    // session must reproduce the offline replay bit-for-bit — including
    // quota skip counts and per-tenant outcome labels.
    let w = PaperWorkload::W3Ricc;
    let trace = w.model(0.03).with_tenant_mix(3, 1.0).generate(7);
    let cluster = w.cluster(0.03);
    assert!(
        trace.jobs.iter().any(|j| j.user > 1),
        "the mix stamps more than one tenant"
    );
    for incremental in [true, false] {
        let mut tenants = TenantRegistry::new();
        for id in 1..=3 {
            tenants.add(Tenant {
                quota: Quota {
                    node_seconds: None,
                    max_running_width: Some(cluster.nodes.max(2) / 2),
                },
                ..Tenant::unlimited(id, 0)
            });
        }
        let cfg = SlurmConfig {
            incremental,
            tenants,
            queue_policy: QueuePolicy::FairShare { half_life: 3600 },
            ..SlurmConfig::default()
        };
        let off = offline(&trace, cluster.clone(), cfg.clone(), true);
        let on = online(&trace, cluster.clone(), cfg, true);
        assert_eq!(
            on, off,
            "tenanted online session diverged (incremental={incremental})"
        );
        let labels: std::collections::BTreeSet<u32> =
            on.outcomes.iter().map(|o| o.tenant).collect();
        assert!(labels.len() > 1, "outcomes carry the tenant mix: {labels:?}");
    }
}

fn wire_request(j: &SwfJob) -> SubmitRequest {
    SubmitRequest {
        procs: j.procs().expect("generated jobs have procs"),
        req_time: j.requested_time().unwrap_or(0),
        run_time: j.runtime().expect("generated jobs have runtimes"),
        submit: Some(j.submit.max(0) as u64),
        malleable: None,
        trace_id: Some(j.job_id),
        tenant: Some(j.user.max(0) as u64),
        project: Some(j.group.max(0) as u64),
    }
}

/// Boots a server whose engine recovers from (or starts fresh in) `dir`.
fn spawn_durable(
    dir: &std::path::Path,
    cluster: ClusterSpec,
    cfg: SlurmConfig,
) -> (
    Client,
    std::thread::JoinHandle<Result<SimResult, std::io::Error>>,
    WalStatus,
) {
    let (engine, status) = Engine::recover(
        dir,
        FsyncPolicy::Never,
        5, // small cadence: the crash image holds a checkpoint AND a log suffix
        cluster,
        cfg,
        Box::new(IdealModel),
        SharingFactor::HALF,
        Box::new(SdPolicy::default()),
    )
    .expect("WAL recovery");
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("ephemeral bind");
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        server::run(engine, listener, ServerConfig { workers: 2, ..Default::default() })
    });
    (Client::connect(addr).expect("connect"), handle, status)
}

/// Copies the WAL directory — taken between acknowledged requests it is
/// exactly the on-disk state a `kill -9` at that instant would leave.
fn crash_image(src: &std::path::Path, dst: &std::path::Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let e = entry.unwrap();
        std::fs::copy(e.path(), dst.join(e.file_name())).unwrap();
    }
}

/// Half a session, a crash, recovery, the other half — must equal the
/// offline replay bit-for-bit.
fn assert_recovery_equivalent(incremental: bool, backend: AvailBackendKind, torn: bool, tag: &str) {
    let w = PaperWorkload::W3Ricc;
    let trace = w.generate(7, 0.02);
    let cluster = w.cluster(0.02);
    let cfg = SlurmConfig {
        incremental,
        avail_backend: backend,
        ..SlurmConfig::default()
    };
    let reference = offline(&trace, cluster.clone(), cfg.clone(), true);

    let base = std::env::temp_dir().join(format!("sd-serve-eq-{}-{tag}", std::process::id()));
    let live = base.join("live");
    let crash = base.join("crash");
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&live).unwrap();

    // Session 1: submit the first half, then "crash" — the image captures
    // checkpoint + WAL as a kill -9 would have left them.
    let half = trace.jobs.len() / 2;
    assert!(half > 5, "enough traffic to cross a checkpoint");
    let (mut client, handle, status) = spawn_durable(&live, cluster.clone(), cfg.clone());
    assert!(status.recovered.is_none(), "fresh directory");
    for j in &trace.jobs[..half] {
        client.submit(&wire_request(j)).expect("first-half submit");
    }
    crash_image(&live, &crash);
    client.shutdown().expect("discard session 1");
    handle.join().unwrap().unwrap();

    if torn {
        // A torn tail: garbage past the last complete record, as a crash
        // mid-append would leave. Recovery must keep the valid prefix.
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(crash.join("wal.log"))
            .unwrap();
        f.write_all(&[0xDE, 0xAD, 0xBE, 0xEF, 0x42]).unwrap();
    }

    // Session 2: recover the image, resync, finish the workload.
    let (mut client, handle, status) = spawn_durable(&crash, cluster, cfg);
    assert_eq!(
        status.recovered,
        Some(if torn { "torn_tail" } else { "clean" }),
        "recovery mode (torn={torn})"
    );
    let stats = client.stats().expect("stats after recovery");
    assert_eq!(
        stats.get("jobs_total").and_then(Json::as_u64),
        Some(half as u64),
        "every acknowledged submission survived the crash"
    );
    if torn {
        let metrics = client.metrics().expect("metrics after recovery");
        assert!(
            metrics.contains("sd_serve_recovered{mode=\"torn_tail\"} 1"),
            "torn-tail recovery is visible on /metrics"
        );
    }
    for j in &trace.jobs[half..] {
        client.submit(&wire_request(j)).expect("second-half submit");
    }
    client.drain().expect("drain");
    let recovered = client.shutdown().expect("final result");
    handle.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&base);

    assert_eq!(
        recovered, reference,
        "recovered session diverged from the offline replay \
         (incremental={incremental} backend={backend:?} torn={torn})"
    );
}

#[test]
fn recovered_session_matches_offline_replay_across_hot_paths_and_backends() {
    for incremental in [true, false] {
        for backend in [AvailBackendKind::Profile, AvailBackendKind::SlotTree] {
            let tag = format!("i{}-{backend:?}", u8::from(incremental));
            assert_recovery_equivalent(incremental, backend, false, &tag);
        }
    }
}

#[test]
fn torn_wal_tail_recovery_still_matches_offline_replay() {
    assert_recovery_equivalent(true, AvailBackendKind::default(), true, "torn");
}

#[test]
fn observability_does_not_perturb_results() {
    // DESIGN.md §15: logging, profiling and SLO sampling are observers —
    // a session with all three dialled up must return a /v1/result
    // byte-identical to the plain offline replay.
    let w = PaperWorkload::W3Ricc;
    let trace = w.generate(7, 0.02);
    let cluster = w.cluster(0.02);
    let cfg = SlurmConfig::default();
    let reference = offline(&trace, cluster.clone(), cfg.clone(), true);

    sd_obs::set_ring_level(sd_obs::Level::Trace);
    slurm_sim::timing::arm();
    let slos = vec![
        sd_obs::SloSpec::parse("submit_availability", 0.99).unwrap(),
        sd_obs::SloSpec::parse("p99_wait_seconds", 100_000.0).unwrap(),
        sd_obs::SloSpec::parse("pass_duration_p95", 0.5).unwrap(),
    ];

    let state = SimState::new_online(cluster, cfg, Box::new(IdealModel), SharingFactor::HALF);
    let engine = Engine::new(
        state,
        Box::new(SdPolicy::default()) as Box<dyn Scheduler + Send>,
        ClockMode::Virtual,
    );
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        server::run(engine, listener, ServerConfig { workers: 4, slos, ..Default::default() })
    });
    let mut client = Client::connect(addr).unwrap();
    let head = sd_obs::ring_head();
    for j in &trace.jobs {
        client.submit(&wire_request(j)).expect("submit under observation");
    }
    client.drain().unwrap();

    // The observers saw the traffic: debug submit events landed in the
    // ring, and the armed profiler accumulated scheduler passes.
    let logs = client.logs(head, 64, Some("debug"), Some("engine")).unwrap();
    let records = logs.get("records").and_then(Json::as_arr).expect("records array");
    assert!(!records.is_empty(), "debug engine events reached /v1/logs");
    // The sampler publishes its first evaluation about a second after boot.
    let slo = std::iter::repeat_with(|| {
        std::thread::sleep(std::time::Duration::from_millis(200));
        client.slo()
    })
    .take(50)
    .find_map(Result::ok)
    .expect("/v1/slo answers once the sampler has run");
    assert_eq!(
        slo.get("slos").and_then(Json::as_arr).map(|a| a.len()),
        Some(3),
        "every declared objective is tracked"
    );
    let profile = client.profile(1).expect("profile window");
    assert!(
        profile.contains("sd;sched_pass"),
        "collapsed stacks are rooted at the scheduler pass:\n{profile}"
    );

    let observed = client.shutdown().unwrap();
    handle.join().unwrap().unwrap();
    slurm_sim::timing::disarm();
    sd_obs::set_ring_level(sd_obs::Level::Info);

    assert_eq!(
        observed, reference,
        "observability-on session diverged from the plain offline replay"
    );
}

#[test]
fn interleaved_advance_still_matches_offline_replay() {
    // Submitting in bursts interleaved with clock advances exercises the
    // floor logic: as long as every submission lands at or after the clock,
    // the merged event sequence equals the offline trace's.
    let w = PaperWorkload::W3Ricc;
    let trace = w.generate(11, 0.02);
    let cluster = w.cluster(0.02);
    let offline_res = offline(&trace, cluster.clone(), SlurmConfig::default(), true);

    let state = SimState::new_online(
        cluster,
        SlurmConfig::default(),
        Box::new(IdealModel),
        SharingFactor::HALF,
    );
    let engine = Engine::new(
        state,
        Box::new(SdPolicy::default()) as Box<dyn Scheduler + Send>,
        ClockMode::Virtual,
    );
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle =
        std::thread::spawn(move || server::run(engine, listener, ServerConfig { workers: 2, ..Default::default() }));
    let mut client = Client::connect(addr).unwrap();

    // Generated traces are sorted by (submit, id) — submitting in trace
    // order with interleaved advances keeps ids and event order identical.
    let jobs = &trace.jobs;
    assert!(jobs.windows(2).all(|w| w[0].submit <= w[1].submit));
    for (i, chunk) in jobs.chunks(25).enumerate() {
        if i > 0 {
            let first = chunk[0].submit.max(0) as u64;
            // Advance to just before the burst's first submit instant:
            // everything strictly earlier is simulated, and the burst's own
            // instant stays open (it may share a batch with a tie from the
            // previous chunk offline).
            client.advance(first.saturating_sub(1)).unwrap();
        }
        for j in chunk {
            client
                .submit(&SubmitRequest {
                    procs: j.procs().unwrap(),
                    req_time: j.requested_time().unwrap_or(0),
                    run_time: j.runtime().unwrap(),
                    submit: Some(j.submit.max(0) as u64),
                    malleable: None,
                    trace_id: Some(j.job_id),
                    tenant: Some(j.user.max(0) as u64),
                    project: Some(j.group.max(0) as u64),
                })
                .unwrap();
        }
    }
    client.drain().unwrap();
    let online_res = client.shutdown().unwrap();
    handle.join().unwrap().unwrap();

    assert_eq!(online_res, offline_res, "interleaved session diverged");
}
