//! The virtual-clock equivalence obligation (DESIGN.md §10): a scripted
//! live session over loopback HTTP — every job submitted through the wire
//! with its trace timestamp, then one drain — must produce a [`SimResult`]
//! **identical** to the offline replay of the same workload. Both
//! `incremental` settings are pinned; the result travels back through the
//! JSON protocol, so floats surviving bit-for-bit is part of the claim.

use sd_sched::prelude::*;
use sd_serve::engine::{ClockMode, Engine};
use sd_serve::proto::SubmitRequest;
use sd_serve::server::{self, ServerConfig};
use sd_serve::Client;

fn cfg_for(incremental: bool, fraction: f64) -> SlurmConfig {
    SlurmConfig {
        incremental,
        malleable_fraction: fraction,
        ..SlurmConfig::default()
    }
}

fn offline(trace: &Trace, cluster: ClusterSpec, cfg: SlurmConfig, sd: bool) -> SimResult {
    if sd {
        run_trace(
            cluster,
            cfg,
            trace,
            Box::new(IdealModel),
            SharingFactor::HALF,
            SdPolicy::default(),
        )
    } else {
        run_trace(
            cluster,
            cfg,
            trace,
            Box::new(IdealModel),
            SharingFactor::HALF,
            StaticBackfill,
        )
    }
}

/// Runs the same workload through a live sd-serve over loopback.
fn online(trace: &Trace, cluster: ClusterSpec, cfg: SlurmConfig, sd: bool) -> SimResult {
    let state = SimState::new_online(cluster, cfg, Box::new(IdealModel), SharingFactor::HALF);
    let scheduler: Box<dyn Scheduler + Send> = if sd {
        Box::new(SdPolicy::default())
    } else {
        Box::new(StaticBackfill)
    };
    let engine = Engine::new(state, scheduler, ClockMode::Virtual);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("ephemeral bind");
    let addr = listener.local_addr().unwrap();
    let handle =
        std::thread::spawn(move || server::run(engine, listener, ServerConfig { workers: 4, ..Default::default() }));

    let mut client = Client::connect(addr).expect("connect to sd-serve");
    for j in &trace.jobs {
        let (id, _) = client
            .submit(&SubmitRequest {
                procs: j.procs().expect("generated jobs have procs"),
                req_time: j.requested_time().unwrap_or(0),
                run_time: j.runtime().expect("generated jobs have runtimes"),
                submit: Some(j.submit.max(0) as u64),
                malleable: None,
                trace_id: Some(j.job_id),
                // Outcomes record the tenant, so the wire must carry the
                // trace's user/group for the results to compare equal.
                tenant: Some(j.user.max(0) as u64),
                project: Some(j.group.max(0) as u64),
            })
            .expect("live submission accepted");
        assert_eq!(id, j.job_id, "service assigns trace ids in order");
    }
    client.drain().expect("drain the virtual clock");
    let wire_result = client.shutdown().expect("shutdown returns the final result");
    let server_result = handle
        .join()
        .expect("server thread")
        .expect("server produced a result");
    assert_eq!(
        wire_result, server_result,
        "the JSON wire encoding is lossless (floats bit-for-bit)"
    );
    wire_result
}

fn assert_equivalent(scale: f64, seed: u64, sd: bool, fraction: f64) {
    let w = PaperWorkload::W3Ricc;
    let trace = w.generate(seed, scale);
    let cluster = w.cluster(scale);
    assert!(!trace.jobs.is_empty());
    for incremental in [true, false] {
        let cfg = cfg_for(incremental, fraction);
        let off = offline(&trace, cluster.clone(), cfg.clone(), sd);
        let on = online(&trace, cluster.clone(), cfg, sd);
        assert_eq!(
            on, off,
            "online session diverged from offline replay \
             (sd={sd} incremental={incremental} seed={seed} fraction={fraction})"
        );
    }
}

#[test]
fn scripted_session_matches_offline_replay_sd_policy() {
    assert_equivalent(0.03, 7, true, 1.0);
}

#[test]
fn scripted_session_matches_offline_replay_static() {
    assert_equivalent(0.03, 7, false, 1.0);
}

#[test]
fn mixed_rigid_malleable_population_matches_offline_replay() {
    // fraction < 1 exercises the per-job malleability draw: the wire's
    // `trace_id` must seed it exactly like the offline constructor, or the
    // rigid/malleable populations (and thus the schedules) diverge.
    assert_equivalent(0.03, 13, true, 0.5);
}

#[test]
fn tenanted_fair_share_session_matches_offline_replay() {
    // A Zipf tenant mix under fair-share ordering with a running-width
    // quota: the wire carries each job's tenant/project, so the online
    // session must reproduce the offline replay bit-for-bit — including
    // quota skip counts and per-tenant outcome labels.
    let w = PaperWorkload::W3Ricc;
    let trace = w.model(0.03).with_tenant_mix(3, 1.0).generate(7);
    let cluster = w.cluster(0.03);
    assert!(
        trace.jobs.iter().any(|j| j.user > 1),
        "the mix stamps more than one tenant"
    );
    for incremental in [true, false] {
        let mut tenants = TenantRegistry::new();
        for id in 1..=3 {
            tenants.add(Tenant {
                quota: Quota {
                    node_seconds: None,
                    max_running_width: Some(cluster.nodes.max(2) / 2),
                },
                ..Tenant::unlimited(id, 0)
            });
        }
        let cfg = SlurmConfig {
            incremental,
            tenants,
            queue_policy: QueuePolicy::FairShare { half_life: 3600 },
            ..SlurmConfig::default()
        };
        let off = offline(&trace, cluster.clone(), cfg.clone(), true);
        let on = online(&trace, cluster.clone(), cfg, true);
        assert_eq!(
            on, off,
            "tenanted online session diverged (incremental={incremental})"
        );
        let labels: std::collections::BTreeSet<u32> =
            on.outcomes.iter().map(|o| o.tenant).collect();
        assert!(labels.len() > 1, "outcomes carry the tenant mix: {labels:?}");
    }
}

#[test]
fn interleaved_advance_still_matches_offline_replay() {
    // Submitting in bursts interleaved with clock advances exercises the
    // floor logic: as long as every submission lands at or after the clock,
    // the merged event sequence equals the offline trace's.
    let w = PaperWorkload::W3Ricc;
    let trace = w.generate(11, 0.02);
    let cluster = w.cluster(0.02);
    let offline_res = offline(&trace, cluster.clone(), SlurmConfig::default(), true);

    let state = SimState::new_online(
        cluster,
        SlurmConfig::default(),
        Box::new(IdealModel),
        SharingFactor::HALF,
    );
    let engine = Engine::new(
        state,
        Box::new(SdPolicy::default()) as Box<dyn Scheduler + Send>,
        ClockMode::Virtual,
    );
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle =
        std::thread::spawn(move || server::run(engine, listener, ServerConfig { workers: 2, ..Default::default() }));
    let mut client = Client::connect(addr).unwrap();

    // Generated traces are sorted by (submit, id) — submitting in trace
    // order with interleaved advances keeps ids and event order identical.
    let jobs = &trace.jobs;
    assert!(jobs.windows(2).all(|w| w[0].submit <= w[1].submit));
    for (i, chunk) in jobs.chunks(25).enumerate() {
        if i > 0 {
            let first = chunk[0].submit.max(0) as u64;
            // Advance to just before the burst's first submit instant:
            // everything strictly earlier is simulated, and the burst's own
            // instant stays open (it may share a batch with a tie from the
            // previous chunk offline).
            client.advance(first.saturating_sub(1)).unwrap();
        }
        for j in chunk {
            client
                .submit(&SubmitRequest {
                    procs: j.procs().unwrap(),
                    req_time: j.requested_time().unwrap_or(0),
                    run_time: j.runtime().unwrap(),
                    submit: Some(j.submit.max(0) as u64),
                    malleable: None,
                    trace_id: Some(j.job_id),
                    tenant: Some(j.user.max(0) as u64),
                    project: Some(j.group.max(0) as u64),
                })
                .unwrap();
        }
    }
    client.drain().unwrap();
    let online_res = client.shutdown().unwrap();
    handle.join().unwrap().unwrap();

    assert_eq!(online_res, offline_res, "interleaved session diverged");
}
