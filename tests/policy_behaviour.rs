//! Cross-crate behavioural tests of SD-Policy against the baseline —
//! the paper's qualitative claims as assertions.

use sd_sched::prelude::*;

fn compare(w: PaperWorkload, scale: f64, seed: u64) -> (SimResult, SimResult) {
    let trace = w.generate(seed, scale);
    let cluster = w.cluster(scale);
    let stat = run_trace(
        cluster.clone(),
        SlurmConfig::default(),
        &trace,
        Box::new(IdealModel),
        SharingFactor::HALF,
        StaticBackfill,
    );
    let sd = run_trace(
        cluster,
        SlurmConfig::default(),
        &trace,
        Box::new(IdealModel),
        SharingFactor::HALF,
        SdPolicy::new(SdPolicyConfig {
            max_slowdown: MaxSlowdown::Static(50.0),
            ..SdPolicyConfig::default()
        }),
    );
    (stat, sd)
}

#[test]
fn sd_improves_slowdown_on_congested_workloads() {
    // The headline claim, on two different workload families.
    for (w, scale) in [
        (PaperWorkload::W1Cirne, 0.05),
        (PaperWorkload::W4Curie, 0.01),
    ] {
        let (stat, sd) = compare(w, scale, 42);
        assert!(sd.stats.started_malleable > 0, "{w:?}: malleability used");
        assert!(
            sd.mean_slowdown() < stat.mean_slowdown(),
            "{w:?}: SD {} vs static {}",
            sd.mean_slowdown(),
            stat.mean_slowdown()
        );
    }
}

#[test]
fn sd_keeps_makespan_roughly_constant() {
    // Paper: "reduction of makespan … up to 7%"; at minimum it must not
    // blow up (shrinking stretches jobs but fills holes).
    let (stat, sd) = compare(PaperWorkload::W1Cirne, 0.05, 42);
    let ratio = sd.makespan as f64 / stat.makespan as f64;
    assert!((0.85..1.25).contains(&ratio), "makespan ratio {ratio}");
}

#[test]
fn malleable_backfilled_jobs_skip_the_queue() {
    let (stat, sd) = compare(PaperWorkload::W1Cirne, 0.05, 7);
    // Find jobs that were malleable-backfilled in the SD run and compare
    // their waits against the same jobs in the static run.
    let static_wait: std::collections::HashMap<u64, u64> = stat
        .outcomes
        .iter()
        .map(|o| (o.id.0, o.wait()))
        .collect();
    let mut improved = 0usize;
    let mut total = 0usize;
    for o in sd.outcomes.iter().filter(|o| o.malleable_backfilled) {
        total += 1;
        if o.wait() < static_wait[&o.id.0] {
            improved += 1;
        }
    }
    assert!(total > 0);
    assert!(
        improved as f64 >= total as f64 * 0.8,
        "most backfilled jobs wait less: {improved}/{total}"
    );
}

#[test]
fn mates_are_always_expanded_back() {
    // A mate that lent cores must end at full width unless it finished
    // while still lending — verified via the invariant that its wall time
    // never exceeds worst-case stretch for the overlap it hosted.
    let (_, sd) = compare(PaperWorkload::W1Cirne, 0.05, 13);
    for o in sd.outcomes.iter().filter(|o| o.was_mate) {
        // A mate at sharing 0.5 loses at most 0.5·(co-residency); the
        // co-residency never exceeds its own requested time (finish-inside
        // constraint), so wall ≤ static + req/… — use the loose bound 2×req.
        assert!(
            o.runtime() <= o.static_runtime + o.req_time,
            "{}: mate stretched beyond the worst-case bound ({} vs {} + {})",
            o.id,
            o.runtime(),
            o.static_runtime,
            o.req_time
        );
    }
}

#[test]
fn zero_malleable_fraction_degenerates_to_static() {
    let w = PaperWorkload::W3Ricc;
    let trace = w.generate(21, 0.02);
    let cluster = w.cluster(0.02);
    let cfg = SlurmConfig {
        malleable_fraction: 0.0,
        ..SlurmConfig::default()
    };
    let stat = run_trace(
        cluster.clone(),
        cfg.clone(),
        &trace,
        Box::new(IdealModel),
        SharingFactor::HALF,
        StaticBackfill,
    );
    let sd = run_trace(
        cluster,
        cfg,
        &trace,
        Box::new(IdealModel),
        SharingFactor::HALF,
        SdPolicy::default(),
    );
    assert_eq!(stat.outcomes, sd.outcomes);
}

#[test]
fn worst_case_model_never_beats_ideal_for_the_same_schedule() {
    // Eq. 5 is the lower bound on the increase, Eq. 6 the upper bound; under
    // the same policy the ideal-model run must finish jobs no later on
    // average… schedules diverge after the first decision, so assert the
    // weaker aggregate form.
    let w = PaperWorkload::W1Cirne;
    let trace = w.generate(5, 0.05);
    let cluster = w.cluster(0.05);
    let run_model = |ideal: bool| {
        let model: Box<dyn slurm_sim::RateModel> = if ideal {
            Box::new(IdealModel)
        } else {
            Box::new(WorstCaseModel)
        };
        run_trace(
            cluster.clone(),
            SlurmConfig::default(),
            &trace,
            model,
            SharingFactor::HALF,
            SdPolicy::default(),
        )
    };
    let ideal = run_model(true);
    let worst = run_model(false);
    // Both complete everything; stretched runtimes differ.
    assert_eq!(ideal.outcomes.len(), worst.outcomes.len());
    let mean_rt = |r: &SimResult| {
        r.outcomes.iter().map(|o| o.runtime() as f64).sum::<f64>() / r.outcomes.len() as f64
    };
    assert!(
        mean_rt(&worst) >= mean_rt(&ideal) * 0.98,
        "worst-case stretches at least as much on average"
    );
}
