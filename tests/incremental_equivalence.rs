//! The incremental hot path (cached availability profile, linear-sweep
//! `earliest_start`, in-place post-flexible-start delta, pass gating,
//! indexed queue/pool/borrower scans — DESIGN.md §9) must be *behaviourally
//! invisible*: for every workload and policy, `incremental = true` and the
//! legacy rebuild-everything path must produce bit-identical results, and
//! pass gating may only skip passes the legacy controller ran to no effect.

use sd_sched::prelude::*;

fn run(
    w: PaperWorkload,
    scale: f64,
    seed: u64,
    sd: bool,
    incremental: bool,
    self_check: bool,
    backend: AvailBackendKind,
) -> SimResult {
    let trace = w.generate(seed, scale);
    let cluster = w.cluster(scale);
    let cfg = SlurmConfig {
        incremental,
        self_check,
        avail_backend: backend,
        ..SlurmConfig::default()
    };
    if sd {
        run_trace(
            cluster,
            cfg,
            &trace,
            Box::new(IdealModel),
            SharingFactor::HALF,
            SdPolicy::default(),
        )
    } else {
        run_trace(
            cluster,
            cfg,
            &trace,
            Box::new(IdealModel),
            SharingFactor::HALF,
            StaticBackfill,
        )
    }
}

fn assert_equivalent(w: PaperWorkload, scale: f64, seed: u64, sd: bool) {
    let legacy = run(w, scale, seed, sd, false, false, AvailBackendKind::Profile);
    let incr = run(w, scale, seed, sd, true, false, AvailBackendKind::Profile);
    assert_eq!(
        legacy.outcomes, incr.outcomes,
        "{w:?} sd={sd} seed={seed}: outcomes diverged"
    );
    assert_eq!(legacy.makespan, incr.makespan, "{w:?} sd={sd} makespan");
    assert_eq!(
        legacy.energy_joules, incr.energy_joules,
        "{w:?} sd={sd} energy"
    );
    assert_eq!(
        legacy.stats.started_malleable, incr.stats.started_malleable,
        "{w:?} sd={sd} malleable starts"
    );
    // Gating only *skips* no-op passes — it never adds or reorders work.
    assert_eq!(legacy.stats.passes_skipped, 0, "legacy path never gates");
    assert_eq!(
        incr.stats.sched_passes + incr.stats.passes_skipped,
        legacy.stats.sched_passes,
        "{w:?} sd={sd}: every legacy pass is either run or provably skipped"
    );
    assert!(
        incr.stats.passes_skipped > 0,
        "{w:?} sd={sd}: gating should fire on a drained-queue workload"
    );
}

#[test]
fn w3_sd_policy_matches_legacy_path() {
    for seed in [1, 42] {
        assert_equivalent(PaperWorkload::W3Ricc, 0.05, seed, true);
    }
}

#[test]
fn w3_static_matches_legacy_path() {
    assert_equivalent(PaperWorkload::W3Ricc, 0.05, 42, false);
}

#[test]
fn w4_both_policies_match_legacy_path() {
    assert_equivalent(PaperWorkload::W4Curie, 0.01, 42, true);
    assert_equivalent(PaperWorkload::W4Curie, 0.01, 42, false);
}

#[test]
fn w1_sd_policy_matches_legacy_path() {
    assert_equivalent(PaperWorkload::W1Cirne, 0.05, 7, true);
}

/// The multi-tenant layer must be *inert* when it cannot bind: a
/// single-tenant registry with unlimited quotas under fair-share ordering is
/// bit-identical to the default (untenanted, FIFO) configuration — every
/// job maps to the same tenant, so `usage/weight` ties on every comparison
/// and the stable sort preserves FIFO order, while unlimited quotas never
/// block a backfill trial. Pinned on both scheduler hot paths.
#[test]
fn single_tenant_fair_share_is_bit_identical_to_untenanted() {
    let w = PaperWorkload::W3Ricc;
    // Stamp every job with tenant 1 and hold the trace fixed: the claim is
    // that the *configuration* is inert, and a trace whose users map to a
    // single registry slot is exactly the degenerate case.
    let trace = w.model(0.05).with_tenant_mix(1, 0.0).generate(42);
    for incremental in [false, true] {
        let plain_cfg = SlurmConfig {
            incremental,
            ..SlurmConfig::default()
        };
        let tenanted_cfg = SlurmConfig {
            incremental,
            tenants: TenantRegistry::equal_weights(1, Quota::UNLIMITED),
            queue_policy: QueuePolicy::FairShare { half_life: 3600 },
            ..SlurmConfig::default()
        };
        let plain = run_trace(
            w.cluster(0.05),
            plain_cfg,
            &trace,
            Box::new(IdealModel),
            SharingFactor::HALF,
            SdPolicy::default(),
        );
        let tenanted = run_trace(
            w.cluster(0.05),
            tenanted_cfg,
            &trace,
            Box::new(IdealModel),
            SharingFactor::HALF,
            SdPolicy::default(),
        );
        // Outcomes carry the tenant label, so compare the schedule itself.
        let key = |r: &SimResult| {
            r.outcomes
                .iter()
                .map(|o| (o.id, o.submit, o.start, o.end, o.nodes, o.procs))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            key(&plain),
            key(&tenanted),
            "incremental={incremental}: schedule diverged"
        );
        assert_eq!(plain.makespan, tenanted.makespan);
        assert_eq!(plain.energy_joules, tenanted.energy_joules);
        assert_eq!(
            plain.stats.started_malleable,
            tenanted.stats.started_malleable
        );
        assert_eq!(tenanted.stats.quota_skipped, 0, "unlimited quota never blocks");
    }
}

/// The availability *backend* is a pure representation choice (DESIGN.md
/// §13): the slot tree and the step-function profile must yield bit-identical
/// schedules under **both** hot paths. Pin the full
/// {profile, slottree} × {legacy, incremental} matrix against a single
/// reference run on the CI panels for both policies.
#[test]
fn backend_matrix_is_bit_identical() {
    for (w, scale) in [
        (PaperWorkload::W3Ricc, 0.05),
        (PaperWorkload::W4Curie, 0.01),
    ] {
        for sd in [true, false] {
            let reference = run(w, scale, 42, sd, false, false, AvailBackendKind::Profile);
            for backend in [AvailBackendKind::Profile, AvailBackendKind::SlotTree] {
                for incremental in [false, true] {
                    if backend == AvailBackendKind::Profile && !incremental {
                        continue; // the reference itself
                    }
                    let got = run(w, scale, 42, sd, incremental, false, backend);
                    let tag = format!(
                        "{w:?} sd={sd} backend={} incremental={incremental}",
                        backend.label()
                    );
                    assert_eq!(reference.outcomes, got.outcomes, "{tag}: outcomes");
                    assert_eq!(reference.makespan, got.makespan, "{tag}: makespan");
                    assert_eq!(reference.energy_joules, got.energy_joules, "{tag}: energy");
                    assert_eq!(
                        reference.stats.started_malleable, got.stats.started_malleable,
                        "{tag}: malleable starts"
                    );
                }
            }
        }
    }
}

/// The cached availability profile is re-validated against a full rebuild
/// after every mutation when `self_check` is on — run a malleability-heavy
/// workload end-to-end with the tripwire armed.
#[test]
fn self_check_validates_profile_cache_end_to_end() {
    let res = run(PaperWorkload::W3Ricc, 0.02, 7, true, true, true, AvailBackendKind::Profile);
    assert_eq!(res.leftover_pending, 0);
    assert!(res.stats.started_malleable > 0, "malleable path exercised");
    assert!(res.stats.relocations > 0, "relocation path exercised");
}
