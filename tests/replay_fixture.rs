//! End-to-end SWF replay over a checked-in fixture: parse → clean →
//! simulate with both schedulers. This is the offline stand-in for the
//! ROADMAP's "real trace replay untested end-to-end" item — the code path
//! is identical to feeding a genuine archive file through `replay_swf`.

use sd_sched::prelude::*;
use sd_sched::slurm_sim::replay::{infer_cluster, replay_state};

fn fixture() -> (swf::Trace, usize) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/tiny.swf");
    swf::parse_file(&path).expect("fixture parses")
}

#[test]
fn fixture_parses_with_expected_shape() {
    let (trace, skipped) = fixture();
    assert_eq!(skipped, 0, "every fixture line is well-formed");
    assert_eq!(trace.len(), 26);
    assert_eq!(trace.header.max_nodes(), Some(16));
    assert_eq!(trace.header.max_procs(), Some(128));
    let spec = infer_cluster(&trace);
    assert_eq!(spec.nodes, 16);
    assert_eq!(spec.node.cores(), 8);
}

#[test]
fn replay_cleans_then_completes_every_job() {
    let (trace, _) = fixture();
    let spec = infer_cluster(&trace);
    let (state, kept) = replay_state(
        trace,
        spec,
        SlurmConfig::default(),
        Box::new(IdealModel),
        SharingFactor::HALF,
    );
    // 26 records − 1 zero-runtime − 1 minority-partition = 24 simulatable.
    assert_eq!(kept, 24);
    let res = Controller::new(state, StaticBackfill).run();
    assert_eq!(res.outcomes.len(), 24);
    assert_eq!(res.leftover_pending, 0);
    assert_eq!(res.leftover_running, 0);
    assert!(res.makespan > 0);
    // The 256-proc record was clamped to the 128-core machine, not dropped.
    assert!(res.outcomes.iter().all(|o| o.procs <= 128));
}

#[test]
fn replay_is_deterministic_and_sd_policy_runs_it_too() {
    let (trace, _) = fixture();
    let spec = infer_cluster(&trace);
    let run = |sd: bool| {
        let (state, _) = replay_state(
            trace.clone(),
            spec.clone(),
            SlurmConfig::default(),
            Box::new(IdealModel),
            SharingFactor::HALF,
        );
        if sd {
            Controller::new(state, SdPolicy::default()).run()
        } else {
            Controller::new(state, StaticBackfill).run()
        }
    };
    let a = run(false);
    let b = run(false);
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.energy_joules, b.energy_joules);

    let sd = run(true);
    assert_eq!(sd.outcomes.len(), 24, "SD-Policy also completes the fixture");
    assert_eq!(sd.leftover_pending, 0);
}

#[test]
fn scenario_engine_replays_the_fixture_via_swf_source() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/tiny.swf");
    let mut s = Scenario::new("fixture-replay", SourceKind::Swf);
    s.workload.path = Some(path.to_string_lossy().into_owned());
    let points = expand(&s);
    assert_eq!(points.len(), 1);
    let out = execute(&points[0]).expect("fixture replay runs");
    assert_eq!(out.result.outcomes.len(), 24);
    assert_eq!(out.result.leftover_pending, 0);
}
