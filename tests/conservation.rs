//! Conservation and sanity invariants over full runs: every job completes
//! exactly once, causality holds, and the slowdown metric is well formed.

use sd_sched::prelude::*;
use std::collections::HashSet;

fn full_run(policy_sd: bool, seed: u64) -> (SimResult, usize) {
    let w = PaperWorkload::W1Cirne;
    let trace = w.generate(seed, 0.05);
    let jobs = trace.len();
    let cluster = w.cluster(0.05);
    let res = if policy_sd {
        run_trace(
            cluster,
            SlurmConfig::default(),
            &trace,
            Box::new(IdealModel),
            SharingFactor::HALF,
            SdPolicy::default(),
        )
    } else {
        run_trace(
            cluster,
            SlurmConfig::default(),
            &trace,
            Box::new(IdealModel),
            SharingFactor::HALF,
            StaticBackfill,
        )
    };
    (res, jobs)
}

#[test]
fn every_job_completes_exactly_once_static() {
    let (res, jobs) = full_run(false, 3);
    assert_eq!(res.outcomes.len(), jobs);
    assert_eq!(res.leftover_pending, 0);
    assert_eq!(res.leftover_running, 0);
    let ids: HashSet<u64> = res.outcomes.iter().map(|o| o.id.0).collect();
    assert_eq!(ids.len(), jobs, "no duplicate completions");
}

#[test]
fn every_job_completes_exactly_once_sd() {
    let (res, jobs) = full_run(true, 3);
    assert_eq!(res.outcomes.len(), jobs);
    assert_eq!(res.leftover_pending, 0);
    assert_eq!(res.leftover_running, 0);
}

#[test]
fn causality_and_metric_sanity() {
    let (res, _) = full_run(true, 9);
    for o in &res.outcomes {
        assert!(o.start >= o.submit, "{}: starts after submission", o.id);
        assert!(o.end > o.start, "{}: positive runtime", o.id);
        assert!(
            o.runtime() >= o.static_runtime,
            "{}: wall time never below static runtime ({} < {})",
            o.id,
            o.runtime(),
            o.static_runtime
        );
        assert!(o.slowdown() >= 1.0 - 1e-9, "{}: slowdown ≥ 1", o.id);
        if !o.malleable_backfilled && !o.was_mate {
            assert_eq!(
                o.runtime(),
                o.static_runtime,
                "{}: untouched jobs run exactly their static time",
                o.id
            );
        }
    }
}

#[test]
fn static_jobs_never_stretched_by_static_policy() {
    let (res, _) = full_run(false, 4);
    for o in &res.outcomes {
        assert_eq!(o.runtime(), o.static_runtime);
        assert!(!o.malleable_backfilled);
        assert!(!o.was_mate);
    }
}

#[test]
fn makespan_bounds() {
    let (res, _) = full_run(true, 12);
    let last_end = res.outcomes.iter().map(|o| o.end).max().unwrap();
    let first_submit = res.outcomes.iter().map(|o| o.submit).min().unwrap();
    assert_eq!(res.makespan, last_end.since(first_submit));
    assert_eq!(res.first_submit, first_submit);
    assert_eq!(res.last_end, last_end);
}

#[test]
fn energy_has_idle_floor() {
    let (res, _) = full_run(false, 7);
    let w = PaperWorkload::W1Cirne.cluster(0.05);
    let idle_floor = w.nodes as f64 * w.node.power.idle_watts * res.makespan as f64;
    assert!(
        res.energy_joules >= idle_floor * 0.999,
        "energy {} below idle floor {}",
        res.energy_joules,
        idle_floor
    );
}
