//! # sd-sched — Slowdown Driven Scheduling for Malleable Jobs
//!
//! A from-scratch Rust reproduction of *"Holistic Slowdown Driven Scheduling
//! and Resource Management for Malleable Jobs"* (D'Amico, Jokanovic,
//! Corbalan — ICPP 2019): the SD-Policy scheduler, the SLURM-like simulator
//! it runs in, the DROM node-level malleability substrate, the workload
//! models of the paper's evaluation, and a harness regenerating every table
//! and figure.
//!
//! This umbrella crate re-exports the workspace members; see README.md for
//! the architecture and DESIGN.md for the paper↔code map.
//!
//! ```
//! use sd_sched::prelude::*;
//!
//! // Generate a small RICC-like workload and compare policies.
//! let workload = PaperWorkload::W3Ricc;
//! let trace = workload.generate(/*seed*/ 7, /*scale*/ 0.02);
//! let cluster = workload.cluster(0.02);
//!
//! let baseline = run_trace(
//!     cluster.clone(),
//!     SlurmConfig::default(),
//!     &trace,
//!     Box::new(IdealModel),
//!     SharingFactor::HALF,
//!     StaticBackfill,
//! );
//! let sd = run_trace(
//!     cluster,
//!     SlurmConfig::default(),
//!     &trace,
//!     Box::new(IdealModel),
//!     SharingFactor::HALF,
//!     SdPolicy::default(),
//! );
//! assert!(sd.mean_slowdown() <= baseline.mean_slowdown() * 1.05);
//! ```

pub use cluster;
pub use drom;
pub use sched_metrics;
pub use sd_policy;
pub use sd_scenario;
pub use simkit;
pub use slurm_sim;
pub use swf;
pub use workload;

/// The most common imports for downstream users.
pub mod prelude {
    pub use cluster::{ClusterSpec, ClusterState, CpuMask, JobId, NodeId};
    pub use drom::{DromRegistry, NodeManager, SharingFactor};
    pub use sched_metrics::{
        tenant_summaries, DailySeries, Heatmap, RatioHeatmap, Summary, TenantSummary,
    };
    pub use sd_policy::{MaxSlowdown, SdPolicy, SdPolicyConfig};
    pub use sd_scenario::{builtin_scenarios, execute, expand, Scenario, SourceKind};
    pub use simkit::{DetRng, SimTime};
    pub use slurm_sim::{
        run_trace, AppAwareModel, AvailBackend, AvailBackendKind, Availability, Controller,
        IdealModel, QueuePolicy, Quota, Scheduler, SimResult, SimState, SlurmConfig,
        StaticBackfill, Tenant, TenantRegistry, WorstCaseModel,
    };
    pub use swf::{SwfJob, Trace};
    pub use workload::{AppTrace, PaperWorkload};
}
