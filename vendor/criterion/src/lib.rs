//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, covering the subset this workspace's benches use:
//! `Criterion::{bench_function, benchmark_group, sample_size}`, benchmark
//! groups with `bench_function` / `bench_with_input` / `finish`,
//! `BenchmarkId::{new, from_parameter}`, `Bencher::iter`, `black_box`, and
//! the `criterion_group!` / `criterion_main!` macros (both forms).
//!
//! Instead of criterion's statistical engine it runs each closure
//! `sample_size` times and reports the mean wall-clock time per iteration —
//! enough for coarse regression spotting and for `cargo bench` to stay green
//! without network access.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level harness state: just a default sample size.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A named family of related benchmarks (`group/bench_id`).
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to the benchmark closure; `iter` measures the routine.
pub struct Bencher {
    samples: usize,
    total_nanos: u128,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.total_nanos += start.elapsed().as_nanos();
            self.iters += 1;
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        total_nanos: 0,
        iters: 0,
    };
    f(&mut b);
    let mean = if b.iters == 0 {
        0
    } else {
        b.total_nanos / b.iters as u128
    };
    println!("{label:<50} {mean:>12} ns/iter ({} iters)", b.iters);
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
