//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, covering exactly the subset this workspace's property tests use:
//!
//! * integer / float range strategies, tuples, `Just`, `any::<bool>()`
//! * `prop::collection::{vec, hash_set}` with `usize`/range size bounds
//! * `Strategy::prop_map`, `prop_oneof!`
//! * the `proptest!` macro with optional `#![proptest_config(..)]`
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`
//!
//! Differences from the real crate: no shrinking (a failing case reports its
//! generated inputs and the deterministic per-test seed instead), and value
//! generation is uniform rather than bias-weighted. Case count defaults to
//! 256 and can be overridden with the `PROPTEST_CASES` env var or
//! `ProptestConfig::with_cases`.

use std::fmt::Debug;

/// Deterministic 64-bit generator (splitmix64) used to drive all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seed derived from the test's name so every test has a stable stream.
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// A value generator. The real crate's `Strategy` also carries shrinking
/// machinery; here a strategy is just a pure sampling function.
pub trait Strategy {
    type Value: Debug;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// `Strategy::prop_map` adapter.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives — the engine of `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V: Debug> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len());
        self.arms[i].sample(rng)
    }
}

/// Types with a canonical "generate any value" strategy.
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let x = self.start + rng.f64() * (self.end - self.start);
        // Keep the open upper bound without collapsing a near-max draw to
        // the minimum: clamp to the next float below `end`.
        if x < self.end {
            x
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11);

pub mod collection {
    //! `vec` / `hash_set` strategies with flexible size bounds.

    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Inclusive size bounds, converted from `usize`, `a..b`, or `a..=b`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below(self.hi - self.lo + 1)
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash + std::fmt::Debug,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = HashSet::with_capacity(n);
            // Duplicates simply shrink the set, like the real crate's
            // rejection budget; cap the attempts so a tiny domain terminates.
            for _ in 0..n.saturating_mul(8).max(n) {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            out
        }
    }
}

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; it does not count as a failure.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(_reason: impl Into<String>) -> Self {
        TestCaseError::Reject
    }
}

/// Drives one `proptest!`-generated test: used by the macro, not directly.
pub fn run_cases(
    test_name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
) {
    let mut rng = TestRng::for_test(test_name);
    let mut rejected = 0u32;
    for i in 0..config.cases {
        let (inputs, outcome) = case(&mut rng);
        match outcome {
            Ok(()) => {}
            Err(TestCaseError::Reject) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => panic!(
                "proptest case {i}/{} failed in `{test_name}`: {msg}\ninputs:\n{inputs}",
                config.cases
            ),
        }
    }
    assert!(
        rejected < config.cases,
        "`{test_name}`: every case was rejected by prop_assume!"
    );
}

#[macro_export]
macro_rules! proptest {
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), &config, |__rng| {
                    let mut __inputs = String::new();
                    $(
                        let __v = $crate::Strategy::sample(&($strat), __rng);
                        __inputs.push_str(&format!(
                            "    {} = {:?}\n", stringify!($pat), &__v
                        ));
                        let $pat = __v;
                    )+
                    let __outcome = (|| -> Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    (__inputs, __outcome)
                });
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({})", stringify!($cond), format_args!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), format_args!($($fmt)+), left, right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a), stringify!($b), left
            )));
        }
    }};
}

pub mod prelude {
    //! Mirror of `proptest::prelude` for the subset in use.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..2000 {
            let v = (10u32..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let w = (-5i64..=5).sample(&mut rng);
            assert!((-5..=5).contains(&w));
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn collections_respect_size_bounds() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = collection::vec(0u8..10, 3..7).sample(&mut rng);
            assert!((3..7).contains(&v.len()));
            let s = collection::hash_set(0usize..100, 5..=5).sample(&mut rng);
            assert!(s.len() <= 5);
        }
    }

    #[test]
    fn map_and_oneof_compose() {
        let mut rng = TestRng::new(3);
        let strat = prop_oneof![Just(-1i64), (0u32..10).prop_map(|v| v as i64)];
        for _ in 0..500 {
            let v = strat.sample(&mut rng);
            assert!(v == -1 || (0..10).contains(&v));
        }
    }

    #[test]
    fn streams_are_deterministic_per_test_name() {
        let mut a = TestRng::for_test("foo");
        let mut b = TestRng::for_test("foo");
        let mut c = TestRng::for_test("bar");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    /// The runner must actually fail failing properties — a vacuous harness
    /// would silently green every property test in the workspace.
    #[test]
    fn run_cases_propagates_failures() {
        let failed = std::panic::catch_unwind(|| {
            run_cases("always_fails", &ProptestConfig::with_cases(4), |_rng| {
                (String::new(), Err(TestCaseError::fail("nope")))
            });
        });
        assert!(failed.is_err(), "failing case must panic the test");

        let all_rejected = std::panic::catch_unwind(|| {
            run_cases("always_rejects", &ProptestConfig::with_cases(4), |_rng| {
                (String::new(), Err(TestCaseError::Reject))
            });
        });
        assert!(all_rejected.is_err(), "rejecting every case must fail");

        run_cases("passes", &ProptestConfig::with_cases(4), |_rng| {
            (String::new(), Ok(()))
        });
    }

    // The macro path itself: generated inputs bind patterns and assertions
    // pass for a property that genuinely holds.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn macro_generates_and_binds((a, b) in (0u32..50, 50u32..100), flip in any::<bool>()) {
            prop_assert!(a < b);
            prop_assert_ne!(a, b);
            let _ = flip;
            prop_assume!(a != 13);
            prop_assert_eq!(a.min(b), a, "min of ordered pair is the left");
        }
    }
}
