//! `SlotTree` — an availability backend modeled on OAR's `TreeSlotSet`.
//!
//! The canonical representation is the same ordered slot list as
//! [`Profile`] (`free[i]` holds over `[times[i], times[i+1])`), so all
//! mutation paths — build, reserve splices, release patches, advance —
//! are shared with the reference backend and stay bit-identical by
//! construction. What changes is the *query* path: a lazily rebuilt
//! implicit binary tree annotates every subtree of slots with its min and
//! max free-node level, and [`SlotTree::earliest_start`] descends those
//! annotations instead of sweeping slots linearly:
//!
//! * phase A ("find the next viable slot") descends the **max**
//!   annotations — a run of low-capacity slots is skipped in `O(log n)`
//!   instead of `O(run)`;
//! * phase B ("does capacity hold until the window closes?") descends the
//!   **min** annotations to jump straight to the first blocking slot
//!   instead of scanning every slot under the window.
//!
//! The candidate sequence visited is exactly the one the linear sweep
//! visits, so answers are identical; only the per-candidate cost drops
//! from `O(run length)` to `O(log n)`. Mutations mark the annotation tree
//! stale; the first query after a mutation re-merges it in `O(n)`
//! ([`timing::SLOT_MERGE`]), which pays off when queries outnumber
//! mutations (EASY mode's deep passes) and loses when every query follows
//! a write (conservative mode) — see DESIGN.md §13 for the measurements.

use crate::reservation::{Profile, ReleaseMap};
use crate::timing;
use simkit::SimTime;
use std::cell::RefCell;

/// Min/max annotations over the slot array: an implicit binary tree with
/// `base` leaves (`base` = slot count rounded up to a power of two),
/// node `i`'s children at `2i`/`2i+1`, leaves at `base..base+len`.
#[derive(Debug, Default)]
struct TreeIdx {
    min: Vec<i64>,
    max: Vec<i64>,
    base: usize,
    len: usize,
    stale: bool,
}

impl TreeIdx {
    fn new_stale() -> Self {
        TreeIdx {
            stale: true,
            ..TreeIdx::default()
        }
    }

    /// Re-merges the annotations bottom-up from the slot levels.
    fn refresh(&mut self, free: &[i64]) {
        let _t = timing::scope(&timing::SLOT_MERGE);
        let n = free.len();
        let base = n.next_power_of_two().max(1);
        self.base = base;
        self.len = n;
        // Padding leaves qualify for neither descend direction.
        self.min.clear();
        self.min.resize(2 * base, i64::MAX);
        self.max.clear();
        self.max.resize(2 * base, i64::MIN);
        self.min[base..base + n].copy_from_slice(free);
        self.max[base..base + n].copy_from_slice(free);
        for i in (1..base).rev() {
            self.min[i] = self.min[2 * i].min(self.min[2 * i + 1]);
            self.max[i] = self.max[2 * i].max(self.max[2 * i + 1]);
        }
        self.stale = false;
    }

    /// First slot index ≥ `from` with free ≥ `need` (descends max).
    fn first_ge(&self, from: usize, need: i64) -> Option<usize> {
        self.descend(from, |i| self.max[i] >= need)
    }

    /// First slot index ≥ `from` with free < `need` (descends min).
    fn first_lt(&self, from: usize, need: i64) -> Option<usize> {
        self.descend(from, |i| self.min[i] < need)
    }

    /// Leftmost leaf ≥ `from` inside a qualifying subtree: climb right
    /// siblings until one qualifies, then descend its leftmost
    /// qualifying path. `O(log n)`.
    fn descend(&self, from: usize, qualifies: impl Fn(usize) -> bool) -> Option<usize> {
        let _t = timing::scope(&timing::SLOT_DESCEND);
        if from >= self.len {
            return None;
        }
        let mut i = self.base + from;
        if !qualifies(i) {
            loop {
                while i != 1 && i & 1 == 1 {
                    i >>= 1;
                }
                if i == 1 {
                    return None;
                }
                i += 1;
                if qualifies(i) {
                    break;
                }
            }
        }
        while i < self.base {
            i <<= 1;
            if !qualifies(i) {
                i += 1;
            }
        }
        let leaf = i - self.base;
        (leaf < self.len).then_some(leaf)
    }
}

/// Slot-set availability backend (see module docs).
#[derive(Debug)]
pub struct SlotTree {
    /// Canonical slot list — shared representation with [`Profile`].
    prof: Profile,
    /// Lazily rebuilt annotation tree (interior-mutable: queries take
    /// `&self` but may need to re-merge after a mutation marked it
    /// stale).
    idx: RefCell<TreeIdx>,
}

impl Default for SlotTree {
    fn default() -> Self {
        SlotTree {
            prof: Profile::default(),
            idx: RefCell::new(TreeIdx::new_stale()),
        }
    }
}

impl Clone for SlotTree {
    /// Clones the slots only — the annotation tree is cheap to re-merge
    /// and usually stale by the time a snapshot is queried.
    fn clone(&self) -> Self {
        SlotTree {
            prof: self.prof.clone(),
            idx: RefCell::new(TreeIdx::new_stale()),
        }
    }

    fn clone_from(&mut self, src: &Self) {
        self.prof.clone_from(&src.prof);
        self.idx.get_mut().stale = true;
    }
}

impl PartialEq for SlotTree {
    /// Slot-list equality — the annotation tree is derived state.
    fn eq(&self, other: &Self) -> bool {
        self.prof == other.prof
    }
}

impl SlotTree {
    /// Builds at `now` against the release map (mirrors
    /// [`Profile::build`]).
    pub fn build(now: SimTime, free_now: u32, releases: &ReleaseMap) -> SlotTree {
        SlotTree {
            prof: Profile::build(now, free_now, releases),
            idx: RefCell::new(TreeIdx::new_stale()),
        }
    }

    /// A slot set with constant capacity (mostly for tests).
    pub fn flat(now: SimTime, free: u32) -> SlotTree {
        SlotTree {
            prof: Profile::flat(now, free),
            idx: RefCell::new(TreeIdx::new_stale()),
        }
    }

    fn touch(&mut self) {
        self.idx.get_mut().stale = true;
    }

    /// See [`Profile::earliest_start`] — identical answers, descending
    /// the annotation tree instead of sweeping.
    pub fn earliest_start(&self, nodes: u32, duration: u64, after: SimTime) -> SimTime {
        let _t = timing::scope(&timing::EARLIEST_START);
        let (times, free) = self.prof.steps();
        let need = nodes as i64;
        let dur = duration.max(1);
        let mut idx = self.idx.borrow_mut();
        if idx.stale {
            idx.refresh(free);
        }
        let init = match times.binary_search(&after) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        let mut i = init;
        loop {
            // Phase A: next viable slot (its step point — or `after`
            // itself for the initial slot — is the candidate).
            let Some(k) = idx.first_ge(i, need) else {
                return SimTime::MAX;
            };
            i = k;
            let cand = if i == init { after } else { times[i] };
            let close = cand.after(dur);
            // Phase B: the first below-capacity slot anywhere to the
            // right; only blocking if it opens before the window closes.
            match idx.first_lt(i + 1, need) {
                Some(j) if times[j] < close => i = j,
                _ => return cand,
            }
        }
    }

    /// See [`Profile::can_start_now`]. The linear early-exit probe is
    /// already O(1) in the congested common case, so this path does not
    /// pay for (or benefit from) the annotation tree.
    pub fn can_start_now(&self, nodes: u32, duration: u64, now: SimTime) -> bool {
        self.prof.can_start_now(nodes, duration, now)
    }
}

impl crate::avail::Availability for SlotTree {
    fn rebuild(&mut self, now: SimTime, free_now: u32, releases: &ReleaseMap) {
        self.prof = Profile::build(now, free_now, releases);
        self.touch();
    }

    fn snapshot_from(&mut self, src: &Self) {
        self.clone_from(src);
    }

    fn earliest_start(&self, nodes: u32, duration: u64, after: SimTime) -> SimTime {
        SlotTree::earliest_start(self, nodes, duration, after)
    }

    fn can_start_now(&self, nodes: u32, duration: u64, now: SimTime) -> bool {
        SlotTree::can_start_now(self, nodes, duration, now)
    }

    fn reserve(&mut self, start: SimTime, duration: u64, nodes: u32) {
        let _t = timing::scope(&timing::SLOT_SPLIT);
        self.prof.reserve(start, duration, nodes);
        self.touch();
    }

    fn advance_to(&mut self, now: SimTime) {
        self.prof.advance_to(now);
        self.touch();
    }

    fn patch_release_many(
        &mut self,
        now: SimTime,
        old: Option<SimTime>,
        new: Option<SimTime>,
        count: u32,
    ) {
        let _t = timing::scope(&timing::SLOT_SPLIT);
        self.prof.patch_release_many(now, old, new, count);
        self.touch();
    }

    fn compact(&mut self) {
        self.prof.compact();
        self.touch();
    }

    fn len(&self) -> usize {
        self.prof.len()
    }

    fn as_steps(&self) -> &Profile {
        &self.prof
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::avail::Availability;
    use cluster::NodeId;

    #[test]
    fn descend_matches_sweep_on_small_profiles() {
        // 6 slots with a dip and a peak.
        let mut t = SlotTree::flat(SimTime(0), 8);
        Availability::reserve(&mut t, SimTime(10), 20, 5); // [10,30): 3
        Availability::reserve(&mut t, SimTime(50), 10, 8); // [50,60): 0
        for need in 1..=9u32 {
            for dur in [1u64, 5, 15, 40, 100] {
                for after in [0u64, 5, 10, 29, 30, 55, 60, 200] {
                    assert_eq!(
                        t.earliest_start(need, dur, SimTime(after)),
                        t.as_steps().earliest_start(need, dur, SimTime(after)),
                        "need={need} dur={dur} after={after}"
                    );
                }
            }
        }
    }

    #[test]
    fn build_and_patch_match_profile() {
        let mut rm = ReleaseMap::new(8);
        rm.set_release(NodeId(0), Some(SimTime(100)));
        rm.set_release(NodeId(1), Some(SimTime(100)));
        rm.set_release(NodeId(2), Some(SimTime(300)));
        let mut t = SlotTree::build(SimTime(0), 5, &rm);
        let mut p = Profile::build(SimTime(0), 5, &rm);
        assert_eq!(t.as_steps(), &p);
        // Same patch sequence on both.
        t.patch_release_many(SimTime(40), Some(SimTime(100)), None, 2);
        p.patch_release_many(SimTime(40), Some(SimTime(100)), None, 2);
        assert_eq!(t.as_steps(), &p);
        Availability::advance_to(&mut t, SimTime(120));
        p.advance_to(SimTime(120));
        assert_eq!(t.as_steps(), &p);
    }

    #[test]
    fn never_fits_returns_max() {
        let t = SlotTree::flat(SimTime(0), 4);
        assert_eq!(t.earliest_start(5, 10, SimTime(0)), SimTime::MAX);
    }

    #[test]
    fn single_slot_tree() {
        let t = SlotTree::flat(SimTime(7), 2);
        assert_eq!(t.earliest_start(2, 1_000, SimTime(7)), SimTime(7));
        assert_eq!(t.earliest_start(2, 1_000, SimTime(99)), SimTime(99));
    }
}
