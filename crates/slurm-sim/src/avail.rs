//! The availability-backend abstraction (DESIGN.md §13).
//!
//! Backfill never cares *how* free-node availability over future time is
//! represented — it needs an `earliest_start` query, a `can_start_now`
//! probe, reservation writes, and the incremental patch hooks the cached
//! profile uses between passes. [`Availability`] captures exactly that
//! contract; [`Profile`] (the step-function representation the simulator
//! grew up with) and [`SlotTree`] (an annotated slot structure modeled on
//! OAR's `TreeSlotSet`) both implement it, and [`AvailBackend`] is the
//! enum the non-generic [`SimState`](crate::SimState) threads through a
//! run. `backfill_pass`, SD-Policy's `static_end` estimate and the
//! per-pass scratch buffers are generic over the trait, so adding a third
//! backend means implementing one trait and one enum arm.

use crate::reservation::{Profile, ReleaseMap};
use crate::slot_tree::SlotTree;
use simkit::SimTime;

/// What a scheduling pass needs from an availability representation.
///
/// Semantics are pinned to [`Profile`]'s (the reference implementation):
/// every query must return *bit-identical* answers across backends — the
/// equivalence harness and `prop_backend` enforce it. `Default` is the
/// resting value of reusable pass buffers (an empty placeholder with no
/// domain); real instances come from [`Availability::rebuild`] or
/// [`Availability::snapshot_from`].
pub trait Availability: std::fmt::Debug + Clone + Default {
    /// Rebuilds from scratch at `now` against the release map (the legacy
    /// per-pass path, and the oracle the incremental cache is checked
    /// against).
    fn rebuild(&mut self, now: SimTime, free_now: u32, releases: &ReleaseMap);

    /// Snapshots `src` into `self`, reusing allocations — the
    /// `clone_from` hook pass buffers use to copy the cached availability
    /// at pass start without reallocating.
    fn snapshot_from(&mut self, src: &Self);

    /// Earliest instant ≥ `after` at which `nodes` stay free for
    /// `duration` seconds (`SimTime::MAX` = never fits).
    fn earliest_start(&self, nodes: u32, duration: u64, after: SimTime) -> SimTime;

    /// Whether `nodes` stay free for `duration` seconds starting *now* —
    /// exactly `earliest_start(nodes, duration, now) == now`, but with an
    /// early exit at the first blocking segment.
    fn can_start_now(&self, nodes: u32, duration: u64, now: SimTime) -> bool;

    /// Subtracts `nodes` over `[start, start + duration)` (a reservation
    /// or an actual start).
    fn reserve(&mut self, start: SimTime, duration: u64, nodes: u32);

    /// Moves the origin forward to `now` without any state change.
    fn advance_to(&mut self, now: SimTime);

    /// Applies one node's predicted-release change (`old` → `new`) as a
    /// delta; the result must equal a fresh rebuild against the updated
    /// release map.
    fn patch_release(&mut self, now: SimTime, old: Option<SimTime>, new: Option<SimTime>) {
        self.patch_release_many(now, old, new, 1);
    }

    /// [`Availability::patch_release`] for `count` nodes making the same
    /// transition at once.
    fn patch_release_many(
        &mut self,
        now: SimTime,
        old: Option<SimTime>,
        new: Option<SimTime>,
        count: u32,
    );

    /// Re-canonicalises the representation (merges redundant slots) so
    /// patched instances compare equal to freshly built ones.
    fn compact(&mut self);

    /// Number of slots / step points (size and perf diagnostics).
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The canonical step-function view — what `self_check` and
    /// `deep_validate` compare against a fresh [`Profile::build`], and
    /// what the equivalence tests diff across backends.
    fn as_steps(&self) -> &Profile;
}

impl Availability for Profile {
    fn rebuild(&mut self, now: SimTime, free_now: u32, releases: &ReleaseMap) {
        *self = Profile::build(now, free_now, releases);
    }

    fn snapshot_from(&mut self, src: &Self) {
        self.clone_from(src);
    }

    fn earliest_start(&self, nodes: u32, duration: u64, after: SimTime) -> SimTime {
        Profile::earliest_start(self, nodes, duration, after)
    }

    fn can_start_now(&self, nodes: u32, duration: u64, now: SimTime) -> bool {
        Profile::can_start_now(self, nodes, duration, now)
    }

    fn reserve(&mut self, start: SimTime, duration: u64, nodes: u32) {
        Profile::reserve(self, start, duration, nodes);
    }

    fn advance_to(&mut self, now: SimTime) {
        Profile::advance_to(self, now);
    }

    fn patch_release_many(
        &mut self,
        now: SimTime,
        old: Option<SimTime>,
        new: Option<SimTime>,
        count: u32,
    ) {
        Profile::patch_release_many(self, now, old, new, count);
    }

    fn compact(&mut self) {
        Profile::compact(self);
    }

    fn len(&self) -> usize {
        Profile::len(self)
    }

    fn as_steps(&self) -> &Profile {
        self
    }
}

/// Which [`Availability`] implementation a run uses. Selected through
/// `SlurmConfig::avail_backend`, the scenario `avail_backend` key, and the
/// `--backend {profile,slottree}` flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AvailBackendKind {
    /// The flat step-function [`Profile`] (linear candidate sweep).
    #[default]
    Profile,
    /// [`SlotTree`]: slots indexed by a min/max-annotated implicit tree;
    /// `earliest_start` descends annotations instead of sweeping.
    SlotTree,
}

impl AvailBackendKind {
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "profile" => Some(AvailBackendKind::Profile),
            "slottree" => Some(AvailBackendKind::SlotTree),
            _ => None,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            AvailBackendKind::Profile => "profile",
            AvailBackendKind::SlotTree => "slottree",
        }
    }
}

impl std::fmt::Display for AvailBackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Runtime-selected availability backend: the concrete type `SimState`
/// stores so the rest of the simulator stays non-generic while the pass
/// internals ([`crate::backfill_pass_with`], `SdPolicy::try_malleable`)
/// are generic over [`Availability`].
#[derive(Debug, Clone)]
pub enum AvailBackend {
    Profile(Profile),
    SlotTree(SlotTree),
}

impl Default for AvailBackend {
    fn default() -> Self {
        AvailBackend::Profile(Profile::default())
    }
}

impl AvailBackend {
    /// An empty placeholder of the given kind (same caveat as
    /// [`Profile::default`]: no domain until rebuilt or snapshotted).
    pub fn new(kind: AvailBackendKind) -> Self {
        match kind {
            AvailBackendKind::Profile => AvailBackend::Profile(Profile::default()),
            AvailBackendKind::SlotTree => AvailBackend::SlotTree(SlotTree::default()),
        }
    }

    /// A backend with constant capacity (mostly for tests).
    pub fn flat(kind: AvailBackendKind, now: SimTime, free: u32) -> Self {
        match kind {
            AvailBackendKind::Profile => AvailBackend::Profile(Profile::flat(now, free)),
            AvailBackendKind::SlotTree => AvailBackend::SlotTree(SlotTree::flat(now, free)),
        }
    }

    pub fn kind(&self) -> AvailBackendKind {
        match self {
            AvailBackend::Profile(_) => AvailBackendKind::Profile,
            AvailBackend::SlotTree(_) => AvailBackendKind::SlotTree,
        }
    }

    /// Swaps in an empty instance of `kind` if the variant differs —
    /// used when a recycled pass buffer meets a differently-configured
    /// state (only ever on the first pass of a run).
    pub fn ensure_kind(&mut self, kind: AvailBackendKind) {
        if self.kind() != kind {
            *self = AvailBackend::new(kind);
        }
    }
}

macro_rules! delegate {
    ($self:ident, $inner:ident => $e:expr) => {
        match $self {
            AvailBackend::Profile($inner) => $e,
            AvailBackend::SlotTree($inner) => $e,
        }
    };
}

impl Availability for AvailBackend {
    fn rebuild(&mut self, now: SimTime, free_now: u32, releases: &ReleaseMap) {
        delegate!(self, b => b.rebuild(now, free_now, releases))
    }

    fn snapshot_from(&mut self, src: &Self) {
        match (self, src) {
            (AvailBackend::Profile(dst), AvailBackend::Profile(s)) => dst.snapshot_from(s),
            (AvailBackend::SlotTree(dst), AvailBackend::SlotTree(s)) => dst.snapshot_from(s),
            // Variant mismatch: only possible on a fresh buffer's first
            // use; fall back to a plain clone.
            (dst, s) => *dst = s.clone(),
        }
    }

    fn earliest_start(&self, nodes: u32, duration: u64, after: SimTime) -> SimTime {
        delegate!(self, b => b.earliest_start(nodes, duration, after))
    }

    fn can_start_now(&self, nodes: u32, duration: u64, now: SimTime) -> bool {
        delegate!(self, b => b.can_start_now(nodes, duration, now))
    }

    fn reserve(&mut self, start: SimTime, duration: u64, nodes: u32) {
        delegate!(self, b => b.reserve(start, duration, nodes))
    }

    fn advance_to(&mut self, now: SimTime) {
        delegate!(self, b => b.advance_to(now))
    }

    fn patch_release_many(
        &mut self,
        now: SimTime,
        old: Option<SimTime>,
        new: Option<SimTime>,
        count: u32,
    ) {
        delegate!(self, b => b.patch_release_many(now, old, new, count))
    }

    fn compact(&mut self) {
        delegate!(self, b => b.compact())
    }

    fn len(&self) -> usize {
        delegate!(self, b => Availability::len(b))
    }

    fn as_steps(&self) -> &Profile {
        delegate!(self, b => b.as_steps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parse_round_trips() {
        for kind in [AvailBackendKind::Profile, AvailBackendKind::SlotTree] {
            assert_eq!(AvailBackendKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(AvailBackendKind::parse("btree"), None);
    }

    #[test]
    fn backend_enum_delegates_queries() {
        for kind in [AvailBackendKind::Profile, AvailBackendKind::SlotTree] {
            let mut b = AvailBackend::flat(kind, SimTime(0), 4);
            assert_eq!(b.kind(), kind);
            b.reserve(SimTime(100), 200, 3);
            assert_eq!(b.earliest_start(2, 100, SimTime(60)), SimTime(300));
            assert!(b.can_start_now(1, 1_000, SimTime(0)));
            assert!(!b.can_start_now(2, 300, SimTime(60)));
        }
    }

    #[test]
    fn ensure_kind_replaces_mismatched_variant() {
        let mut b = AvailBackend::default();
        b.ensure_kind(AvailBackendKind::SlotTree);
        assert_eq!(b.kind(), AvailBackendKind::SlotTree);
        b.ensure_kind(AvailBackendKind::SlotTree);
        assert_eq!(b.kind(), AvailBackendKind::SlotTree);
    }

    #[test]
    fn snapshot_from_crosses_variants_by_clone() {
        let src = AvailBackend::flat(AvailBackendKind::SlotTree, SimTime(5), 7);
        let mut dst = AvailBackend::default();
        dst.snapshot_from(&src);
        assert_eq!(dst.kind(), AvailBackendKind::SlotTree);
        assert_eq!(dst.as_steps(), src.as_steps());
    }
}
