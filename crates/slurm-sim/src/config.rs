//! Simulator configuration (the knobs a SLURM admin would set).

use crate::avail::AvailBackendKind;
use crate::tenant::{QueuePolicy, TenantRegistry};

/// How the baseline backfill plans ahead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackfillMode {
    /// EASY/aggressive backfill: a reservation for the queue head only;
    /// later jobs may start now if they don't delay it. `O(R + Q)` per pass —
    /// required for the full 198 K-job Curie run.
    Easy,
    /// Conservative (SLURM `sched/backfill`-like): every examined job gets a
    /// reservation in the availability profile. More faithful, costlier.
    Conservative,
}

/// Simulator/scheduler configuration.
#[derive(Debug, Clone)]
pub struct SlurmConfig {
    /// Maximum pending jobs examined per scheduling pass
    /// (SLURM `bf_max_job_test`).
    pub backfill_depth: usize,
    pub backfill_mode: BackfillMode,
    /// MPI ranks per node assumed for trace jobs (shrink floor is one core
    /// per rank). The MN4 production setup runs one rank per socket.
    pub ranks_per_node: u32,
    /// Fraction of jobs that are malleable (1.0 in the paper's simulations;
    /// lower values exercise the mixed static/malleable support).
    pub malleable_fraction: f64,
    /// Seed for the per-job malleability draw when `malleable_fraction < 1`.
    pub malleable_seed: u64,
    /// Run `ClusterState::validate` after every mutation (tests/debug).
    pub self_check: bool,
    /// Incremental scheduler hot path (DESIGN.md §9): cached availability
    /// profile patched on start/end/reconfigure, linear-sweep
    /// `earliest_start`, in-place delta after malleable starts, and no-op
    /// pass gating. `false` replays the original rebuild-everything path —
    /// results are bit-identical either way (enforced by tests); the legacy
    /// path exists as the macro-benchmark baseline and equivalence oracle.
    pub incremental: bool,
    /// Which availability representation the run schedules against
    /// (DESIGN.md §13). Both backends produce bit-identical results
    /// (enforced by the backend equivalence suite); the knob trades query
    /// cost against write cost — the step-function profile wins when
    /// every query follows a reservation write, the slot tree when deep
    /// passes issue many queries between writes.
    pub avail_backend: AvailBackendKind,
    /// The tenant table (identities, weights, quotas). Empty — the default —
    /// disables all tenant accounting and quota checks; the simulator is
    /// then bit-identical to the untenanted build.
    pub tenants: TenantRegistry,
    /// How the backfill pass orders the pending queue (FIFO by default;
    /// fair-share reorders by usage-decayed priority).
    pub queue_policy: QueuePolicy,
}

impl Default for SlurmConfig {
    fn default() -> Self {
        SlurmConfig {
            backfill_depth: 100,
            backfill_mode: BackfillMode::Conservative,
            ranks_per_node: 2,
            malleable_fraction: 1.0,
            malleable_seed: 0xD20,
            self_check: false,
            incremental: true,
            avail_backend: AvailBackendKind::default(),
            tenants: TenantRegistry::default(),
            queue_policy: QueuePolicy::Fifo,
        }
    }
}

impl SlurmConfig {
    /// The malleability adoption fraction for a job of `(tenant, project)`:
    /// the tenant's override when registered, the global knob otherwise.
    pub fn malleable_fraction_for(&self, tenant: u32, project: u32) -> f64 {
        if self.tenants.is_empty() {
            return self.malleable_fraction;
        }
        self.tenants
            .slot(tenant, project)
            .and_then(|s| self.tenants.get(s).malleable_fraction)
            .unwrap_or(self.malleable_fraction)
    }
}

impl SlurmConfig {
    /// Configuration for very large traces (full CEA-Curie): EASY mode.
    pub fn large_scale() -> Self {
        SlurmConfig {
            backfill_mode: BackfillMode::Easy,
            backfill_depth: 200,
            ..SlurmConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_slurm_like() {
        let c = SlurmConfig::default();
        assert_eq!(c.backfill_depth, 100);
        assert_eq!(c.backfill_mode, BackfillMode::Conservative);
        assert_eq!(c.ranks_per_node, 2);
        assert_eq!(c.malleable_fraction, 1.0);
    }

    #[test]
    fn large_scale_uses_easy() {
        assert_eq!(SlurmConfig::large_scale().backfill_mode, BackfillMode::Easy);
    }

    #[test]
    fn default_is_untenanted_fifo() {
        let c = SlurmConfig::default();
        assert!(c.tenants.is_empty());
        assert_eq!(c.queue_policy, QueuePolicy::Fifo);
        assert_eq!(c.malleable_fraction_for(42, 0), c.malleable_fraction);
    }

    #[test]
    fn tenant_malleability_override_applies_only_to_registered_tenants() {
        let mut c = SlurmConfig {
            malleable_fraction: 0.8,
            ..SlurmConfig::default()
        };
        c.tenants.add(crate::tenant::Tenant {
            malleable_fraction: Some(0.25),
            ..crate::tenant::Tenant::unlimited(1, 0)
        });
        c.tenants.add(crate::tenant::Tenant::unlimited(2, 0));
        assert_eq!(c.malleable_fraction_for(1, 0), 0.25);
        assert_eq!(c.malleable_fraction_for(1, 9), 0.25, "project-0 fallback");
        assert_eq!(c.malleable_fraction_for(2, 0), 0.8, "no override inherits");
        assert_eq!(c.malleable_fraction_for(3, 0), 0.8, "unknown tenant inherits");
    }
}
