//! Allocation primitives: static starts, SD-Policy co-scheduling
//! (shrink + place), borrower relocation, job completion with
//! owner-return / redistribution semantics, tenant accounting, and the
//! release-map / mate-pool / borrower-index internals they maintain.

use super::*;

impl SimState {
    // ------------------------------------------------------------------

    /// Starts `id` on exclusive whole nodes if enough are free.
    pub fn start_static(&mut self, id: JobId) -> bool {
        let spec = self.job(id).spec.clone();
        debug_assert!(self.job(id).is_pending(), "start of non-pending {id}");
        let Some(nodes) = self.cluster.take_empty_nodes(spec.req_nodes) else {
            return false;
        };
        let full = self.spec.node.cores();
        self.cluster
            .place(id, &nodes, full)
            .expect("empty nodes accept a full-width placement");
        for &n in &nodes {
            let mask = self.node_mgrs[n.0 as usize]
                .launch(&mut self.drom, id, full, spec.malleable)
                .expect("empty node accepts launch");
            debug_assert_eq!(mask.count() as u32, full);
        }
        let cores = vec![full; nodes.len()];
        let mut run = RunningJob::new(self.now, nodes.clone(), cores, full, spec.req_time);
        run.rate = 1.0;
        let req_end = run.req_end;
        self.job_mut(id).state = JobState::Running(run);
        self.running.insert(id);
        self.running_by_end.insert((req_end, id));
        self.arm_end(id);
        self.update_releases(&nodes);
        self.queue.remove(id);
        self.refresh_eligibility(id);
        self.energy_reweigh(&[id]);
        self.stats.started_static += 1;
        self.trace.emit(
            self.now.secs(),
            sd_trace::TraceKind::Started {
                job: id.0,
                malleable: false,
                nodes: spec.req_nodes,
                wait: self.now.secs().saturating_sub(spec.submit.secs()),
            },
        );
        self.tenant_charge_start(id);
        if self.cfg.self_check {
            self.cluster.validate().expect("cluster consistent");
            self.self_check_avail();
        }
        true
    }

    // ------------------------------------------------------------------
    // Malleable co-scheduling (SD-Policy's mechanism)
    // ------------------------------------------------------------------

    /// Planned rate (worst-case) the new job would get if co-scheduled with
    /// these mates, and the freed cores per node. Used by the policy to
    /// compute `mall_end` before committing.
    pub fn plan_co_schedule(&self, mates: &[JobId]) -> Option<(f64, u32)> {
        let full = self.spec.node.cores();
        let mut min_freed = u32::MAX;
        for &m in mates {
            let mj = self.job(m);
            let freed = self
                .sharing
                .freed_cores(full, mj.spec.ranks_per_node);
            min_freed = min_freed.min(freed);
        }
        if min_freed == 0 || min_freed == u32::MAX {
            return None;
        }
        Some((min_freed as f64 / full as f64, min_freed))
    }

    /// Executes the malleable start: shrinks every node of every mate,
    /// places `new_id` in the freed cores (plus `free_nodes` completely idle
    /// nodes when the "include free nodes to reduce fragmentation" option is
    /// active), and re-arms everyone's end events.
    ///
    /// The caller (the policy) has already verified the slowdown condition,
    /// the weight constraint (Σ mate nodes + free = job nodes) and the
    /// finish-inside-mates constraint; this re-checks the structural ones.
    pub fn co_schedule(
        &mut self,
        new_id: JobId,
        mates: &[JobId],
        free_nodes: u32,
    ) -> Result<(), CoScheduleError> {
        let new_spec = self.job(new_id).spec.clone();
        if !self.job(new_id).is_pending() {
            return Err(CoScheduleError::NotPending);
        }
        if !new_spec.malleable || mates.is_empty() {
            return Err(CoScheduleError::NotMalleable);
        }
        let mut total_nodes = free_nodes;
        for &m in mates {
            if !self.is_eligible_mate(m) {
                return Err(CoScheduleError::MateNotEligible(m));
            }
            total_nodes += self.job(m).running().unwrap().nodes.len() as u32;
        }
        if total_nodes != new_spec.req_nodes || free_nodes > self.cluster.empty_node_count() {
            return Err(CoScheduleError::WeightMismatch {
                mates: total_nodes,
                wanted: new_spec.req_nodes,
            });
        }
        let full = self.spec.node.cores();
        let (plan_rate, plan_freed) = self
            .plan_co_schedule(mates)
            .ok_or(CoScheduleError::NoFreedCores(mates[0]))?;
        // Planned wall duration of the new job (worst-case model, §3.4:
        // "in the SD-Policy case, we use the worst case model").
        let new_wall = (new_spec.req_time as f64 / plan_rate).ceil() as u64;

        let mut new_nodes: Vec<NodeId> = Vec::with_capacity(new_spec.req_nodes as usize);
        let mut new_cores: Vec<u32> = Vec::with_capacity(new_spec.req_nodes as usize);

        for &m in mates {
            let (m_nodes, m_ranks) = {
                let mj = self.job(m);
                (
                    mj.running().unwrap().nodes.clone(),
                    mj.spec.ranks_per_node,
                )
            };
            for &n in &m_nodes {
                let updates = self.node_mgrs[n.0 as usize]
                    .co_launch(&mut self.drom, new_id, m, self.sharing, m_ranks)
                    .ok_or(CoScheduleError::NoFreedCores(m))?;
                // updates[0] = mate's shrunken mask, updates[1] = new job's.
                let keep = updates[0].cores();
                let given = updates[1].cores();
                self.cluster
                    .set_cores(m, n, keep)
                    .expect("shrink within capacity");
                self.cluster
                    .place(new_id, &[n], given)
                    .expect("freed cores accept the new job");
                new_nodes.push(n);
                new_cores.push(given);
                // Update the mate's per-node core record.
                let run = self.jobs[(m.0 - 1) as usize].running_mut().unwrap();
                let idx = run.nodes.binary_search(&n).expect("mate owns node");
                run.cores[idx] = keep;
            }
            // Re-rate the mate. Its requested end (wall-clock limit) stays
            // fixed: SLURM never extends a job's time limit on shrink — the
            // stretch eats the job's own over-request slack, and §3.2.4's
            // finish-inside constraint is defined against the *original*
            // requested end. (Extending it here created a feedback loop:
            // later profiles grew more pessimistic, admitting ever longer
            // borrowers — the makespan/energy regression.)
            {
                let now = self.now;
                let rate = self.compute_rate(m);
                let was_mate_before = {
                    let run = self.jobs[(m.0 - 1) as usize].running_mut().unwrap();
                    let was = run.ever_shrunk;
                    run.set_rate(now, rate);
                    run.lent_to.push(new_id);
                    was
                };
                if !was_mate_before {
                    self.stats.unique_mates += 1;
                }
            }
            self.stats.shrink_events += 1;
            self.trace.emit(
                self.now.secs(),
                sd_trace::TraceKind::Shrunk { mate: m.0, borrower: new_id.0 },
            );
            self.arm_end(m);
            self.refresh_eligibility(m);
            // A mate that was itself malleable-backfilled (a relocated
            // ex-borrower lending again) just dropped below full width.
            self.refresh_borrower_index(m);
        }

        // One malleability broadcast for the whole co-schedule: every mate's
        // staged shrink across every shared node applies here, per *job*
        // (`new_nodes` holds exactly the shared nodes at this point).
        self.drom.poll_nodes(&new_nodes);

        // Optional free nodes: the new job takes the same per-node width as
        // on the shared nodes (keeps the allocation balanced, constraint 3).
        if free_nodes > 0 {
            let idle: Vec<NodeId> = self
                .cluster
                .take_empty_nodes(free_nodes)
                .expect("checked empty count above");
            for &n in &idle {
                self.cluster
                    .place(new_id, &[n], plan_freed)
                    .expect("idle node accepts placement");
                self.node_mgrs[n.0 as usize]
                    .launch(&mut self.drom, new_id, plan_freed, true)
                    .expect("idle node accepts launch");
                new_nodes.push(n);
                new_cores.push(plan_freed);
            }
        }

        // Sort the new job's allocation for binary-searchable node lookups.
        let mut paired: Vec<(NodeId, u32)> = new_nodes.into_iter().zip(new_cores).collect();
        paired.sort_by_key(|&(n, _)| n);
        let (nodes_sorted, cores_sorted): (Vec<NodeId>, Vec<u32>) = paired.into_iter().unzip();

        let mut run = RunningJob::new(
            self.now,
            nodes_sorted.clone(),
            cores_sorted,
            full,
            new_spec.req_time,
        );
        run.mates = mates.to_vec();
        run.malleable_backfilled = true;
        // Requested end uses the planned (worst-case) rate.
        run.req_end = self.now.after(new_wall);
        let new_req_end = run.req_end;
        self.job_mut(new_id).state = JobState::Running(run);
        self.running.insert(new_id);
        self.running_by_end.insert((new_req_end, new_id));
        self.refresh_borrower_index(new_id);
        let rate = self.compute_rate(new_id);
        let now = self.now;
        self.job_mut(new_id)
            .running_mut()
            .unwrap()
            .set_rate(now, rate);
        self.arm_end(new_id);
        self.update_releases(&nodes_sorted);
        self.queue.remove(new_id);
        let mut reweigh: Vec<JobId> = mates.to_vec();
        reweigh.push(new_id);
        self.energy_reweigh(&reweigh);
        self.stats.started_malleable += 1;
        self.trace.emit(
            self.now.secs(),
            sd_trace::TraceKind::Started {
                job: new_id.0,
                malleable: true,
                nodes: new_spec.req_nodes,
                wait: self.now.secs().saturating_sub(new_spec.submit.secs()),
            },
        );
        self.tenant_charge_start(new_id);
        if self.cfg.self_check {
            self.cluster.validate().expect("cluster consistent");
            for &n in &nodes_sorted {
                self.drom.validate_node(n).expect("masks disjoint");
            }
            self.self_check_avail();
        }
        Ok(())
    }

    /// Running malleable-backfilled jobs currently shrunk below full width —
    /// the candidates for [`SimState::relocate_borrower`] (ascending id).
    /// Incremental mode serves this from an index maintained at every
    /// reconfiguration; the legacy path keeps the original running-set scan
    /// as the perf baseline (both orders are ascending — identical output).
    pub fn shrunk_borrowers(&self) -> Vec<JobId> {
        if self.cfg.incremental {
            self.shrunk.iter().copied().collect()
        } else {
            self.running
                .iter()
                .copied()
                .filter(|&id| {
                    self.job(id)
                        .running()
                        .is_some_and(|r| r.malleable_backfilled && !r.at_full_allocation())
                })
                .collect()
        }
    }

    /// Whether any shrunk borrower exists (O(1); pass gating).
    pub fn has_shrunk_borrowers(&self) -> bool {
        !self.shrunk.is_empty()
    }

    /// Moves a shrunk malleable-backfilled job onto idle whole nodes at full
    /// width, expanding its former mates back — the expand half of the
    /// resource manager (DMR-style node reconfiguration). Without it, a
    /// co-scheduled pair stays at reduced rate even when the machine drains,
    /// which stretches the tail and charges idle power: the makespan/energy
    /// regression. Returns `false` when `id` is not a shrunk borrower or the
    /// cluster lacks enough empty nodes.
    pub fn relocate_borrower(&mut self, id: JobId) -> bool {
        let now = self.now;
        {
            let Some(r) = self.job(id).running() else {
                return false;
            };
            if !r.malleable_backfilled || r.at_full_allocation() {
                return false;
            }
            if self.cluster.empty_node_count() < r.nodes.len() as u32 {
                return false;
            }
        }
        // The old allocation and mate links are replaced wholesale below, so
        // move them out instead of cloning.
        let (old_nodes, mates) = {
            let r = self.jobs[(id.0 - 1) as usize].running_mut().unwrap();
            (std::mem::take(&mut r.nodes), std::mem::take(&mut r.mates))
        };
        let width = old_nodes.len() as u32;

        // Leave the shared nodes; former mates expand into the cores.
        let mut touched: Vec<JobId> = Vec::new();
        for &n in &old_nodes {
            self.cluster
                .remove_from_node(id, n)
                .expect("borrower occupies its nodes");
            let updates = self.node_mgrs[n.0 as usize].finish(&mut self.drom, id);
            for up in updates {
                let cores = up.cores();
                self.cluster
                    .set_cores(up.job, n, cores)
                    .expect("expansion within capacity");
                let other = self.jobs[(up.job.0 - 1) as usize]
                    .running_mut()
                    .expect("beneficiary is running");
                let idx = other.nodes.binary_search(&n).expect("owns node");
                other.cores[idx] = cores;
                if !touched.contains(&up.job) {
                    touched.push(up.job);
                }
            }
        }
        // Close the departure's reconfiguration batch: one broadcast over
        // the vacated allocation applies every staged expansion.
        self.drom.poll_nodes(&old_nodes);
        self.update_releases(&old_nodes);
        for &m in &mates {
            if let Some(other) = self.jobs[(m.0 - 1) as usize].running_mut() {
                other.lent_to.retain(|&x| x != id);
            }
        }

        // Take the idle nodes at full width.
        let full = self.spec.node.cores();
        let mut new_nodes = self
            .cluster
            .take_empty_nodes(width)
            .expect("checked empty count above");
        self.cluster
            .place(id, &new_nodes, full)
            .expect("empty nodes accept a full-width placement");
        for &n in &new_nodes {
            self.node_mgrs[n.0 as usize]
                .launch(&mut self.drom, id, full, true)
                .expect("empty node accepts launch");
        }
        new_nodes.sort();
        // Releases first (reads occupancy + req_end only), while the node
        // list is still ours — it moves into the run just below.
        self.update_releases(&new_nodes);
        {
            let run = self.jobs[(id.0 - 1) as usize].running_mut().unwrap();
            run.cores.fill(full); // same width, now full everywhere
            run.nodes = new_nodes; // moved, not cloned
        }
        let rate = self.compute_rate(id);
        self.job_mut(id).running_mut().unwrap().set_rate(now, rate);
        self.arm_end(id);
        self.refresh_eligibility(id);
        self.refresh_borrower_index(id);

        // Re-rate the expanded former mates.
        for &t in &touched {
            let rate = self.compute_rate(t);
            self.jobs[(t.0 - 1) as usize]
                .running_mut()
                .unwrap()
                .set_rate(now, rate);
            self.stats.expand_events += 1;
            self.trace.emit(
                self.now.secs(),
                sd_trace::TraceKind::Expanded {
                    job: t.0,
                    nodes: self.job(t).running().unwrap().nodes.len() as u32,
                },
            );
            self.arm_end(t);
            self.refresh_eligibility(t);
            self.refresh_borrower_index(t);
            for i in 0..self.job(t).running().unwrap().nodes.len() {
                let n = self.job(t).running().unwrap().nodes[i];
                self.update_release(n);
            }
        }
        self.energy_reweigh_iter(touched.iter().copied().chain(std::iter::once(id)));
        self.stats.relocations += 1;
        self.trace
            .emit(self.now.secs(), sd_trace::TraceKind::Relocated { job: id.0, nodes: width });
        if self.cfg.self_check {
            self.cluster.validate().expect("cluster consistent");
            for i in 0..width as usize {
                let n = self.job(id).running().unwrap().nodes[i];
                self.drom.validate_node(n).expect("masks disjoint");
            }
            self.self_check_avail();
        }
        true
    }

    /// Whether `id` currently qualifies as a mate: running, malleable, at
    /// full allocation and not already involved in a co-schedule.
    pub fn is_eligible_mate(&self, id: JobId) -> bool {
        let j = self.job(id);
        if !j.spec.malleable {
            return false;
        }
        match j.running() {
            Some(r) => r.lent_to.is_empty() && r.mates.is_empty() && r.at_full_allocation(),
            None => false,
        }
    }


    // ------------------------------------------------------------------

    pub(super) fn complete_job(&mut self, id: JobId) {
        let now = self.now;
        let (spec, run) = {
            let job = self.job_mut(id);
            let JobState::Running(mut run) = std::mem::replace(&mut job.state, JobState::Done)
            else {
                unreachable!("complete_job on non-running job");
            };
            run.bank(now);
            (job.spec.clone(), run)
        };
        self.outcomes.push(JobOutcome {
            id,
            submit: spec.submit,
            start: run.start,
            end: now,
            nodes: run.nodes.len() as u32,
            procs: spec.req_procs,
            req_time: spec.req_time,
            static_runtime: spec.static_runtime,
            malleable_backfilled: run.malleable_backfilled,
            was_mate: run.ever_shrunk,
            app: spec.app,
            tenant: spec.tenant,
        });
        self.tenant_finish(&spec, true);
        self.last_end = self.last_end.max(now);
        self.release_running(id, &spec, run);
        self.trace
            .emit(self.now.secs(), sd_trace::TraceKind::Completed { job: id.0 });
    }

    /// Shared teardown of a running job (completion and running-job
    /// cancellation): removes it from every index, frees its nodes with
    /// beneficiary expansion, settles DROM masks, partner links, the release
    /// map and the energy meter. The caller has already replaced the job's
    /// state and handled outcome/last-end bookkeeping.
    pub(super) fn release_running(&mut self, id: JobId, spec: &JobSpec, run: RunningJob) {
        let now = self.now;
        self.running.remove(&id);
        self.running_by_end.remove(&(run.req_end, id));
        self.shrunk.remove(&id);
        self.pool_remove_keyed(Self::pool_key(spec, run.start), id);

        // Free the cluster first so beneficiaries can expand into the cores.
        let mut touched: Vec<JobId> = Vec::new();
        for &n in &run.nodes {
            self.cluster
                .remove_from_node(id, n)
                .expect("running job occupies its nodes");
            let updates = self.node_mgrs[n.0 as usize].finish(&mut self.drom, id);
            for up in updates {
                let cores = up.cores();
                self.cluster
                    .set_cores(up.job, n, cores)
                    .expect("expansion within capacity");
                let other = self.jobs[(up.job.0 - 1) as usize]
                    .running_mut()
                    .expect("beneficiary is running");
                let idx = other.nodes.binary_search(&n).expect("owns node");
                other.cores[idx] = cores;
                if !touched.contains(&up.job) {
                    touched.push(up.job);
                }
            }
        }
        // Per-job batch: apply every expansion staged across the ended
        // job's allocation in one broadcast (skips nodes with no residents).
        self.drom.poll_nodes(&run.nodes);
        self.update_releases(&run.nodes);

        // Unlink this job from partners' bookkeeping.
        for &m in run.mates.iter().chain(run.lent_to.iter()) {
            if let Some(other) = self.jobs[(m.0 - 1) as usize].running_mut() {
                other.lent_to.retain(|&x| x != id);
                other.mates.retain(|&x| x != id);
            }
        }

        // Re-rate everyone whose allocation changed.
        for &t in &touched {
            let rate = self.compute_rate(t);
            self.jobs[(t.0 - 1) as usize]
                .running_mut()
                .unwrap()
                .set_rate(now, rate);
            self.stats.expand_events += 1;
            self.trace.emit(
                self.now.secs(),
                sd_trace::TraceKind::Expanded {
                    job: t.0,
                    nodes: self.job(t).running().unwrap().nodes.len() as u32,
                },
            );
            self.arm_end(t);
            self.refresh_eligibility(t);
            self.refresh_borrower_index(t);
            // The beneficiary's predicted release may have moved.
            for i in 0..self.job(t).running().unwrap().nodes.len() {
                let n = self.job(t).running().unwrap().nodes[i];
                self.update_release(n);
            }
        }
        self.energy_sub_job(run.energy_weight);
        self.energy_reweigh(&touched);
        if self.cfg.self_check {
            self.cluster.validate().expect("cluster consistent");
            self.self_check_avail();
        }
    }



    /// Per-tenant accounting rows, parallel to the registry's slots.
    pub fn tenant_usage(&self) -> &[TenantUsage] {
        &self.tenant_usage
    }

    /// Registry slot of a job's `(tenant, project)`, [`NO_TENANT_SLOT`]
    /// when unregistered (always the case with an empty registry).
    pub(super) fn tenant_slot(&self, id: JobId) -> u32 {
        if self.cfg.tenants.is_empty() {
            return NO_TENANT_SLOT;
        }
        let s = &self.job(id).spec;
        self.cfg
            .tenants
            .slot(s.tenant, s.project)
            .unwrap_or(NO_TENANT_SLOT)
    }

    /// Charges a starting job against its tenant (requested node-seconds +
    /// running width). No-op for unregistered tenants.
    pub(super) fn tenant_charge_start(&mut self, id: JobId) {
        let slot = self.tenant_slot(id);
        if slot == NO_TENANT_SLOT {
            return;
        }
        let (req_nodes, req_time) = {
            let s = &self.job(id).spec;
            (s.req_nodes, s.req_time)
        };
        self.tenant_usage[slot as usize].charge_start(req_nodes, req_time);
    }

    /// Releases a finished/cancelled running job's width back to its tenant
    /// (the node-second charge stays — no refunds) and counts the
    /// completion when `completed`.
    pub(super) fn tenant_finish(&mut self, spec: &JobSpec, completed: bool) {
        if self.cfg.tenants.is_empty() {
            return;
        }
        let Some(slot) = self.cfg.tenants.slot(spec.tenant, spec.project) else {
            return;
        };
        let usage = &mut self.tenant_usage[slot as usize];
        usage.release_width(spec.req_nodes);
        if completed {
            usage.completed += 1;
        }
    }


    // ------------------------------------------------------------------

    /// Computes the progress rate of a running job via the rate model,
    /// including neighbour memory pressure for the app-aware model.
    pub(super) fn compute_rate(&self, id: JobId) -> f64 {
        let job = self.job(id);
        let run = job.running().expect("rate of running job");
        let mut neighbour_mem = 0.0_f64;
        for &n in &run.nodes {
            for &(other, _) in &self.cluster.occupancy(n).jobs {
                if other == id {
                    continue;
                }
                if let Some(app) = self.job(other).spec.app {
                    neighbour_mem = neighbour_mem.max(AppModel::by_id(app).mem_util);
                } else {
                    // Unknown co-resident app: neutral pressure.
                    neighbour_mem = neighbour_mem.max(0.0);
                }
            }
        }
        let inputs = RateInputs {
            cores: &run.cores,
            full_cores: run.full_cores,
            app: job.spec.app,
            neighbour_mem,
        };
        self.rate_model.rate(&inputs).clamp(0.0, 1.0)
    }

    /// Arms (or re-arms) the end event for `id` at its predicted completion.
    pub(super) fn arm_end(&mut self, id: JobId) {
        let now = self.now;
        let total = self.job(id).spec.static_runtime;
        let run = self.job(id).running().expect("arm end of running job");
        let when = run.predicted_end(now, total);
        let gen = run.end_gen;
        debug_assert!(when != SimTime::MAX, "job would never finish");
        self.events.push(when, Event::End { job: id, gen });
    }

    /// The predicted release instant of a node: max over its residents'
    /// requested ends; `None` when empty.
    pub(super) fn node_release(&self, n: NodeId) -> Option<SimTime> {
        let occ = self.cluster.occupancy(n);
        let mut latest: Option<SimTime> = None;
        for &(j, _) in &occ.jobs {
            if let Some(r) = self.job(j).running() {
                latest = Some(latest.map_or(r.req_end, |l| l.max(r.req_end)));
            }
        }
        latest
    }

    /// Recomputes a node's predicted release and, in incremental mode,
    /// patches the cached availability profile with the delta.
    pub(super) fn update_release(&mut self, n: NodeId) {
        let latest = self.node_release(n);
        let old = self.releases.release_of(n);
        if old == latest {
            return;
        }
        self.releases.set_release(n, latest);
        if self.cfg.incremental {
            self.avail.patch_release(self.now, old, latest);
        }
    }

    /// [`SimState::update_release`] over a whole allocation: identical
    /// transitions are grouped into one profile patch each (a whole-job
    /// start or end moves every node the same way, so a W-node job costs
    /// one O(len) patch instead of W).
    pub(super) fn update_releases(&mut self, nodes: &[NodeId]) {
        // Distinct (old, new) transitions; virtually always a single entry.
        let mut groups: Vec<(Option<SimTime>, Option<SimTime>, u32)> = Vec::new();
        for &n in nodes {
            let latest = self.node_release(n);
            let old = self.releases.release_of(n);
            if old == latest {
                continue;
            }
            self.releases.set_release(n, latest);
            if !self.cfg.incremental {
                continue;
            }
            match groups.iter_mut().find(|g| g.0 == old && g.1 == latest) {
                Some(g) => g.2 += 1,
                None => groups.push((old, latest, 1)),
            }
        }
        for (old, new, count) in groups {
            self.avail.patch_release_many(self.now, old, new, count);
        }
    }

    /// Re-evaluates whether `id` belongs in the shrunk-borrower index.
    /// Called wherever a running job's per-node cores can change.
    pub(super) fn refresh_borrower_index(&mut self, id: JobId) {
        let is_shrunk = self
            .job(id)
            .running()
            .is_some_and(|r| r.malleable_backfilled && !r.at_full_allocation());
        if is_shrunk {
            self.shrunk.insert(id);
        } else {
            self.shrunk.remove(&id);
        }
    }

    /// The mate pool's sort key for a job: the fixed part of Eq. 4,
    /// `(wait + req)/req`. Deterministic from immutable job data, so the
    /// same key can be recomputed for an O(log n) indexed removal.
    pub(super) fn pool_key(spec: &JobSpec, start: SimTime) -> f64 {
        let wait = start.since(spec.submit) as f64;
        let req = spec.req_time.max(1) as f64;
        (wait + req) / req
    }

    /// Inserts/removes `id` from the mate pool according to eligibility.
    pub(super) fn refresh_eligibility(&mut self, id: JobId) {
        let Some(start) = self.job(id).running().map(|r| r.start) else {
            return; // never called on non-running jobs; nothing to refresh
        };
        let base = Self::pool_key(&self.job(id).spec, start);
        self.pool_remove_keyed(base, id);
        if self.is_eligible_mate(id) {
            let (spec, run) = (&self.job(id).spec, self.job(id).running().unwrap());
            let entry = MateEntry {
                base,
                id,
                wait: run.start.since(spec.submit),
                req_time: spec.req_time,
                req_end: run.req_end,
                weight: run.nodes.len() as u32,
                ranks_per_node: spec.ranks_per_node,
            };
            let pos = self
                .mate_pool
                .partition_point(|e| (e.base, e.id) < (base, id));
            self.mate_pool.insert(pos, entry);
        }
    }

    /// Removes `id` from the mate pool by binary search on its recomputed
    /// key (the pool is sorted by `(base, id)`), replacing the old O(n)
    /// position scan.
    pub(super) fn pool_remove_keyed(&mut self, base: f64, id: JobId) {
        let pos = self
            .mate_pool
            .partition_point(|e| (e.base, e.id) < (base, id));
        if self.mate_pool.get(pos).is_some_and(|e| e.id == id) {
            self.mate_pool.remove(pos);
        } else {
            debug_assert!(
                !self.mate_pool.iter().any(|e| e.id == id),
                "{id} in mate pool under a different key"
            );
        }
    }

    // Energy accounting: weighted busy cores = Σ job cores × cpu-utilisation.
}
