//! Online (service-mode) mutations: out-of-band job submission and
//! cancellation, mirroring offline trace replay exactly.

use super::*;

impl SimState {

    /// Adds a job after construction and arms its submit event — the online
    /// twin of the constructor's trace loop: same [`JobSpec::from_swf`]
    /// conversion, same dense renumbering, same malleability draw (forked
    /// from the record's own id), so feeding a trace job-by-job builds a
    /// byte-identical simulation to building it up front.
    ///
    /// The record's submit time must not lie in the past (`>= now`); jobs
    /// the simulator cannot run are rejected like the constructor drops them.
    /// `malleable` overrides the configured fraction draw (`None` = draw,
    /// exactly as the constructor would).
    pub fn submit_job(
        &mut self,
        sj: &swf::SwfJob,
        malleable: Option<bool>,
    ) -> Result<JobId, SubmitError> {
        if sj.submit >= 0 && SimTime(sj.submit as u64) < self.now {
            return Err(SubmitError::InPast {
                submit: SimTime(sj.submit as u64),
                now: self.now,
            });
        }
        let malleable = malleable.unwrap_or_else(|| {
            let fraction = self
                .cfg
                .malleable_fraction_for(sj.user.max(0) as u32, sj.group.max(0) as u32);
            fraction >= 1.0
                || DetRng::new(self.cfg.malleable_seed)
                    .fork(sj.job_id)
                    .chance(fraction)
        });
        let Some(mut js) = JobSpec::from_swf(sj, &self.spec, malleable, self.cfg.ranks_per_node)
        else {
            return Err(SubmitError::Unusable);
        };
        js.id = JobId(self.jobs.len() as u64 + 1);
        let id = js.id;
        if js.submit < self.first_submit {
            // Re-anchor the measurement window. Only possible before the
            // first dispatch: afterwards `now > ZERO` and past submits were
            // rejected above, so the window never moves under the meter.
            debug_assert_eq!(self.stats.events_dispatched, 0, "window moved mid-run");
            self.first_submit = js.submit;
            self.meter.start(js.submit);
        }
        self.events.push(js.submit, Event::Submit(id));
        self.jobs.push(Job {
            spec: js,
            state: JobState::Pending,
        });
        Ok(id)
    }

    /// Withdraws a job (SLURM `scancel`). Pending jobs leave the queue;
    /// running jobs — including shrunk borrowers and active mates — tear
    /// down exactly like a completion (partners expand back into the freed
    /// cores, DROM masks and the energy meter are settled) but record no
    /// outcome. Finished or already-cancelled jobs return `false`. On
    /// success the matching dirty flag is raised (dropping a reservation
    /// holder or freeing capacity can unblock backfill).
    pub fn cancel_job(&mut self, id: JobId) -> bool {
        if id.0 == 0 || id.0 as usize > self.jobs.len() {
            return false;
        }
        match self.job(id).state {
            JobState::Pending => {
                // A pending job may not have reached its submit instant yet;
                // cancel both the queue entry (present after dispatch) and
                // any future submit event (skipped as stale on dispatch).
                let was_queued = self.queue.remove(id);
                self.job_mut(id).state = JobState::Cancelled;
                self.stats.cancelled += 1;
                self.trace
                    .emit(self.now.secs(), sd_trace::TraceKind::Cancelled { job: id.0 });
                if was_queued {
                    self.dirty.queue = true;
                }
                true
            }
            JobState::Running(_) => {
                let now = self.now;
                let (spec, run) = {
                    let job = self.job_mut(id);
                    let JobState::Running(mut run) =
                        std::mem::replace(&mut job.state, JobState::Cancelled)
                    else {
                        unreachable!("matched running above");
                    };
                    run.bank(now);
                    (job.spec.clone(), run)
                };
                self.tenant_finish(&spec, false);
                // The machine was busy until this instant; the energy/
                // makespan window must cover it even when the cancellation
                // is the session's last activity.
                self.last_end = self.last_end.max(now);
                self.release_running(id, &spec, run);
                self.stats.cancelled += 1;
                self.trace
                    .emit(self.now.secs(), sd_trace::TraceKind::Cancelled { job: id.0 });
                self.dirty.capacity = true;
                true
            }
            JobState::Done | JobState::Cancelled => false,
        }
    }

}
