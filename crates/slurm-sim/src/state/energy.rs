//! Energy accounting: the incremental weighted-busy integrator that
//! prices shrink/expand transitions without rescanning the machine.

use super::*;

impl SimState {
    pub(super) fn job_weight(cores: u64, app: Option<workload::AppId>) -> f64 {
        let util = app.map(|a| AppModel::by_id(a).cpu_util).unwrap_or(1.0);
        cores as f64 * util
    }

    /// Updates the global weighted-busy figure after the allocations of
    /// exactly the `changed` jobs moved: each job's delta against its
    /// registered `energy_weight` is applied to the running sum — `O(|changed|)`
    /// per event instead of a full `O(running)` rescan. The meter integrates
    /// the pre-change level over the elapsed interval first, so the step
    /// function stays piecewise-exact across shrink/expand boundaries.
    /// `cfg.self_check` cross-validates the sum against a full rescan.
    pub(super) fn energy_reweigh(&mut self, changed: &[JobId]) {
        self.energy_reweigh_iter(changed.iter().copied());
    }

    /// Iterator form of [`SimState::energy_reweigh`] so callers can chain id
    /// sources without building a temporary `Vec`.
    pub(super) fn energy_reweigh_iter(&mut self, changed: impl IntoIterator<Item = JobId>) {
        for id in changed {
            let job = &mut self.jobs[(id.0 - 1) as usize];
            let app = job.spec.app;
            if let Some(r) = job.running_mut() {
                let w = Self::job_weight(r.total_cores(), app);
                self.weighted_busy += w - r.energy_weight;
                r.energy_weight = w;
            }
        }
        if self.weighted_busy < 0.0 {
            // Float drift can leave a tiny negative residue on an empty
            // machine; snap it away so idle power is exact.
            debug_assert!(self.weighted_busy > -1e-6, "weight drift");
            self.weighted_busy = 0.0;
        }
        if self.cfg.self_check {
            let rescan: f64 = self
                .running
                .iter()
                .map(|&id| {
                    let job = self.job(id);
                    job.running()
                        .map_or(0.0, |r| Self::job_weight(r.total_cores(), job.spec.app))
                })
                .sum();
            assert!(
                (rescan - self.weighted_busy).abs() < 1e-6,
                "incremental weighted-busy {} diverged from rescan {}",
                self.weighted_busy,
                rescan
            );
        }
        self.meter.update(self.now, self.weighted_busy);
    }

    /// Removes a completed job's contribution. The caller passes the final
    /// tracked weight from the torn-down [`RunningJob`] — the job is no
    /// longer in the running set, so the incremental path cannot see it.
    pub(super) fn energy_sub_job(&mut self, last_weight: f64) {
        self.weighted_busy -= last_weight;
        // Anything beyond float drift means a core change bypassed
        // energy_reweigh — fail loudly rather than undercount energy.
        debug_assert!(self.weighted_busy > -1e-6, "weight drift after completion");
        self.weighted_busy = self.weighted_busy.max(0.0);
        // No meter update or rescan here: mid-completion the beneficiaries'
        // deltas are still pending, so the sum is transiently inconsistent.
        // `complete_job` always follows with `energy_reweigh`, which applies
        // them, cross-validates under self_check and registers the level.
    }

    /// Finalises the meter and returns total joules.
    pub fn finish_energy(&mut self) -> f64 {
        let end = self.last_end;
        self.meter.finish(end)
    }

    /// Energy of the run so far without finalising the live meter (the
    /// online service's read-only result snapshots). Equals what
    /// [`SimState::finish_energy`] would return right now.
    pub fn snapshot_energy(&self) -> f64 {
        self.meter.clone().finish(self.last_end)
    }

}
