//! Per-pass scratch buffers, the scheduling prefix (fair-share / FIFO)
//! and tenant quota admission — everything a scheduling pass borrows
//! from the state and hands back.

use super::*;

impl SimState {

    /// Takes the reusable pass-availability buffer, filled with the current
    /// availability: a snapshot of the cache in incremental mode (no
    /// BTreeMap walk, allocations reused), a fresh rebuild on the legacy
    /// path. The buffer's backend follows `cfg.avail_backend`.
    pub fn take_pass_profile(&mut self) -> AvailBackend {
        let mut p = std::mem::take(&mut self.scratch.profile);
        p.ensure_kind(self.cfg.avail_backend);
        if self.cfg.incremental {
            p.snapshot_from(self.availability());
        } else {
            p.rebuild(self.now, self.cluster.empty_node_count(), &self.releases);
        }
        p
    }

    /// Returns a pass availability for reuse by the next pass.
    pub fn recycle_pass_profile(&mut self, p: AvailBackend) {
        self.scratch.profile = p;
    }

    /// The release map backing availability rebuilds — lets a generic
    /// pass rebuild its buffer mid-pass (the legacy flow after a
    /// malleable start).
    pub(crate) fn releases(&self) -> &ReleaseMap {
        &self.releases
    }

    pub(crate) fn take_resv_scratch(&mut self) -> Vec<(SimTime, u64, u32)> {
        let mut v = std::mem::take(&mut self.scratch.resv);
        v.clear();
        v
    }

    pub(crate) fn recycle_resv_scratch(&mut self, v: Vec<(SimTime, u64, u32)>) {
        self.scratch.resv = v;
    }

    pub(crate) fn take_prefix_scratch(&mut self) -> Vec<crate::queue::QueueEntry> {
        let mut v = std::mem::take(&mut self.scratch.prefix);
        v.clear();
        v
    }

    pub(crate) fn recycle_prefix_scratch(&mut self, v: Vec<crate::queue::QueueEntry>) {
        self.scratch.prefix = v;
    }

    /// Fills `prefix` with the entries a scheduling pass examines: the FIFO
    /// prefix under [`QueuePolicy::Fifo`] (today's behaviour), or the whole
    /// queue reordered by usage-decayed fair-share priority and truncated to
    /// `depth`. The reorder is a stable sort on `usage/weight`, so ties —
    /// including the entire queue under a single tenant — keep FIFO order.
    pub fn fill_pass_prefix(&mut self, depth: usize, prefix: &mut Vec<QueueEntry>) {
        match self.cfg.queue_policy {
            QueuePolicy::Fifo => prefix.extend(self.queue.prefix(depth)),
            QueuePolicy::FairShare { half_life } => {
                let _t = timing::scope(&timing::FAIR_SHARE_SORT);
                prefix.extend(self.queue.prefix(usize::MAX));
                let now = self.now;
                for u in &mut self.tenant_usage {
                    u.decay_to(now, half_life);
                }
                let usage = &self.tenant_usage;
                let registry = &self.cfg.tenants;
                fair_share_sort(prefix, |slot| {
                    if slot == NO_TENANT_SLOT {
                        0.0
                    } else {
                        usage[slot as usize].usage / registry.get(slot).weight
                    }
                });
                prefix.truncate(depth);
            }
        }
    }

    /// Whether starting this entry now would exceed its tenant's quota.
    /// Counts the skip (globally and per tenant) when it would. O(1), and a
    /// constant-time `false` for untenanted entries.
    pub fn quota_blocks(&mut self, e: &QueueEntry) -> bool {
        if e.tslot == NO_TENANT_SLOT {
            return false;
        }
        let _t = timing::scope(&timing::QUOTA_CHECK);
        let quota = self.cfg.tenants.get(e.tslot).quota;
        let usage = &mut self.tenant_usage[e.tslot as usize];
        let blocked = usage.would_exceed(&quota, e.req_nodes, e.req_time);
        if blocked {
            usage.quota_skipped += 1;
            self.stats.quota_skipped += 1;
            self.trace.emit(
                self.now.secs(),
                sd_trace::TraceKind::QuotaSkipped {
                    job: e.job.0,
                    tenant: self.cfg.tenants.get(e.tslot).id as u64,
                },
            );
        }
        blocked
    }

    pub fn first_submit(&self) -> SimTime {
        self.first_submit
    }

    pub fn last_end(&self) -> SimTime {
        self.last_end
    }

}
