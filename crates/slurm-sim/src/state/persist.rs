//! Canonical serialization of [`SimState`] for crash-tolerant serving
//! (DESIGN.md §14).
//!
//! [`SimState::checkpoint_bytes`] captures every order-sensitive primary
//! structure field-for-field (floats via `to_bits`, so the round trip is
//! bit-exact); [`SimState::restore`] rebuilds the derived indices
//! (running sets, release counts, the availability cache, pass scratch)
//! canonically and re-validates the whole state. Configuration that the
//! caller re-supplies on restart (cluster spec, scheduler config, rate
//! model, sharing factor) is *not* serialized — a small fingerprint guards
//! against restoring a checkpoint under a different configuration.
//!
//! The codec is a tiny hand-rolled little-endian byte format, deliberately
//! dependency-free: `sd-durable` frames and checksums whatever bytes it is
//! given, and this module owns what those bytes mean.

use super::*;
use crate::avail::AvailBackendKind;
use cluster::cpumask::CpuMask;
use cluster::NodeOccupancy;
use drom::node::ResidentSnapshot;
use drom::registry::ProcessEntry;
use drom::DromHandle;
use workload::AppId;

const MAGIC: u32 = 0x5344_5353; // "SDSS"
const VERSION: u32 = 1;

// ----------------------------------------------------------------------
// Byte codec
// ----------------------------------------------------------------------

#[derive(Default)]
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn time(&mut self, t: SimTime) {
        self.u64(t.0);
    }
    fn len(&mut self, n: usize) {
        self.u64(n as u64);
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }
    fn opt_time(&mut self, v: Option<SimTime>) {
        self.opt_u64(v.map(|t| t.0));
    }
    fn mask(&mut self, m: &CpuMask) {
        self.u32(m.width() as u32);
        self.len(m.words().len());
        for &w in m.words() {
            self.u64(w);
        }
    }
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.data.len() - self.pos < n {
            return Err(format!(
                "checkpoint truncated: need {n} bytes at offset {}",
                self.pos
            ));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn bool(&mut self) -> Result<bool, String> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(format!("bad bool byte {b}")),
        }
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn time(&mut self) -> Result<SimTime, String> {
        Ok(SimTime(self.u64()?))
    }
    /// Length prefix, sanity-capped so corrupt bytes can't trigger a huge
    /// allocation (every element is ≥ 1 byte, so a valid length never
    /// exceeds the remaining input).
    fn len(&mut self) -> Result<usize, String> {
        let n = self.u64()?;
        let left = (self.data.len() - self.pos) as u64;
        if n > left {
            return Err(format!("length {n} exceeds remaining {left} bytes"));
        }
        Ok(n as usize)
    }
    fn opt_u64(&mut self) -> Result<Option<u64>, String> {
        Ok(if self.bool()? { Some(self.u64()?) } else { None })
    }
    fn opt_time(&mut self) -> Result<Option<SimTime>, String> {
        Ok(self.opt_u64()?.map(SimTime))
    }
    fn mask(&mut self) -> Result<CpuMask, String> {
        let width = self.u32()? as usize;
        let n = self.len()?;
        let mut words = Vec::with_capacity(n);
        for _ in 0..n {
            words.push(self.u64()?);
        }
        CpuMask::from_words(width, words).ok_or_else(|| "malformed CPU mask".into())
    }
    fn finish(self) -> Result<(), String> {
        if self.pos != self.data.len() {
            return Err(format!(
                "{} trailing bytes after checkpoint payload",
                self.data.len() - self.pos
            ));
        }
        Ok(())
    }
}

fn app_to_u8(a: AppId) -> u8 {
    match a {
        AppId::Pils => 0,
        AppId::Stream => 1,
        AppId::CoreNeuron => 2,
        AppId::Nest => 3,
        AppId::Alya => 4,
    }
}

fn app_from_u8(b: u8) -> Result<AppId, String> {
    Ok(match b {
        0 => AppId::Pils,
        1 => AppId::Stream,
        2 => AppId::CoreNeuron,
        3 => AppId::Nest,
        4 => AppId::Alya,
        _ => return Err(format!("unknown AppId tag {b}")),
    })
}

// ----------------------------------------------------------------------
// Encode
// ----------------------------------------------------------------------

impl SimState {
    /// Serializes the full simulator state into a canonical byte image.
    /// Cold path only (checkpoints between batches) — never called from
    /// the scheduling hot loop.
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.u32(MAGIC);
        w.u32(VERSION);
        // Configuration fingerprint (checked on restore).
        w.u32(self.spec.nodes);
        w.u32(self.spec.node.cores());
        w.bool(self.cfg.incremental);
        w.u8(match self.cfg.avail_backend {
            AvailBackendKind::Profile => 0,
            AvailBackendKind::SlotTree => 1,
        });
        w.u32(self.cfg.tenants.len() as u32);

        w.time(self.now);

        // Job table (index == id - 1).
        w.len(self.jobs.len());
        for job in &self.jobs {
            let s = &job.spec;
            w.u64(s.id.0);
            w.time(s.submit);
            w.u32(s.req_nodes);
            w.u64(s.req_procs);
            w.u64(s.req_time);
            w.u64(s.static_runtime);
            w.bool(s.malleable);
            w.u32(s.ranks_per_node);
            match s.app {
                None => w.u8(0xFF),
                Some(a) => w.u8(app_to_u8(a)),
            }
            w.u32(s.tenant);
            w.u32(s.project);
            match &job.state {
                JobState::Pending => w.u8(0),
                JobState::Running(r) => {
                    w.u8(1);
                    w.time(r.start);
                    w.len(r.nodes.len());
                    for &n in &r.nodes {
                        w.u32(n.0);
                    }
                    for &c in &r.cores {
                        w.u32(c);
                    }
                    w.u32(r.full_cores);
                    w.f64(r.work_done);
                    w.f64(r.rate);
                    w.time(r.last_banked);
                    w.u64(r.end_gen);
                    w.time(r.req_end);
                    w.len(r.mates.len());
                    for &m in &r.mates {
                        w.u64(m.0);
                    }
                    w.len(r.lent_to.len());
                    for &m in &r.lent_to {
                        w.u64(m.0);
                    }
                    w.bool(r.ever_shrunk);
                    w.bool(r.malleable_backfilled);
                    w.f64(r.energy_weight);
                }
                JobState::Done => w.u8(2),
                JobState::Cancelled => w.u8(3),
            }
        }

        // Pending queue, FIFO order (re-pushed on restore; nothing depends
        // on absolute slot sequence numbers).
        w.len(self.queue.len());
        for e in self.queue.prefix(usize::MAX) {
            w.u64(e.job.0);
            w.u32(e.req_nodes);
            w.u64(e.req_time);
            w.u32(e.tslot);
        }

        // Event queue: live entries with their sequence numbers (ties at
        // the same instant are FIFO by seq, so seqs must survive).
        let (events, next_seq) = self.events.snapshot();
        w.len(events.len());
        for (t, ev, seq) in events {
            w.time(t);
            match ev {
                Event::Submit(j) => {
                    w.u8(0);
                    w.u64(j.0);
                }
                Event::End { job, gen } => {
                    w.u8(1);
                    w.u64(job.0);
                    w.u64(gen);
                }
            }
            w.u64(seq);
        }
        w.u64(next_seq);

        // Mate pool, in its maintained `(base, id)` order.
        w.len(self.mate_pool.len());
        for e in &self.mate_pool {
            w.f64(e.base);
            w.u64(e.id.0);
            w.u64(e.wait);
            w.u64(e.req_time);
            w.time(e.req_end);
            w.u32(e.weight);
            w.u32(e.ranks_per_node);
        }

        // Cluster occupancy, per node.
        w.len(self.cluster.occupancies().len());
        for occ in self.cluster.occupancies() {
            w.len(occ.jobs.len());
            for &(j, c) in &occ.jobs {
                w.u64(j.0);
                w.u32(c);
            }
        }

        // DROM registry.
        let (entries, next_handle) = self.drom.snapshot();
        w.len(entries.len());
        for e in &entries {
            w.u64(e.handle.0);
            w.u64(e.job.0);
            w.u32(e.node.0);
            w.mask(&e.current);
            match &e.pending {
                None => w.bool(false),
                Some(m) => {
                    w.bool(true);
                    w.mask(m);
                }
            }
        }
        w.u64(next_handle);

        // Node managers.
        w.len(self.node_mgrs.len());
        for nm in &self.node_mgrs {
            let residents = nm.snapshot();
            w.len(residents.len());
            for r in &residents {
                w.u64(r.job.0);
                w.mask(&r.mask);
                w.bool(r.malleable);
                w.opt_u64(r.handle.map(|h| h.0));
                w.opt_u64(r.lender.map(|j| j.0));
            }
        }

        // Release map (counts/busy re-derived on restore).
        w.len(self.releases.node_releases().len());
        for &rel in self.releases.node_releases() {
            w.opt_time(rel);
        }

        // Stats.
        w.u64(self.stats.started_static);
        w.u64(self.stats.started_malleable);
        w.u64(self.stats.unique_mates);
        w.u64(self.stats.shrink_events);
        w.u64(self.stats.expand_events);
        w.u64(self.stats.relocations);
        w.u64(self.stats.sched_passes);
        w.u64(self.stats.passes_skipped);
        w.u64(self.stats.cancelled);
        w.u64(self.stats.quota_skipped);
        w.u64(self.stats.events_dispatched);
        w.u64(self.stats.peak_profile_len as u64);

        // Dirty flags (a checkpoint can land between a dispatch and its
        // pass; the pending pass gate must survive).
        w.bool(self.dirty.queue);
        w.bool(self.dirty.capacity);

        // Outcomes.
        w.len(self.outcomes.len());
        for o in &self.outcomes {
            w.u64(o.id.0);
            w.time(o.submit);
            w.time(o.start);
            w.time(o.end);
            w.u32(o.nodes);
            w.u64(o.procs);
            w.u64(o.req_time);
            w.u64(o.static_runtime);
            w.bool(o.malleable_backfilled);
            w.bool(o.was_mate);
            match o.app {
                None => w.u8(0xFF),
                Some(a) => w.u8(app_to_u8(a)),
            }
            w.u32(o.tenant);
        }

        // Energy meter + incremental weighted-busy accumulator.
        let (last_time, meter_busy, joules, started) = self.meter.snapshot();
        w.time(last_time);
        w.f64(meter_busy);
        w.f64(joules);
        w.bool(started);
        w.f64(self.weighted_busy);

        // Tenant accounting.
        w.len(self.tenant_usage.len());
        for u in &self.tenant_usage {
            w.u32(u.running_width);
            w.u64(u.committed_node_seconds);
            w.f64(u.usage);
            w.time(u.last_decay);
            w.u64(u.submitted);
            w.u64(u.started);
            w.u64(u.completed);
            w.u64(u.quota_skipped);
        }

        w.time(self.first_submit);
        w.time(self.last_end);
        w.buf
    }

    // ------------------------------------------------------------------
    // Decode
    // ------------------------------------------------------------------

    /// Rebuilds a state from [`SimState::checkpoint_bytes`] output plus the
    /// re-supplied configuration. Derived structures (running indices,
    /// release counts, the availability cache, pass scratch) are rebuilt
    /// canonically, and the result passes [`SimState::deep_validate`].
    pub fn restore(
        spec: ClusterSpec,
        cfg: SlurmConfig,
        rate_model: Box<dyn RateModel>,
        sharing: SharingFactor,
        bytes: &[u8],
    ) -> Result<SimState, String> {
        let mut r = Reader::new(bytes);
        if r.u32()? != MAGIC {
            return Err("not a SimState checkpoint (bad magic)".into());
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(format!("unsupported checkpoint version {version}"));
        }
        // Fingerprint: the checkpoint must describe the same machine and
        // the same scheduling configuration the caller is restarting with.
        let (nodes, cores) = (r.u32()?, r.u32()?);
        if nodes != spec.nodes || cores != spec.node.cores() {
            return Err(format!(
                "checkpoint is for a {nodes}×{cores} machine, config says {}×{}",
                spec.nodes,
                spec.node.cores()
            ));
        }
        let incremental = r.bool()?;
        if incremental != cfg.incremental {
            return Err(format!(
                "checkpoint was taken with incremental={incremental}, config says {}",
                cfg.incremental
            ));
        }
        let backend = match r.u8()? {
            0 => AvailBackendKind::Profile,
            1 => AvailBackendKind::SlotTree,
            b => return Err(format!("unknown availability backend tag {b}")),
        };
        if backend != cfg.avail_backend {
            return Err(format!(
                "checkpoint was taken with the {} backend, config says {}",
                backend.label(),
                cfg.avail_backend.label()
            ));
        }
        let tenant_count = r.u32()? as usize;
        if tenant_count != cfg.tenants.len() {
            return Err(format!(
                "checkpoint has {tenant_count} tenants, config registers {}",
                cfg.tenants.len()
            ));
        }

        let mut st = SimState::new_online(spec, cfg, rate_model, sharing);
        st.now = r.time()?;

        // Job table.
        let njobs = r.len()?;
        let mut jobs = Vec::with_capacity(njobs);
        for i in 0..njobs {
            let id = JobId(r.u64()?);
            if id.0 != i as u64 + 1 {
                return Err(format!("job table out of order: slot {i} holds {id}"));
            }
            let spec = JobSpec {
                id,
                submit: r.time()?,
                req_nodes: r.u32()?,
                req_procs: r.u64()?,
                req_time: r.u64()?,
                static_runtime: r.u64()?,
                malleable: r.bool()?,
                ranks_per_node: r.u32()?,
                app: match r.u8()? {
                    0xFF => None,
                    b => Some(app_from_u8(b)?),
                },
                tenant: r.u32()?,
                project: r.u32()?,
            };
            let state = match r.u8()? {
                0 => JobState::Pending,
                1 => {
                    let start = r.time()?;
                    let width = r.len()?;
                    let mut nodes = Vec::with_capacity(width);
                    for _ in 0..width {
                        nodes.push(NodeId(r.u32()?));
                    }
                    let mut cores = Vec::with_capacity(width);
                    for _ in 0..width {
                        cores.push(r.u32()?);
                    }
                    let full_cores = r.u32()?;
                    let work_done = r.f64()?;
                    let rate = r.f64()?;
                    let last_banked = r.time()?;
                    let end_gen = r.u64()?;
                    let req_end = r.time()?;
                    let mut mates = Vec::with_capacity(r.len()?);
                    for _ in 0..mates.capacity() {
                        mates.push(JobId(r.u64()?));
                    }
                    let mut lent_to = Vec::with_capacity(r.len()?);
                    for _ in 0..lent_to.capacity() {
                        lent_to.push(JobId(r.u64()?));
                    }
                    JobState::Running(RunningJob {
                        start,
                        nodes,
                        cores,
                        full_cores,
                        work_done,
                        rate,
                        last_banked,
                        end_gen,
                        req_end,
                        mates,
                        lent_to,
                        ever_shrunk: r.bool()?,
                        malleable_backfilled: r.bool()?,
                        energy_weight: r.f64()?,
                    })
                }
                2 => JobState::Done,
                3 => JobState::Cancelled,
                b => return Err(format!("unknown job state tag {b}")),
            };
            jobs.push(Job { spec, state });
        }
        st.jobs = jobs;

        // Pending queue (re-pushed: slot seqs normalise, order preserved).
        let nqueue = r.len()?;
        let mut queue = PendingQueue::new();
        for _ in 0..nqueue {
            let job = JobId(r.u64()?);
            let (req_nodes, req_time, tslot) = (r.u32()?, r.u64()?, r.u32()?);
            queue.push(job, req_nodes, req_time, tslot);
        }
        st.queue = queue;

        // Event queue.
        let nevents = r.len()?;
        let mut entries = Vec::with_capacity(nevents);
        for _ in 0..nevents {
            let t = r.time()?;
            let ev = match r.u8()? {
                0 => Event::Submit(JobId(r.u64()?)),
                1 => Event::End {
                    job: JobId(r.u64()?),
                    gen: r.u64()?,
                },
                b => return Err(format!("unknown event tag {b}")),
            };
            entries.push((t, ev, r.u64()?));
        }
        st.events = EventQueue::from_snapshot(entries, r.u64()?);

        // Mate pool.
        let nmates = r.len()?;
        let mut mate_pool = Vec::with_capacity(nmates);
        for _ in 0..nmates {
            mate_pool.push(MateEntry {
                base: r.f64()?,
                id: JobId(r.u64()?),
                wait: r.u64()?,
                req_time: r.u64()?,
                req_end: r.time()?,
                weight: r.u32()?,
                ranks_per_node: r.u32()?,
            });
        }
        st.mate_pool = mate_pool;

        // Cluster occupancy.
        let nnodes = r.len()?;
        let mut occs = Vec::with_capacity(nnodes);
        for _ in 0..nnodes {
            let njobs = r.len()?;
            let mut occ_jobs = Vec::with_capacity(njobs);
            let mut used = 0u32;
            for _ in 0..njobs {
                let j = JobId(r.u64()?);
                let c = r.u32()?;
                used += c;
                occ_jobs.push((j, c));
            }
            occs.push(NodeOccupancy {
                jobs: occ_jobs,
                cores_used: used,
            });
        }
        st.cluster = ClusterState::from_occupancies(st.spec.clone(), occs)?;

        // DROM registry.
        let nentries = r.len()?;
        let mut entries = Vec::with_capacity(nentries);
        for _ in 0..nentries {
            let handle = DromHandle(r.u64()?);
            let job = JobId(r.u64()?);
            let node = NodeId(r.u32()?);
            let current = r.mask()?;
            let pending = if r.bool()? { Some(r.mask()?) } else { None };
            entries.push(ProcessEntry {
                handle,
                job,
                node,
                current,
                pending,
            });
        }
        st.drom = DromRegistry::from_snapshot(entries, r.u64()?)?;

        // Node managers.
        let nmgrs = r.len()?;
        if nmgrs != st.spec.nodes as usize {
            return Err(format!(
                "checkpoint has {nmgrs} node managers, machine has {}",
                st.spec.nodes
            ));
        }
        let mut node_mgrs = Vec::with_capacity(nmgrs);
        for i in 0..nmgrs {
            let nres = r.len()?;
            let mut residents = Vec::with_capacity(nres);
            for _ in 0..nres {
                residents.push(ResidentSnapshot {
                    job: JobId(r.u64()?),
                    mask: r.mask()?,
                    malleable: r.bool()?,
                    handle: r.opt_u64()?.map(DromHandle),
                    lender: r.opt_u64()?.map(JobId),
                });
            }
            node_mgrs.push(NodeManager::from_snapshot(
                NodeId(i as u32),
                st.spec.node.clone(),
                residents,
            )?);
        }
        st.node_mgrs = node_mgrs;

        // Release map.
        let nrel = r.len()?;
        if nrel != st.spec.nodes as usize {
            return Err(format!(
                "checkpoint has {nrel} release slots, machine has {}",
                st.spec.nodes
            ));
        }
        let mut releases = Vec::with_capacity(nrel);
        for _ in 0..nrel {
            releases.push(r.opt_time()?);
        }
        st.releases = ReleaseMap::from_releases(&releases);

        st.stats = SimStats {
            started_static: r.u64()?,
            started_malleable: r.u64()?,
            unique_mates: r.u64()?,
            shrink_events: r.u64()?,
            expand_events: r.u64()?,
            relocations: r.u64()?,
            sched_passes: r.u64()?,
            passes_skipped: r.u64()?,
            cancelled: r.u64()?,
            quota_skipped: r.u64()?,
            events_dispatched: r.u64()?,
            peak_profile_len: r.u64()? as usize,
        };
        st.dirty = DirtyFlags {
            queue: r.bool()?,
            capacity: r.bool()?,
        };

        // Outcomes.
        let nout = r.len()?;
        let mut outcomes = Vec::with_capacity(nout);
        for _ in 0..nout {
            outcomes.push(JobOutcome {
                id: JobId(r.u64()?),
                submit: r.time()?,
                start: r.time()?,
                end: r.time()?,
                nodes: r.u32()?,
                procs: r.u64()?,
                req_time: r.u64()?,
                static_runtime: r.u64()?,
                malleable_backfilled: r.bool()?,
                was_mate: r.bool()?,
                app: match r.u8()? {
                    0xFF => None,
                    b => Some(app_from_u8(b)?),
                },
                tenant: r.u32()?,
            });
        }
        st.outcomes = outcomes;

        // Energy meter + weighted busy.
        let last_time = r.time()?;
        let meter_busy = r.f64()?;
        let joules = r.f64()?;
        let started = r.bool()?;
        st.meter = EnergyMeter::from_snapshot(
            st.spec.node.power,
            st.spec.nodes,
            last_time,
            meter_busy,
            joules,
            started,
        );
        st.weighted_busy = r.f64()?;

        // Tenant accounting.
        let ntenants = r.len()?;
        if ntenants != st.cfg.tenants.len() {
            return Err(format!(
                "checkpoint has {ntenants} tenant slots, config registers {}",
                st.cfg.tenants.len()
            ));
        }
        let mut usage = Vec::with_capacity(ntenants);
        for _ in 0..ntenants {
            usage.push(TenantUsage {
                running_width: r.u32()?,
                committed_node_seconds: r.u64()?,
                usage: r.f64()?,
                last_decay: r.time()?,
                submitted: r.u64()?,
                started: r.u64()?,
                completed: r.u64()?,
                quota_skipped: r.u64()?,
            });
        }
        st.tenant_usage = usage;

        st.first_submit = r.time()?;
        st.last_end = r.time()?;
        r.finish()?;

        // Derived indices: running sets and the shrunk-borrower index come
        // straight from the job table.
        st.running.clear();
        st.running_by_end.clear();
        st.shrunk.clear();
        for job in &st.jobs {
            if let JobState::Running(rj) = &job.state {
                st.running.insert(job.spec.id);
                st.running_by_end.insert((rj.req_end, job.spec.id));
                if rj.malleable_backfilled && !rj.at_full_allocation() {
                    st.shrunk.insert(job.spec.id);
                }
            }
        }

        // Availability cache: rebuilt canonically at `now` — equal (by the
        // incremental-maintenance invariant) to the advanced cache the
        // uninterrupted run would hold.
        let free_now = st.cluster.empty_node_count();
        let mut avail = AvailBackend::new(st.cfg.avail_backend);
        avail.rebuild(st.now, free_now, &st.releases);
        st.avail = avail;
        st.scratch = PassScratch::default();

        // The meter was constructed by `new_online` with a fresh start; the
        // restored snapshot fully replaced it, so nothing to reconcile.
        st.deep_validate()
            .map_err(|e| format!("restored state failed validation: {e}"))?;
        Ok(st)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::WorstCaseModel;

    fn spec4() -> ClusterSpec {
        let mut spec = ClusterSpec::ricc();
        spec.nodes = 4;
        spec
    }

    fn cfg(incremental: bool, backend: AvailBackendKind) -> SlurmConfig {
        SlurmConfig {
            self_check: true,
            incremental,
            avail_backend: backend,
            ..SlurmConfig::default()
        }
    }

    fn job(id: u64, submit: u64, run: u64, nodes: u64, req: u64) -> swf::SwfJob {
        swf::SwfJob::for_simulation(id, submit, run, nodes * 8, req)
    }

    fn mid_run_state(incremental: bool, backend: AvailBackendKind) -> SimState {
        let mut st = SimState::new_online(
            spec4(),
            cfg(incremental, backend),
            Box::new(WorstCaseModel),
            SharingFactor::HALF,
        );
        for sj in [
            job(1, 0, 1000, 2, 1000),
            job(2, 0, 100, 2, 100),
            job(3, 5, 50, 1, 60),
            job(4, 10, 500, 4, 600),
        ] {
            st.submit_job(&sj, None).unwrap();
        }
        // Drive to an interesting point: a running pair (one shrunk), one
        // queued, one still in the event queue, one completed.
        while let Some(t) = st.events.peek_time() {
            if t > SimTime(5) {
                break;
            }
            let ev = st.events.pop().unwrap();
            st.now = t.max(st.now);
            st.dispatch(ev.payload);
        }
        assert!(st.start_static(JobId(1)));
        st.co_schedule(JobId(2), &[JobId(1)], 0).unwrap();
        st.deep_validate().unwrap();
        st
    }

    fn roundtrip(st: &SimState) -> SimState {
        let bytes = st.checkpoint_bytes();
        SimState::restore(
            st.spec().clone(),
            st.cfg.clone(),
            Box::new(WorstCaseModel),
            st.sharing(),
            &bytes,
        )
        .expect("restore")
    }

    /// Drains every remaining event under a trivial FCFS driver and
    /// returns the observable end-of-run record.
    fn run_to_end(mut st: SimState) -> (Vec<JobOutcome>, SimStats, f64, SimTime) {
        while let Some(ev) = st.events.pop() {
            st.now = ev.time.max(st.now);
            st.dispatch(ev.payload);
            let pending: Vec<JobId> = st.queue.prefix(16).map(|e| e.job).collect();
            for id in pending {
                st.start_static(id);
            }
        }
        let joules = st.finish_energy();
        let last = st.last_end();
        (st.take_outcomes(), st.stats.clone(), joules, last)
    }

    #[test]
    fn roundtrip_preserves_and_validates() {
        for (inc, backend) in [
            (false, AvailBackendKind::Profile),
            (true, AvailBackendKind::Profile),
            (true, AvailBackendKind::SlotTree),
        ] {
            let st = mid_run_state(inc, backend);
            let re = roundtrip(&st);
            re.deep_validate().expect("restored state valid");
            assert_eq!(re.now, st.now);
            assert_eq!(re.job_count(), st.job_count());
            assert_eq!(re.running_count(), st.running_count());
            assert_eq!(re.queue.len(), st.queue.len());
            assert_eq!(re.stats, st.stats);
            assert_eq!(re.first_submit(), st.first_submit());
            // Second serialization is bit-identical: the image is canonical.
            assert_eq!(re.checkpoint_bytes(), st.checkpoint_bytes());
        }
    }

    #[test]
    fn restored_run_finishes_identically() {
        for (inc, backend) in [
            (false, AvailBackendKind::Profile),
            (true, AvailBackendKind::Profile),
            (false, AvailBackendKind::SlotTree),
            (true, AvailBackendKind::SlotTree),
        ] {
            let st = mid_run_state(inc, backend);
            let re = roundtrip(&st);
            let (out_a, stats_a, joules_a, last_a) = run_to_end(st);
            let (out_b, stats_b, joules_b, last_b) = run_to_end(re);
            assert_eq!(out_a, out_b, "outcomes diverged ({inc}, {backend:?})");
            assert_eq!(stats_a, stats_b, "stats diverged ({inc}, {backend:?})");
            assert_eq!(
                joules_a.to_bits(),
                joules_b.to_bits(),
                "energy diverged ({inc}, {backend:?})"
            );
            assert_eq!(last_a, last_b);
        }
    }

    #[test]
    fn fingerprint_mismatches_are_rejected() {
        let st = mid_run_state(true, AvailBackendKind::Profile);
        let bytes = st.checkpoint_bytes();
        // Wrong machine size.
        let mut big = spec4();
        big.nodes = 8;
        let err = SimState::restore(
            big,
            st.cfg.clone(),
            Box::new(WorstCaseModel),
            st.sharing(),
            &bytes,
        )
        .err().unwrap();
        assert!(err.contains("machine"), "{err}");
        // Wrong hot-path setting.
        let err = SimState::restore(
            spec4(),
            cfg(false, AvailBackendKind::Profile),
            Box::new(WorstCaseModel),
            st.sharing(),
            &bytes,
        )
        .err().unwrap();
        assert!(err.contains("incremental"), "{err}");
        // Wrong backend.
        let err = SimState::restore(
            spec4(),
            cfg(true, AvailBackendKind::SlotTree),
            Box::new(WorstCaseModel),
            st.sharing(),
            &bytes,
        )
        .err().unwrap();
        assert!(err.contains("backend"), "{err}");
    }

    #[test]
    fn corrupt_or_truncated_bytes_error_cleanly() {
        let st = mid_run_state(true, AvailBackendKind::Profile);
        let bytes = st.checkpoint_bytes();
        let try_restore = |data: &[u8]| {
            SimState::restore(
                spec4(),
                cfg(true, AvailBackendKind::Profile),
                Box::new(WorstCaseModel),
                SharingFactor::HALF,
                data,
            )
        };
        assert!(try_restore(&[]).is_err());
        for cut in (0..bytes.len()).step_by(7) {
            assert!(try_restore(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage is rejected, not silently ignored.
        let mut long = bytes.clone();
        long.extend_from_slice(&[0; 3]);
        assert!(try_restore(&long).is_err());
    }
}
