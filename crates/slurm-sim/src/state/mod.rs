//! The simulator state and its primitive operations.
//!
//! [`SimState`] owns the machine (cluster occupancy, DROM registry, node
//! managers), the job table, the queue, the event queue and the energy
//! meter. Schedulers mutate it only through the high-level operations:
//!
//! * [`SimState::start_static`] — exclusive whole-node start,
//! * [`SimState::co_schedule`] — SD-Policy's malleable start: shrink the
//!   mates, place the new job in the freed cores (paper Listing 1 → 3),
//! * job completion (driven by the controller) with owner-return /
//!   redistribution semantics.
//!
//! Every operation keeps five structures consistent: cluster occupancy, DROM
//! masks, per-job running state (the work integrator), the release map used
//! by backfill profiles, and the energy meter. `cfg.self_check` re-validates
//! the cluster after each mutation.

use crate::avail::{AvailBackend, Availability};
use crate::config::SlurmConfig;
use crate::job::{Job, JobOutcome, JobSpec, JobState, RunningJob};
use crate::queue::{PendingQueue, QueueEntry};
use crate::rate::{RateInputs, RateModel};
use crate::reservation::{Profile, ReleaseMap};
use crate::tenant::{fair_share_sort, QueuePolicy, TenantUsage, NO_TENANT_SLOT};
use crate::timing;
use cluster::{ClusterSpec, ClusterState, EnergyMeter, JobId, NodeId};
use drom::{DromRegistry, NodeManager, SharingFactor};
use simkit::{DetRng, EventQueue, SimTime};
use std::collections::BTreeSet;
use workload::{AppModel, AppTrace};

/// Simulation events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A job enters the system.
    Submit(JobId),
    /// A (possibly stale) completion; `gen` must match the job's current
    /// end-event generation.
    End { job: JobId, gen: u64 },
}

/// Counters accumulated over a run. Everything here is driven by the
/// simulation itself (not by how jobs were fed in), so an online session and
/// the offline replay of the same workload produce equal stats — the
/// `serve_equivalence` test pins that.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    pub started_static: u64,
    /// Jobs started through malleable backfill (paper: 20 476 for W4).
    pub started_malleable: u64,
    /// Distinct jobs that were shrunk as mates (paper: 17 102 for W4).
    pub unique_mates: u64,
    pub shrink_events: u64,
    pub expand_events: u64,
    /// Shrunk borrowers moved to idle whole nodes (expand side of the
    /// resource manager).
    pub relocations: u64,
    pub sched_passes: u64,
    /// Event batches whose pass was provably a no-op and was skipped
    /// (incremental mode only; always 0 on the legacy path).
    pub passes_skipped: u64,
    /// Jobs withdrawn via [`SimState::cancel_job`] (always 0 for offline
    /// trace replays — cancellation only exists on the online path).
    pub cancelled: u64,
    /// Backfill trials skipped because starting the job would exceed its
    /// tenant's quota (always 0 with an empty [`crate::TenantRegistry`]).
    pub quota_skipped: u64,
    /// Events dispatched (incl. stale end events).
    pub events_dispatched: u64,
    /// Largest pass-profile step count seen (perf/size diagnostic).
    pub peak_profile_len: usize,
}

/// What an event batch changed since the last scheduling pass — the
/// controller consults these (through [`crate::Scheduler::pass_needed`]) to
/// skip passes that provably cannot act.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirtyFlags {
    /// A job entered the pending queue (submit).
    pub queue: bool,
    /// Capacity was freed or reshaped (a job completed).
    pub capacity: bool,
}

/// Reusable buffers for the scheduling pass: the pass availability and the
/// per-pass vectors live here between passes so the hot loop never
/// allocates. Generic over the availability backend; [`SimState`] pins it
/// to the runtime-selected [`AvailBackend`].
#[derive(Debug, Default)]
struct PassScratch<A: Availability = AvailBackend> {
    profile: A,
    resv: Vec<(SimTime, u64, u32)>,
    prefix: Vec<crate::queue::QueueEntry>,
}

/// One mate-pool entry: the per-candidate inputs of Eq. 4 and the paper's
/// filters, denormalised at insertion time. Everything here is immutable
/// while the job runs, so the policy's candidate scan never touches the job
/// table (one cache line per candidate instead of two dependent loads).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MateEntry {
    /// The fixed part of Eq. 4, `(wait + req)/req` — the pool sort key.
    pub base: f64,
    pub id: JobId,
    /// Seconds the mate waited in the queue before starting.
    pub wait: u64,
    /// User-requested wall time.
    pub req_time: u64,
    /// Requested end (finish-inside filter input).
    pub req_end: SimTime,
    /// Whole nodes occupied — the weight `wᵢ` of Eq. 3.
    pub weight: u32,
    /// MPI ranks per node (shrink floor).
    pub ranks_per_node: u32,
}

/// Full simulator state. See module docs.
pub struct SimState {
    pub now: SimTime,
    pub cfg: SlurmConfig,
    spec: ClusterSpec,
    pub cluster: ClusterState,
    pub drom: DromRegistry,
    node_mgrs: Vec<NodeManager>,
    pub queue: PendingQueue,
    jobs: Vec<Job>,
    /// Ids of running jobs, ascending (deterministic iteration).
    running: BTreeSet<JobId>,
    /// Eligible mates kept sorted ascending by `(base, id)`. The base
    /// penalty is the fixed part of Eq. 4: `(wait + req)/req`.
    mate_pool: Vec<MateEntry>,
    /// Running jobs ordered by requested end — lets mate filtering prune
    /// finish-inside-infeasible trials without touching the job table.
    running_by_end: BTreeSet<(SimTime, JobId)>,
    /// Running malleable-backfilled jobs currently below full width
    /// (maintained at every reconfiguration; ascending id).
    shrunk: BTreeSet<JobId>,
    releases: ReleaseMap,
    /// Cached availability (backend per `cfg.avail_backend`), patched on
    /// every release change (incremental mode). Its canonical step view
    /// always equals `Profile::build(now', empty, releases)` for the
    /// instant `now'` it was last advanced to.
    avail: AvailBackend,
    dirty: DirtyFlags,
    scratch: PassScratch,
    pub events: EventQueue<Event>,
    outcomes: Vec<JobOutcome>,
    meter: EnergyMeter,
    weighted_busy: f64,
    rate_model: Box<dyn RateModel>,
    sharing: SharingFactor,
    pub stats: SimStats,
    /// Per-tenant accounting, parallel to the registry's slots (empty on
    /// the untenanted path).
    tenant_usage: Vec<TenantUsage>,
    first_submit: SimTime,
    last_end: SimTime,
    /// Decision-trace probe handle (DESIGN.md §12). Detached by default:
    /// every probe is then a single `Option` check. Attach a ring with
    /// [`SimState::attach_trace`] to record scheduler decisions.
    pub trace: sd_trace::TraceSink,
}

/// Error from an online job submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The record cannot be simulated (zero runtime, no processor count…) —
    /// the same records the offline constructor silently drops.
    Unusable,
    /// The submit instant lies before the simulation clock.
    InPast { submit: SimTime, now: SimTime },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Unusable => write!(f, "job record cannot be simulated"),
            SubmitError::InPast { submit, now } => {
                write!(f, "submit time {submit} is before the clock ({now})")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Error from a malleable co-scheduling attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum CoScheduleError {
    NotPending,
    NotMalleable,
    MateNotEligible(JobId),
    WeightMismatch { mates: u32, wanted: u32 },
    NoFreedCores(JobId),
}

impl std::fmt::Display for CoScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoScheduleError::NotPending => write!(f, "job is not pending"),
            CoScheduleError::NotMalleable => write!(f, "job is not malleable"),
            CoScheduleError::MateNotEligible(j) => write!(f, "{j} is not an eligible mate"),
            CoScheduleError::WeightMismatch { mates, wanted } => {
                write!(f, "mates provide {mates} nodes, job wants {wanted}")
            }
            CoScheduleError::NoFreedCores(j) => write!(f, "{j} cannot free any cores"),
        }
    }
}

impl std::error::Error for CoScheduleError {}

impl SimState {
    /// Builds the state from a trace. Jobs are made malleable according to
    /// `cfg.malleable_fraction` (deterministic per-id draw).
    pub fn new(
        spec: ClusterSpec,
        cfg: SlurmConfig,
        trace: &swf::Trace,
        rate_model: Box<dyn RateModel>,
        sharing: SharingFactor,
    ) -> SimState {
        Self::build(spec, cfg, trace, None, rate_model, sharing)
    }

    /// An empty machine accepting jobs *online* through
    /// [`SimState::submit_job`] — the state behind the `sd-serve` daemon.
    /// `first_submit` stays unanchored (`SimTime::MAX`) until the first
    /// submission so the makespan/energy window matches what an offline
    /// build of the same workload would use.
    pub fn new_online(
        spec: ClusterSpec,
        cfg: SlurmConfig,
        rate_model: Box<dyn RateModel>,
        sharing: SharingFactor,
    ) -> SimState {
        let empty = swf::Trace::new(Default::default(), Vec::new());
        let mut st = Self::build(spec, cfg, &empty, None, rate_model, sharing);
        st.first_submit = SimTime::MAX;
        st
    }

    /// Like [`SimState::new`] but binds applications (Workload 5).
    pub fn with_apps(
        spec: ClusterSpec,
        cfg: SlurmConfig,
        apps: &AppTrace,
        rate_model: Box<dyn RateModel>,
        sharing: SharingFactor,
    ) -> SimState {
        Self::build(spec, cfg, &apps.trace, Some(&apps.apps), rate_model, sharing)
    }

    fn build(
        spec: ClusterSpec,
        cfg: SlurmConfig,
        trace: &swf::Trace,
        apps: Option<&[workload::AppId]>,
        rate_model: Box<dyn RateModel>,
        sharing: SharingFactor,
    ) -> SimState {
        let rng = DetRng::new(cfg.malleable_seed);
        let mut jobs = Vec::with_capacity(trace.len());
        let mut events = EventQueue::with_capacity(trace.len() * 2);
        let mut first_submit = SimTime::MAX;
        for (idx, sj) in trace.jobs.iter().enumerate() {
            // Per-tenant malleability adoption: a registered tenant's
            // override replaces the global fraction (identical when the
            // registry is empty — the draw structure never changes).
            let fraction =
                cfg.malleable_fraction_for(sj.user.max(0) as u32, sj.group.max(0) as u32);
            let malleable = fraction >= 1.0 || rng.fork(sj.job_id).chance(fraction);
            let Some(mut js) = JobSpec::from_swf(sj, &spec, malleable, cfg.ranks_per_node) else {
                continue;
            };
            // Job table index must equal id-1; traces are renumbered 1..=N.
            js.id = JobId(jobs.len() as u64 + 1);
            if let Some(apps) = apps {
                js.app = Some(apps[idx]);
            }
            first_submit = first_submit.min(js.submit);
            events.push(js.submit, Event::Submit(js.id));
            jobs.push(Job {
                spec: js,
                state: JobState::Pending,
            });
        }
        if first_submit == SimTime::MAX {
            first_submit = SimTime::ZERO;
        }
        let nodes = spec.nodes;
        let node_power = spec.node.power;
        // Measure energy over the makespan window (first arrival → last
        // end), matching the paper's definitions for both metrics.
        let mut meter = EnergyMeter::new(node_power, nodes);
        meter.start(first_submit);
        let tenant_usage = vec![TenantUsage::default(); cfg.tenants.len()];
        let backend = cfg.avail_backend;
        SimState {
            now: SimTime::ZERO,
            cluster: ClusterState::new(spec.clone()),
            drom: DromRegistry::new(),
            node_mgrs: (0..nodes)
                .map(|i| NodeManager::new(NodeId(i), spec.node.clone()))
                .collect(),
            spec,
            cfg,
            queue: PendingQueue::new(),
            jobs,
            running: BTreeSet::new(),
            mate_pool: Vec::new(),
            running_by_end: BTreeSet::new(),
            shrunk: BTreeSet::new(),
            releases: ReleaseMap::new(nodes),
            avail: AvailBackend::flat(backend, SimTime::ZERO, nodes),
            dirty: DirtyFlags::default(),
            scratch: PassScratch::default(),
            events,
            outcomes: Vec::new(),
            meter,
            weighted_busy: 0.0,
            rate_model,
            sharing,
            stats: SimStats::default(),
            tenant_usage,
            first_submit,
            last_end: SimTime::ZERO,
            trace: sd_trace::TraceSink::detached(),
        }
    }

    /// Arms decision tracing: every subsequent scheduler decision is
    /// appended to `ring` (until `ring.disable()`).
    pub fn attach_trace(&mut self, ring: std::sync::Arc<sd_trace::TraceRing>) {
        self.trace = sd_trace::TraceSink::attached(ring);
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    pub fn sharing(&self) -> SharingFactor {
        self.sharing
    }

    pub fn job(&self, id: JobId) -> &Job {
        &self.jobs[(id.0 - 1) as usize]
    }

    fn job_mut(&mut self, id: JobId) -> &mut Job {
        &mut self.jobs[(id.0 - 1) as usize]
    }

    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    pub fn running_ids(&self) -> impl Iterator<Item = JobId> + '_ {
        self.running.iter().copied()
    }

    pub fn outcomes(&self) -> &[JobOutcome] {
        &self.outcomes
    }

    /// Moves the outcome list out (avoids cloning 200 K records at the end
    /// of a run).
    pub fn take_outcomes(&mut self) -> Vec<JobOutcome> {
        std::mem::take(&mut self.outcomes)
    }

    /// Eligible mates as denormalised [`MateEntry`]s, ascending by base
    /// penalty. The variable `increase/req` part of Eq. 4 is added by the
    /// policy for a concrete co-schedule.
    pub fn eligible_mates(&self) -> &[MateEntry] {
        &self.mate_pool
    }

    /// Availability profile at `now`, rebuilt from scratch (requested-time
    /// based). In incremental mode this is the *slow path*: passes use the
    /// cached [`SimState::availability`]; this rebuild remains the
    /// validation oracle (`self_check`, [`SimState::deep_validate`], tests).
    pub fn build_profile(&self) -> Profile {
        Profile::build(self.now, self.cluster.empty_node_count(), &self.releases)
    }

    /// The incrementally maintained availability, advanced to `now`. Its
    /// canonical step view equals [`SimState::build_profile`] by
    /// construction (asserted under `self_check` and by property tests).
    pub fn availability(&mut self) -> &AvailBackend {
        self.avail.advance_to(self.now);
        &self.avail
    }

    /// Running jobs ordered by requested end; `None` when idle. Lets the
    /// policy prune malleable trials whose finish-inside constraint no
    /// running job can satisfy, without scanning the job table.
    pub fn latest_running_req_end(&self) -> Option<SimTime> {
        self.running_by_end.iter().next_back().map(|&(t, _)| t)
    }

    /// What changed since the flags were last taken (the controller clears
    /// them after every event batch).
    pub fn take_dirty(&mut self) -> DirtyFlags {
        std::mem::take(&mut self.dirty)
    }


    // ------------------------------------------------------------------
    // Event dispatch (called by the controller)
    // ------------------------------------------------------------------

    /// Processes one event; returns `true` if the system state changed in a
    /// way that warrants a scheduling pass. Also records *what* changed in
    /// the [`DirtyFlags`] the controller uses for pass gating.
    pub fn dispatch(&mut self, ev: Event) -> bool {
        self.stats.events_dispatched += 1;
        match ev {
            Event::Submit(id) => {
                let job = &self.jobs[(id.0 - 1) as usize];
                if !job.is_pending() {
                    return false; // cancelled before its submit instant
                }
                let (req_nodes, req_time) = (job.spec.req_nodes, job.spec.req_time);
                let tslot = self.tenant_slot(id);
                if tslot != NO_TENANT_SLOT {
                    self.tenant_usage[tslot as usize].submitted += 1;
                }
                self.queue.push(id, req_nodes, req_time, tslot);
                self.trace
                    .emit(self.now.secs(), sd_trace::TraceKind::Submitted { job: id.0 });
                self.dirty.queue = true;
                true
            }
            Event::End { job, gen } => {
                let is_current = self
                    .job(job)
                    .running()
                    .map(|r| r.end_gen == gen)
                    .unwrap_or(false);
                if is_current {
                    self.complete_job(job);
                    self.dirty.capacity = true;
                    true
                } else {
                    false // stale end event
                }
            }
        }
    }


    /// Asserts the cached availability profile equals a fresh rebuild
    /// (incremental mode; called from the `self_check` blocks).
    fn self_check_avail(&mut self) {
        if !self.cfg.incremental {
            return;
        }
        let fresh = self.build_profile();
        let now = self.now;
        assert_eq!(
            self.availability().as_steps(),
            &fresh,
            "cached availability diverged from rebuild at {now:?}"
        );
    }

    /// Validates the full cross-structure consistency (tests).
    pub fn deep_validate(&self) -> Result<(), String> {
        self.cluster.validate()?;
        for &id in &self.running {
            let r = self.job(id).running().ok_or("running set stale")?;
            for (i, &n) in r.nodes.iter().enumerate() {
                let c = self
                    .cluster
                    .occupancy(n)
                    .cores_of(id)
                    .ok_or_else(|| format!("{id} missing on {n}"))?;
                if c != r.cores[i] {
                    return Err(format!("{id} cores mismatch on {n}: {c} vs {}", r.cores[i]));
                }
            }
        }
        for e in &self.mate_pool {
            if !self.is_eligible_mate(e.id) {
                return Err(format!("{} in mate pool but ineligible", e.id));
            }
            let r = self.job(e.id).running().expect("eligible ⇒ running");
            if e.req_end != r.req_end || e.weight != r.nodes.len() as u32 {
                return Err(format!("{} mate-pool entry stale", e.id));
            }
        }
        // Index invariants (DESIGN.md §9).
        if self.running_by_end.len() != self.running.len() {
            return Err("running_by_end index out of sync".into());
        }
        for &(end, id) in &self.running_by_end {
            let r = self.job(id).running().ok_or("running_by_end stale id")?;
            if r.req_end != end {
                return Err(format!("{id} req_end index stale: {end:?} vs {:?}", r.req_end));
            }
        }
        for &id in &self.running {
            let r = self.job(id).running().expect("checked above");
            let shrunk = r.malleable_backfilled && !r.at_full_allocation();
            if shrunk != self.shrunk.contains(&id) {
                return Err(format!("{id} shrunk-borrower index stale"));
            }
        }
        if self.shrunk.iter().any(|id| !self.running.contains(id)) {
            return Err("shrunk index holds a non-running job".into());
        }
        if self.releases.busy_count() + self.cluster.empty_node_count() != self.spec.nodes {
            return Err("release-map busy counter out of sync".into());
        }
        if !self.cfg.tenants.is_empty() {
            let mut widths = vec![0u32; self.tenant_usage.len()];
            for &id in &self.running {
                let s = &self.job(id).spec;
                if let Some(slot) = self.cfg.tenants.slot(s.tenant, s.project) {
                    widths[slot as usize] += s.req_nodes;
                }
            }
            for (slot, (u, w)) in self.tenant_usage.iter().zip(&widths).enumerate() {
                if u.running_width != *w {
                    return Err(format!(
                        "tenant slot {slot} running width {} vs rescan {w}",
                        u.running_width
                    ));
                }
            }
        }
        if self.cfg.incremental {
            let mut cached = self.avail.clone();
            cached.advance_to(self.now);
            if cached.as_steps() != &self.build_profile() {
                return Err("cached availability diverged from rebuild".into());
            }
        }
        Ok(())
    }
}

mod alloc;
mod energy;
mod online;
mod pass;
mod persist;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rate::WorstCaseModel;

    /// 4 nodes × 8 cores (2×4), trivial power.
    fn small_state(jobs: Vec<swf::SwfJob>) -> SimState {
        let mut spec = ClusterSpec::ricc();
        spec.nodes = 4;
        let trace = swf::Trace::new(Default::default(), jobs);
        SimState::new(
            spec,
            SlurmConfig {
                self_check: true,
                ..SlurmConfig::default()
            },
            &trace,
            Box::new(WorstCaseModel),
            SharingFactor::HALF,
        )
    }

    fn job(id: u64, submit: u64, run: u64, nodes: u64, req: u64) -> swf::SwfJob {
        swf::SwfJob::for_simulation(id, submit, run, nodes * 8, req)
    }

    fn drain_submits(st: &mut SimState) {
        while let Some(t) = st.events.peek_time() {
            if st
                .events
                .pop()
                .map(|e| {
                    st.now = t.max(st.now);
                    st.dispatch(e.payload)
                })
                .is_none()
            {
                break;
            }
        }
    }

    #[test]
    fn static_start_and_complete() {
        let mut st = small_state(vec![job(1, 0, 100, 2, 200)]);
        // Submit event:
        let ev = st.events.pop().unwrap();
        st.now = ev.time;
        st.dispatch(ev.payload);
        assert!(st.start_static(JobId(1)));
        assert_eq!(st.running_count(), 1);
        assert_eq!(st.cluster.busy_cores(), 16);
        assert!(st.deep_validate().is_ok());
        // End event fires at t=100:
        let ev = st.events.pop().unwrap();
        assert_eq!(ev.time, SimTime(100));
        st.now = ev.time;
        assert!(st.dispatch(ev.payload));
        assert_eq!(st.running_count(), 0);
        assert_eq!(st.cluster.busy_cores(), 0);
        let o = &st.outcomes()[0];
        assert_eq!(o.wait(), 0);
        assert_eq!(o.runtime(), 100);
        assert!((o.slowdown() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn start_fails_without_nodes() {
        let mut st = small_state(vec![job(1, 0, 100, 4, 200), job(2, 0, 100, 1, 200)]);
        drain_submits(&mut st);
        assert!(st.start_static(JobId(1)));
        assert!(!st.start_static(JobId(2)));
        assert_eq!(st.queue.len(), 1);
    }

    #[test]
    fn co_schedule_shrinks_mate_and_runs_both() {
        let mut st = small_state(vec![job(1, 0, 1000, 2, 1000), job(2, 0, 100, 2, 100)]);
        drain_submits(&mut st);
        assert!(st.start_static(JobId(1)));
        assert_eq!(st.eligible_mates().len(), 1);
        st.co_schedule(JobId(2), &[JobId(1)], 0).unwrap();
        assert!(st.deep_validate().is_ok());
        assert_eq!(st.stats.started_malleable, 1);
        assert_eq!(st.stats.unique_mates, 1);

        let mate = st.job(JobId(1)).running().unwrap();
        assert_eq!(mate.cores, vec![4, 4]);
        assert!((mate.rate - 0.5).abs() < 1e-12, "worst-case rate");
        assert_eq!(mate.lent_to, vec![JobId(2)]);

        let newj = st.job(JobId(2)).running().unwrap();
        assert_eq!(newj.cores, vec![4, 4]);
        assert!((newj.rate - 0.5).abs() < 1e-12);
        assert!(newj.malleable_backfilled);
        // Mate no longer eligible while lending.
        assert!(st.eligible_mates().is_empty());
    }

    #[test]
    fn co_scheduled_job_ends_and_mate_expands() {
        let mut st = small_state(vec![job(1, 0, 1000, 2, 1000), job(2, 0, 100, 2, 100)]);
        drain_submits(&mut st);
        st.start_static(JobId(1));
        st.co_schedule(JobId(2), &[JobId(1)], 0).unwrap();
        // New job: 100 s of work at rate 0.5 → ends at 200.
        let mut fired = Vec::new();
        while let Some(ev) = st.events.pop() {
            st.now = ev.time;
            if st.dispatch(ev.payload) {
                fired.push((ev.time, format!("{:?}", ev.payload)));
            }
        }
        assert_eq!(st.outcomes().len(), 2);
        let o2 = st.outcomes().iter().find(|o| o.id == JobId(2)).unwrap();
        assert_eq!(o2.end, SimTime(200), "stretched by worst-case model");
        let o1 = st.outcomes().iter().find(|o| o.id == JobId(1)).unwrap();
        // Mate: 200 s at 0.5 rate (100 work) + 900 remaining at full = 1100.
        assert_eq!(o1.end, SimTime(1100));
        assert!(o1.was_mate);
        assert!(st.deep_validate().is_ok());
    }

    #[test]
    fn mate_ending_first_redistributes_to_borrower() {
        // Mate is short; co-scheduled job long. Mate real runtime 100 but
        // requested 1000 (so the finish-inside constraint, which uses
        // requested times, would admit the pairing).
        let mut st = small_state(vec![job(1, 0, 100, 2, 1000), job(2, 0, 400, 2, 400)]);
        drain_submits(&mut st);
        st.start_static(JobId(1));
        st.co_schedule(JobId(2), &[JobId(1)], 0).unwrap();
        while let Some(ev) = st.events.pop() {
            st.now = ev.time;
            st.dispatch(ev.payload);
        }
        let o1 = st.outcomes().iter().find(|o| o.id == JobId(1)).unwrap();
        // Mate: shrunk at 0 → rate 0.5, 100 work → ends at 200.
        assert_eq!(o1.end, SimTime(200));
        let o2 = st.outcomes().iter().find(|o| o.id == JobId(2)).unwrap();
        // Borrower: 200 s at 0.5 (100 work), then expands to full nodes →
        // 300 remaining at rate 1 → ends at 500.
        assert_eq!(o2.end, SimTime(500));
        assert_eq!(st.stats.expand_events, 1, "borrower expanded once (counted per job)");
    }

    #[test]
    fn weight_mismatch_rejected() {
        let mut st = small_state(vec![job(1, 0, 1000, 2, 1000), job(2, 0, 100, 1, 100)]);
        drain_submits(&mut st);
        st.start_static(JobId(1));
        let err = st.co_schedule(JobId(2), &[JobId(1)], 0).unwrap_err();
        assert_eq!(
            err,
            CoScheduleError::WeightMismatch { mates: 2, wanted: 1 }
        );
    }

    #[test]
    fn static_jobs_cannot_be_mates() {
        let mut st = {
            let mut spec = ClusterSpec::ricc();
            spec.nodes = 4;
            let trace = swf::Trace::new(
                Default::default(),
                vec![job(1, 0, 1000, 2, 1000), job(2, 0, 100, 2, 100)],
            );
            SimState::new(
                spec,
                SlurmConfig {
                    malleable_fraction: 0.0,
                    ..SlurmConfig::default()
                },
                &trace,
                Box::new(WorstCaseModel),
                SharingFactor::HALF,
            )
        };
        drain_submits(&mut st);
        st.start_static(JobId(1));
        assert!(st.eligible_mates().is_empty());
        let err = st.co_schedule(JobId(2), &[JobId(1)], 0).unwrap_err();
        assert_eq!(err, CoScheduleError::NotMalleable);
    }

    #[test]
    fn release_map_tracks_requested_ends() {
        let mut st = small_state(vec![job(1, 0, 100, 2, 500)]);
        drain_submits(&mut st);
        st.start_static(JobId(1));
        let p = st.build_profile();
        assert_eq!(p.free_at(SimTime(0)), 2);
        assert_eq!(p.free_at(SimTime(500)), 4, "released at requested end");
    }

    #[test]
    fn energy_accumulates_while_running() {
        let mut st = small_state(vec![job(1, 0, 100, 4, 100)]);
        drain_submits(&mut st);
        st.start_static(JobId(1));
        while let Some(ev) = st.events.pop() {
            st.now = ev.time;
            st.dispatch(ev.payload);
        }
        let joules = st.finish_energy();
        // 4 nodes idle 120 W for 100 s + 32 cores × 15 W × 100 s.
        let expected = 4.0 * 120.0 * 100.0 + 32.0 * 15.0 * 100.0;
        assert!((joules - expected).abs() < 1e-6, "joules {joules}");
    }

    #[test]
    fn shrink_does_not_extend_the_mates_requested_end() {
        // SLURM wall-clock limits are fixed at start; lending cores must not
        // move the mate's req_end (the old extension fed the profile a
        // feedback loop — the makespan/energy regression).
        let mut st = small_state(vec![job(1, 0, 1000, 2, 1000), job(2, 0, 100, 2, 100)]);
        drain_submits(&mut st);
        st.start_static(JobId(1));
        let before = st.job(JobId(1)).running().unwrap().req_end;
        st.co_schedule(JobId(2), &[JobId(1)], 0).unwrap();
        let after = st.job(JobId(1)).running().unwrap().req_end;
        assert_eq!(before, after, "mate limit must stay start + req_time");
        assert_eq!(after, SimTime(1000));
    }

    #[test]
    fn relocation_moves_borrower_to_idle_nodes_and_expands_mate() {
        // 4-node machine: J1 static on 2 nodes, J2 co-scheduled into J1's
        // cores, 2 nodes idle → J2 relocates to them at full width and both
        // jobs return to rate 1.
        let mut st = small_state(vec![job(1, 0, 1000, 2, 1000), job(2, 0, 400, 2, 400)]);
        drain_submits(&mut st);
        st.start_static(JobId(1));
        st.co_schedule(JobId(2), &[JobId(1)], 0).unwrap();
        assert_eq!(st.shrunk_borrowers(), vec![JobId(2)]);

        st.now = SimTime(100);
        assert!(st.relocate_borrower(JobId(2)));
        assert!(st.deep_validate().is_ok());
        assert_eq!(st.stats.relocations, 1);

        let mate = st.job(JobId(1)).running().unwrap();
        assert_eq!(mate.cores, vec![8, 8], "mate expanded back");
        assert!((mate.rate - 1.0).abs() < 1e-12);
        assert!(mate.lent_to.is_empty());

        let borrower = st.job(JobId(2)).running().unwrap();
        assert_eq!(borrower.cores, vec![8, 8], "borrower at full width");
        assert!((borrower.rate - 1.0).abs() < 1e-12);
        assert!(borrower.mates.is_empty());
        // 100 s at rate 0.5 banked 50 work; 350 remain at full rate.
        let end = borrower.predicted_end(SimTime(100), 400);
        assert_eq!(end, SimTime(450));
        assert!(st.shrunk_borrowers().is_empty());
        // The pair dissolved: the mate is eligible again.
        assert!(st.is_eligible_mate(JobId(1)));
    }

    #[test]
    fn relocation_refused_without_idle_nodes_or_for_non_borrowers() {
        let mut st = small_state(vec![
            job(1, 0, 1000, 2, 1000),
            job(2, 0, 1000, 2, 1000),
            job(3, 0, 400, 2, 400),
        ]);
        drain_submits(&mut st);
        st.start_static(JobId(1));
        st.start_static(JobId(2)); // machine full
        st.co_schedule(JobId(3), &[JobId(1)], 0).unwrap();
        assert!(!st.relocate_borrower(JobId(3)), "no idle nodes");
        assert!(!st.relocate_borrower(JobId(1)), "mates are not borrowers");
        assert!(!st.relocate_borrower(JobId(2)), "full-width jobs don't move");
        assert_eq!(st.stats.relocations, 0);
        assert!(st.deep_validate().is_ok());
    }

    #[test]
    fn relocation_keeps_energy_accounting_exact() {
        // Energy across a shrink + relocate + completions must equal the
        // hand-computed step integral (self_check cross-validates the
        // incremental sum at every event).
        let mut st = small_state(vec![job(1, 0, 1000, 2, 1000), job(2, 0, 400, 2, 400)]);
        drain_submits(&mut st);
        st.start_static(JobId(1));
        st.co_schedule(JobId(2), &[JobId(1)], 0).unwrap();
        st.now = SimTime(100);
        assert!(st.relocate_borrower(JobId(2)));
        while let Some(ev) = st.events.pop() {
            st.now = ev.time.max(st.now);
            st.dispatch(ev.payload);
        }
        let joules = st.finish_energy();
        // Timeline (RICC nodes: 120 W idle, 15 W/core):
        //   0–100:   2 nodes busy, 16 weighted-busy cores (shared pair).
        //   100–450: 4 nodes busy, 32 cores (J1 full + relocated J2 full;
        //            J2 banked 50 work by t=100, finishes at 450).
        //   450–1050: 2 nodes busy, 16 cores (J1: 100 s at half rate cost
        //            50 s extra → ends at 1050).
        // Idle draw runs over the whole 0–1050 window on all 4 nodes.
        let busy = 15.0 * (16.0 * 100.0 + 32.0 * 350.0 + 16.0 * 600.0);
        let idle = 4.0 * 120.0 * 1050.0;
        let expected = busy + idle;
        assert!(
            (joules - expected).abs() < 1e-6,
            "joules {joules} vs expected {expected}"
        );
    }

    #[test]
    fn online_submission_matches_offline_build() {
        // Feeding records through submit_job must build the same job table,
        // events and measurement window as the constructor's trace loop.
        let jobs = vec![job(1, 30, 100, 2, 200), job(2, 10, 50, 1, 100)];
        let offline = small_state(jobs.clone());

        let mut spec = ClusterSpec::ricc();
        spec.nodes = 4;
        let mut online = SimState::new_online(
            spec,
            SlurmConfig {
                self_check: true,
                ..SlurmConfig::default()
            },
            Box::new(WorstCaseModel),
            SharingFactor::HALF,
        );
        assert_eq!(online.first_submit(), SimTime::MAX, "unanchored");
        for sj in &jobs {
            online.submit_job(sj, None).unwrap();
        }
        assert_eq!(online.job_count(), offline.job_count());
        assert_eq!(online.first_submit(), offline.first_submit());
        for id in 1..=2 {
            assert_eq!(
                online.job(JobId(id)).spec,
                offline.job(JobId(id)).spec,
                "job {id}"
            );
        }
        // Past submissions are rejected once the clock moved.
        online.now = SimTime(100);
        let err = online.submit_job(&job(3, 40, 10, 1, 10), None).unwrap_err();
        assert!(matches!(err, SubmitError::InPast { .. }));
        // Unusable records are rejected like the constructor drops them.
        let err = online.submit_job(&job(4, 200, 0, 1, 10), None).unwrap_err();
        assert_eq!(err, SubmitError::Unusable);
        // Explicit malleability override beats the configured draw.
        let id = online.submit_job(&job(5, 200, 10, 1, 10), Some(false)).unwrap();
        assert!(!online.job(id).spec.malleable);
    }

    #[test]
    fn cancel_before_and_after_arrival() {
        let mut st = small_state(vec![job(1, 0, 100, 1, 100), job(2, 50, 100, 1, 100)]);
        // Cancel job 2 before its submit event fires: the stale event must
        // not enqueue it later.
        assert!(st.cancel_job(JobId(2)));
        assert!(!st.cancel_job(JobId(2)), "already cancelled");
        let ev = st.events.pop().unwrap();
        st.now = ev.time;
        assert!(st.dispatch(ev.payload));
        assert_eq!(st.queue.len(), 1);
        // Cancel job 1 while queued.
        assert!(st.cancel_job(JobId(1)));
        assert!(st.queue.is_empty());
        assert!(st.take_dirty().queue, "cancel marks the queue dirty");
        // Job 2's submit event is stale now.
        let ev = st.events.pop().unwrap();
        st.now = ev.time.max(st.now);
        assert!(!st.dispatch(ev.payload), "cancelled job never enqueues");
        assert!(st.queue.is_empty());
        assert_eq!(st.stats.cancelled, 2);
        // Unknown jobs cannot be cancelled.
        assert!(!st.cancel_job(JobId(77)));
    }

    #[test]
    fn cancel_running_static_job_frees_the_machine() {
        let mut st = small_state(vec![job(1, 0, 100, 2, 200)]);
        drain_submits(&mut st);
        st.start_static(JobId(1));
        st.now = SimTime(40);
        assert!(st.cancel_job(JobId(1)));
        assert!(st.job(JobId(1)).is_cancelled());
        assert_eq!(st.running_count(), 0);
        assert_eq!(st.cluster.busy_cores(), 0);
        assert!(st.outcomes().is_empty(), "cancellation records no outcome");
        assert_eq!(st.stats.cancelled, 1);
        assert!(st.take_dirty().capacity, "freed capacity marks a pass");
        assert!(st.deep_validate().is_ok());
        // Its armed end event is stale and must not double-complete.
        while let Some(ev) = st.events.pop() {
            st.now = ev.time.max(st.now);
            assert!(!st.dispatch(ev.payload), "stale end after cancel");
        }
        assert!(st.outcomes().is_empty());
        // Energy: 2 nodes × 16 cores busy for 40 s, idle power over 0–40.
        let joules = st.finish_energy();
        let expected = 4.0 * 120.0 * 40.0 + 16.0 * 15.0 * 40.0;
        assert!((joules - expected).abs() < 1e-6, "joules {joules}");
    }

    #[test]
    fn cancel_shrunk_borrower_expands_mate_back() {
        let mut st = small_state(vec![job(1, 0, 1000, 2, 1000), job(2, 0, 400, 2, 400)]);
        drain_submits(&mut st);
        st.start_static(JobId(1));
        st.co_schedule(JobId(2), &[JobId(1)], 0).unwrap();
        assert_eq!(st.shrunk_borrowers(), vec![JobId(2)]);
        st.now = SimTime(100);
        assert!(st.cancel_job(JobId(2)), "borrower cancel accepted");
        assert!(st.deep_validate().is_ok());
        let mate = st.job(JobId(1)).running().unwrap();
        assert_eq!(mate.cores, vec![8, 8], "mate expanded into freed cores");
        assert!((mate.rate - 1.0).abs() < 1e-12);
        assert!(mate.lent_to.is_empty(), "partner link dropped");
        assert!(st.shrunk_borrowers().is_empty(), "borrower index cleaned");
        assert!(st.is_eligible_mate(JobId(1)), "pair dissolved");
        // DROM masks on the shared nodes are consistent post-expansion.
        for n in [cluster::NodeId(0), cluster::NodeId(1)] {
            st.drom.validate_node(n).expect("masks disjoint");
        }
        while let Some(ev) = st.events.pop() {
            st.now = ev.time.max(st.now);
            st.dispatch(ev.payload);
        }
        assert_eq!(st.outcomes().len(), 1, "only the mate completes");
        let o1 = &st.outcomes()[0];
        // Mate: 100 s at rate 0.5 (50 work) + 950 remaining at full → 1050.
        assert_eq!(o1.end, SimTime(1050));
        let joules = st.finish_energy();
        // 0–100: shared pair = 16 weighted cores; 100–1050: mate full = 16.
        let expected = 4.0 * 120.0 * 1050.0 + 15.0 * (16.0 * 100.0 + 16.0 * 950.0);
        assert!((joules - expected).abs() < 1e-6, "joules {joules}");
    }

    #[test]
    fn cancel_active_mate_expands_borrower() {
        let mut st = small_state(vec![job(1, 0, 1000, 2, 1000), job(2, 0, 400, 2, 400)]);
        drain_submits(&mut st);
        st.start_static(JobId(1));
        st.co_schedule(JobId(2), &[JobId(1)], 0).unwrap();
        st.now = SimTime(100);
        assert!(st.cancel_job(JobId(1)), "mate cancel accepted");
        assert!(st.deep_validate().is_ok());
        let borrower = st.job(JobId(2)).running().unwrap();
        assert_eq!(borrower.cores, vec![8, 8], "borrower took the cores");
        assert!((borrower.rate - 1.0).abs() < 1e-12);
        assert!(borrower.mates.is_empty(), "partner link dropped");
        assert!(
            st.shrunk_borrowers().is_empty(),
            "full-width borrower left the shrunk index"
        );
        while let Some(ev) = st.events.pop() {
            st.now = ev.time.max(st.now);
            st.dispatch(ev.payload);
        }
        assert_eq!(st.outcomes().len(), 1, "only the borrower completes");
        // Borrower: 50 work banked by t=100, 350 remaining at full → 450.
        assert_eq!(st.outcomes()[0].end, SimTime(450));
    }

    #[test]
    fn cancel_done_job_is_refused() {
        let mut st = small_state(vec![job(1, 0, 100, 1, 100)]);
        drain_submits(&mut st);
        st.start_static(JobId(1));
        while let Some(ev) = st.events.pop() {
            st.now = ev.time.max(st.now);
            st.dispatch(ev.payload);
        }
        assert_eq!(st.outcomes().len(), 1);
        assert!(!st.cancel_job(JobId(1)), "done jobs cannot be cancelled");
        assert_eq!(st.stats.cancelled, 0);
    }

    #[test]
    fn outcome_count_matches_jobs() {
        let mut st = small_state(vec![
            job(1, 0, 50, 1, 100),
            job(2, 10, 60, 2, 100),
            job(3, 20, 70, 1, 100),
        ]);
        // Run a trivial FCFS loop: start whatever fits at each event.
        while let Some(ev) = st.events.pop() {
            st.now = ev.time;
            st.dispatch(ev.payload);
            let pending: Vec<JobId> = st.queue.prefix(10).map(|e| e.job).collect();
            for id in pending {
                st.start_static(id);
            }
        }
        assert_eq!(st.outcomes().len(), 3);
        assert!(st.queue.is_empty());
        assert_eq!(st.running_count(), 0);
    }

    // ------------------------------------------------------------------
    // Tenant accounting
    // ------------------------------------------------------------------

    use crate::tenant::{Quota, Tenant, TenantRegistry};

    fn tjob(id: u64, submit: u64, run: u64, nodes: u64, req: u64, user: i64) -> swf::SwfJob {
        let mut sj = job(id, submit, run, nodes, req);
        sj.user = user;
        sj
    }

    fn tenant_state(jobs: Vec<swf::SwfJob>, tenants: TenantRegistry) -> SimState {
        let mut spec = ClusterSpec::ricc();
        spec.nodes = 4;
        let trace = swf::Trace::new(Default::default(), jobs);
        SimState::new(
            spec,
            SlurmConfig {
                self_check: true,
                tenants,
                ..SlurmConfig::default()
            },
            &trace,
            Box::new(WorstCaseModel),
            SharingFactor::HALF,
        )
    }

    #[test]
    fn start_charges_tenant_and_completion_releases_width() {
        let reg = TenantRegistry::equal_weights(2, Quota::UNLIMITED);
        let mut st = tenant_state(
            vec![tjob(1, 0, 100, 2, 200, 1), tjob(2, 0, 100, 1, 150, 2)],
            reg,
        );
        drain_submits(&mut st);
        assert!(st.start_static(JobId(1)));
        assert!(st.start_static(JobId(2)));
        let u1 = &st.tenant_usage()[0];
        assert_eq!((u1.submitted, u1.started), (1, 1));
        assert_eq!(u1.running_width, 2);
        assert_eq!(u1.committed_node_seconds, 2 * 200);
        let u2 = &st.tenant_usage()[1];
        assert_eq!(u2.running_width, 1);
        assert_eq!(u2.committed_node_seconds, 150);
        while let Some(ev) = st.events.pop() {
            st.now = ev.time.max(st.now);
            st.dispatch(ev.payload);
        }
        let u1 = &st.tenant_usage()[0];
        assert_eq!(u1.running_width, 0, "width released on completion");
        assert_eq!(u1.committed_node_seconds, 400, "charge never refunded");
        assert_eq!(u1.completed, 1);
        assert!(st.deep_validate().is_ok());
    }

    #[test]
    fn quota_blocks_and_counts_skips() {
        let reg = TenantRegistry::equal_weights(
            1,
            Quota {
                node_seconds: Some(500),
                max_running_width: Some(2),
            },
        );
        let mut st = tenant_state(
            vec![tjob(1, 0, 100, 2, 200, 1), tjob(2, 0, 100, 1, 200, 1)],
            reg,
        );
        drain_submits(&mut st);
        let entries: Vec<QueueEntry> = st.queue.prefix(10).collect();
        assert_eq!(entries[0].tslot, 0, "slot resolved at dispatch");
        assert!(!st.quota_blocks(&entries[0]));
        assert!(st.start_static(JobId(1))); // charges 400 ns, width 2
        assert!(
            st.quota_blocks(&entries[1]),
            "width 2+1 > 2 and 400+200 > 500"
        );
        assert_eq!(st.stats.quota_skipped, 1);
        assert_eq!(st.tenant_usage()[0].quota_skipped, 1);
        // Untenanted entries never block and never touch counters.
        let anon = QueueEntry {
            job: JobId(2),
            req_nodes: 99,
            req_time: 1 << 40,
            tslot: crate::tenant::NO_TENANT_SLOT,
        };
        assert!(!st.quota_blocks(&anon));
        assert_eq!(st.stats.quota_skipped, 1);
    }

    #[test]
    fn fair_share_prefix_prefers_the_idle_tenant() {
        let mut reg = TenantRegistry::new();
        reg.add(Tenant::unlimited(1, 0));
        reg.add(Tenant::unlimited(2, 0));
        // Tenant 1 submits first (FIFO would favour it) but is the heavy
        // user once its first job starts; tenant 2's job must jump ahead.
        let mut st = tenant_state(
            vec![
                tjob(1, 0, 400, 2, 400, 1),
                tjob(2, 0, 100, 1, 100, 1),
                tjob(3, 0, 100, 1, 100, 2),
            ],
            reg,
        );
        st.cfg.queue_policy = QueuePolicy::FairShare { half_life: 0 };
        drain_submits(&mut st);
        assert!(st.start_static(JobId(1)));
        let mut prefix = Vec::new();
        st.fill_pass_prefix(10, &mut prefix);
        assert_eq!(
            prefix.iter().map(|e| e.job.0).collect::<Vec<_>>(),
            vec![3, 2],
            "idle tenant 2 outranks tenant 1's queued job"
        );
        // With zero usage everywhere the order is pure FIFO.
        let mut st2 = tenant_state(
            vec![tjob(1, 0, 100, 1, 100, 1), tjob(2, 0, 100, 1, 100, 2)],
            TenantRegistry::equal_weights(2, Quota::UNLIMITED),
        );
        st2.cfg.queue_policy = QueuePolicy::FairShare { half_life: 3600 };
        drain_submits(&mut st2);
        let mut p2 = Vec::new();
        st2.fill_pass_prefix(10, &mut p2);
        assert_eq!(
            p2.iter().map(|e| e.job.0).collect::<Vec<_>>(),
            vec![1, 2],
            "zero usage + equal weights degenerate to FIFO"
        );
    }

    #[test]
    fn cancelled_running_job_releases_tenant_width() {
        let reg = TenantRegistry::equal_weights(1, Quota::UNLIMITED);
        let mut st = tenant_state(vec![tjob(1, 0, 100, 2, 200, 1)], reg);
        drain_submits(&mut st);
        st.start_static(JobId(1));
        assert_eq!(st.tenant_usage()[0].running_width, 2);
        st.now = SimTime(10);
        assert!(st.cancel_job(JobId(1)));
        let u = &st.tenant_usage()[0];
        assert_eq!(u.running_width, 0, "cancel releases the width");
        assert_eq!(u.committed_node_seconds, 400, "charge stays");
        assert_eq!(u.completed, 0, "cancelled ≠ completed");
        assert!(st.deep_validate().is_ok());
    }
}
