//! Results of a simulation run.

use crate::job::JobOutcome;
use crate::state::{SimState, SimStats};
use simkit::SimTime;

/// Everything a run produced. Rich analysis (heatmaps, daily series,
/// normalisation against a baseline) lives in the `sched-metrics` crate;
/// this carries the raw material plus the headline aggregates.
///
/// `PartialEq` compares every field bit-for-bit — the equivalence tests
/// (incremental vs legacy path, online session vs offline replay) rely on it.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    pub scheduler: &'static str,
    pub outcomes: Vec<JobOutcome>,
    pub stats: SimStats,
    pub first_submit: SimTime,
    pub last_end: SimTime,
    /// `last_end − first_submit` (the paper's makespan definition).
    pub makespan: u64,
    pub energy_joules: f64,
    /// Jobs still pending when events ran out (0 on a healthy run).
    pub leftover_pending: usize,
    /// Jobs still running when events ran out (0 on a healthy run).
    pub leftover_running: usize,
}

impl SimResult {
    pub(crate) fn from_state(mut st: SimState, scheduler: &'static str) -> SimResult {
        let energy = st.finish_energy();
        let first = Self::anchored_first_submit(&st);
        SimResult {
            scheduler,
            first_submit: first,
            last_end: st.last_end(),
            makespan: st.last_end().since(first),
            energy_joules: energy,
            leftover_pending: st.queue.len(),
            leftover_running: st.running_count(),
            stats: st.stats.clone(),
            outcomes: st.take_outcomes(),
        }
    }

    /// A read-only result of the run *so far* — the state keeps running.
    /// Identical to [`SimResult::from_state`] at the same instant (the
    /// energy meter is finalised on a copy); outcomes are cloned.
    pub fn snapshot(st: &SimState, scheduler: &'static str) -> SimResult {
        let first = Self::anchored_first_submit(st);
        SimResult {
            scheduler,
            first_submit: first,
            last_end: st.last_end(),
            makespan: st.last_end().since(first),
            energy_joules: st.snapshot_energy(),
            leftover_pending: st.queue.len(),
            leftover_running: st.running_count(),
            stats: st.stats.clone(),
            outcomes: st.outcomes().to_vec(),
        }
    }

    /// An online state that never saw a submission keeps the `SimTime::MAX`
    /// "unanchored" sentinel; report it as the epoch, like an empty trace.
    fn anchored_first_submit(st: &SimState) -> SimTime {
        if st.first_submit() == SimTime::MAX {
            SimTime::ZERO
        } else {
            st.first_submit()
        }
    }

    /// Average response time (s).
    pub fn mean_response(&self) -> f64 {
        mean(self.outcomes.iter().map(|o| o.response() as f64))
    }

    /// Average slowdown (response / static runtime — the paper's metric).
    pub fn mean_slowdown(&self) -> f64 {
        mean(self.outcomes.iter().map(|o| o.slowdown()))
    }

    /// Average wait time (s).
    pub fn mean_wait(&self) -> f64 {
        mean(self.outcomes.iter().map(|o| o.wait() as f64))
    }

    /// Energy in kWh.
    pub fn energy_kwh(&self) -> f64 {
        self.energy_joules / 3.6e6
    }
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let mut n = 0u64;
    let mut sum = 0.0;
    for x in it {
        sum += x;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::JobId;

    fn outcome(id: u64, submit: u64, start: u64, end: u64, static_rt: u64) -> JobOutcome {
        JobOutcome {
            id: JobId(id),
            submit: SimTime(submit),
            start: SimTime(start),
            end: SimTime(end),
            nodes: 1,
            procs: 8,
            req_time: static_rt,
            static_runtime: static_rt,
            malleable_backfilled: false,
            was_mate: false,
            app: None,
            tenant: 0,
        }
    }

    fn result(outcomes: Vec<JobOutcome>) -> SimResult {
        SimResult {
            scheduler: "test",
            first_submit: SimTime(0),
            last_end: SimTime(1000),
            makespan: 1000,
            energy_joules: 3.6e6,
            leftover_pending: 0,
            leftover_running: 0,
            stats: SimStats::default(),
            outcomes,
        }
    }

    #[test]
    fn aggregates() {
        let r = result(vec![
            outcome(1, 0, 0, 100, 100),   // response 100, slowdown 1
            outcome(2, 0, 100, 200, 100), // response 200, slowdown 2
        ]);
        assert!((r.mean_response() - 150.0).abs() < 1e-9);
        assert!((r.mean_slowdown() - 1.5).abs() < 1e-9);
        assert!((r.mean_wait() - 50.0).abs() < 1e-9);
        assert!((r.energy_kwh() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_aggregates_are_zero() {
        let r = result(vec![]);
        assert_eq!(r.mean_response(), 0.0);
        assert_eq!(r.mean_slowdown(), 0.0);
    }
}
