//! Replaying genuine SWF traces.
//!
//! The synthetic generators stand in for the archive logs we cannot fetch
//! offline (DESIGN.md §4); when the real `RICC-2010-2` or
//! `CEA-Curie-2011-2.1-cln` files are available, this module feeds them
//! through the same simulator: clean, clamp to the machine, renumber, run.

use crate::config::SlurmConfig;
use crate::rate::RateModel;
use crate::state::SimState;
use cluster::ClusterSpec;
use drom::SharingFactor;
use swf::Trace;

/// Prepares an arbitrary SWF trace for simulation on `spec`:
/// keeps the primary partition, drops unusable records, sanitises user
/// estimates, clamps oversized jobs to the machine, rebases to t = 0 and
/// renumbers ids densely (the simulator's job-table requirement).
///
/// Returns the number of jobs surviving the cleaning.
pub fn prepare_trace(trace: &mut Trace, spec: &ClusterSpec, max_req_time: u64) -> usize {
    swf::filter::clean_like_curie(trace, max_req_time);
    swf::filter::clamp_to_system(trace, spec.total_cores());
    swf::filter::rebase_and_renumber(trace);
    trace.len()
}

/// Builds a ready-to-run [`SimState`] from a raw SWF trace.
pub fn replay_state(
    mut trace: Trace,
    spec: ClusterSpec,
    cfg: SlurmConfig,
    rate_model: Box<dyn RateModel>,
    sharing: SharingFactor,
) -> (SimState, usize) {
    let kept = prepare_trace(&mut trace, &spec, 30 * 86_400);
    let state = SimState::new(spec, cfg, &trace, rate_model, sharing);
    (state, kept)
}

/// Infers a machine from the trace header when none is specified:
/// `MaxNodes`/`MaxProcs` determine node count and cores per node
/// (falling back to 16-core nodes).
pub fn infer_cluster(trace: &Trace) -> ClusterSpec {
    let nodes = trace.header.max_nodes().unwrap_or(0);
    let procs = trace.header.max_procs().unwrap_or(0);
    let (nodes, cores_per_node) = match (nodes, procs) {
        (n, p) if n > 0 && p >= n => (n, (p / n).max(1)),
        (n, _) if n > 0 => (n, 16),
        (_, p) if p > 0 => (p.div_ceil(16), 16),
        _ => {
            // Last resort: size the machine to the biggest job.
            let max = trace
                .jobs
                .iter()
                .filter_map(|j| j.procs())
                .max()
                .unwrap_or(16);
            (max.div_ceil(16).max(1), 16)
        }
    };
    let mut spec = ClusterSpec::cea_curie();
    spec.name = format!("inferred-{nodes}x{cores_per_node}");
    spec.nodes = nodes as u32;
    spec.node.cores_per_socket = (cores_per_node as u32).div_ceil(2);
    spec.node.sockets = 2;
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use swf::{SwfHeader, SwfJob};

    fn raw_trace() -> Trace {
        let mut header = SwfHeader::new();
        header.set("MaxNodes", 64);
        header.set("MaxProcs", 512);
        let jobs = vec![
            {
                let mut j = SwfJob::for_simulation(10, 1000, 600, 16, 100);
                j.partition = 1;
                j
            },
            {
                let mut j = SwfJob::for_simulation(11, 1500, 0, 8, 300); // zero runtime: dropped
                j.partition = 1;
                j
            },
            {
                let mut j = SwfJob::for_simulation(12, 2000, 100, 9_999, 200); // oversized: clamped
                j.partition = 1;
                j
            },
            {
                let mut j = SwfJob::for_simulation(13, 900, 50, 4, 60);
                j.partition = 7; // minority partition: dropped
                j
            },
        ];
        Trace::new(header, jobs)
    }

    #[test]
    fn infer_cluster_from_header() {
        let spec = infer_cluster(&raw_trace());
        assert_eq!(spec.nodes, 64);
        assert_eq!(spec.node.cores(), 8);
        assert_eq!(spec.total_cores(), 512);
    }

    #[test]
    fn infer_cluster_without_header_uses_biggest_job() {
        let mut t = raw_trace();
        t.header = SwfHeader::new();
        let spec = infer_cluster(&t);
        assert!(spec.total_cores() >= 9_999);
    }

    #[test]
    fn prepare_cleans_and_renumbers() {
        let mut t = raw_trace();
        let spec = infer_cluster(&t);
        let kept = prepare_trace(&mut t, &spec, 86_400);
        assert_eq!(kept, 2, "zero-runtime and minority-partition jobs dropped");
        assert_eq!(t.jobs[0].job_id, 1);
        assert_eq!(t.jobs[0].submit, 0, "rebased");
        // Oversized job clamped to the machine.
        assert!(t.jobs.iter().all(|j| j.procs().unwrap() <= spec.total_cores()));
        // Under-estimates fixed.
        assert!(t.jobs.iter().all(|j| j.req_time >= j.run_time));
    }

    #[test]
    fn replay_state_runs_end_to_end() {
        let t = raw_trace();
        let spec = infer_cluster(&t);
        let (mut st, kept) = replay_state(
            t,
            spec,
            SlurmConfig::default(),
            Box::new(crate::rate::WorstCaseModel),
            SharingFactor::HALF,
        );
        assert_eq!(kept, 2);
        // Drive to completion with plain FCFS.
        while let Some(ev) = st.events.pop() {
            st.now = ev.time;
            st.dispatch(ev.payload);
            let pending: Vec<cluster::JobId> = st.queue.prefix(10).map(|e| e.job).collect();
            for id in pending {
                st.start_static(id);
            }
        }
        assert_eq!(st.outcomes().len(), 2);
    }
}
