//! Progress-rate models for malleable jobs.
//!
//! The simulator recomputes a job's progress rate at every reconfiguration;
//! *how* the rate follows from the core configuration is the pluggable
//! [`RateModel`]. The two analytic models are the paper's §3.4 equations
//! (re-exported with full paper mapping by the `sd-policy` crate):
//!
//! * [`IdealModel`] — Eq. 5: performance is proportional to the *total*
//!   assigned resources; represents applications that re-balance load
//!   dynamically.
//! * [`WorstCaseModel`] — Eq. 6: performance is limited by the least-served
//!   node; represents statically balanced applications.
//!
//! [`AppAwareModel`] is the substitution for the paper's real-machine runs:
//! it composes the application's scalability curve with memory-bandwidth
//! contention from co-residents (see `workload::apps`).

use workload::{AppId, AppModel};

/// Everything a rate model may consider.
#[derive(Debug, Clone)]
pub struct RateInputs<'a> {
    /// Cores held on each allocated node.
    pub cores: &'a [u32],
    /// Cores per node the job was sized for.
    pub full_cores: u32,
    /// Bound application (Workload 5), if any.
    pub app: Option<AppId>,
    /// Highest memory-bandwidth pressure among co-resident jobs across the
    /// job's nodes (0.0 when running exclusively).
    pub neighbour_mem: f64,
}

impl RateInputs<'_> {
    /// Total assigned / total sized-for cores.
    pub fn used_fraction(&self) -> f64 {
        let used: u64 = self.cores.iter().map(|&c| c as u64).sum();
        let full = self.full_cores as u64 * self.cores.len().max(1) as u64;
        (used as f64 / full as f64).clamp(0.0, 1.0)
    }

    /// Fraction on the least-served node.
    pub fn min_fraction(&self) -> f64 {
        self.cores
            .iter()
            .map(|&c| c as f64 / self.full_cores as f64)
            .fold(1.0, f64::min)
            .clamp(0.0, 1.0)
    }
}

/// Maps a core configuration to a progress rate in `[0, 1]`.
pub trait RateModel: Send + Sync {
    fn rate(&self, inp: &RateInputs<'_>) -> f64;

    /// Human-readable name (experiment labels).
    fn name(&self) -> &'static str;
}

/// Paper Eq. 5 — "applications do not suffer from the imbalance in the
/// number of resources used": rate = Σ assigned / Σ full.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdealModel;

impl RateModel for IdealModel {
    fn rate(&self, inp: &RateInputs<'_>) -> f64 {
        inp.used_fraction()
    }
    fn name(&self) -> &'static str {
        "ideal"
    }
}

/// Paper Eq. 6 — "performance is limited by the less used node":
/// rate = min over nodes of assigned/full.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorstCaseModel;

impl RateModel for WorstCaseModel {
    fn rate(&self, inp: &RateInputs<'_>) -> f64 {
        inp.min_fraction()
    }
    fn name(&self) -> &'static str {
        "worst-case"
    }
}

/// Application-behaviour model for the real-run reproduction (Workload 5):
/// Amdahl-curve shrink benefit × memory contention, floored by the
/// worst-case fraction. Jobs without an app fall back to [`WorstCaseModel`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AppAwareModel;

impl RateModel for AppAwareModel {
    fn rate(&self, inp: &RateInputs<'_>) -> f64 {
        let min_frac = inp.min_fraction();
        let Some(app) = inp.app.map(AppModel::by_id) else {
            return min_frac;
        };
        if min_frac >= 1.0 {
            // Full allocation: only contention can slow the job (it has no
            // neighbours in that case by construction, but a co-resident on
            // a *subset* of nodes is possible while expanding).
            return if inp.neighbour_mem > 0.0 {
                1.0 / (1.0 + workload::apps::MEM_CONTENTION_BETA * app.mem_util * inp.neighbour_mem)
            } else {
                1.0
            };
        }
        // Shrunk: the effective cores on the weakest node set the pace
        // (statically balanced ranks), but imperfect scaling means the job
        // loses less than proportionally.
        let cores = (min_frac * inp.full_cores as f64).round().max(1.0) as u32;
        let shrink = app.shrink_rate(cores, inp.full_cores);
        let contention = 1.0
            / (1.0 + workload::apps::MEM_CONTENTION_BETA * app.mem_util * inp.neighbour_mem);
        (shrink * contention).clamp(0.0, 1.0)
    }
    fn name(&self) -> &'static str {
        "app-aware"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(cores: &[u32], full: u32) -> RateInputs<'_> {
        RateInputs {
            cores,
            full_cores: full,
            app: None,
            neighbour_mem: 0.0,
        }
    }

    #[test]
    fn ideal_uses_total_fraction() {
        let inp = inputs(&[24, 48], 48);
        assert!((IdealModel.rate(&inp) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn worst_case_uses_min_fraction() {
        let inp = inputs(&[24, 48], 48);
        assert!((WorstCaseModel.rate(&inp) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn models_agree_on_uniform_allocations() {
        let inp = inputs(&[24, 24, 24], 48);
        assert_eq!(IdealModel.rate(&inp), WorstCaseModel.rate(&inp));
        let full = inputs(&[48, 48], 48);
        assert_eq!(IdealModel.rate(&full), 1.0);
        assert_eq!(WorstCaseModel.rate(&full), 1.0);
    }

    #[test]
    fn ideal_dominates_worst_case() {
        // For any configuration, Eq. 5 ≥ Eq. 6 (upper/lower bound pair).
        for cores in [&[1u32, 48][..], &[10, 20, 48], &[5, 5, 5], &[48]] {
            let inp = inputs(cores, 48);
            assert!(IdealModel.rate(&inp) >= WorstCaseModel.rate(&inp) - 1e-12);
        }
    }

    #[test]
    fn app_aware_beats_worst_case_when_shrunk() {
        let inp = RateInputs {
            cores: &[24, 24],
            full_cores: 48,
            app: Some(AppId::Pils),
            neighbour_mem: 0.1,
        };
        let r = AppAwareModel.rate(&inp);
        assert!(r > 0.5, "scalability benefit: {r}");
        assert!(r < 1.0);
    }

    #[test]
    fn app_aware_contention_at_full_width() {
        let inp = RateInputs {
            cores: &[48],
            full_cores: 48,
            app: Some(AppId::Stream),
            neighbour_mem: 0.95,
        };
        let r = AppAwareModel.rate(&inp);
        assert!(r < 0.82, "stream vs stream contention: {r}");
        let solo = RateInputs {
            neighbour_mem: 0.0,
            ..inp
        };
        assert_eq!(AppAwareModel.rate(&solo), 1.0);
    }

    #[test]
    fn app_aware_without_app_is_worst_case() {
        let inp = inputs(&[12, 48], 48);
        assert_eq!(AppAwareModel.rate(&inp), WorstCaseModel.rate(&inp));
    }

    #[test]
    fn names_are_distinct() {
        assert_ne!(IdealModel.name(), WorstCaseModel.name());
        assert_ne!(WorstCaseModel.name(), AppAwareModel.name());
    }
}
