//! Job records and the malleable progress integrator.
//!
//! A running job accumulates *work* (seconds of full-allocation execution).
//! Its progress **rate** is 1.0 on a full allocation and drops when shrunk;
//! the mapping from core configuration to rate is the pluggable
//! [`crate::RateModel`] (the paper's Eq. 5/6 live in the `sd-policy` crate).
//! Banking work at every reconfiguration makes the integrator the exact
//! continuous form of the paper's per-slot sums.

use cluster::{JobId, NodeId};
use simkit::SimTime;
use workload::AppId;

/// Immutable job description, from the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    pub id: JobId,
    pub submit: SimTime,
    /// Whole nodes requested (select/linear granularity).
    pub req_nodes: u32,
    /// Processors requested in the trace (before whole-node rounding).
    pub req_procs: u64,
    /// User-estimated wall time (seconds).
    pub req_time: u64,
    /// True runtime on a static full allocation (seconds) — the integrator's
    /// total work.
    pub static_runtime: u64,
    /// Whether the application supports DROM malleability.
    pub malleable: bool,
    /// MPI ranks per node (shrink floor: one core per rank).
    pub ranks_per_node: u32,
    /// Bound application (Workload 5), if any.
    pub app: Option<AppId>,
    /// Owning tenant (SWF `user`; 0 = anonymous/untenanted).
    pub tenant: u32,
    /// Owning project (SWF `group`; 0 = default project).
    pub project: u32,
}

impl JobSpec {
    /// Builds a spec from an SWF record, rounding to whole nodes.
    ///
    /// Returns `None` for records that cannot be simulated.
    pub fn from_swf(
        j: &swf::SwfJob,
        spec: &cluster::ClusterSpec,
        malleable: bool,
        ranks_per_node: u32,
    ) -> Option<JobSpec> {
        let procs = j.procs()?;
        let runtime = j.runtime()?;
        if runtime == 0 || j.submit < 0 {
            return None;
        }
        let req_time = j.requested_time().unwrap_or(runtime).max(runtime);
        Some(JobSpec {
            id: JobId(j.job_id),
            submit: SimTime(j.submit as u64),
            req_nodes: spec.nodes_for_procs(procs).max(1),
            req_procs: procs,
            req_time,
            static_runtime: runtime,
            malleable,
            ranks_per_node: ranks_per_node.max(1),
            app: None,
            tenant: j.user.max(0) as u32,
            project: j.group.max(0) as u32,
        })
    }
}

/// Dynamic state of a job that is currently executing.
#[derive(Debug, Clone)]
pub struct RunningJob {
    pub start: SimTime,
    /// Nodes allocated (whole-node granularity), ascending.
    pub nodes: Vec<NodeId>,
    /// Cores held per node, parallel to `nodes`.
    pub cores: Vec<u32>,
    /// Cores per node the job was sized for (full node width).
    pub full_cores: u32,
    /// Work completed, in seconds of full-rate execution.
    pub work_done: f64,
    /// Current progress rate (1.0 = full speed).
    pub rate: f64,
    /// Instant `work_done` was last banked.
    pub last_banked: SimTime,
    /// Generation counter for end events (stale events are ignored).
    pub end_gen: u64,
    /// Requested-time-based predicted end, used by profiles/reservations and
    /// the finish-inside-mates constraint. Extended when the job is shrunk.
    pub req_end: SimTime,
    /// Jobs this one was co-scheduled with (it is the *backfilled* job).
    pub mates: Vec<JobId>,
    /// Jobs this one lent cores to (it is a *mate*).
    pub lent_to: Vec<JobId>,
    /// True if the job ever ran shrunk (for metrics).
    pub ever_shrunk: bool,
    /// True if this job was started through malleable backfill.
    pub malleable_backfilled: bool,
    /// Contribution currently registered with the energy meter
    /// (`cores × cpu-utilisation`); maintained by the simulator's
    /// incremental energy accounting.
    pub energy_weight: f64,
}

impl RunningJob {
    /// Starts a job at `now` on the given allocation, full rate.
    pub fn new(now: SimTime, nodes: Vec<NodeId>, cores: Vec<u32>, full_cores: u32, req_time: u64) -> Self {
        debug_assert_eq!(nodes.len(), cores.len());
        RunningJob {
            start: now,
            nodes,
            cores,
            full_cores,
            work_done: 0.0,
            rate: 1.0,
            last_banked: now,
            end_gen: 0,
            req_end: now.after(req_time),
            mates: Vec::new(),
            lent_to: Vec::new(),
            ever_shrunk: false,
            malleable_backfilled: false,
            energy_weight: 0.0,
        }
    }

    /// Accumulates progress up to `now` at the current rate.
    pub fn bank(&mut self, now: SimTime) {
        let dt = now.since(self.last_banked);
        if dt > 0 {
            self.work_done += self.rate * dt as f64;
            self.last_banked = now;
        }
    }

    /// Remaining work given the job's total (its static runtime).
    pub fn remaining_work(&self, total: u64) -> f64 {
        (total as f64 - self.work_done).max(0.0)
    }

    /// Predicted completion instant from `now` at the current rate.
    /// `rate == 0` never completes (returns `SimTime::MAX`).
    pub fn predicted_end(&self, now: SimTime, total: u64) -> SimTime {
        debug_assert!(now >= self.last_banked);
        let pending = now.since(self.last_banked) as f64 * self.rate;
        let rem = (total as f64 - self.work_done - pending).max(0.0);
        if rem == 0.0 {
            return now;
        }
        if self.rate <= 0.0 {
            return SimTime::MAX;
        }
        now.after((rem / self.rate).ceil() as u64)
    }

    /// Changes the progress rate at `now` (banks first) and bumps the end
    /// generation so any armed end event becomes stale.
    pub fn set_rate(&mut self, now: SimTime, rate: f64) {
        self.bank(now);
        self.rate = rate.clamp(0.0, 1.0 + 1e-9);
        self.end_gen += 1;
        if rate < 1.0 - 1e-12 {
            self.ever_shrunk = true;
        }
    }

    /// Fraction of its full width the job holds on each node.
    pub fn node_fractions(&self) -> impl Iterator<Item = f64> + '_ {
        self.cores
            .iter()
            .map(move |&c| c as f64 / self.full_cores as f64)
    }

    /// Total cores currently held.
    pub fn total_cores(&self) -> u64 {
        self.cores.iter().map(|&c| c as u64).sum()
    }

    /// Whether the job currently holds its full allocation everywhere.
    pub fn at_full_allocation(&self) -> bool {
        self.cores.iter().all(|&c| c == self.full_cores)
    }
}

/// Lifecycle of a job inside the simulator.
#[derive(Debug, Clone)]
pub enum JobState {
    /// Submitted, waiting in the queue.
    Pending,
    /// Executing.
    Running(RunningJob),
    /// Finished; outcome recorded.
    Done,
    /// Withdrawn while pending (online `scancel`); no outcome recorded.
    Cancelled,
}

/// One job: spec plus current state.
#[derive(Debug, Clone)]
pub struct Job {
    pub spec: JobSpec,
    pub state: JobState,
}

impl Job {
    pub fn running(&self) -> Option<&RunningJob> {
        match &self.state {
            JobState::Running(r) => Some(r),
            _ => None,
        }
    }

    pub fn running_mut(&mut self) -> Option<&mut RunningJob> {
        match &mut self.state {
            JobState::Running(r) => Some(r),
            _ => None,
        }
    }

    pub fn is_pending(&self) -> bool {
        matches!(self.state, JobState::Pending)
    }

    pub fn is_cancelled(&self) -> bool {
        matches!(self.state, JobState::Cancelled)
    }

    /// Lifecycle phase as a wire-friendly label.
    pub fn state_label(&self) -> &'static str {
        match self.state {
            JobState::Pending => "pending",
            JobState::Running(_) => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
        }
    }
}

/// Final record of one completed job (input to `sched-metrics`).
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    pub id: JobId,
    pub submit: SimTime,
    pub start: SimTime,
    pub end: SimTime,
    /// Whole nodes held.
    pub nodes: u32,
    /// Requested processors (trace value).
    pub procs: u64,
    pub req_time: u64,
    /// Static (trace) runtime — the slowdown denominator.
    pub static_runtime: u64,
    /// Started through malleable backfill.
    pub malleable_backfilled: bool,
    /// Was shrunk at least once as a mate.
    pub was_mate: bool,
    pub app: Option<AppId>,
    /// Owning tenant (0 = anonymous/untenanted).
    pub tenant: u32,
}

impl JobOutcome {
    pub fn wait(&self) -> u64 {
        self.start.since(self.submit)
    }

    /// Actual wall-clock runtime (includes malleability stretch).
    pub fn runtime(&self) -> u64 {
        self.end.since(self.start)
    }

    pub fn response(&self) -> u64 {
        self.end.since(self.submit)
    }

    /// Paper metric: response time / *static* execution time.
    pub fn slowdown(&self) -> f64 {
        self.response() as f64 / self.static_runtime.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rj(now: u64) -> RunningJob {
        RunningJob::new(
            SimTime(now),
            vec![NodeId(0), NodeId(1)],
            vec![8, 8],
            8,
            1000,
        )
    }

    #[test]
    fn full_rate_job_completes_on_time() {
        let j = rj(100);
        assert_eq!(j.predicted_end(SimTime(100), 500), SimTime(600));
        assert!(j.at_full_allocation());
    }

    #[test]
    fn banking_accumulates_work() {
        let mut j = rj(0);
        j.bank(SimTime(300));
        assert!((j.work_done - 300.0).abs() < 1e-9);
        assert_eq!(j.remaining_work(500), 200.0);
        assert_eq!(j.predicted_end(SimTime(300), 500), SimTime(500));
    }

    #[test]
    fn shrink_halves_rate_and_doubles_remaining() {
        let mut j = rj(0);
        j.bank(SimTime(250)); // 250 of 500 done
        j.set_rate(SimTime(250), 0.5);
        assert!(j.ever_shrunk);
        assert_eq!(j.end_gen, 1);
        // Remaining 250 work at rate 0.5 → 500 wall seconds.
        assert_eq!(j.predicted_end(SimTime(250), 500), SimTime(750));
    }

    #[test]
    fn expand_back_restores_rate() {
        let mut j = rj(0);
        j.set_rate(SimTime(0), 0.5);
        j.bank(SimTime(100)); // 50 work done
        j.set_rate(SimTime(100), 1.0);
        assert_eq!(j.predicted_end(SimTime(100), 500), SimTime(550));
        assert_eq!(j.end_gen, 2);
    }

    #[test]
    fn predicted_end_accounts_for_unbanked_time() {
        let mut j = rj(0);
        j.set_rate(SimTime(0), 0.5);
        // Query at t=100 without banking: 50 work pending.
        assert_eq!(j.predicted_end(SimTime(100), 500), SimTime(1000));
    }

    #[test]
    fn zero_rate_never_completes() {
        let mut j = rj(0);
        j.set_rate(SimTime(0), 0.0);
        assert_eq!(j.predicted_end(SimTime(10), 500), SimTime::MAX);
    }

    #[test]
    fn finished_work_predicts_now() {
        let mut j = rj(0);
        j.bank(SimTime(500));
        assert_eq!(j.predicted_end(SimTime(500), 500), SimTime(500));
        assert_eq!(j.remaining_work(500), 0.0);
    }

    #[test]
    fn node_fractions_reflect_mixed_allocations() {
        let mut j = rj(0);
        j.cores = vec![4, 8];
        let fr: Vec<f64> = j.node_fractions().collect();
        assert_eq!(fr, vec![0.5, 1.0]);
        assert!(!j.at_full_allocation());
        assert_eq!(j.total_cores(), 12);
    }

    #[test]
    fn outcome_metrics() {
        let o = JobOutcome {
            id: JobId(1),
            submit: SimTime(100),
            start: SimTime(400),
            end: SimTime(1400),
            nodes: 2,
            procs: 16,
            req_time: 2000,
            static_runtime: 500,
            malleable_backfilled: true,
            was_mate: false,
            app: None,
            tenant: 0,
        };
        assert_eq!(o.wait(), 300);
        assert_eq!(o.runtime(), 1000);
        assert_eq!(o.response(), 1300);
        assert!((o.slowdown() - 2.6).abs() < 1e-12);
    }

    #[test]
    fn from_swf_rounds_to_whole_nodes() {
        let spec = cluster::ClusterSpec::cea_curie(); // 16-core nodes
        let mut sj = swf::SwfJob::for_simulation(7, 50, 600, 17, 1200);
        let js = JobSpec::from_swf(&sj, &spec, true, 2).unwrap();
        assert_eq!(js.req_nodes, 2);
        assert_eq!(js.req_procs, 17);
        assert_eq!(js.req_time, 1200);
        // `for_simulation` leaves user/group unknown (−1) → anonymous.
        assert_eq!((js.tenant, js.project), (0, 0));
        // Unusable records rejected:
        sj.run_time = 0;
        assert!(JobSpec::from_swf(&sj, &spec, true, 2).is_none());
    }

    #[test]
    fn from_swf_floors_req_time_at_runtime() {
        let spec = cluster::ClusterSpec::cea_curie();
        let mut sj = swf::SwfJob::for_simulation(7, 0, 600, 16, 30);
        sj.req_time = 30; // under-estimate
        let js = JobSpec::from_swf(&sj, &spec, false, 1).unwrap();
        assert_eq!(js.req_time, 600);
    }
}
