//! Resource-availability bookkeeping for backfill.
//!
//! Two pieces:
//!
//! * [`ReleaseMap`] — incrementally maintained map from *predicted node
//!   release instants* (based on requested times) to node counts. Updated in
//!   `O(log n)` at every placement/end/reconfiguration so a scheduling pass
//!   never scans the whole machine.
//! * [`Profile`] — the per-pass step function of free whole nodes over
//!   future time ("the map of jobs reservations in time", paper §3.1). Both
//!   backfill variants and SD-Policy's `static_end` estimate query it via
//!   [`Profile::earliest_start`]; conservative mode also writes reservations
//!   back into it.

use cluster::NodeId;
use simkit::SimTime;
use std::collections::BTreeMap;

/// Predicted release instants of busy nodes.
#[derive(Debug, Clone)]
pub struct ReleaseMap {
    /// Per node: predicted instant it becomes empty (`None` = empty now).
    node_release: Vec<Option<SimTime>>,
    /// release instant → number of nodes releasing then.
    counts: BTreeMap<SimTime, u32>,
}

impl ReleaseMap {
    pub fn new(nodes: u32) -> Self {
        ReleaseMap {
            node_release: vec![None; nodes as usize],
            counts: BTreeMap::new(),
        }
    }

    /// Records that `node` is predicted to become empty at `when`
    /// (`None` = the node is empty now).
    pub fn set_release(&mut self, node: NodeId, when: Option<SimTime>) {
        let slot = &mut self.node_release[node.0 as usize];
        if *slot == when {
            return;
        }
        if let Some(old) = slot.take() {
            match self.counts.get_mut(&old) {
                Some(c) if *c > 1 => *c -= 1,
                _ => {
                    self.counts.remove(&old);
                }
            }
        }
        if let Some(new) = when {
            *counts_entry(&mut self.counts, new) += 1;
        }
        *slot = when;
    }

    pub fn release_of(&self, node: NodeId) -> Option<SimTime> {
        self.node_release[node.0 as usize]
    }

    /// Busy nodes tracked.
    pub fn busy_count(&self) -> u32 {
        self.counts.values().sum()
    }

    /// `(instant, nodes)` pairs in ascending order, skipping instants not
    /// after `now` (those nodes are effectively free already).
    pub fn upcoming(&self, now: SimTime) -> impl Iterator<Item = (SimTime, u32)> + '_ {
        self.counts
            .range((
                std::ops::Bound::Excluded(now),
                std::ops::Bound::Unbounded,
            ))
            .map(|(&t, &c)| (t, c))
    }

    /// Nodes whose predicted release is at or before `now` (late jobs —
    /// running past their request would be killed by real SLURM; the
    /// simulator keeps them and treats them as "releasing imminently").
    pub fn overdue(&self, now: SimTime) -> u32 {
        self.counts.range(..=now).map(|(_, &c)| c).sum()
    }
}

fn counts_entry(map: &mut BTreeMap<SimTime, u32>, key: SimTime) -> &mut u32 {
    map.entry(key).or_insert(0)
}

/// Step function of free whole nodes over `[now, ∞)`.
///
/// `free[i]` holds during `[times[i], times[i+1])`; the last value extends
/// forever. Reservations subtract capacity over an interval.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    times: Vec<SimTime>,
    free: Vec<i64>,
}

impl Profile {
    /// Builds the profile at `now` given currently free nodes and the
    /// release map. Overdue releases are treated as released at `now + 1`
    /// (imminent but not instant, so the present remains truthful).
    pub fn build(now: SimTime, free_now: u32, releases: &ReleaseMap) -> Profile {
        let mut times = vec![now];
        let mut free = vec![free_now as i64];
        let overdue = releases.overdue(now);
        if overdue > 0 {
            times.push(now.after(1));
            free.push(free_now as i64 + overdue as i64);
        }
        for (t, c) in releases.upcoming(now) {
            let cur = *free.last().unwrap();
            if *times.last().unwrap() == t {
                *free.last_mut().unwrap() = cur + c as i64;
            } else {
                times.push(t);
                free.push(cur + c as i64);
            }
        }
        Profile { times, free }
    }

    /// A profile with constant capacity (mostly for tests).
    pub fn flat(now: SimTime, free: u32) -> Profile {
        Profile {
            times: vec![now],
            free: vec![free as i64],
        }
    }

    pub fn now(&self) -> SimTime {
        self.times[0]
    }

    /// Free nodes at instant `t` (clamped to the profile's domain).
    pub fn free_at(&self, t: SimTime) -> i64 {
        match self.times.binary_search(&t) {
            Ok(i) => self.free[i],
            Err(0) => self.free[0],
            Err(i) => self.free[i - 1],
        }
    }

    /// Minimum free nodes over `[start, start + duration)`.
    pub fn min_free_in(&self, start: SimTime, duration: u64) -> i64 {
        let end = start.after(duration.max(1));
        let mut idx = match self.times.binary_search(&start) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        let mut min = self.free[idx];
        idx += 1;
        while idx < self.times.len() && self.times[idx] < end {
            min = min.min(self.free[idx]);
            idx += 1;
        }
        min
    }

    /// Earliest instant ≥ `after` at which `nodes` stay free for
    /// `duration` seconds.
    pub fn earliest_start(&self, nodes: u32, duration: u64, after: SimTime) -> SimTime {
        let need = nodes as i64;
        // Candidate instants: `after` itself and every later step point.
        let first_idx = match self.times.binary_search(&after) {
            Ok(i) => i,
            Err(i) => i,
        };
        if self.min_free_in(after, duration) >= need {
            return after;
        }
        for i in first_idx..self.times.len() {
            let t = self.times[i];
            if t <= after {
                continue;
            }
            if self.free[i] >= need && self.min_free_in(t, duration) >= need {
                return t;
            }
        }
        // After the last step everything is released; if still insufficient
        // the job can never run (bigger than the machine) — `SimTime::MAX`.
        let last_t = *self.times.last().unwrap();
        if *self.free.last().unwrap() >= need {
            last_t.max(after)
        } else {
            SimTime::MAX
        }
    }

    /// Subtracts `nodes` over `[start, start + duration)` (a reservation or
    /// an actual start).
    pub fn reserve(&mut self, start: SimTime, duration: u64, nodes: u32) {
        let end = start.after(duration.max(1));
        self.split_at(start);
        if end != SimTime::MAX {
            self.split_at(end);
        }
        for i in 0..self.times.len() {
            if self.times[i] >= start && (end == SimTime::MAX || self.times[i] < end) {
                self.free[i] -= nodes as i64;
            }
        }
    }

    fn split_at(&mut self, t: SimTime) {
        if t < self.times[0] {
            return;
        }
        match self.times.binary_search(&t) {
            Ok(_) => {}
            Err(i) => {
                self.times.insert(i, t);
                self.free.insert(i, self.free[i - 1]);
            }
        }
    }

    /// Number of step points (size/perf diagnostics).
    pub fn len(&self) -> usize {
        self.times.len()
    }

    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// True if the profile never goes negative (no oversubscription by
    /// reservations) — a property the conservative scheduler must maintain.
    pub fn is_consistent(&self) -> bool {
        self.free.iter().all(|&f| f >= 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn release_map_counts_nodes() {
        let mut rm = ReleaseMap::new(4);
        rm.set_release(NodeId(0), Some(SimTime(100)));
        rm.set_release(NodeId(1), Some(SimTime(100)));
        rm.set_release(NodeId(2), Some(SimTime(50)));
        assert_eq!(rm.busy_count(), 3);
        let ups: Vec<_> = rm.upcoming(SimTime(0)).collect();
        assert_eq!(ups, vec![(SimTime(50), 1), (SimTime(100), 2)]);
    }

    #[test]
    fn release_map_update_moves_node() {
        let mut rm = ReleaseMap::new(2);
        rm.set_release(NodeId(0), Some(SimTime(100)));
        rm.set_release(NodeId(0), Some(SimTime(200)));
        assert_eq!(rm.release_of(NodeId(0)), Some(SimTime(200)));
        assert_eq!(rm.upcoming(SimTime(0)).collect::<Vec<_>>(), vec![(SimTime(200), 1)]);
        rm.set_release(NodeId(0), None);
        assert_eq!(rm.busy_count(), 0);
    }

    #[test]
    fn overdue_nodes_counted() {
        let mut rm = ReleaseMap::new(2);
        rm.set_release(NodeId(0), Some(SimTime(10)));
        rm.set_release(NodeId(1), Some(SimTime(50)));
        assert_eq!(rm.overdue(SimTime(20)), 1);
        assert_eq!(rm.upcoming(SimTime(20)).count(), 1);
    }

    #[test]
    fn profile_build_steps_up_at_releases() {
        let mut rm = ReleaseMap::new(8);
        rm.set_release(NodeId(0), Some(SimTime(100)));
        rm.set_release(NodeId(1), Some(SimTime(100)));
        rm.set_release(NodeId(2), Some(SimTime(300)));
        let p = Profile::build(SimTime(0), 5, &rm);
        assert_eq!(p.free_at(SimTime(0)), 5);
        assert_eq!(p.free_at(SimTime(99)), 5);
        assert_eq!(p.free_at(SimTime(100)), 7);
        assert_eq!(p.free_at(SimTime(300)), 8);
    }

    #[test]
    fn earliest_start_now_when_room() {
        let p = Profile::flat(SimTime(10), 4);
        assert_eq!(p.earliest_start(4, 100, SimTime(10)), SimTime(10));
        assert_eq!(p.earliest_start(5, 100, SimTime(10)), SimTime::MAX);
    }

    #[test]
    fn earliest_start_waits_for_release() {
        let mut rm = ReleaseMap::new(4);
        rm.set_release(NodeId(0), Some(SimTime(500)));
        rm.set_release(NodeId(1), Some(SimTime(500)));
        let p = Profile::build(SimTime(0), 2, &rm);
        assert_eq!(p.earliest_start(2, 100, SimTime(0)), SimTime(0));
        assert_eq!(p.earliest_start(3, 100, SimTime(0)), SimTime(500));
    }

    #[test]
    fn reservation_blocks_window() {
        let mut p = Profile::flat(SimTime(0), 4);
        p.reserve(SimTime(100), 200, 3);
        assert_eq!(p.free_at(SimTime(50)), 4);
        assert_eq!(p.free_at(SimTime(100)), 1);
        assert_eq!(p.free_at(SimTime(299)), 1);
        assert_eq!(p.free_at(SimTime(300)), 4);
        assert!(p.is_consistent());
        // A 2-node job of 100 s must now wait until the reservation ends.
        assert_eq!(p.earliest_start(2, 100, SimTime(60)), SimTime(300));
        // …but fits before it if short enough.
        assert_eq!(p.earliest_start(2, 40, SimTime(60)), SimTime(60));
    }

    #[test]
    fn min_free_in_spans_steps() {
        let mut p = Profile::flat(SimTime(0), 10);
        p.reserve(SimTime(50), 50, 6);
        assert_eq!(p.min_free_in(SimTime(0), 200), 4);
        assert_eq!(p.min_free_in(SimTime(0), 50), 10);
        assert_eq!(p.min_free_in(SimTime(100), 10), 10);
    }

    #[test]
    fn chained_reservations_compose() {
        let mut p = Profile::flat(SimTime(0), 4);
        // Head job reserves everything at t=0 for 100s.
        p.reserve(SimTime(0), 100, 4);
        // Next job's earliest start is 100.
        let t = p.earliest_start(2, 50, SimTime(0));
        assert_eq!(t, SimTime(100));
        p.reserve(t, 50, 2);
        // A 2-node job can still run alongside it.
        assert_eq!(p.earliest_start(2, 50, SimTime(0)), SimTime(100));
        // But a 3-node job waits for it to finish.
        assert_eq!(p.earliest_start(3, 50, SimTime(0)), SimTime(150));
        assert!(p.is_consistent());
    }

    #[test]
    fn overdue_release_modelled_imminent() {
        let mut rm = ReleaseMap::new(2);
        rm.set_release(NodeId(0), Some(SimTime(10)));
        let p = Profile::build(SimTime(100), 1, &rm);
        assert_eq!(p.free_at(SimTime(100)), 1);
        assert_eq!(p.free_at(SimTime(101)), 2);
    }

    #[test]
    fn profile_build_merges_simultaneous_releases() {
        let mut rm = ReleaseMap::new(4);
        for n in 0..3 {
            rm.set_release(NodeId(n), Some(SimTime(100)));
        }
        let p = Profile::build(SimTime(0), 1, &rm);
        assert_eq!(p.len(), 2);
        assert_eq!(p.free_at(SimTime(100)), 4);
    }
}
