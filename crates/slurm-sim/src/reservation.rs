//! Resource-availability bookkeeping for backfill.
//!
//! Two pieces:
//!
//! * [`ReleaseMap`] — incrementally maintained map from *predicted node
//!   release instants* (based on requested times) to node counts. Updated in
//!   `O(log n)` at every placement/end/reconfiguration so a scheduling pass
//!   never scans the whole machine.
//! * [`Profile`] — the per-pass step function of free whole nodes over
//!   future time ("the map of jobs reservations in time", paper §3.1). Both
//!   backfill variants and SD-Policy's `static_end` estimate query it via
//!   [`Profile::earliest_start`]; conservative mode also writes reservations
//!   back into it.

use cluster::NodeId;
use simkit::SimTime;
use std::collections::BTreeMap;

/// Predicted release instants of busy nodes.
#[derive(Debug, Clone)]
pub struct ReleaseMap {
    /// Per node: predicted instant it becomes empty (`None` = empty now).
    node_release: Vec<Option<SimTime>>,
    /// release instant → number of nodes releasing then.
    counts: BTreeMap<SimTime, u32>,
    /// Busy nodes tracked (maintained counter; the BTreeMap is never summed).
    busy: u32,
}

impl ReleaseMap {
    pub fn new(nodes: u32) -> Self {
        ReleaseMap {
            node_release: vec![None; nodes as usize],
            counts: BTreeMap::new(),
            busy: 0,
        }
    }

    /// Records that `node` is predicted to become empty at `when`
    /// (`None` = the node is empty now).
    pub fn set_release(&mut self, node: NodeId, when: Option<SimTime>) {
        let slot = &mut self.node_release[node.0 as usize];
        if *slot == when {
            return;
        }
        if let Some(old) = slot.take() {
            self.busy -= 1;
            match self.counts.get_mut(&old) {
                Some(c) if *c > 1 => *c -= 1,
                _ => {
                    self.counts.remove(&old);
                }
            }
        }
        if let Some(new) = when {
            self.busy += 1;
            *counts_entry(&mut self.counts, new) += 1;
        }
        *slot = when;
    }

    pub fn release_of(&self, node: NodeId) -> Option<SimTime> {
        self.node_release[node.0 as usize]
    }

    /// Busy nodes tracked (O(1): a counter kept by [`ReleaseMap::set_release`]).
    pub fn busy_count(&self) -> u32 {
        self.busy
    }

    /// `(instant, nodes)` pairs in ascending order, skipping instants not
    /// after `now` (those nodes are effectively free already).
    pub fn upcoming(&self, now: SimTime) -> impl Iterator<Item = (SimTime, u32)> + '_ {
        self.counts
            .range((
                std::ops::Bound::Excluded(now),
                std::ops::Bound::Unbounded,
            ))
            .map(|(&t, &c)| (t, c))
    }

    /// Per-node predicted releases in node order, for persistence.
    pub fn node_releases(&self) -> &[Option<SimTime>] {
        &self.node_release
    }

    /// Rebuilds a map from per-node releases; the instant→count index and
    /// the busy counter are re-derived.
    pub fn from_releases(node_release: &[Option<SimTime>]) -> ReleaseMap {
        let mut rm = ReleaseMap::new(node_release.len() as u32);
        for (i, &when) in node_release.iter().enumerate() {
            rm.set_release(NodeId(i as u32), when);
        }
        rm
    }

    /// Nodes whose predicted release is at or before `now` (late jobs —
    /// running past their request would be killed by real SLURM; the
    /// simulator keeps them and treats them as "releasing imminently").
    pub fn overdue(&self, now: SimTime) -> u32 {
        self.counts.range(..=now).map(|(_, &c)| c).sum()
    }
}

fn counts_entry(map: &mut BTreeMap<SimTime, u32>, key: SimTime) -> &mut u32 {
    map.entry(key).or_insert(0)
}

/// Step function of free whole nodes over `[now, ∞)`.
///
/// `free[i]` holds during `[times[i], times[i+1])`; the last value extends
/// forever. Reservations subtract capacity over an interval.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    times: Vec<SimTime>,
    free: Vec<i64>,
}

/// An empty placeholder (no domain). Only used as the resting value of
/// reusable pass buffers; every real profile starts from [`Profile::build`],
/// [`Profile::flat`] or a `clone_from` of a live profile.
impl Default for Profile {
    fn default() -> Self {
        Profile {
            times: Vec::new(),
            free: Vec::new(),
        }
    }
}

impl Profile {
    /// Builds the profile at `now` given currently free nodes and the
    /// release map. Overdue releases are treated as released at `now + 1`
    /// (imminent but not instant, so the present remains truthful).
    pub fn build(now: SimTime, free_now: u32, releases: &ReleaseMap) -> Profile {
        let mut times = vec![now];
        let mut free = vec![free_now as i64];
        let overdue = releases.overdue(now);
        if overdue > 0 {
            times.push(now.after(1));
            free.push(free_now as i64 + overdue as i64);
        }
        for (t, c) in releases.upcoming(now) {
            let cur = *free.last().unwrap();
            if *times.last().unwrap() == t {
                *free.last_mut().unwrap() = cur + c as i64;
            } else {
                times.push(t);
                free.push(cur + c as i64);
            }
        }
        Profile { times, free }
    }

    /// A profile with constant capacity (mostly for tests).
    pub fn flat(now: SimTime, free: u32) -> Profile {
        Profile {
            times: vec![now],
            free: vec![free as i64],
        }
    }

    pub fn now(&self) -> SimTime {
        self.times[0]
    }

    /// The raw `(times, free)` slot arrays — read-only view for backends
    /// that index the canonical slot list (see `slot_tree`).
    pub(crate) fn steps(&self) -> (&[SimTime], &[i64]) {
        (&self.times, &self.free)
    }

    /// Free nodes at instant `t` (clamped to the profile's domain).
    pub fn free_at(&self, t: SimTime) -> i64 {
        match self.times.binary_search(&t) {
            Ok(i) => self.free[i],
            Err(0) => self.free[0],
            Err(i) => self.free[i - 1],
        }
    }

    /// Minimum free nodes over `[start, start + duration)`.
    pub fn min_free_in(&self, start: SimTime, duration: u64) -> i64 {
        let end = start.after(duration.max(1));
        let mut idx = match self.times.binary_search(&start) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        let mut min = self.free[idx];
        idx += 1;
        while idx < self.times.len() && self.times[idx] < end {
            min = min.min(self.free[idx]);
            idx += 1;
        }
        min
    }

    /// Earliest instant ≥ `after` at which `nodes` stay free for
    /// `duration` seconds.
    ///
    /// Single forward sweep over the step points (`O(len)`): a candidate
    /// start (`after` or a later step point) is carried along and abandoned
    /// as soon as a low-capacity segment intersects its window; the next
    /// viable step point becomes the new candidate. Equivalent to probing
    /// every candidate with [`Profile::min_free_in`] (the quadratic
    /// `earliest_start_legacy`, kept below as a test-only oracle).
    pub fn earliest_start(&self, nodes: u32, duration: u64, after: SimTime) -> SimTime {
        let _t = crate::timing::scope(&crate::timing::EARLIEST_START);
        let need = nodes as i64;
        let dur = duration.max(1);
        let n = self.times.len();
        // Segment containing `after` (clamped to the profile's domain).
        let init = match self.times.binary_search(&after) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        let mut i = init;
        'candidates: loop {
            // Phase A: find the next viable segment — its step point (or
            // `after` itself for the initial segment) is the candidate.
            while self.free[i] < need {
                i += 1;
                if i >= n {
                    // Ran out of steps without a viable candidate: the job
                    // never fits (bigger than the machine).
                    return SimTime::MAX;
                }
            }
            let cand = if i == init { after } else { self.times[i] };
            let close = cand.after(dur);
            // Phase B: capacity must hold until the window closes.
            let mut j = i + 1;
            loop {
                if j >= n || self.times[j] >= close {
                    return cand;
                }
                if self.free[j] < need {
                    // The blocking segment invalidates every candidate up to
                    // its step point; restart the search from it.
                    i = j;
                    continue 'candidates;
                }
                j += 1;
            }
        }
    }

    /// Whether `nodes` stay free for `duration` seconds starting *now* —
    /// exactly `earliest_start(nodes, duration, now) == now`, but with an
    /// early exit at the first blocking segment. Most queued jobs in a
    /// congested system are blocked immediately, so this probe is O(1) in
    /// the common case while a full `earliest_start` walks the profile to
    /// find *when* the job would fit.
    pub fn can_start_now(&self, nodes: u32, duration: u64, now: SimTime) -> bool {
        let need = nodes as i64;
        let dur = duration.max(1);
        let mut i = match self.times.binary_search(&now) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        if self.free[i] < need {
            return false;
        }
        let close = now.after(dur);
        i += 1;
        while i < self.times.len() && self.times[i] < close {
            if self.free[i] < need {
                return false;
            }
            i += 1;
        }
        true
    }

    /// The original candidate-probing `earliest_start` (`O(len²)` worst
    /// case). Dead on the hot path since the `Availability` trait landed —
    /// every backend answers through its own `earliest_start` — so it
    /// survives only as the oracle for the equivalence property test
    /// below.
    #[cfg(test)]
    fn earliest_start_legacy(&self, nodes: u32, duration: u64, after: SimTime) -> SimTime {
        let need = nodes as i64;
        // Candidate instants: `after` itself and every later step point.
        let first_idx = match self.times.binary_search(&after) {
            Ok(i) => i,
            Err(i) => i,
        };
        if self.min_free_in(after, duration) >= need {
            return after;
        }
        for i in first_idx..self.times.len() {
            let t = self.times[i];
            if t <= after {
                continue;
            }
            if self.free[i] >= need && self.min_free_in(t, duration) >= need {
                return t;
            }
        }
        // After the last step everything is released; if still insufficient
        // the job can never run (bigger than the machine) — `SimTime::MAX`.
        let last_t = *self.times.last().unwrap();
        if *self.free.last().unwrap() >= need {
            last_t.max(after)
        } else {
            SimTime::MAX
        }
    }

    /// Subtracts `nodes` over `[start, start + duration)` (a reservation or
    /// an actual start).
    ///
    /// Hot path: both split points are spliced in with a single tail shift
    /// per vector (instead of two independent `Vec::insert` memmoves), then
    /// the subtraction touches only the window's segments.
    pub fn reserve(&mut self, start: SimTime, duration: u64, nodes: u32) {
        let end = start.after(duration.max(1));
        let t0 = self.times[0];
        // Where the two boundaries sit in the current arrays, and whether a
        // step must be materialised (instants at/before the domain start are
        // clamped, exactly like the original split_at).
        let (ins_start, s_idx) = if start <= t0 {
            (false, 0)
        } else {
            match self.times.binary_search(&start) {
                Ok(i) => (false, i),
                Err(i) => (true, i),
            }
        };
        let (ins_end, e_idx) = if end == SimTime::MAX {
            (false, usize::MAX)
        } else if end <= t0 {
            (false, 0)
        } else {
            match self.times.binary_search(&end) {
                Ok(i) => (false, i),
                Err(i) => (true, i),
            }
        };
        // Materialise the splits — at most one tail shift per vector — and
        // derive the final half-open window of indices to subtract over.
        let window = match (ins_start, ins_end) {
            (true, true) => {
                let (i1, i2) = (s_idx, e_idx);
                debug_assert!(1 <= i1 && i1 <= i2);
                let old = self.times.len();
                // Each new step inherits the level of the segment it splits.
                let v1 = self.free[i1 - 1];
                let v2 = self.free[i2 - 1];
                // Grow by two, then shift each region exactly once:
                // [i2..old) moves by 2, [i1..i2) moves by 1.
                self.times.resize(old + 2, SimTime::ZERO);
                self.free.resize(old + 2, 0);
                self.times.copy_within(i2..old, i2 + 2);
                self.free.copy_within(i2..old, i2 + 2);
                self.times.copy_within(i1..i2, i1 + 1);
                self.free.copy_within(i1..i2, i1 + 1);
                self.times[i1] = start;
                self.free[i1] = v1;
                self.times[i2 + 1] = end;
                self.free[i2 + 1] = v2;
                i1..i2 + 1
            }
            (true, false) => {
                self.times.insert(s_idx, start);
                self.free.insert(s_idx, self.free[s_idx - 1]);
                let upper = if e_idx == usize::MAX {
                    self.times.len()
                } else {
                    e_idx + 1 // shifted by the start insert (end > start)
                };
                s_idx..upper
            }
            (false, true) => {
                self.times.insert(e_idx, end);
                self.free.insert(e_idx, self.free[e_idx - 1]);
                s_idx..e_idx
            }
            (false, false) => s_idx..e_idx.min(self.times.len()),
        };
        for f in &mut self.free[window] {
            *f -= nodes as i64;
        }
    }

    fn split_at(&mut self, t: SimTime) {
        if t < self.times[0] {
            return;
        }
        match self.times.binary_search(&t) {
            Ok(_) => {}
            Err(i) => {
                self.times.insert(i, t);
                self.free.insert(i, self.free[i - 1]);
            }
        }
    }

    // ------------------------------------------------------------------
    // Incremental maintenance (the cached availability profile)
    // ------------------------------------------------------------------

    /// Moves the profile's origin forward to `now` without any state change:
    /// leading steps collapse, and releases whose instant has passed while
    /// the node is still busy become *overdue* — shown at `now + 1`, exactly
    /// as a fresh [`Profile::build`] at `now` would show them.
    pub fn advance_to(&mut self, now: SimTime) {
        if now <= self.times[0] {
            return;
        }
        let k = self.times.partition_point(|&t| t <= now);
        debug_assert!(k >= 1);
        // Free *now* is unchanged (nothing happened, time only passed);
        // everything the collapsed steps promised is overdue.
        let base = self.free[0];
        let overdue_level = self.free[k - 1];
        self.times.drain(..k);
        self.free.drain(..k);
        let bump = now.after(1);
        if overdue_level > base && self.times.first() != Some(&bump) {
            self.times.insert(0, bump);
            self.free.insert(0, overdue_level);
        }
        self.times.insert(0, now);
        self.free.insert(0, base);
    }

    /// Applies one node's predicted-release change (`old` → `new`, `None` =
    /// the node is empty) as a delta, keeping the profile exactly equal to a
    /// fresh [`Profile::build`] against the updated release map. The caller
    /// must pass the current instant; the profile is advanced to it first.
    pub fn patch_release(&mut self, now: SimTime, old: Option<SimTime>, new: Option<SimTime>) {
        self.patch_release_many(now, old, new, 1);
    }

    /// [`Profile::patch_release`] for `count` nodes making the *same*
    /// transition at once — a whole-job start or completion touches every
    /// allocated node identically, so the simulator groups them into one
    /// O(len) patch instead of one per node (full-Curie jobs span dozens of
    /// nodes).
    pub fn patch_release_many(
        &mut self,
        now: SimTime,
        old: Option<SimTime>,
        new: Option<SimTime>,
        count: u32,
    ) {
        let count = count as i64;
        self.advance_to(now);
        let eff = |w: SimTime| if w <= now { now.after(1) } else { w };
        match old {
            // The nodes were empty: they contributed to free from `now` on.
            None => self.add_from(now, -count),
            Some(w) => self.add_from(eff(w), -count),
        }
        match new {
            None => self.add_from(now, count),
            Some(w) => self.add_from(eff(w), count),
        }
        self.compact();
    }

    /// Adds `delta` free nodes over `[t, ∞)`.
    fn add_from(&mut self, t: SimTime, delta: i64) {
        self.split_at(t);
        let from = self.times.partition_point(|&x| x < t);
        for f in &mut self.free[from..] {
            *f += delta;
        }
    }

    /// Removes redundant step points (equal adjacent values) so the
    /// representation stays canonical — patched profiles compare equal
    /// (`PartialEq`) to freshly built ones.
    pub(crate) fn compact(&mut self) {
        let mut w = 1;
        for r in 1..self.times.len() {
            if self.free[r] != self.free[w - 1] {
                self.times[w] = self.times[r];
                self.free[w] = self.free[r];
                w += 1;
            }
        }
        self.times.truncate(w);
        self.free.truncate(w);
    }

    /// Number of step points (size/perf diagnostics).
    pub fn len(&self) -> usize {
        self.times.len()
    }

    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// True if the profile never goes negative (no oversubscription by
    /// reservations) — a property the conservative scheduler must maintain.
    pub fn is_consistent(&self) -> bool {
        self.free.iter().all(|&f| f >= 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn release_map_counts_nodes() {
        let mut rm = ReleaseMap::new(4);
        rm.set_release(NodeId(0), Some(SimTime(100)));
        rm.set_release(NodeId(1), Some(SimTime(100)));
        rm.set_release(NodeId(2), Some(SimTime(50)));
        assert_eq!(rm.busy_count(), 3);
        let ups: Vec<_> = rm.upcoming(SimTime(0)).collect();
        assert_eq!(ups, vec![(SimTime(50), 1), (SimTime(100), 2)]);
    }

    #[test]
    fn release_map_update_moves_node() {
        let mut rm = ReleaseMap::new(2);
        rm.set_release(NodeId(0), Some(SimTime(100)));
        rm.set_release(NodeId(0), Some(SimTime(200)));
        assert_eq!(rm.release_of(NodeId(0)), Some(SimTime(200)));
        assert_eq!(rm.upcoming(SimTime(0)).collect::<Vec<_>>(), vec![(SimTime(200), 1)]);
        rm.set_release(NodeId(0), None);
        assert_eq!(rm.busy_count(), 0);
    }

    #[test]
    fn overdue_nodes_counted() {
        let mut rm = ReleaseMap::new(2);
        rm.set_release(NodeId(0), Some(SimTime(10)));
        rm.set_release(NodeId(1), Some(SimTime(50)));
        assert_eq!(rm.overdue(SimTime(20)), 1);
        assert_eq!(rm.upcoming(SimTime(20)).count(), 1);
    }

    #[test]
    fn profile_build_steps_up_at_releases() {
        let mut rm = ReleaseMap::new(8);
        rm.set_release(NodeId(0), Some(SimTime(100)));
        rm.set_release(NodeId(1), Some(SimTime(100)));
        rm.set_release(NodeId(2), Some(SimTime(300)));
        let p = Profile::build(SimTime(0), 5, &rm);
        assert_eq!(p.free_at(SimTime(0)), 5);
        assert_eq!(p.free_at(SimTime(99)), 5);
        assert_eq!(p.free_at(SimTime(100)), 7);
        assert_eq!(p.free_at(SimTime(300)), 8);
    }

    #[test]
    fn earliest_start_now_when_room() {
        let p = Profile::flat(SimTime(10), 4);
        assert_eq!(p.earliest_start(4, 100, SimTime(10)), SimTime(10));
        assert_eq!(p.earliest_start(5, 100, SimTime(10)), SimTime::MAX);
    }

    #[test]
    fn earliest_start_waits_for_release() {
        let mut rm = ReleaseMap::new(4);
        rm.set_release(NodeId(0), Some(SimTime(500)));
        rm.set_release(NodeId(1), Some(SimTime(500)));
        let p = Profile::build(SimTime(0), 2, &rm);
        assert_eq!(p.earliest_start(2, 100, SimTime(0)), SimTime(0));
        assert_eq!(p.earliest_start(3, 100, SimTime(0)), SimTime(500));
    }

    #[test]
    fn reservation_blocks_window() {
        let mut p = Profile::flat(SimTime(0), 4);
        p.reserve(SimTime(100), 200, 3);
        assert_eq!(p.free_at(SimTime(50)), 4);
        assert_eq!(p.free_at(SimTime(100)), 1);
        assert_eq!(p.free_at(SimTime(299)), 1);
        assert_eq!(p.free_at(SimTime(300)), 4);
        assert!(p.is_consistent());
        // A 2-node job of 100 s must now wait until the reservation ends.
        assert_eq!(p.earliest_start(2, 100, SimTime(60)), SimTime(300));
        // …but fits before it if short enough.
        assert_eq!(p.earliest_start(2, 40, SimTime(60)), SimTime(60));
    }

    #[test]
    fn min_free_in_spans_steps() {
        let mut p = Profile::flat(SimTime(0), 10);
        p.reserve(SimTime(50), 50, 6);
        assert_eq!(p.min_free_in(SimTime(0), 200), 4);
        assert_eq!(p.min_free_in(SimTime(0), 50), 10);
        assert_eq!(p.min_free_in(SimTime(100), 10), 10);
    }

    #[test]
    fn chained_reservations_compose() {
        let mut p = Profile::flat(SimTime(0), 4);
        // Head job reserves everything at t=0 for 100s.
        p.reserve(SimTime(0), 100, 4);
        // Next job's earliest start is 100.
        let t = p.earliest_start(2, 50, SimTime(0));
        assert_eq!(t, SimTime(100));
        p.reserve(t, 50, 2);
        // A 2-node job can still run alongside it.
        assert_eq!(p.earliest_start(2, 50, SimTime(0)), SimTime(100));
        // But a 3-node job waits for it to finish.
        assert_eq!(p.earliest_start(3, 50, SimTime(0)), SimTime(150));
        assert!(p.is_consistent());
    }

    #[test]
    fn overdue_release_modelled_imminent() {
        let mut rm = ReleaseMap::new(2);
        rm.set_release(NodeId(0), Some(SimTime(10)));
        let p = Profile::build(SimTime(100), 1, &rm);
        assert_eq!(p.free_at(SimTime(100)), 1);
        assert_eq!(p.free_at(SimTime(101)), 2);
    }

    #[test]
    fn profile_build_merges_simultaneous_releases() {
        let mut rm = ReleaseMap::new(4);
        for n in 0..3 {
            rm.set_release(NodeId(n), Some(SimTime(100)));
        }
        let p = Profile::build(SimTime(0), 1, &rm);
        assert_eq!(p.len(), 2);
        assert_eq!(p.free_at(SimTime(100)), 4);
    }

    proptest::proptest! {
        /// The O(len) forward-sweep `earliest_start` returns exactly what
        /// the original candidate-probing implementation returns, on
        /// profiles with arbitrary releases *and* reservations (dips
        /// included). The oracle lives here as `#[cfg(test)]` so it can
        /// never creep back onto the hot path.
        #[test]
        fn linear_earliest_start_matches_legacy_oracle(
            releases in proptest::collection::vec((1u64..800, 1u32..4), 0..16),
            resvs in proptest::collection::vec((0u64..700, 1u64..300, 1u32..5), 0..10),
            free_now in 0u32..8,
            nodes in 1u32..10,
            duration in 1u64..600,
            after in 0u64..900,
        ) {
            let mut rm = ReleaseMap::new(64);
            let mut nid = 0u32;
            for &(t, c) in &releases {
                for _ in 0..c {
                    rm.set_release(NodeId(nid), Some(SimTime(t)));
                    nid += 1;
                }
            }
            let mut p = Profile::build(SimTime(0), free_now, &rm);
            for &(s, d, n) in &resvs {
                p.reserve(SimTime(s), d, n);
            }
            proptest::prop_assert_eq!(
                p.earliest_start(nodes, duration, SimTime(after)),
                p.earliest_start_legacy(nodes, duration, SimTime(after)),
                "sweep and probe disagree on {:?}", p
            );
        }
    }
}
