//! The backfill scheduling pass and the static baseline scheduler.
//!
//! [`backfill_pass`] is the shared skeleton: examine up to
//! `cfg.backfill_depth` pending jobs in priority order; start each if the
//! availability profile admits it *now*; otherwise hand it to the `flexible`
//! hook (a no-op for the static baseline, the malleable trial for
//! SD-Policy — paper Listing 1 runs the flexible attempt "right after the
//! static trial" of each job); finally record a reservation (conservative:
//! every job; EASY: queue head only).

use crate::avail::{AvailBackend, Availability};
use crate::config::BackfillMode;
use crate::state::{DirtyFlags, SimState};
use crate::timing;
use cluster::JobId;
use sd_trace::{RejectReason, TraceKind};
use simkit::SimTime;

/// A scheduling policy: invoked by the controller after every batch of
/// simultaneous events that changed the system.
pub trait Scheduler {
    fn schedule(&mut self, st: &mut SimState);

    /// Whether a pass could act given what the event batch changed. Only
    /// consulted in incremental mode; returning `false` must be *provably*
    /// equivalent to running the pass (same `SimResult`) — the default is
    /// the old controller's behaviour (any change ⇒ pass).
    fn pass_needed(&self, st: &SimState, dirty: DirtyFlags) -> bool {
        let _ = st;
        dirty.queue || dirty.capacity
    }

    /// Label used in experiment output.
    fn name(&self) -> &'static str {
        "scheduler"
    }
}

/// Boxed schedulers forward the trait, so policy choice can be a runtime
/// decision (the online service picks static vs SD from its CLI).
impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn schedule(&mut self, st: &mut SimState) {
        (**self).schedule(st)
    }

    fn pass_needed(&self, st: &SimState, dirty: DirtyFlags) -> bool {
        (**self).pass_needed(st, dirty)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Outcome of the flexible hook for one job.
pub type FlexStarted = bool;

/// Runs one backfill pass. `flexible(st, job, est_static_start, profile)`
/// may start `job` by other means (malleable co-scheduling) and must return
/// whether it did.
///
/// `est_static_start` is `Some` when the pass needed the job's earliest
/// static start anyway (conservative reservations, the EASY head); it is
/// `None` for EASY non-head jobs, where the est is only needed *if* the
/// hook actually mounts a malleable trial — the hook resolves it lazily
/// from the profile (and must bail on `SimTime::MAX`, preserving the old
/// "never trial an impossible job" accounting). This laziness is what keeps
/// deep EASY passes (full Curie: `bf_max_job_test = 200`) from paying an
/// O(profile) walk per examined job; the common case is one O(1)
/// [`Availability::can_start_now`] probe.
///
/// On a `true` return the pass profile must account for the taken idle
/// nodes: in incremental mode the hook itself applies the in-place
/// [`Availability::reserve`] delta (shared mate nodes keep their release —
/// the finish-inside constraint caps the borrower's requested end at the
/// mates'); on the legacy path the profile is rebuilt from scratch and the
/// waiting jobs' reservations are replayed.
///
/// Returns the end-of-pass availability (current starts and the waiting
/// jobs' reservations applied) so callers can make further
/// reservation-respecting decisions — SD-Policy's borrower relocation uses
/// it to take only nodes no pending job is counting on. Callers should hand
/// the buffer back via [`SimState::recycle_pass_profile`] so the next pass
/// reuses its allocations.
pub fn backfill_pass<F>(st: &mut SimState, flexible: F) -> AvailBackend
where
    F: FnMut(&mut SimState, JobId, Option<SimTime>, &mut AvailBackend) -> FlexStarted,
{
    let mut profile = st.take_pass_profile();
    backfill_pass_with(st, &mut profile, flexible);
    profile
}

/// The pass skeleton behind [`backfill_pass`], generic over the
/// [`Availability`] backend: every query/mutation goes through the trait,
/// so both the step-function profile and the slot tree (and any future
/// backend) run the byte-for-byte identical decision sequence.
pub fn backfill_pass_with<A, F>(st: &mut SimState, profile: &mut A, mut flexible: F)
where
    A: Availability,
    F: FnMut(&mut SimState, JobId, Option<SimTime>, &mut A) -> FlexStarted,
{
    if st.queue.is_empty() {
        st.stats.peak_profile_len = st.stats.peak_profile_len.max(profile.len());
        return;
    }
    let depth = st.cfg.backfill_depth;
    let mode = st.cfg.backfill_mode;
    let incremental = st.cfg.incremental;
    // Reservations made for still-waiting jobs this pass; on the legacy path
    // they are re-applied after a malleable start forces a profile rebuild.
    // (Started jobs are reflected in the release map, so they must NOT be
    // re-applied.)
    let mut waiting_resv = st.take_resv_scratch();
    let mut head_reserved = false;

    let mut prefix = st.take_prefix_scratch();
    // FIFO prefix, or the fair-share reorder under `QueuePolicy::FairShare`.
    st.fill_pass_prefix(depth, &mut prefix);
    // Dimensions come from the queue entries (cached at submit): the hot
    // loop reads this sequential buffer, no job-table dereference. The
    // buffer is owned (taken from the scratch), so `st` stays mutable.
    for &entry in &prefix {
        let id = entry.job;
        let (req_nodes, req_time) = (entry.req_nodes, entry.req_time);
        // Quota enforcement happens before the trial: a start that would
        // exceed the tenant's budget is skipped for this pass — no static
        // attempt, no malleable fallback and *no reservation* (a blocked
        // job must not hold nodes it is not allowed to take).
        if st.quota_blocks(&entry) {
            continue;
        }
        let _trial = timing::scope(&timing::BACKFILL_TRIAL);
        if !incremental {
            // Legacy flow: full est for every examined job. (The est query
            // itself went through `earliest_start_legacy` until the
            // `Availability` trait landed; the linear sweep is equivalent —
            // pinned by the oracle property test in `reservation.rs`.)
            let est = profile.earliest_start(req_nodes, req_time, st.now);
            if est == st.now {
                if st.start_static(id) {
                    profile.reserve(st.now, req_time, req_nodes);
                } else {
                    st.trace.emit(
                        st.now.secs(),
                        TraceKind::BackfillRejected {
                            job: id.0,
                            reason: RejectReason::Fragmentation,
                        },
                    );
                }
                continue;
            }
            if est > st.now && est != SimTime::MAX && flexible(st, id, Some(est), profile) {
                profile.rebuild(st.now, st.cluster.empty_node_count(), st.releases());
                for &(s, d, n) in &waiting_resv {
                    profile.reserve(s, d, n);
                }
                continue;
            }
            if est == SimTime::MAX {
                st.trace.emit(
                    st.now.secs(),
                    TraceKind::BackfillRejected { job: id.0, reason: RejectReason::NeverFits },
                );
                continue; // cannot ever run (larger than the machine)
            }
            let reserve = match mode {
                BackfillMode::Conservative => true,
                BackfillMode::Easy => !head_reserved,
            };
            if reserve {
                profile.reserve(est, req_time, req_nodes);
                waiting_resv.push((est, req_time, req_nodes));
                head_reserved = true;
                st.trace.emit(
                    st.now.secs(),
                    TraceKind::EasyReserved { job: id.0, est: est.secs() },
                );
            } else {
                st.trace.emit(
                    st.now.secs(),
                    TraceKind::BackfillRejected { job: id.0, reason: RejectReason::NoFitNow },
                );
            }
            continue;
        }

        // Incremental flow — same decisions, lazily computed.
        if profile.can_start_now(req_nodes, req_time, st.now) {
            if st.start_static(id) {
                profile.reserve(st.now, req_time, req_nodes);
            } else {
                // On failure: the profile admitted the job but the cluster
                // had no whole empty nodes (fragmentation across shared
                // nodes). Skip; the next pass sees a consistent picture.
                st.trace.emit(
                    st.now.secs(),
                    TraceKind::BackfillRejected {
                        job: id.0,
                        reason: RejectReason::Fragmentation,
                    },
                );
            }
            continue;
        }
        let reserve_wanted = match mode {
            BackfillMode::Conservative => true,
            BackfillMode::Easy => !head_reserved,
        };
        if reserve_wanted {
            let est = profile.earliest_start(req_nodes, req_time, st.now);
            if est == SimTime::MAX {
                st.trace.emit(
                    st.now.secs(),
                    TraceKind::BackfillRejected { job: id.0, reason: RejectReason::NeverFits },
                );
                continue; // cannot ever run (larger than the machine)
            }
            debug_assert!(est > st.now, "can_start_now said otherwise");
            if flexible(st, id, Some(est), profile) {
                continue; // hook applied the in-place delta
            }
            profile.reserve(est, req_time, req_nodes);
            waiting_resv.push((est, req_time, req_nodes));
            head_reserved = true;
            st.trace
                .emit(st.now.secs(), TraceKind::EasyReserved { job: id.0, est: est.secs() });
        } else {
            // EASY non-head: no reservation either way; the hook computes
            // the est itself only if it mounts a trial.
            if !flexible(st, id, None, profile) {
                st.trace.emit(
                    st.now.secs(),
                    TraceKind::BackfillRejected { job: id.0, reason: RejectReason::NoFitNow },
                );
            }
        }
    }
    st.stats.peak_profile_len = st.stats.peak_profile_len.max(profile.len());
    st.recycle_resv_scratch(waiting_resv);
    st.recycle_prefix_scratch(prefix);
}

/// The paper's baseline: plain (static) backfill, no malleability.
#[derive(Debug, Default, Clone, Copy)]
pub struct StaticBackfill;

impl Scheduler for StaticBackfill {
    fn schedule(&mut self, st: &mut SimState) {
        let profile = backfill_pass(st, |_, _, _: Option<SimTime>, _| false);
        st.recycle_pass_profile(profile);
    }

    /// A pure-capacity change with an empty queue is a no-op pass: the
    /// static scheduler only ever starts pending jobs.
    fn pass_needed(&self, st: &SimState, dirty: DirtyFlags) -> bool {
        dirty.queue || (dirty.capacity && !st.queue.is_empty())
    }

    fn name(&self) -> &'static str {
        "static-backfill"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SlurmConfig;
    use crate::rate::WorstCaseModel;
    use cluster::ClusterSpec;
    use drom::SharingFactor;

    fn state(jobs: Vec<swf::SwfJob>, mode: BackfillMode) -> SimState {
        let mut spec = ClusterSpec::ricc();
        spec.nodes = 4;
        SimState::new(
            spec,
            SlurmConfig {
                backfill_mode: mode,
                self_check: true,
                ..SlurmConfig::default()
            },
            &swf::Trace::new(Default::default(), jobs),
            Box::new(WorstCaseModel),
            SharingFactor::HALF,
        )
    }

    fn job(id: u64, submit: u64, run: u64, nodes: u64, req: u64) -> swf::SwfJob {
        swf::SwfJob::for_simulation(id, submit, run, nodes * 8, req)
    }

    fn run_all(st: &mut SimState, sched: &mut dyn Scheduler) {
        while let Some(t) = st.events.peek_time() {
            let mut changed = false;
            while st.events.peek_time() == Some(t) {
                let ev = st.events.pop().unwrap();
                st.now = t;
                changed |= st.dispatch(ev.payload);
            }
            if changed {
                sched.schedule(st);
            }
        }
    }

    #[test]
    fn fcfs_when_everything_fits() {
        let mut st = state(
            vec![job(1, 0, 100, 2, 100), job(2, 0, 100, 2, 100)],
            BackfillMode::Conservative,
        );
        run_all(&mut st, &mut StaticBackfill);
        assert_eq!(st.outcomes().len(), 2);
        for o in st.outcomes() {
            assert_eq!(o.wait(), 0, "{:?}", o.id);
        }
    }

    #[test]
    fn small_job_backfills_into_hole() {
        // J1 takes the whole machine until 1000. J2 (3 nodes, long) must
        // wait. J3 (1 node, short) fits in nothing… all nodes busy.
        // Variant: J1 takes 3 nodes; J2 wants 4 (waits until 1000);
        // J3 wants 1 node for 100 s — backfills immediately because it ends
        // before J2's reservation could start anyway.
        let mut st = state(
            vec![
                job(1, 0, 1000, 3, 1000),
                job(2, 10, 500, 4, 500),
                job(3, 20, 100, 1, 100),
            ],
            BackfillMode::Conservative,
        );
        run_all(&mut st, &mut StaticBackfill);
        let o3 = st.outcomes().iter().find(|o| o.id == JobId(3)).unwrap();
        assert_eq!(o3.wait(), 0, "J3 backfilled");
        let o2 = st.outcomes().iter().find(|o| o.id == JobId(2)).unwrap();
        assert_eq!(o2.start, SimTime(1000), "J2 waits for the machine");
    }

    #[test]
    fn conservative_backfill_does_not_delay_reservations() {
        // J1: whole machine till 1000. J2: 2 nodes, starts at 1000
        // (reservation). J3: 1 node × 2000 s would push past J2's window on
        // 3 free nodes?? After J1 ends, 4 nodes free, J2 takes 2 → 2 left,
        // J3 fits too. So pick J3 = 3 nodes × 2000 s: at t=1000 J2(2) + J3(3)
        // > 4 nodes → J3 must start after J2 finishes (t=1500).
        let mut st = state(
            vec![
                job(1, 0, 1000, 4, 1000),
                job(2, 10, 500, 2, 500),
                job(3, 20, 2000, 3, 2000),
            ],
            BackfillMode::Conservative,
        );
        run_all(&mut st, &mut StaticBackfill);
        let o2 = st.outcomes().iter().find(|o| o.id == JobId(2)).unwrap();
        let o3 = st.outcomes().iter().find(|o| o.id == JobId(3)).unwrap();
        assert_eq!(o2.start, SimTime(1000));
        assert_eq!(o3.start, SimTime(1500), "J3 respects J2's reservation");
    }

    #[test]
    fn easy_lets_later_jobs_jump_non_head() {
        // Same scenario: EASY only protects the head (J2). J3 still cannot
        // start before J2 here (no free nodes until 1000), but a tiny J4
        // that fits before the shadow time can.
        let mut st = state(
            vec![
                job(1, 0, 1000, 3, 1000),
                job(2, 10, 500, 4, 500),
                job(3, 20, 100, 1, 100),
            ],
            BackfillMode::Easy,
        );
        run_all(&mut st, &mut StaticBackfill);
        let o3 = st.outcomes().iter().find(|o| o.id == JobId(3)).unwrap();
        assert_eq!(o3.wait(), 0, "EASY backfills J3 into the free node");
    }

    #[test]
    fn depth_limit_bounds_examination() {
        let mut jobs: Vec<swf::SwfJob> = vec![job(1, 0, 1000, 4, 1000)];
        for i in 2..=10 {
            jobs.push(job(i, 1, 10, 1, 10));
        }
        let mut st = state(jobs, BackfillMode::Conservative);
        st.cfg.backfill_depth = 3;
        run_all(&mut st, &mut StaticBackfill);
        // All jobs still complete eventually (depth only bounds per-pass work).
        assert_eq!(st.outcomes().len(), 10);
    }

    #[test]
    fn quota_blocked_job_is_skipped_and_takes_no_reservation() {
        use crate::tenant::{Quota, TenantRegistry};
        // Tenant 1 may only ever run one node-width at a time. J1 (2 nodes)
        // exceeds it outright and must neither start nor reserve — J2
        // (tenant 2, 2 nodes) starts immediately instead of queueing behind
        // a reservation the blocked job would have held.
        let mut jobs = vec![job(1, 0, 100, 2, 100), job(2, 0, 100, 2, 100)];
        jobs[0].user = 1;
        jobs[1].user = 2;
        let mut tenants = TenantRegistry::equal_weights(
            2,
            Quota {
                node_seconds: None,
                max_running_width: Some(1),
            },
        );
        tenants.add(crate::tenant::Tenant::unlimited(2, 0)); // lift tenant 2's cap
        let mut spec = ClusterSpec::ricc();
        spec.nodes = 4;
        let mut st = SimState::new(
            spec,
            SlurmConfig {
                backfill_mode: BackfillMode::Conservative,
                self_check: true,
                tenants,
                ..SlurmConfig::default()
            },
            &swf::Trace::new(Default::default(), jobs),
            Box::new(WorstCaseModel),
            SharingFactor::HALF,
        );
        run_all(&mut st, &mut StaticBackfill);
        assert_eq!(st.outcomes().len(), 1, "blocked job never runs");
        assert_eq!(st.outcomes()[0].id, JobId(2));
        assert_eq!(st.outcomes()[0].wait(), 0, "no phantom reservation");
        assert!(st.stats.quota_skipped > 0);
        assert_eq!(st.queue.len(), 1, "blocked job stays pending");
    }

    #[test]
    fn flexible_hook_sees_waiting_jobs() {
        let mut st = state(
            vec![job(1, 0, 1000, 4, 1000), job(2, 10, 100, 2, 100)],
            BackfillMode::Conservative,
        );
        let mut seen = Vec::new();
        while let Some(t) = st.events.peek_time() {
            while st.events.peek_time() == Some(t) {
                let ev = st.events.pop().unwrap();
                st.now = t;
                st.dispatch(ev.payload);
            }
            backfill_pass(&mut st, |_st, id, est, _p| {
                seen.push((id, est));
                false
            });
        }
        assert!(
            seen.contains(&(JobId(2), Some(SimTime(1000)))),
            "seen: {seen:?}"
        );
    }
}
