//! # slurm-sim — a SLURM-like workload-manager simulator
//!
//! Event-driven re-implementation of the scheduling-relevant surface of
//! SLURM plus the BSC SLURM simulator the paper evaluates with:
//!
//! * [`controller`] — slurmctld's main loop: event batching, scheduler
//!   invocation, result collection,
//! * [`state`] — the machine ground truth and the primitive operations
//!   (static start, malleable co-schedule, completion with owner-return),
//! * [`backfill`] — the shared backfill pass and the **static-backfill
//!   baseline** every experiment normalises against,
//! * [`reservation`] — the availability profile ("map of job reservations in
//!   time", §3.1) and the incrementally maintained release map,
//! * [`avail`] / [`slot_tree`] — the pluggable availability-backend trait
//!   and the OAR-style slot-tree backend (DESIGN.md §13),
//! * [`rate`] — pluggable malleable-runtime models (paper Eq. 5/6 and the
//!   app-behaviour model for the real-run reproduction),
//! * [`tenant`] — multi-tenant identities, quotas and the fair-share queue
//!   order enforced inside the backfill pass,
//! * [`timing`] — opt-in per-function hot-path timing attribution,
//! * [`job`], [`queue`], [`config`], [`result`] — supporting types.
//!
//! The SD-Policy itself lives in the `sd-policy` crate and plugs in through
//! the [`Scheduler`] trait and the `flexible` hook of
//! [`backfill::backfill_pass`].

pub mod avail;
pub mod backfill;
pub mod config;
pub mod controller;
pub mod job;
pub mod queue;
pub mod rate;
pub mod replay;
pub mod reservation;
pub mod result;
pub mod slot_tree;
pub mod state;
pub mod tenant;
pub mod timing;

pub use avail::{AvailBackend, AvailBackendKind, Availability};
pub use backfill::{backfill_pass, backfill_pass_with, Scheduler, StaticBackfill};
pub use config::{BackfillMode, SlurmConfig};
pub use controller::{run_trace, Controller};
pub use job::{Job, JobOutcome, JobSpec, JobState, RunningJob};
pub use queue::{PendingQueue, QueueEntry};
pub use rate::{AppAwareModel, IdealModel, RateInputs, RateModel, WorstCaseModel};
pub use reservation::{Profile, ReleaseMap};
pub use result::SimResult;
pub use slot_tree::SlotTree;
pub use state::{CoScheduleError, DirtyFlags, Event, MateEntry, SimState, SimStats, SubmitError};
pub use tenant::{QueuePolicy, Quota, Tenant, TenantRegistry, TenantUsage, NO_TENANT_SLOT};
// Decision tracing (DESIGN.md §12) — re-exported so downstream crates can
// attach rings and decode events without a direct `sd-trace` dependency.
pub use sd_trace::{
    chrome_trace, render_virtual, FieldVal, RejectReason, TraceEvent, TraceKind, TraceRing,
    TraceSink, TraceTail,
};
