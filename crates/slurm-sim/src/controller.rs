//! The controller (slurmctld equivalent): the simulation main loop.
//!
//! Event-driven: the clock jumps between event instants; all events sharing
//! an instant are dispatched as one batch, then the scheduler runs once —
//! mirroring how slurmctld coalesces work per scheduling cycle while keeping
//! the simulation deterministic.

use crate::backfill::Scheduler;
use crate::result::SimResult;
use crate::state::SimState;

/// Drives a [`SimState`] with a [`Scheduler`] until no events remain.
pub struct Controller<S: Scheduler> {
    pub state: SimState,
    pub scheduler: S,
}

impl<S: Scheduler> Controller<S> {
    pub fn new(state: SimState, scheduler: S) -> Self {
        Controller { state, scheduler }
    }

    /// Runs to completion and returns the collected results.
    pub fn run(mut self) -> SimResult {
        self.step_until(None);
        self.into_result()
    }

    /// Processes event batches in order while their instant is `<= limit`
    /// (`None` = until the event queue drains). This is the *entire* main
    /// loop: [`Controller::run`] is `step_until(None)` + result collection,
    /// and the online service (`sd-serve`) advances its virtual clock through
    /// the very same code path — which is what makes a scripted live session
    /// bit-identical to the offline replay of the same workload.
    pub fn step_until(&mut self, limit: Option<simkit::SimTime>) {
        while let Some(t) = self.state.events.peek_time() {
            if limit.is_some_and(|l| t > l) {
                break;
            }
            let mut changed = false;
            while self.state.events.peek_time() == Some(t) {
                let ev = self.state.events.pop().expect("peeked event exists");
                self.state.now = t;
                changed |= self.state.dispatch(ev.payload);
            }
            if changed {
                // Pass gating (incremental mode): skip the pass when the
                // scheduler proves it could not act on what changed. The
                // dirty flags are consumed either way so they always cover
                // exactly the batches since the last pass opportunity.
                let dirty = self.state.take_dirty();
                if !self.state.cfg.incremental || self.scheduler.pass_needed(&self.state, dirty)
                {
                    self.run_pass();
                } else {
                    self.state.stats.passes_skipped += 1;
                }
            }
        }
    }

    /// One scheduler pass, bracketed by `pass_begin`/`pass_end` trace
    /// events when tracing is armed. `wall_ns` lives only in these two
    /// events; the virtual-time stream stays deterministic.
    fn run_pass(&mut self) {
        let _pass = crate::timing::scope(&crate::timing::SCHED_PASS);
        let st = &mut self.state;
        if st.trace.active() {
            let pass = st.stats.sched_passes + 1;
            let before = st.stats.started_static + st.stats.started_malleable;
            st.trace.emit(
                st.now.secs(),
                sd_trace::TraceKind::PassBegin { pass, wall_ns: st.trace.wall_ns() },
            );
            self.scheduler.schedule(&mut self.state);
            let st = &mut self.state;
            let started =
                (st.stats.started_static + st.stats.started_malleable - before) as u32;
            st.trace.emit(
                st.now.secs(),
                sd_trace::TraceKind::PassEnd { pass, wall_ns: st.trace.wall_ns(), started },
            );
        } else {
            self.scheduler.schedule(&mut self.state);
        }
        self.state.stats.sched_passes += 1;
    }

    /// Runs one scheduling pass outside the event loop (same gating as the
    /// in-loop passes). The online service uses this after out-of-band queue
    /// changes (a cancellation) so the scheduler sees them without an event.
    pub fn pass_now(&mut self) {
        let dirty = self.state.take_dirty();
        if dirty == crate::state::DirtyFlags::default() {
            return;
        }
        if !self.state.cfg.incremental || self.scheduler.pass_needed(&self.state, dirty) {
            self.run_pass();
        } else {
            self.state.stats.passes_skipped += 1;
        }
    }

    /// Whether every event has been processed (nothing left to simulate).
    pub fn idle(&self) -> bool {
        self.state.events.is_empty()
    }

    /// Finishes the run: collects outcomes, energy and counters.
    pub fn into_result(self) -> SimResult {
        SimResult::from_state(self.state, self.scheduler.name())
    }
}

/// One-call convenience: build the state, run the scheduler, return results.
pub fn run_trace<S: Scheduler>(
    spec: cluster::ClusterSpec,
    cfg: crate::config::SlurmConfig,
    trace: &swf::Trace,
    rate_model: Box<dyn crate::rate::RateModel>,
    sharing: drom::SharingFactor,
    scheduler: S,
) -> SimResult {
    let state = SimState::new(spec, cfg, trace, rate_model, sharing);
    Controller::new(state, scheduler).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backfill::StaticBackfill;
    use crate::config::SlurmConfig;
    use crate::rate::WorstCaseModel;
    use cluster::ClusterSpec;
    use drom::SharingFactor;
    use swf::{SwfJob, Trace};

    fn trace(jobs: Vec<SwfJob>) -> Trace {
        Trace::new(Default::default(), jobs)
    }

    fn job(id: u64, submit: u64, run: u64, nodes: u64, req: u64) -> SwfJob {
        SwfJob::for_simulation(id, submit, run, nodes * 8, req)
    }

    fn small_spec() -> ClusterSpec {
        let mut s = ClusterSpec::ricc();
        s.nodes = 8;
        s
    }

    #[test]
    fn every_job_completes_exactly_once() {
        let jobs: Vec<SwfJob> = (1..=50)
            .map(|i| job(i, i * 7, 50 + i * 3, 1 + i % 4, 200 + i * 3))
            .collect();
        let res = run_trace(
            small_spec(),
            SlurmConfig::default(),
            &trace(jobs),
            Box::new(WorstCaseModel),
            SharingFactor::HALF,
            StaticBackfill,
        );
        assert_eq!(res.outcomes.len(), 50);
        let mut ids: Vec<u64> = res.outcomes.iter().map(|o| o.id.0).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 50);
        assert_eq!(res.leftover_pending, 0);
        assert_eq!(res.leftover_running, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let jobs: Vec<SwfJob> = (1..=80)
            .map(|i| job(i, (i * 13) % 500, 30 + (i * 17) % 300, 1 + i % 5, 400))
            .collect();
        let run = || {
            run_trace(
                small_spec(),
                SlurmConfig::default(),
                &trace(jobs.clone()),
                Box::new(WorstCaseModel),
                SharingFactor::HALF,
                StaticBackfill,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.energy_joules, b.energy_joules);
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn makespan_spans_first_submit_to_last_end() {
        let res = run_trace(
            small_spec(),
            SlurmConfig::default(),
            &trace(vec![job(1, 100, 50, 1, 100), job(2, 200, 100, 1, 200)]),
            Box::new(WorstCaseModel),
            SharingFactor::HALF,
            StaticBackfill,
        );
        assert_eq!(res.first_submit.secs(), 100);
        assert_eq!(res.last_end.secs(), 300);
        assert_eq!(res.makespan, 200);
    }

    #[test]
    fn empty_trace_is_fine() {
        let res = run_trace(
            small_spec(),
            SlurmConfig::default(),
            &trace(vec![]),
            Box::new(WorstCaseModel),
            SharingFactor::HALF,
            StaticBackfill,
        );
        assert_eq!(res.outcomes.len(), 0);
        assert_eq!(res.makespan, 0);
    }
}
