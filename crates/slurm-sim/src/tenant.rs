//! Multi-tenant identities, quotas and fair-share ordering.
//!
//! A [`Tenant`] is a `(tenant id, project id)` pair with a scheduling
//! `weight` and a [`Quota`]. The static table lives in
//! [`TenantRegistry`] inside [`SlurmConfig`](crate::SlurmConfig); the
//! mutable per-tenant accounting ([`TenantUsage`]) lives in
//! [`SimState`](crate::SimState), indexed by the registry *slot* so the
//! hot path never hashes.
//!
//! ## Quota semantics
//!
//! Quotas are enforced in the backfill pass, *before* a trial runs: a
//! pending job whose start would exceed its tenant's budget is skipped for
//! that pass (no reservation, no trial) and counted in
//! `SimStats::quota_skipped`. Two budgets exist:
//!
//! * `node_seconds` — a cumulative budget of **requested** node-seconds
//!   (`req_nodes × req_time`), charged at start and never refunded. Charging
//!   the request (not the actual usage) keeps the check monotonic and
//!   order-independent: a job's admissibility never depends on how much
//!   earlier jobs under-ran.
//! * `max_running_width` — a cap on the tenant's concurrently *running*
//!   requested nodes, released when a job completes or is cancelled.
//!
//! An empty registry (the default) makes every check a no-op and the
//! simulator bit-identical to the untenanted build — the equivalence tests
//! pin this.
//!
//! ## Fair-share ordering
//!
//! [`QueuePolicy::FairShare`] reorders the examined queue prefix by classic
//! usage-decayed fair-share priority `2^(−usage/share)`. The implementation
//! sorts ascending on the order-equivalent key `usage/weight` (shares are
//! weights normalised by a common constant, and `2^(−x)` is strictly
//! decreasing, so both produce the same permutation) with a **stable** sort:
//! equal keys keep FIFO order. With one tenant — or equal weights and zero
//! usage — every key ties and the order degenerates to FIFO exactly, which
//! is what makes the single-tenant configuration bit-identical to today's
//! scheduler (see DESIGN.md §11).

use crate::queue::QueueEntry;
use simkit::SimTime;
use std::collections::HashMap;

/// Sentinel slot for jobs whose `(tenant, project)` is not in the registry
/// (including every job when the registry is empty).
pub const NO_TENANT_SLOT: u32 = u32::MAX;

/// Per-tenant admission limits. `None` means unlimited.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Quota {
    /// Budget of requested node-seconds (`req_nodes × req_time`), charged
    /// at job start, never refunded.
    pub node_seconds: Option<u64>,
    /// Cap on concurrently running requested nodes.
    pub max_running_width: Option<u32>,
}

impl Quota {
    pub const UNLIMITED: Quota = Quota {
        node_seconds: None,
        max_running_width: None,
    };
}

/// A tenant identity: who may run, with what priority and what limits.
#[derive(Debug, Clone, PartialEq)]
pub struct Tenant {
    /// Tenant id (maps to the SWF `user` field; 0 is the anonymous tenant).
    pub id: u32,
    /// Project id (maps to the SWF `group` field; 0 is the default project).
    pub project: u32,
    /// Fair-share weight (relative; share = weight / Σ weights).
    pub weight: f64,
    pub quota: Quota,
    /// Per-tenant malleability adoption override; `None` inherits
    /// `SlurmConfig::malleable_fraction`.
    pub malleable_fraction: Option<f64>,
}

impl Tenant {
    /// An unlimited, weight-1 tenant for `(id, project)`.
    pub fn unlimited(id: u32, project: u32) -> Tenant {
        Tenant {
            id,
            project,
            weight: 1.0,
            quota: Quota::UNLIMITED,
            malleable_fraction: None,
        }
    }
}

/// The static tenant table, part of [`SlurmConfig`](crate::SlurmConfig).
///
/// Lookups go through [`TenantRegistry::slot`], resolved once per job at
/// submit time; the hot path only ever carries the dense slot index.
#[derive(Debug, Clone, Default)]
pub struct TenantRegistry {
    tenants: Vec<Tenant>,
    /// `(tenant, project)` → slot. Point lookups only — never iterated — so
    /// the hash map cannot introduce nondeterminism.
    index: HashMap<(u32, u32), u32>,
    total_weight: f64,
}

impl TenantRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a registry of `count` equal-weight tenants `1..=count`, all on
    /// project 0, each with the given quota.
    pub fn equal_weights(count: u32, quota: Quota) -> Self {
        let mut r = Self::new();
        for id in 1..=count {
            r.add(Tenant {
                quota,
                ..Tenant::unlimited(id, 0)
            });
        }
        r
    }

    /// Registers a tenant; returns its slot. Re-registering an existing
    /// `(tenant, project)` pair replaces the entry in place.
    pub fn add(&mut self, t: Tenant) -> u32 {
        debug_assert!(t.weight > 0.0, "tenant weight must be positive");
        if let Some(&slot) = self.index.get(&(t.id, t.project)) {
            self.total_weight += t.weight - self.tenants[slot as usize].weight;
            self.tenants[slot as usize] = t;
            return slot;
        }
        let slot = self.tenants.len() as u32;
        self.index.insert((t.id, t.project), slot);
        self.total_weight += t.weight;
        self.tenants.push(t);
        slot
    }

    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Slot for `(tenant, project)`, falling back to the tenant's project-0
    /// entry (a per-tenant default) before giving up.
    pub fn slot(&self, tenant: u32, project: u32) -> Option<u32> {
        self.index
            .get(&(tenant, project))
            .or_else(|| self.index.get(&(tenant, 0)))
            .copied()
    }

    pub fn get(&self, slot: u32) -> &Tenant {
        &self.tenants[slot as usize]
    }

    pub fn iter(&self) -> impl Iterator<Item = &Tenant> {
        self.tenants.iter()
    }

    /// Normalised fair share of a slot (weight / Σ weights).
    pub fn share(&self, slot: u32) -> f64 {
        self.tenants[slot as usize].weight / self.total_weight
    }
}

/// How the backfill pass orders the pending queue.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum QueuePolicy {
    /// Submit order (today's behaviour, SLURM default priority).
    #[default]
    Fifo,
    /// Usage-decayed fair-share: priority `2^(−usage/share)`, usage halving
    /// every `half_life` seconds (0 disables decay). Ties — including the
    /// whole queue under a single tenant — keep FIFO order.
    FairShare { half_life: u64 },
}

/// Mutable per-tenant accounting, one per registry slot, owned by
/// [`SimState`](crate::SimState).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantUsage {
    /// Requested nodes of this tenant's currently running jobs.
    pub running_width: u32,
    /// Cumulative requested node-seconds charged at start (never refunded).
    pub committed_node_seconds: u64,
    /// Decayed fair-share usage (node-seconds, halving per half-life).
    pub usage: f64,
    /// Virtual instant `usage` was last decayed to.
    pub last_decay: SimTime,
    pub submitted: u64,
    pub started: u64,
    pub completed: u64,
    /// Backfill trials skipped because they would exceed this tenant's quota.
    pub quota_skipped: u64,
}

impl Default for TenantUsage {
    fn default() -> Self {
        TenantUsage {
            running_width: 0,
            committed_node_seconds: 0,
            usage: 0.0,
            last_decay: SimTime::ZERO,
            submitted: 0,
            started: 0,
            completed: 0,
            quota_skipped: 0,
        }
    }
}

impl TenantUsage {
    /// Decays `usage` to `now`: `usage ×= 2^(−Δt/half_life)`.
    pub fn decay_to(&mut self, now: SimTime, half_life: u64) {
        if now <= self.last_decay {
            return;
        }
        let dt = now.since(self.last_decay);
        if half_life > 0 && self.usage > 0.0 {
            self.usage *= (-(dt as f64) / half_life as f64).exp2();
        }
        self.last_decay = now;
    }

    /// Would starting a `req_nodes × req_time` job exceed `quota`?
    pub fn would_exceed(&self, quota: &Quota, req_nodes: u32, req_time: u64) -> bool {
        if let Some(cap) = quota.max_running_width {
            if self.running_width + req_nodes > cap {
                return true;
            }
        }
        if let Some(budget) = quota.node_seconds {
            let charge = req_nodes as u64 * req_time;
            if self.committed_node_seconds + charge > budget {
                return true;
            }
        }
        false
    }

    /// Charges a starting job against this tenant.
    pub fn charge_start(&mut self, req_nodes: u32, req_time: u64) {
        let charge = req_nodes as u64 * req_time;
        self.running_width += req_nodes;
        self.committed_node_seconds += charge;
        self.usage += charge as f64;
        self.started += 1;
    }

    /// Releases a finished/cancelled job's running width (the node-second
    /// charge is deliberately not refunded).
    pub fn release_width(&mut self, req_nodes: u32) {
        debug_assert!(self.running_width >= req_nodes, "width released twice");
        self.running_width = self.running_width.saturating_sub(req_nodes);
    }
}

/// Stable fair-share reorder of a queue prefix. `key_of(tslot)` maps a
/// tenant slot (possibly [`NO_TENANT_SLOT`]) to its sort key
/// (`usage / weight`, ascending = higher priority). Ties keep FIFO order,
/// so the result is always a permutation of the input and collapses to the
/// identity when every key is equal.
pub fn fair_share_sort(entries: &mut [QueueEntry], key_of: impl Fn(u32) -> f64) {
    entries.sort_by(|a, b| key_of(a.tslot).total_cmp(&key_of(b.tslot)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::JobId;

    fn entry(id: u64, tslot: u32) -> QueueEntry {
        QueueEntry {
            job: JobId(id),
            req_nodes: 1,
            req_time: 100,
            tslot,
        }
    }

    #[test]
    fn registry_slots_and_shares() {
        let mut r = TenantRegistry::new();
        let a = r.add(Tenant {
            weight: 3.0,
            ..Tenant::unlimited(1, 0)
        });
        let b = r.add(Tenant {
            weight: 1.0,
            ..Tenant::unlimited(2, 7)
        });
        assert_eq!(r.len(), 2);
        assert_eq!(r.slot(1, 0), Some(a));
        // Unknown project falls back to the tenant's project-0 default…
        assert_eq!(r.slot(1, 99), Some(a));
        // …but only when a project-0 entry exists.
        assert_eq!(r.slot(2, 7), Some(b));
        assert_eq!(r.slot(2, 8), None);
        assert_eq!(r.slot(3, 0), None);
        assert!((r.share(a) - 0.75).abs() < 1e-12);
        assert!((r.share(b) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn re_adding_replaces_in_place() {
        let mut r = TenantRegistry::new();
        let a = r.add(Tenant::unlimited(1, 0));
        let a2 = r.add(Tenant {
            weight: 4.0,
            ..Tenant::unlimited(1, 0)
        });
        assert_eq!(a, a2);
        assert_eq!(r.len(), 1);
        assert!((r.get(a).weight - 4.0).abs() < 1e-12);
        assert!((r.share(a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn equal_weights_builder() {
        let r = TenantRegistry::equal_weights(
            4,
            Quota {
                node_seconds: Some(1000),
                max_running_width: None,
            },
        );
        assert_eq!(r.len(), 4);
        for id in 1..=4 {
            let slot = r.slot(id, 0).unwrap();
            assert!((r.share(slot) - 0.25).abs() < 1e-12);
            assert_eq!(r.get(slot).quota.node_seconds, Some(1000));
        }
    }

    #[test]
    fn quota_checks_width_and_budget() {
        let q = Quota {
            node_seconds: Some(1000),
            max_running_width: Some(4),
        };
        let mut u = TenantUsage::default();
        assert!(!u.would_exceed(&q, 4, 100)); // 400 ns ≤ 1000, width 4 ≤ 4
        assert!(u.would_exceed(&q, 5, 1)); // width 5 > 4
        assert!(u.would_exceed(&q, 2, 501)); // 1002 ns > 1000
        u.charge_start(4, 100);
        assert_eq!(u.running_width, 4);
        assert_eq!(u.committed_node_seconds, 400);
        assert!(u.would_exceed(&q, 1, 1)); // width 4+1 > 4
        u.release_width(4);
        assert!(!u.would_exceed(&q, 4, 150)); // 400+600 ≤ 1000
        assert!(u.would_exceed(&q, 4, 151)); // 400+604 > 1000: no refunds
    }

    #[test]
    fn usage_decays_with_half_life() {
        let mut u = TenantUsage::default();
        u.charge_start(10, 100); // usage 1000
        u.decay_to(SimTime(3600), 3600);
        assert!((u.usage - 500.0).abs() < 1e-9, "one half-life → half");
        u.decay_to(SimTime(3600), 3600); // same instant: no-op
        assert!((u.usage - 500.0).abs() < 1e-9);
        u.decay_to(SimTime(2 * 3600), 0); // half_life 0: decay disabled
        assert!((u.usage - 500.0).abs() < 1e-9);
        assert_eq!(u.last_decay, SimTime(2 * 3600));
    }

    #[test]
    fn fair_share_ties_keep_fifo() {
        let mut v: Vec<QueueEntry> = (0..6).map(|i| entry(i, (i % 3) as u32)).collect();
        let orig = v.clone();
        fair_share_sort(&mut v, |_| 0.0);
        assert_eq!(v, orig, "all-equal keys degenerate to submit order");
    }

    #[test]
    fn fair_share_orders_by_usage_per_weight() {
        // Slot 0 heavily used, slot 1 idle, slot 2 lightly used.
        let mut v = vec![entry(1, 0), entry(2, 1), entry(3, 2), entry(4, 1)];
        let key = |slot: u32| [900.0, 0.0, 10.0][slot as usize];
        fair_share_sort(&mut v, key);
        assert_eq!(
            v.iter().map(|e| e.job.0).collect::<Vec<_>>(),
            vec![2, 4, 3, 1],
            "idle tenant first (FIFO within), then light, then heavy"
        );
    }
}
