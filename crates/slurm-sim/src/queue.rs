//! The pending-job queue.
//!
//! SLURM's default priority is submit order (FIFO) within a partition; the
//! queue preserves that order exactly and supports the scheduler's pattern
//! of examining a bounded prefix and removing started jobs mid-scan.

use cluster::JobId;
use std::collections::VecDeque;

/// FIFO pending queue with stable order and O(1) prefix iteration.
#[derive(Debug, Default, Clone)]
pub struct PendingQueue {
    jobs: VecDeque<JobId>,
}

impl PendingQueue {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Enqueues a newly submitted job at the tail.
    pub fn push(&mut self, job: JobId) {
        self.jobs.push_back(job);
    }

    /// Head of the queue (highest priority pending job).
    pub fn head(&self) -> Option<JobId> {
        self.jobs.front().copied()
    }

    /// Snapshot of the first `n` jobs in priority order.
    pub fn prefix(&self, n: usize) -> Vec<JobId> {
        self.jobs.iter().take(n).copied().collect()
    }

    /// Removes a job that was started (scan-safe: by value).
    pub fn remove(&mut self, job: JobId) -> bool {
        if let Some(pos) = self.jobs.iter().position(|&j| j == job) {
            self.jobs.remove(pos);
            true
        } else {
            false
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = JobId> + '_ {
        self.jobs.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut q = PendingQueue::new();
        for i in 0..5 {
            q.push(JobId(i));
        }
        assert_eq!(q.head(), Some(JobId(0)));
        assert_eq!(q.prefix(3), vec![JobId(0), JobId(1), JobId(2)]);
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn remove_keeps_relative_order() {
        let mut q = PendingQueue::new();
        for i in 0..5 {
            q.push(JobId(i));
        }
        assert!(q.remove(JobId(2)));
        assert!(!q.remove(JobId(2)));
        assert_eq!(
            q.iter().collect::<Vec<_>>(),
            vec![JobId(0), JobId(1), JobId(3), JobId(4)]
        );
    }

    #[test]
    fn prefix_clamps_to_len() {
        let mut q = PendingQueue::new();
        q.push(JobId(9));
        assert_eq!(q.prefix(100), vec![JobId(9)]);
        assert!(PendingQueue::new().prefix(4).is_empty());
    }
}
