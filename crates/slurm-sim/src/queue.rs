//! The pending-job queue.
//!
//! SLURM's default priority is submit order (FIFO) within a partition; the
//! queue preserves that order exactly and supports the scheduler's pattern
//! of examining a bounded prefix and removing started jobs mid-scan.
//!
//! Removal used to be an O(n) scan + O(n) shift; with ~100 K-job traces the
//! scheduler removes every started job from a deep queue, so the queue now
//! keeps an id → slot index for O(1) removal. Removed slots become
//! tombstones (`None`) that are drained from the front eagerly and compacted
//! away once they outnumber live entries, so iteration stays O(live)
//! amortised and FIFO order is never disturbed.

use cluster::JobId;
use std::collections::{HashMap, VecDeque};

/// One queued job with the dimensions the backfill loop needs, cached at
/// submit time so a scheduling pass reads them sequentially from the queue
/// instead of dereferencing the job table per examined job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueEntry {
    pub job: JobId,
    /// Whole nodes requested.
    pub req_nodes: u32,
    /// User-requested wall time (seconds).
    pub req_time: u64,
    /// Tenant registry slot, resolved once at submit time
    /// ([`crate::tenant::NO_TENANT_SLOT`] when unregistered/untenanted) so
    /// quota checks and fair-share ordering never hash in the hot loop.
    pub tslot: u32,
}

/// FIFO pending queue with stable order, O(1) prefix iteration and O(1)
/// (amortised) removal by id.
#[derive(Debug, Default, Clone)]
pub struct PendingQueue {
    /// Slots in arrival order; `None` marks a removed (tombstoned) job.
    slots: VecDeque<Option<QueueEntry>>,
    /// Sequence number of `slots[0]` (sequences grow monotonically).
    head_seq: u64,
    /// job → its slot sequence number. Only point lookups — never iterated —
    /// so the hash map cannot introduce nondeterminism.
    index: HashMap<JobId, u64>,
}

impl PendingQueue {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Enqueues a newly submitted job at the tail.
    pub fn push(&mut self, job: JobId, req_nodes: u32, req_time: u64, tslot: u32) {
        debug_assert!(!self.index.contains_key(&job), "{job} queued twice");
        self.index
            .insert(job, self.head_seq + self.slots.len() as u64);
        self.slots.push_back(Some(QueueEntry {
            job,
            req_nodes,
            req_time,
            tslot,
        }));
    }

    /// Head of the queue (highest priority pending job).
    pub fn head(&self) -> Option<JobId> {
        // Leading tombstones are drained on removal, so the front is live.
        self.slots.front().copied().flatten().map(|e| e.job)
    }

    /// The first `n` entries in priority order (allocation-free iterator).
    pub fn prefix(&self, n: usize) -> impl Iterator<Item = QueueEntry> + '_ {
        self.slots.iter().copied().flatten().take(n)
    }

    /// Removes a job that was started (scan-safe: by value, O(1) amortised).
    pub fn remove(&mut self, job: JobId) -> bool {
        let Some(seq) = self.index.remove(&job) else {
            return false;
        };
        let slot = (seq - self.head_seq) as usize;
        debug_assert_eq!(self.slots[slot].map(|e| e.job), Some(job));
        self.slots[slot] = None;
        while let Some(None) = self.slots.front() {
            self.slots.pop_front();
            self.head_seq += 1;
        }
        // Keep iteration O(live): compact once tombstones dominate.
        if self.slots.len() > 2 * self.index.len().max(8) {
            self.compact();
        }
        true
    }

    pub fn iter(&self) -> impl Iterator<Item = JobId> + '_ {
        self.slots.iter().copied().flatten().map(|e| e.job)
    }

    /// Rebuilds the slot ring without tombstones (order preserved).
    fn compact(&mut self) {
        self.head_seq = 0;
        let live: VecDeque<Option<QueueEntry>> =
            self.slots.iter().copied().flatten().map(Some).collect();
        self.slots = live;
        for (i, slot) in self.slots.iter().enumerate() {
            let job = slot.expect("compacted slots are live").job;
            self.index.insert(job, i as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut q = PendingQueue::new();
        for i in 0..5 {
            q.push(JobId(i), 1, 100, u32::MAX);
        }
        assert_eq!(q.head(), Some(JobId(0)));
        assert_eq!(q.prefix(3).map(|e| e.job).collect::<Vec<_>>(), vec![JobId(0), JobId(1), JobId(2)]);
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn remove_keeps_relative_order() {
        let mut q = PendingQueue::new();
        for i in 0..5 {
            q.push(JobId(i), 1, 100, u32::MAX);
        }
        assert!(q.remove(JobId(2)));
        assert!(!q.remove(JobId(2)));
        assert_eq!(
            q.iter().collect::<Vec<_>>(),
            vec![JobId(0), JobId(1), JobId(3), JobId(4)]
        );
    }

    #[test]
    fn prefix_clamps_to_len() {
        let mut q = PendingQueue::new();
        q.push(JobId(9), 1, 100, u32::MAX);
        assert_eq!(q.prefix(100).map(|e| e.job).collect::<Vec<_>>(), vec![JobId(9)]);
        assert_eq!(PendingQueue::new().prefix(4).count(), 0);
    }

    #[test]
    fn head_skips_removed_jobs() {
        let mut q = PendingQueue::new();
        for i in 0..4 {
            q.push(JobId(i), 1, 100, u32::MAX);
        }
        q.remove(JobId(0));
        q.remove(JobId(1));
        assert_eq!(q.head(), Some(JobId(2)));
        assert_eq!(q.len(), 2);
        q.remove(JobId(2));
        q.remove(JobId(3));
        assert!(q.is_empty());
        assert_eq!(q.head(), None);
    }

    #[test]
    fn interleaved_push_remove_matches_naive_model() {
        // Exercise tombstoning + compaction against a Vec model.
        let mut q = PendingQueue::new();
        let mut model: Vec<JobId> = Vec::new();
        let mut next = 0u64;
        for round in 0..200u64 {
            for _ in 0..(round % 4) + 1 {
                q.push(JobId(next), 1, 100, u32::MAX);
                model.push(JobId(next));
                next += 1;
            }
            // Remove a pseudo-random live entry (deterministic pattern).
            if !model.is_empty() && round % 3 != 0 {
                let victim = model[(round as usize * 7) % model.len()];
                assert!(q.remove(victim));
                model.retain(|&j| j != victim);
            }
            assert_eq!(q.len(), model.len());
            assert_eq!(q.iter().collect::<Vec<_>>(), model);
            assert_eq!(q.head(), model.first().copied());
        }
    }
}
