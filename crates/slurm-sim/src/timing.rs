//! Opt-in per-function hot-path timing attribution.
//!
//! The OAR simulator's `auto_bench_fct` idiom: every hot function gets a
//! cheap global counter + wall-time accumulator, always compiled in but dormant
//! until enabled (one relaxed atomic load per probe when off). Enable with
//! [`enable`] or the `SD_TIMING` environment variable; `run_scenario
//! --timing` prints the report. This is the "measure before choosing the
//! tree" groundwork for the slot-tree roadmap item: it attributes a pass's
//! wall time to `earliest_start`, the backfill trials and the quota checks
//! instead of one opaque total.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Windowed-profiling refcount: each `/v1/profile?seconds=N` window (or a
/// long-lived service arming at boot) holds one count. Probes fire while
/// either the static switch or any window is armed.
static ARMED: AtomicU32 = AtomicU32::new(0);

/// Turns probes on (process-wide).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns probes off (accumulated totals are kept until [`reset`]).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Arms a profiling window; probes fire until the matching [`disarm`].
/// Nestable (refcounted) — concurrent `/v1/profile` windows compose.
pub fn arm() {
    ARMED.fetch_add(1, Ordering::Relaxed);
}

/// Releases one [`arm`] window.
pub fn disarm() {
    let prev = ARMED.fetch_sub(1, Ordering::Relaxed);
    debug_assert!(prev > 0, "disarm without a matching arm");
}

pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed) || ARMED.load(Ordering::Relaxed) > 0
}

/// Enables probes when the `SD_TIMING` environment variable is set.
pub fn init_from_env() {
    if std::env::var_os("SD_TIMING").is_some_and(|v| v != "0") {
        enable();
    }
}

/// One instrumented function: invocation count + summed wall nanoseconds.
pub struct FnTimer {
    name: &'static str,
    count: AtomicU64,
    nanos: AtomicU64,
}

impl FnTimer {
    const fn new(name: &'static str) -> FnTimer {
        FnTimer {
            name,
            count: AtomicU64::new(0),
            nanos: AtomicU64::new(0),
        }
    }

    fn record(&self, nanos: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    fn snapshot(&self) -> FnTiming {
        FnTiming {
            name: self.name,
            count: self.count.load(Ordering::Relaxed),
            total_secs: self.nanos.load(Ordering::Relaxed) as f64 / 1e9,
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.nanos.store(0, Ordering::Relaxed);
    }
}

/// `earliest_start` probes (both the legacy profile walk and the
/// incremental linear sweep).
pub static EARLIEST_START: FnTimer = FnTimer::new("earliest_start");
/// One per pending job examined by a backfill pass (static trial +
/// flexible/malleable fallback together).
pub static BACKFILL_TRIAL: FnTimer = FnTimer::new("backfill_trial");
/// Per-entry tenant quota admission checks.
pub static QUOTA_CHECK: FnTimer = FnTimer::new("quota_check");
/// Fair-share prefix reorders (decay + stable sort).
pub static FAIR_SHARE_SORT: FnTimer = FnTimer::new("fair_share_sort");
/// Slot-tree annotation descends (one per phase-A/phase-B jump inside a
/// `SlotTree::earliest_start` query).
pub static SLOT_DESCEND: FnTimer = FnTimer::new("slot_descend");
/// Slot-tree slot splits: reservation writes and release patches against
/// the slot list (each marks the annotation tree stale).
pub static SLOT_SPLIT: FnTimer = FnTimer::new("slot_split");
/// Slot-tree annotation re-merges (the lazy O(n) bottom-up rebuild the
/// first query after a mutation pays).
pub static SLOT_MERGE: FnTimer = FnTimer::new("slot_merge");
/// One whole scheduler pass (the controller's `run_pass`) — the root frame
/// every finer-grained probe nests under.
pub static SCHED_PASS: FnTimer = FnTimer::new("sched_pass");

const ALL: [&FnTimer; 8] = [
    &SCHED_PASS,
    &EARLIEST_START,
    &BACKFILL_TRIAL,
    &QUOTA_CHECK,
    &FAIR_SHARE_SORT,
    &SLOT_DESCEND,
    &SLOT_SPLIT,
    &SLOT_MERGE,
];

/// RAII probe: measures from construction to drop when timing is enabled,
/// and is a no-op (no clock read) when disabled.
pub struct TimedScope {
    armed: Option<(Instant, &'static FnTimer)>,
}

impl Drop for TimedScope {
    fn drop(&mut self) {
        if let Some((start, timer)) = self.armed.take() {
            timer.record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// Starts a timed scope over `timer` (no-op unless [`enabled`]).
pub fn scope(timer: &'static FnTimer) -> TimedScope {
    TimedScope {
        armed: enabled().then(|| (Instant::now(), timer)),
    }
}

/// A snapshot row of one instrumented function.
#[derive(Debug, Clone, PartialEq)]
pub struct FnTiming {
    pub name: &'static str,
    pub count: u64,
    pub total_secs: f64,
}

impl FnTiming {
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_secs * 1e6 / self.count as f64
        }
    }
}

/// Snapshots every instrumented function (fixed, deterministic order).
pub fn report() -> Vec<FnTiming> {
    ALL.iter().map(|t| t.snapshot()).collect()
}

/// `after - before` over two [`report`] snapshots (a profiling window).
/// Panics if the snapshots are not index-aligned [`report`] outputs.
pub fn delta(before: &[FnTiming], after: &[FnTiming]) -> Vec<FnTiming> {
    after
        .iter()
        .zip(before)
        .map(|(a, b)| {
            assert_eq!(a.name, b.name, "delta over unlike snapshots");
            FnTiming {
                name: a.name,
                count: a.count.saturating_sub(b.count),
                total_secs: (a.total_secs - b.total_secs).max(0.0),
            }
        })
        .collect()
}

/// The nominal call hierarchy of each probe, root-first, for
/// collapsed-stack export. "Nominal" because probes measure inclusive wall
/// time wherever they fire: `earliest_start` also runs outside backfill
/// trials and `slot_split` also fires on release patches, but attributing
/// each probe to its dominant caller keeps the flamegraph honest for the
/// hot path that matters (the ROADMAP's `backfill_trial` wall).
pub fn stack_frames(name: &str) -> &'static [&'static str] {
    match name {
        "sched_pass" => &["sd", "sched_pass"],
        "fair_share_sort" => &["sd", "sched_pass", "fair_share_sort"],
        "quota_check" => &["sd", "sched_pass", "quota_check"],
        "backfill_trial" => &["sd", "sched_pass", "backfill_trial"],
        "earliest_start" => &["sd", "sched_pass", "backfill_trial", "earliest_start"],
        "slot_descend" => {
            &["sd", "sched_pass", "backfill_trial", "earliest_start", "slot_descend"]
        }
        "slot_merge" => &["sd", "sched_pass", "backfill_trial", "earliest_start", "slot_merge"],
        "slot_split" => &["sd", "sched_pass", "backfill_trial", "slot_split"],
        _ => &["sd", "other"],
    }
}

/// Maps a [`report`]/[`delta`] snapshot onto `(stack, self_micros)` rows
/// for collapsed-stack rendering: each probe's value is its inclusive wall
/// time minus its direct children's (clamped at zero — probes measure
/// independently, so a child can slightly exceed its nominal parent).
pub fn stack_rows(rows: &[FnTiming]) -> Vec<(Vec<&'static str>, u64)> {
    let totals: Vec<(&'static [&'static str], u64)> = rows
        .iter()
        .map(|r| (stack_frames(r.name), (r.total_secs * 1e6) as u64))
        .collect();
    totals
        .iter()
        .map(|(frames, total)| {
            let children: u64 = totals
                .iter()
                .filter(|(f, _)| f.len() == frames.len() + 1 && f.starts_with(frames))
                .map(|(_, v)| *v)
                .sum();
            (frames.to_vec(), total.saturating_sub(children))
        })
        .collect()
}

/// Zeroes all counters (e.g. between scenario runs).
pub fn reset() {
    for t in ALL {
        t.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Timing state is process-global; keep every assertion in one test so
    // parallel test threads can't interleave enable/reset windows.
    #[test]
    fn probes_accumulate_only_when_enabled() {
        disable();
        reset();
        drop(scope(&EARLIEST_START));
        assert_eq!(EARLIEST_START.snapshot().count, 0, "dormant when off");

        enable();
        for _ in 0..3 {
            drop(scope(&EARLIEST_START));
        }
        drop(scope(&QUOTA_CHECK));
        let rows = report();
        assert_eq!(rows.len(), 8);
        let es = rows.iter().find(|r| r.name == "earliest_start").unwrap();
        assert_eq!(es.count, 3);
        let qc = rows.iter().find(|r| r.name == "quota_check").unwrap();
        assert_eq!(qc.count, 1);
        assert!(qc.mean_micros() >= 0.0);

        disable();
        reset();
        assert!(report().iter().all(|r| r.count == 0 && r.total_secs == 0.0));

        // Windowed arming: probes fire while any arm() window is open.
        assert!(!enabled());
        arm();
        assert!(enabled());
        drop(scope(&BACKFILL_TRIAL));
        disarm();
        assert!(!enabled());
        drop(scope(&BACKFILL_TRIAL));
        assert_eq!(BACKFILL_TRIAL.snapshot().count, 1, "only the armed window");
        reset();
    }

    #[test]
    fn stack_rows_subtract_children_and_stay_rooted() {
        // Synthetic snapshot: pass 100 ms, trials 60 ms, earliest 20 ms.
        let rows = vec![
            FnTiming { name: "sched_pass", count: 1, total_secs: 0.100 },
            FnTiming { name: "backfill_trial", count: 10, total_secs: 0.060 },
            FnTiming { name: "earliest_start", count: 10, total_secs: 0.020 },
        ];
        let stacks = stack_rows(&rows);
        let find = |suffix: &str| {
            stacks
                .iter()
                .find(|(f, _)| f.last() == Some(&suffix))
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(find("sched_pass"), 40_000, "pass self = 100 - 60 ms");
        assert_eq!(find("backfill_trial"), 40_000, "trial self = 60 - 20 ms");
        assert_eq!(find("earliest_start"), 20_000);
        assert!(stacks.iter().all(|(f, _)| f[0] == "sd"));
        // Every timer has a hierarchy entry (no frame falls back to other).
        for r in report() {
            assert_ne!(stack_frames(r.name), ["sd", "other"], "{}", r.name);
        }
    }
}
