//! Property tests for the availability profile: backfill correctness rests
//! on these invariants.

use proptest::prelude::*;
use simkit::SimTime;
use slurm_sim::{Profile, ReleaseMap};

proptest! {
    /// `earliest_start` returns an instant where the demanded nodes really
    /// are free for the whole duration, and no earlier step instant works.
    #[test]
    fn earliest_start_is_correct_and_minimal(
        releases in prop::collection::vec((1u64..1000, 1u32..4), 0..20),
        free_now in 0u32..8,
        nodes in 1u32..8,
        duration in 1u64..500,
    ) {
        let total: u32 = free_now + releases.iter().map(|&(_, c)| c).sum::<u32>();
        prop_assume!(total < 64);
        let mut rm = ReleaseMap::new(64);
        let mut nid = 0u32;
        for &(t, c) in &releases {
            for _ in 0..c {
                rm.set_release(cluster::NodeId(nid), Some(SimTime(t)));
                nid += 1;
            }
        }
        let p = Profile::build(SimTime(0), free_now, &rm);
        let t = p.earliest_start(nodes, duration, SimTime(0));
        if nodes <= total {
            prop_assert!(t != SimTime::MAX);
            prop_assert!(p.min_free_in(t, duration) >= nodes as i64, "feasible at t");
            // Minimality: no earlier candidate instant admits the job.
            for earlier in (0..t.secs()).step_by((t.secs() as usize / 16).max(1)) {
                prop_assert!(
                    p.min_free_in(SimTime(earlier), duration) < nodes as i64,
                    "earlier instant {earlier} would admit the job"
                );
            }
        } else {
            prop_assert_eq!(t, SimTime::MAX);
        }
    }

    /// Reserving at the found instant never drives the profile negative, and
    /// chains of reservations stay consistent (no double booking).
    #[test]
    fn chained_reservations_never_oversubscribe(
        jobs in prop::collection::vec((1u32..6, 1u64..300), 1..30),
        free in 4u32..10,
    ) {
        let rm = ReleaseMap::new(16);
        let mut p = Profile::build(SimTime(0), free, &rm);
        for (nodes, dur) in jobs {
            if nodes > free {
                continue;
            }
            let t = p.earliest_start(nodes, dur, SimTime(0));
            prop_assert!(t != SimTime::MAX);
            p.reserve(t, dur, nodes);
            prop_assert!(p.is_consistent(), "profile went negative");
        }
    }

    /// `free_at` is a right-continuous step function consistent with
    /// `min_free_in` on singleton windows.
    #[test]
    fn free_at_matches_min_free_single_second(
        releases in prop::collection::vec((1u64..100, 1u32..3), 0..10),
        probe in 0u64..120,
    ) {
        let mut rm = ReleaseMap::new(32);
        let mut nid = 0u32;
        for &(t, c) in &releases {
            for _ in 0..c {
                rm.set_release(cluster::NodeId(nid), Some(SimTime(t)));
                nid += 1;
            }
        }
        let p = Profile::build(SimTime(0), 2, &rm);
        prop_assert_eq!(p.free_at(SimTime(probe)), p.min_free_in(SimTime(probe), 1));
    }
}
