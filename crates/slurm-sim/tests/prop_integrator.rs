//! Property test: the simulator's continuous work integrator is exactly the
//! closed-form per-slot sums of the paper's Eqs. 5/6 (`sd-policy::models`
//! re-exports the closed forms; here we exercise the `RunningJob` integrator
//! directly against manual slot arithmetic).

use cluster::NodeId;
use proptest::prelude::*;
use simkit::SimTime;
use slurm_sim::rate::{IdealModel, RateInputs, RateModel, WorstCaseModel};
use slurm_sim::RunningJob;

const FULL: u32 = 48;

fn arb_slots() -> impl Strategy<Value = Vec<(Vec<u32>, u64)>> {
    // 2-node job, 1..5 reconfiguration slots with per-node cores in 1..=48
    // and wall durations in 1..1000 s.
    prop::collection::vec(
        (
            prop::collection::vec(1u32..=FULL, 2..=2),
            1u64..1000,
        ),
        1..5,
    )
}

proptest! {
    /// Running the integrator through a slot timeline banks exactly
    /// Σ rate·Δt of work, for both models.
    #[test]
    fn integrator_matches_slot_sums(slots in arb_slots(), ideal in any::<bool>()) {
        let model: Box<dyn RateModel> = if ideal {
            Box::new(IdealModel)
        } else {
            Box::new(WorstCaseModel)
        };
        let mut job = RunningJob::new(
            SimTime(0),
            vec![NodeId(0), NodeId(1)],
            vec![FULL, FULL],
            FULL,
            1_000_000,
        );
        let mut now = 0u64;
        let mut expected_work = 0.0f64;
        for (cores, wall) in &slots {
            job.cores = cores.clone();
            let inputs = RateInputs {
                cores,
                full_cores: FULL,
                app: None,
                neighbour_mem: 0.0,
            };
            let rate = model.rate(&inputs);
            job.set_rate(SimTime(now), rate);
            now += wall;
            job.bank(SimTime(now));
            expected_work += rate * *wall as f64;
        }
        prop_assert!(
            (job.work_done - expected_work).abs() < 1e-6,
            "work {} vs expected {}",
            job.work_done,
            expected_work
        );
    }

    /// Work is monotone and the predicted end is consistent: completing the
    /// remaining work at the final rate lands exactly on the prediction.
    #[test]
    fn predicted_end_is_self_consistent(slots in arb_slots()) {
        let total = 10_000u64;
        let mut job = RunningJob::new(
            SimTime(0),
            vec![NodeId(0), NodeId(1)],
            vec![FULL, FULL],
            FULL,
            total,
        );
        let mut now = 0u64;
        let mut last_work = 0.0;
        for (cores, wall) in &slots {
            job.cores = cores.clone();
            let inputs = RateInputs {
                cores,
                full_cores: FULL,
                app: None,
                neighbour_mem: 0.0,
            };
            job.set_rate(SimTime(now), WorstCaseModel.rate(&inputs));
            now += wall;
            job.bank(SimTime(now));
            prop_assert!(job.work_done >= last_work, "work monotone");
            last_work = job.work_done;
        }
        let predicted = job.predicted_end(SimTime(now), total);
        if predicted != SimTime::MAX && job.remaining_work(total) > 0.0 {
            // Simulate running at the current rate until the prediction.
            let wall = predicted.secs() - now;
            let done = job.work_done + job.rate * wall as f64;
            prop_assert!(done + 1e-9 >= total as f64, "prediction completes the work");
            // And one second less would not have been enough (ceil tightness).
            if wall > 0 {
                let short = job.work_done + job.rate * (wall - 1) as f64;
                prop_assert!(short < total as f64 + job.rate, "prediction is tight");
            }
        }
    }

    /// Eq. 5 rate always dominates Eq. 6 (ideal is the lower bound on the
    /// increase, worst case the upper bound — paper §3.4).
    #[test]
    fn ideal_rate_dominates_worst(cores in prop::collection::vec(1u32..=FULL, 1..6)) {
        let inputs = RateInputs {
            cores: &cores,
            full_cores: FULL,
            app: None,
            neighbour_mem: 0.0,
        };
        prop_assert!(IdealModel.rate(&inputs) >= WorstCaseModel.rate(&inputs) - 1e-12);
    }
}
