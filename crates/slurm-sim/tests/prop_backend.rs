//! Backend equivalence property tests (DESIGN.md §13): the slot-tree and
//! step-function availability backends must be observationally identical.
//! Arbitrary reserve / patch / advance sequences are applied to both, and
//! after every mutation a battery of `earliest_start` / `can_start_now`
//! queries must agree bit-for-bit — the tree's segment-descent query path
//! shares none of the profile's linear sweep, so this is the test that
//! keeps the two from drifting apart.

use proptest::prelude::*;
use simkit::SimTime;
use slurm_sim::{AvailBackend, AvailBackendKind, Availability};

/// One mutation drawn by proptest. Patches carry raw `(old, new)` release
/// transitions — both backends apply them as the same ±count deltas, so
/// any pair is mechanically valid even when it would be nonsense for a
/// real release map (queries still have to agree on the result).
#[derive(Debug, Clone)]
enum Op {
    Reserve { start_dt: u64, duration: u64, nodes: u32 },
    Patch { old: Option<u64>, new: Option<u64>, count: u32 },
    Advance { dt: u64 },
    Compact,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..400, 1u64..300, 1u32..6)
            .prop_map(|(start_dt, duration, nodes)| Op::Reserve { start_dt, duration, nodes }),
        // The vendored proptest has no Option strategy; a multiple of 4
        // stands in for None, anything else for Some(t).
        (0u64..600, 0u64..600, 1u32..4).prop_map(|(o, n, count)| Op::Patch {
            old: (o % 4 != 0).then_some(o),
            new: (n % 4 != 0).then_some(n),
            count,
        }),
        (1u64..120).prop_map(|dt| Op::Advance { dt }),
        Just(Op::Compact),
    ]
}

/// Applies `op` to one backend at the current time `now`.
fn apply(b: &mut AvailBackend, op: &Op, now: SimTime) {
    match *op {
        Op::Reserve { start_dt, duration, nodes } => {
            b.reserve(now.after(start_dt), duration, nodes)
        }
        Op::Patch { old, new, count } => {
            b.patch_release_many(now, old.map(SimTime), new.map(SimTime), count)
        }
        Op::Advance { .. } => b.advance_to(now),
        Op::Compact => b.compact(),
    }
}

proptest! {
    /// Both backends, fed the identical mutation stream, answer every
    /// `earliest_start` and `can_start_now` query identically after every
    /// single op, and their canonical step views stay `PartialEq`-equal.
    #[test]
    fn backends_answer_queries_identically(
        free in 1u32..24,
        ops in prop::collection::vec(op_strategy(), 1..40),
        queries in prop::collection::vec((1u32..12, 1u64..500, 0u64..700), 1..12),
    ) {
        let mut prof = AvailBackend::flat(AvailBackendKind::Profile, SimTime::ZERO, free);
        let mut tree = AvailBackend::flat(AvailBackendKind::SlotTree, SimTime::ZERO, free);
        let mut now = SimTime::ZERO;
        for op in &ops {
            if let Op::Advance { dt } = op {
                now = now.after(*dt); // time only moves forward
            }
            apply(&mut prof, op, now);
            apply(&mut tree, op, now);
            prop_assert_eq!(
                prof.as_steps(), tree.as_steps(),
                "step views diverged after {:?} at {:?}", op, now
            );
            for &(nodes, duration, after_dt) in &queries {
                let after = now.after(after_dt);
                prop_assert_eq!(
                    prof.earliest_start(nodes, duration, after),
                    tree.earliest_start(nodes, duration, after),
                    "earliest_start({}, {}, {:?}) after {:?}", nodes, duration, after, op
                );
                prop_assert_eq!(
                    prof.can_start_now(nodes, duration, now),
                    tree.can_start_now(nodes, duration, now),
                    "can_start_now({}, {}) after {:?}", nodes, duration, op
                );
            }
        }
    }

    /// `snapshot_from` (the pass-buffer copy hook) preserves equivalence:
    /// a snapshot taken mid-sequence answers like its source, for both
    /// backends, including across further mutations of the snapshot only.
    #[test]
    fn snapshots_stay_equivalent(
        free in 1u32..16,
        ops in prop::collection::vec(op_strategy(), 1..20),
        extra in prop::collection::vec(op_strategy(), 0..10),
    ) {
        let mut prof = AvailBackend::flat(AvailBackendKind::Profile, SimTime::ZERO, free);
        let mut tree = AvailBackend::flat(AvailBackendKind::SlotTree, SimTime::ZERO, free);
        let mut now = SimTime::ZERO;
        for op in &ops {
            if let Op::Advance { dt } = op {
                now = now.after(*dt);
            }
            apply(&mut prof, op, now);
            apply(&mut tree, op, now);
        }
        let mut prof_snap = AvailBackend::new(AvailBackendKind::Profile);
        let mut tree_snap = AvailBackend::new(AvailBackendKind::SlotTree);
        prof_snap.snapshot_from(&prof);
        tree_snap.snapshot_from(&tree);
        prop_assert_eq!(prof_snap.as_steps(), tree_snap.as_steps());
        for op in &extra {
            if let Op::Advance { dt } = op {
                now = now.after(*dt);
            }
            apply(&mut prof_snap, op, now);
            apply(&mut tree_snap, op, now);
            prop_assert_eq!(
                prof_snap.as_steps(), tree_snap.as_steps(),
                "snapshots diverged after {:?}", op
            );
            prop_assert_eq!(
                prof_snap.earliest_start(3, 50, now),
                tree_snap.earliest_start(3, 50, now)
            );
        }
        // The originals were never touched by snapshot mutations.
        prop_assert_eq!(prof.as_steps(), tree.as_steps());
    }
}
