//! Property tests for the fair-share queue order (ISSUE 6 satellite):
//!
//! * the sorted prefix is always a *permutation* of the pending queue —
//!   fair-share may reorder but never drop, duplicate or invent entries;
//! * with equal weights and zero accumulated usage the order degenerates to
//!   the incoming FIFO order exactly (the stable sort sees all-equal keys),
//!   which is the combinatorial heart of the single-tenant equivalence
//!   guarantee (DESIGN.md §11);
//! * ties between tenants with identical usage-per-weight keys preserve
//!   submit order among themselves.

use cluster::JobId;
use proptest::prelude::*;
use slurm_sim::tenant::fair_share_sort;
use slurm_sim::{QueueEntry, NO_TENANT_SLOT};

fn entries(specs: &[(u32, u32, u64)]) -> Vec<QueueEntry> {
    specs
        .iter()
        .enumerate()
        .map(|(i, &(tslot, req_nodes, req_time))| QueueEntry {
            job: JobId(i as u64 + 1),
            req_nodes,
            req_time,
            tslot,
        })
        .collect()
}

proptest! {
    /// Sorting never loses, duplicates or fabricates queue entries, for any
    /// usage/weight assignment (including NaN-free extremes).
    #[test]
    fn fair_share_is_a_permutation_of_the_queue(
        specs in prop::collection::vec((0u32..8, 1u32..64, 1u64..100_000), 0..40),
        usages in prop::collection::vec(0.0f64..1e12, 8),
        weights in prop::collection::vec(0.1f64..100.0, 8),
    ) {
        let original = entries(&specs);
        let mut sorted = original.clone();
        fair_share_sort(&mut sorted, |slot| {
            if slot == NO_TENANT_SLOT {
                0.0
            } else {
                usages[slot as usize] / weights[slot as usize]
            }
        });
        prop_assert_eq!(sorted.len(), original.len());
        // Same multiset: jobs are unique, so compare sorted id lists.
        let mut a: Vec<u64> = original.iter().map(|e| e.job.0).collect();
        let mut b: Vec<u64> = sorted.iter().map(|e| e.job.0).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b, "entry set changed");
        // And each entry's payload survived intact.
        for e in &sorted {
            let o = original.iter().find(|o| o.job == e.job).unwrap();
            prop_assert_eq!(o, e);
        }
    }

    /// Equal weights + zero usage ⇒ every key is identical, and the stable
    /// sort leaves the FIFO order untouched. This is why a fresh fair-share
    /// configuration reproduces the FIFO schedule bit-for-bit.
    #[test]
    fn zero_usage_equal_weights_degenerates_to_fifo(
        specs in prop::collection::vec((0u32..8, 1u32..64, 1u64..100_000), 0..40),
        weight in 0.1f64..100.0,
    ) {
        let original = entries(&specs);
        let mut sorted = original.clone();
        fair_share_sort(&mut sorted, |slot| {
            if slot == NO_TENANT_SLOT { 0.0 } else { 0.0 / weight }
        });
        prop_assert_eq!(sorted, original, "order must be untouched");
    }

    /// Tenants sharing one usage-per-weight key keep submit order among
    /// themselves, and lower keys always come first.
    #[test]
    fn sort_is_stable_and_key_monotone(
        specs in prop::collection::vec((0u32..4, 1u32..64, 1u64..100_000), 0..40),
        keys in prop::collection::vec(0.0f64..4.0, 4),
    ) {
        // Coarse keys force plenty of ties.
        let coarse: Vec<f64> = keys.iter().map(|k| k.floor()).collect();
        let original = entries(&specs);
        let mut sorted = original.clone();
        fair_share_sort(&mut sorted, |slot| coarse[slot as usize]);
        for w in sorted.windows(2) {
            let (ka, kb) = (coarse[w[0].tslot as usize], coarse[w[1].tslot as usize]);
            prop_assert!(ka <= kb, "keys out of order: {ka} then {kb}");
            if ka == kb {
                prop_assert!(w[0].job.0 < w[1].job.0, "tie broke submit order");
            }
        }
    }
}
