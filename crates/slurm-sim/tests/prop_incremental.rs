//! Property tests for the incremental hot path (DESIGN.md §9): the cached
//! availability profile must be indistinguishable from a full rebuild.
//! (The linear-sweep vs. legacy-probe property moved into `reservation.rs`
//! unit tests when the quadratic probe was demoted to a test-only oracle.)

use cluster::NodeId;
use proptest::prelude::*;
use simkit::SimTime;
use slurm_sim::{Profile, ReleaseMap};

proptest! {
    /// A profile maintained purely through `patch_release`/`advance_to` is
    /// `PartialEq`-identical to `Profile::build` after every step of an
    /// arbitrary release-change sequence (the start/end/shrink/relocate
    /// traffic of a run reduces to exactly such sequences).
    #[test]
    fn patched_profile_equals_rebuild(
        ops in prop::collection::vec((0u32..16, 0u64..1000, 0u64..50), 1..50),
    ) {
        let nodes = 16u32;
        let mut rm = ReleaseMap::new(nodes);
        let mut cached = Profile::flat(SimTime::ZERO, nodes);
        let mut now = SimTime::ZERO;
        for &(node, when, dt) in &ops {
            now = now.after(dt); // time only moves forward
            let nid = NodeId(node);
            let old = rm.release_of(nid);
            // Mix of clearing (job end) and (re)setting (start/extend).
            let new = if when % 3 == 0 { None } else { Some(SimTime(when)) };
            if old != new {
                rm.set_release(nid, new);
                cached.patch_release(now, old, new);
            }
            cached.advance_to(now);
            let free_now = nodes - rm.busy_count();
            let fresh = Profile::build(now, free_now, &rm);
            prop_assert_eq!(&cached, &fresh, "diverged after op on {:?} at {:?}", nid, now);
        }
    }

    /// `reserve` (single-splice implementation) leaves the same step
    /// function as a naive subtract-over-window on a cloned profile, and
    /// `busy_count` matches the number of busy nodes.
    #[test]
    fn reserve_windows_compose_with_releases(
        releases in prop::collection::vec((1u64..500, 1u32..3), 0..12),
        resvs in prop::collection::vec((0u64..600, 1u64..200, 1u32..4), 1..12),
        probes in prop::collection::vec(0u64..900, 1..20),
    ) {
        let mut rm = ReleaseMap::new(64);
        let mut nid = 0u32;
        let mut busy = 0u32;
        for &(t, c) in &releases {
            for _ in 0..c {
                rm.set_release(NodeId(nid), Some(SimTime(t)));
                nid += 1;
                busy += 1;
            }
        }
        prop_assert_eq!(rm.busy_count(), busy);
        let mut p = Profile::build(SimTime(0), 8, &rm);
        // Model: free_at(t) after reservations == build's free minus the sum
        // of reservations whose window covers t.
        let base = p.clone();
        for &(s, d, n) in &resvs {
            p.reserve(SimTime(s), d, n);
        }
        for &t in &probes {
            let mut expect = base.free_at(SimTime(t));
            for &(s, d, n) in &resvs {
                let end = s + d.max(1);
                if t >= s && t < end {
                    expect -= n as i64;
                }
            }
            prop_assert_eq!(p.free_at(SimTime(t)), expect, "at t={t}");
        }
    }
}
