//! # drom — Dynamic Resource Ownership Management substrate
//!
//! Re-implementation of the DROM interface (D'Amico et al., ICPP'18 — the
//! paper's reference \[5\]) that SD-Policy uses for node-level malleability:
//!
//! * [`registry`] — the DROM "space": processes register, expose their CPU
//!   masks, and pick up pending mask changes at *malleability points*,
//! * [`sharing`] — the `SharingFactor` rule: how many cores a running job can
//!   lose on a shared node, floored at one core per MPI rank,
//! * [`distribution`] — pure core-distribution algorithms (socket-isolated,
//!   balanced) used by the node manager to compute task→core affinities,
//! * [`node`] — the per-node manager implementing the paper's Listing 3:
//!   shrink residents on a co-launch, return cores to their owner at job end,
//!   redistribute when an owner finishes first.
//!
//! The real DROM talks to OpenMP/OmpSs runtimes via shared memory; here the
//! "applications" are simulated jobs, so a mask change is applied at the next
//! malleability point, which the simulator reaches instantaneously (the
//! measured DROM overhead is negligible — paper §2.1). A configurable
//! `reconfig_latency` is still plumbed through for sensitivity studies.

pub mod distribution;
pub mod node;
pub mod registry;
pub mod sharing;

pub use node::{NodeManager, NodeUpdate};
pub use registry::{DromHandle, DromRegistry, ProcessEntry};
pub use sharing::SharingFactor;
