//! Per-node resource manager (paper Listing 3, slurmd + task/affinity).
//!
//! Tracks the jobs resident on one node, computes their task→core
//! distribution through [`crate::distribution`], and implements the paper's
//! ownership rules:
//!
//! 1. at a malleable co-launch the shrunk resident becomes the **owner** of
//!    the cores lent to the incoming job;
//! 2. when the incoming job ends, its cores return to the owner (expand);
//! 3. when the owner ends first, its remaining cores are distributed to the
//!    still-running residents "to increase node utilization".

use crate::distribution::{expand_into, shrink_socket_first};
use crate::registry::{DromHandle, DromRegistry};
use crate::sharing::SharingFactor;
use cluster::cpumask::CpuMask;
use cluster::spec::NodeSpec;
use cluster::state::{JobId, NodeId};

/// A mask change produced by a node-level event, to be propagated to the
/// simulator (rate recomputation) and the DROM registry (affinity change).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeUpdate {
    pub job: JobId,
    pub new_mask: CpuMask,
}

impl NodeUpdate {
    pub fn cores(&self) -> u32 {
        self.new_mask.count() as u32
    }
}

#[derive(Debug, Clone)]
struct Resident {
    job: JobId,
    mask: CpuMask,
    malleable: bool,
    handle: Option<DromHandle>,
    /// For a co-launched job: the resident that lent it cores on this node.
    lender: Option<JobId>,
}

/// One resident's persistent fields, for node-manager snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidentSnapshot {
    pub job: JobId,
    pub mask: CpuMask,
    pub malleable: bool,
    pub handle: Option<DromHandle>,
    pub lender: Option<JobId>,
}

/// Manager of one node's residents and their core masks.
#[derive(Debug)]
pub struct NodeManager {
    node: NodeId,
    spec: NodeSpec,
    residents: Vec<Resident>,
}

impl NodeManager {
    pub fn new(node: NodeId, spec: NodeSpec) -> Self {
        NodeManager {
            node,
            spec,
            residents: Vec::new(),
        }
    }

    pub fn node(&self) -> NodeId {
        self.node
    }

    pub fn resident_count(&self) -> usize {
        self.residents.len()
    }

    pub fn is_empty(&self) -> bool {
        self.residents.is_empty()
    }

    /// Mask of cores not held by any resident.
    pub fn free_mask(&self) -> CpuMask {
        let mut free = CpuMask::full(self.spec.cores() as usize);
        for r in &self.residents {
            free.subtract(&r.mask);
        }
        free
    }

    /// Current mask of `job`, if resident.
    pub fn mask_of(&self, job: JobId) -> Option<&CpuMask> {
        self.residents.iter().find(|r| r.job == job).map(|r| &r.mask)
    }

    /// Launches a job on `cores` free cores (static path). Registers it with
    /// DROM when `malleable` so it can be reconfigured later.
    ///
    /// Returns the assigned mask, or `None` if the free cores don't suffice.
    pub fn launch(
        &mut self,
        registry: &mut DromRegistry,
        job: JobId,
        cores: u32,
        malleable: bool,
    ) -> Option<CpuMask> {
        let free = self.free_mask();
        if (free.count() as u32) < cores {
            return None;
        }
        let mask = if self.residents.is_empty() && cores == self.spec.cores() {
            CpuMask::full(self.spec.cores() as usize)
        } else {
            // Prefer socket-contiguous placement in the free space.
            expand_into(&self.spec, &CpuMask::empty(self.spec.cores() as usize), &free, cores)
        };
        let handle = malleable.then(|| registry.attach(job, self.node, mask.clone()));
        self.residents.push(Resident {
            job,
            mask: mask.clone(),
            malleable,
            handle,
            lender: None,
        });
        debug_assert!(self.validate().is_ok(), "{:?}", self.validate());
        Some(mask)
    }

    /// Co-launches `new_job` by shrinking the resident `mate` according to
    /// the sharing factor (paper: "node managers calculate tasks-to-cores
    /// distribution among jobs, keeping jobs balanced and isolated").
    ///
    /// `mate_ranks` is the mate's MPI-rank count on this node (shrink floor).
    /// Returns the updates: the mate's shrunken mask and the new job's mask.
    ///
    /// The mate's shrink is only *staged* in the DROM registry; the caller
    /// applies the whole job's reconfiguration in one
    /// [`DromRegistry::poll_nodes`] broadcast over the full allocation.
    pub fn co_launch(
        &mut self,
        registry: &mut DromRegistry,
        new_job: JobId,
        mate: JobId,
        sharing: SharingFactor,
        mate_ranks: u32,
    ) -> Option<Vec<NodeUpdate>> {
        let free = self.free_mask();
        let mate_idx = self.residents.iter().position(|r| r.job == mate)?;
        if !self.residents[mate_idx].malleable {
            return None;
        }
        let mate_cores = self.residents[mate_idx].mask.count() as u32;
        let keep = sharing.keep_cores(mate_cores, mate_ranks);
        let freed = mate_cores - keep;
        if freed == 0 && free.is_empty() {
            return None;
        }

        // Shrink the mate, socket-first for isolation.
        let new_mate_mask = shrink_socket_first(&self.spec, &self.residents[mate_idx].mask, keep);
        let mut given = self.residents[mate_idx].mask.clone();
        given.subtract(&new_mate_mask);
        // The incoming job also gets any cores that were already free.
        given.union_with(&free);

        self.residents[mate_idx].mask = new_mate_mask.clone();
        if let Some(h) = self.residents[mate_idx].handle {
            registry.set_mask(h, new_mate_mask.clone());
        }

        let handle = registry.attach(new_job, self.node, given.clone());
        self.residents.push(Resident {
            job: new_job,
            mask: given.clone(),
            malleable: true,
            handle: Some(handle),
            lender: Some(mate),
        });
        // The shrunk mate's mask stays *staged*: the caller closes the whole
        // job's reconfiguration with one `DromRegistry::poll_nodes` broadcast
        // over the full allocation (per-job batching) instead of one
        // malleability point per node.
        debug_assert!(self.validate().is_ok(), "{:?}", self.validate());
        Some(vec![
            NodeUpdate {
                job: mate,
                new_mask: new_mate_mask,
            },
            NodeUpdate {
                job: new_job,
                new_mask: given,
            },
        ])
    }

    /// Removes `job` from the node, applying the paper's end-of-job rules.
    /// Returns the mask updates for the residents that expanded (staged in
    /// the registry; the caller broadcasts [`DromRegistry::poll_nodes`]).
    pub fn finish(&mut self, registry: &mut DromRegistry, job: JobId) -> Vec<NodeUpdate> {
        let Some(idx) = self.residents.iter().position(|r| r.job == job) else {
            return Vec::new();
        };
        let ended = self.residents.remove(idx);
        if let Some(h) = ended.handle {
            registry.detach(h);
        }
        let mut updates = Vec::new();
        let freed = ended.mask;

        // Rule 1: the ended job borrowed cores — return them to the owner.
        let beneficiaries: Vec<usize> = if let Some(owner) = ended.lender {
            if let Some(i) = self.residents.iter().position(|r| r.job == owner) {
                vec![i]
            } else {
                self.malleable_residents()
            }
        } else {
            // Rule 2/3: an owner (or plain resident) ended — distribute to
            // the remaining malleable residents.
            self.malleable_residents()
        };

        if beneficiaries.is_empty() {
            return updates; // cores simply become free
        }

        // Split the freed cores among beneficiaries (usually exactly one).
        let shares =
            crate::distribution::balanced_budgets(freed.count() as u32, beneficiaries.len() as u32);
        let mut pool = freed;
        for (&i, &share) in beneficiaries.iter().zip(shares.iter()) {
            if share == 0 {
                continue;
            }
            let grown = expand_into(&self.spec, &self.residents[i].mask, &pool, share);
            let mut taken = grown.clone();
            taken.subtract(&self.residents[i].mask);
            pool.subtract(&taken);
            self.residents[i].mask = grown.clone();
            // A job that expanded back to (at least) what it lent is no
            // longer anyone's borrower.
            if let Some(h) = self.residents[i].handle {
                registry.set_mask(h, grown.clone());
            }
            updates.push(NodeUpdate {
                job: self.residents[i].job,
                new_mask: grown,
            });
        }
        // Expansions stay staged, like `co_launch`'s shrink: the simulator
        // broadcasts one `poll_nodes` over the ended job's allocation.
        debug_assert!(self.validate().is_ok(), "{:?}", self.validate());
        updates
    }

    /// Residents in arrival order, for persistence.
    pub fn snapshot(&self) -> Vec<ResidentSnapshot> {
        self.residents
            .iter()
            .map(|r| ResidentSnapshot {
                job: r.job,
                mask: r.mask.clone(),
                malleable: r.malleable,
                handle: r.handle,
                lender: r.lender,
            })
            .collect()
    }

    /// Rebuilds a manager from a [`snapshot`](NodeManager::snapshot),
    /// validating mask disjointness.
    pub fn from_snapshot(
        node: NodeId,
        spec: NodeSpec,
        residents: Vec<ResidentSnapshot>,
    ) -> Result<NodeManager, String> {
        let nm = NodeManager {
            node,
            spec,
            residents: residents
                .into_iter()
                .map(|r| Resident {
                    job: r.job,
                    mask: r.mask,
                    malleable: r.malleable,
                    handle: r.handle,
                    lender: r.lender,
                })
                .collect(),
        };
        nm.validate()?;
        Ok(nm)
    }

    fn malleable_residents(&self) -> Vec<usize> {
        self.residents
            .iter()
            .enumerate()
            .filter(|(_, r)| r.malleable)
            .map(|(i, _)| i)
            .collect()
    }

    /// Checks mask disjointness and non-emptiness for all residents.
    pub fn validate(&self) -> Result<(), String> {
        for (i, a) in self.residents.iter().enumerate() {
            if a.mask.is_empty() {
                return Err(format!("{} has empty mask on {}", a.job, self.node));
            }
            for b in &self.residents[i + 1..] {
                if !a.mask.is_disjoint(&b.mask) {
                    return Err(format!(
                        "{} and {} overlap on {}: {:?} / {:?}",
                        a.job, b.job, self.node, a.mask, b.mask
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::spec::ClusterSpec;

    fn mgr() -> (NodeManager, DromRegistry) {
        (
            NodeManager::new(NodeId(0), ClusterSpec::marenostrum4(1).node),
            DromRegistry::new(),
        )
    }

    #[test]
    fn exclusive_launch_gets_full_node() {
        let (mut nm, mut reg) = mgr();
        let mask = nm.launch(&mut reg, JobId(1), 48, true).unwrap();
        assert_eq!(mask.count(), 48);
        assert_eq!(reg.processes_on(NodeId(0)).count(), 1);
        assert!(nm.free_mask().is_empty());
    }

    #[test]
    fn launch_fails_without_room() {
        let (mut nm, mut reg) = mgr();
        nm.launch(&mut reg, JobId(1), 48, false).unwrap();
        assert!(nm.launch(&mut reg, JobId(2), 1, false).is_none());
    }

    #[test]
    fn co_launch_splits_socket_wise() {
        let (mut nm, mut reg) = mgr();
        nm.launch(&mut reg, JobId(1), 48, true).unwrap();
        let ups = nm
            .co_launch(&mut reg, JobId(2), JobId(1), SharingFactor::HALF, 2)
            .unwrap();
        assert_eq!(ups.len(), 2);
        assert_eq!(ups[0].job, JobId(1));
        assert_eq!(ups[0].cores(), 24);
        assert_eq!(ups[1].job, JobId(2));
        assert_eq!(ups[1].cores(), 24);
        assert!(ups[0].new_mask.is_disjoint(&ups[1].new_mask));
        // Isolation: each job sits on exactly one socket.
        let spec = ClusterSpec::marenostrum4(1).node;
        assert_eq!(crate::distribution::sockets_touched(&spec, &ups[0].new_mask), 1);
        assert_eq!(crate::distribution::sockets_touched(&spec, &ups[1].new_mask), 1);
        // Masks are staged until the per-job broadcast closes the batch.
        assert!(reg.find(JobId(1), NodeId(0)).unwrap().has_pending());
        assert_eq!(reg.poll_nodes(&[NodeId(0)]), 1);
        assert!(reg.validate_node(NodeId(0)).is_ok());
    }

    #[test]
    fn co_launch_rejects_static_mate() {
        let (mut nm, mut reg) = mgr();
        nm.launch(&mut reg, JobId(1), 48, false).unwrap();
        assert!(nm
            .co_launch(&mut reg, JobId(2), JobId(1), SharingFactor::HALF, 1)
            .is_none());
    }

    #[test]
    fn new_job_end_returns_cores_to_owner() {
        let (mut nm, mut reg) = mgr();
        nm.launch(&mut reg, JobId(1), 48, true).unwrap();
        nm.co_launch(&mut reg, JobId(2), JobId(1), SharingFactor::HALF, 2)
            .unwrap();
        let ups = nm.finish(&mut reg, JobId(2));
        assert_eq!(ups.len(), 1);
        assert_eq!(ups[0].job, JobId(1));
        assert_eq!(ups[0].cores(), 48, "owner expanded back to the full node");
        assert_eq!(nm.resident_count(), 1);
    }

    #[test]
    fn owner_end_redistributes_to_new_job() {
        let (mut nm, mut reg) = mgr();
        nm.launch(&mut reg, JobId(1), 48, true).unwrap();
        nm.co_launch(&mut reg, JobId(2), JobId(1), SharingFactor::HALF, 2)
            .unwrap();
        // Owner (mate) finishes before the co-scheduled job.
        let ups = nm.finish(&mut reg, JobId(1));
        assert_eq!(ups.len(), 1);
        assert_eq!(ups[0].job, JobId(2));
        assert_eq!(ups[0].cores(), 48, "survivor takes the whole node");
        assert!(nm.validate().is_ok());
    }

    #[test]
    fn plain_finish_frees_cores() {
        let (mut nm, mut reg) = mgr();
        nm.launch(&mut reg, JobId(1), 24, false).unwrap();
        let ups = nm.finish(&mut reg, JobId(1));
        assert!(ups.is_empty());
        assert!(nm.is_empty());
        assert_eq!(nm.free_mask().count(), 48);
    }

    #[test]
    fn finish_unknown_job_is_noop() {
        let (mut nm, mut reg) = mgr();
        assert!(nm.finish(&mut reg, JobId(77)).is_empty());
    }

    #[test]
    fn co_launch_absorbs_already_free_cores() {
        let (mut nm, mut reg) = mgr();
        nm.launch(&mut reg, JobId(1), 24, true).unwrap(); // half the node busy
        let ups = nm
            .co_launch(&mut reg, JobId(2), JobId(1), SharingFactor::HALF, 2)
            .unwrap();
        // Mate keeps 12, new job gets 12 freed + 24 already free = 36.
        assert_eq!(ups[0].cores(), 12);
        assert_eq!(ups[1].cores(), 36);
        assert!(nm.free_mask().is_empty());
    }

    #[test]
    fn rank_floor_respected_in_co_launch() {
        let (mut nm, mut reg) = mgr();
        nm.launch(&mut reg, JobId(1), 48, true).unwrap();
        let ups = nm
            .co_launch(&mut reg, JobId(2), JobId(1), SharingFactor::new(0.9), 40)
            .unwrap();
        assert_eq!(ups[0].cores(), 40, "mate floor = its 40 ranks");
        assert_eq!(ups[1].cores(), 8);
    }

    #[test]
    fn three_way_sharing_remains_disjoint() {
        let (mut nm, mut reg) = mgr();
        nm.launch(&mut reg, JobId(1), 48, true).unwrap();
        nm.co_launch(&mut reg, JobId(2), JobId(1), SharingFactor::HALF, 2)
            .unwrap();
        // A third job shrinks job 2 (mates can themselves be shrunk when
        // "more than two mates per node" is enabled).
        let ups = nm
            .co_launch(&mut reg, JobId(3), JobId(2), SharingFactor::HALF, 2)
            .unwrap();
        assert!(nm.validate().is_ok());
        assert_eq!(ups[0].job, JobId(2));
        assert_eq!(ups[0].cores(), 12);
        assert_eq!(ups[1].cores(), 12);
        // Masks across all three jobs cover the node exactly once.
        let total: usize = [JobId(1), JobId(2), JobId(3)]
            .iter()
            .map(|&j| nm.mask_of(j).unwrap().count())
            .sum();
        assert_eq!(total, 48);
    }
}
