//! The DROM "space": process registration and mask exchange.
//!
//! Mirrors the real DROM API surface (paper §2.1): *"API for registering
//! processes in the DROM environment, getting the list of recorded
//! processes, and getting/setting their CPU masks"*. Mask changes are staged
//! as *pending* and applied when the process reaches a malleability point
//! ([`DromRegistry::poll`]), exactly like the runtime integration with
//! OpenMP/OmpSs task boundaries.

use cluster::cpumask::CpuMask;
use cluster::state::{JobId, NodeId};

/// Handle identifying a registered process (one job's task group on a node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DromHandle(pub u64);

/// A registered process entry.
#[derive(Debug, Clone)]
pub struct ProcessEntry {
    pub handle: DromHandle,
    pub job: JobId,
    pub node: NodeId,
    /// Mask the process is currently running with.
    pub current: CpuMask,
    /// Mask staged by the resource manager, applied at the next
    /// malleability point.
    pub pending: Option<CpuMask>,
}

impl ProcessEntry {
    /// True when a reconfiguration is waiting for a malleability point.
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }
}

/// The registry of all DROM-attached processes (one per node manager in the
/// real system; global here for test convenience).
///
/// Indexed for a machine-sized population: a handle → entry map serves
/// `get`/`set_mask`/`poll`/`detach` in O(1), and a per-node handle list (in
/// registration order, so every per-node view stays deterministic) serves
/// `processes_on`/`poll_node`/`find` in O(residents). The old flat `Vec`
/// made each of these a scan over *every* registered process in the system
/// — the dominant cost of full-scale Curie replays, where tens of thousands
/// of processes are attached at once.
#[derive(Debug, Default)]
pub struct DromRegistry {
    entries: std::collections::HashMap<u64, ProcessEntry>,
    /// Per node: handles in registration order (tiny vectors, 1–3 entries).
    by_node: Vec<Vec<DromHandle>>,
    /// Per node: how many residents have a mask staged. Lets the batched
    /// [`DromRegistry::poll_nodes`] sweep skip untouched nodes in O(1)
    /// instead of hashing every resident handle.
    pending_on: Vec<u32>,
    next_handle: u64,
}

impl DromRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    fn node_slot(&mut self, node: NodeId) -> &mut Vec<DromHandle> {
        let idx = node.0 as usize;
        if idx >= self.by_node.len() {
            self.by_node.resize_with(idx + 1, Vec::new);
            self.pending_on.resize(idx + 1, 0);
        }
        &mut self.by_node[idx]
    }

    fn pending_slot(&mut self, node: NodeId) -> &mut u32 {
        let idx = node.0 as usize;
        if idx >= self.pending_on.len() {
            self.by_node.resize_with(idx + 1, Vec::new);
            self.pending_on.resize(idx + 1, 0);
        }
        &mut self.pending_on[idx]
    }

    /// Registers a process with its launch-time mask (`DROM_run`).
    pub fn attach(&mut self, job: JobId, node: NodeId, mask: CpuMask) -> DromHandle {
        let handle = DromHandle(self.next_handle);
        self.next_handle += 1;
        self.entries.insert(
            handle.0,
            ProcessEntry {
                handle,
                job,
                node,
                current: mask,
                pending: None,
            },
        );
        self.node_slot(node).push(handle);
        handle
    }

    /// Removes a process (`DROM_clean`). Returns the final mask it held.
    pub fn detach(&mut self, handle: DromHandle) -> Option<CpuMask> {
        let e = self.entries.remove(&handle.0)?;
        if e.pending.is_some() {
            *self.pending_slot(e.node) -= 1;
        }
        let slot = self.node_slot(e.node);
        slot.retain(|&h| h != handle);
        Some(e.current)
    }

    /// All processes on `node`, in registration order.
    pub fn processes_on(&self, node: NodeId) -> impl Iterator<Item = &ProcessEntry> {
        self.by_node
            .get(node.0 as usize)
            .into_iter()
            .flatten()
            .map(|h| &self.entries[&h.0])
    }

    pub fn get(&self, handle: DromHandle) -> Option<&ProcessEntry> {
        self.entries.get(&handle.0)
    }

    /// Looks up the process of `job` on `node`.
    pub fn find(&self, job: JobId, node: NodeId) -> Option<&ProcessEntry> {
        self.processes_on(node).find(|e| e.job == job)
    }

    /// Stages a new mask for a process (`DROM_setprocessmask`).
    pub fn set_mask(&mut self, handle: DromHandle, mask: CpuMask) -> bool {
        let Some(e) = self.entries.get_mut(&handle.0) else {
            return false;
        };
        let node = e.node;
        let newly = e.pending.is_none();
        e.pending = Some(mask);
        if newly {
            *self.pending_slot(node) += 1;
        }
        true
    }

    /// The process reaches a malleability point: applies any pending mask.
    /// Returns the new current mask if a change was applied.
    pub fn poll(&mut self, handle: DromHandle) -> Option<&CpuMask> {
        let e = self.entries.get_mut(&handle.0)?;
        let node = e.node;
        if e.pending.is_some() {
            *self.pending_slot(node) -= 1;
        }
        let e = self.entries.get_mut(&handle.0).expect("looked up above");
        if let Some(p) = e.pending.take() {
            e.current = p;
            Some(&e.current)
        } else {
            None
        }
    }

    /// Applies every pending mask on `node` (the simulator treats a
    /// reconfiguration broadcast as reaching all malleability points at
    /// once — DROM's measured overhead is negligible, paper §2.1).
    pub fn poll_node(&mut self, node: NodeId) -> usize {
        if self.pending_on.get(node.0 as usize).copied().unwrap_or(0) == 0 {
            return 0;
        }
        let mut applied = 0;
        if let Some(handles) = self.by_node.get(node.0 as usize) {
            for h in handles {
                let e = self.entries.get_mut(&h.0).expect("indexed handle exists");
                if let Some(p) = e.pending.take() {
                    e.current = p;
                    applied += 1;
                }
            }
        }
        self.pending_on[node.0 as usize] = 0;
        applied
    }

    /// One malleability broadcast for a whole job allocation: applies every
    /// staged mask across `nodes` in a single sweep. This is the per-*job*
    /// batch the node managers stage into — `co_launch`/`finish` only stage;
    /// the simulator closes each reconfiguration with one `poll_nodes` call
    /// per job operation instead of one broadcast per node, and the per-node
    /// pending counters make untouched nodes free to skip.
    pub fn poll_nodes(&mut self, nodes: &[NodeId]) -> usize {
        nodes.iter().map(|&n| self.poll_node(n)).sum()
    }

    /// Snapshot for persistence: every entry grouped by node (ascending) in
    /// per-node registration order, plus the next handle value. That order
    /// is exactly what [`DromRegistry::from_snapshot`] needs to rebuild the
    /// per-node indices deterministically.
    pub fn snapshot(&self) -> (Vec<ProcessEntry>, u64) {
        let mut out = Vec::with_capacity(self.entries.len());
        for handles in &self.by_node {
            for h in handles {
                out.push(self.entries[&h.0].clone());
            }
        }
        (out, self.next_handle)
    }

    /// Rebuilds a registry from a [`snapshot`](DromRegistry::snapshot).
    pub fn from_snapshot(
        entries: Vec<ProcessEntry>,
        next_handle: u64,
    ) -> Result<DromRegistry, String> {
        let mut r = DromRegistry::default();
        for e in entries {
            if e.handle.0 >= next_handle {
                return Err(format!(
                    "DROM entry handle {} >= next_handle {next_handle}",
                    e.handle.0
                ));
            }
            if e.pending.is_some() {
                *r.pending_slot(e.node) += 1;
            }
            r.node_slot(e.node).push(e.handle);
            if r.entries.insert(e.handle.0, e).is_some() {
                return Err("duplicate DROM handle in snapshot".into());
            }
        }
        r.next_handle = next_handle;
        Ok(r)
    }

    /// Validates that current masks of processes sharing a node are disjoint.
    pub fn validate_node(&self, node: NodeId) -> Result<(), String> {
        let procs: Vec<&ProcessEntry> = self.processes_on(node).collect();
        for (i, a) in procs.iter().enumerate() {
            if a.current.is_empty() {
                return Err(format!("{} on {node} has an empty mask", a.job));
            }
            for b in &procs[i + 1..] {
                if !a.current.is_disjoint(&b.current) {
                    return Err(format!(
                        "{} and {} overlap on {node}: {:?} vs {:?}",
                        a.job, b.job, a.current, b.current
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask(lo: usize, hi: usize) -> CpuMask {
        CpuMask::range(16, lo, hi)
    }

    #[test]
    fn attach_detach_lifecycle() {
        let mut r = DromRegistry::new();
        let h = r.attach(JobId(1), NodeId(0), mask(0, 16));
        assert!(r.get(h).is_some());
        assert_eq!(r.processes_on(NodeId(0)).count(), 1);
        let final_mask = r.detach(h).unwrap();
        assert_eq!(final_mask.count(), 16);
        assert!(r.get(h).is_none());
        assert!(r.detach(h).is_none(), "double detach is None");
    }

    #[test]
    fn pending_masks_apply_at_malleability_point() {
        let mut r = DromRegistry::new();
        let h = r.attach(JobId(1), NodeId(0), mask(0, 16));
        assert!(r.set_mask(h, mask(0, 8)));
        // Not yet applied:
        assert_eq!(r.get(h).unwrap().current.count(), 16);
        assert!(r.get(h).unwrap().has_pending());
        // Malleability point:
        assert_eq!(r.poll(h).unwrap().count(), 8);
        assert!(!r.get(h).unwrap().has_pending());
        assert!(r.poll(h).is_none(), "no further change pending");
    }

    #[test]
    fn poll_node_applies_all_pending() {
        let mut r = DromRegistry::new();
        let h1 = r.attach(JobId(1), NodeId(3), mask(0, 16));
        let h2 = r.attach(JobId(2), NodeId(3), mask(0, 0));
        r.set_mask(h1, mask(0, 8));
        r.set_mask(h2, mask(8, 16));
        assert_eq!(r.poll_node(NodeId(3)), 2);
        assert!(r.validate_node(NodeId(3)).is_ok());
    }

    #[test]
    fn validate_detects_overlap() {
        let mut r = DromRegistry::new();
        r.attach(JobId(1), NodeId(0), mask(0, 9));
        r.attach(JobId(2), NodeId(0), mask(8, 16));
        let err = r.validate_node(NodeId(0)).unwrap_err();
        assert!(err.contains("overlap"));
    }

    #[test]
    fn validate_detects_empty_mask() {
        let mut r = DromRegistry::new();
        r.attach(JobId(1), NodeId(0), CpuMask::empty(16));
        assert!(r.validate_node(NodeId(0)).unwrap_err().contains("empty"));
    }

    #[test]
    fn find_by_job_and_node() {
        let mut r = DromRegistry::new();
        r.attach(JobId(1), NodeId(0), mask(0, 4));
        r.attach(JobId(1), NodeId(1), mask(0, 4));
        assert!(r.find(JobId(1), NodeId(1)).is_some());
        assert!(r.find(JobId(2), NodeId(0)).is_none());
    }

    #[test]
    fn set_mask_on_unknown_handle_is_false() {
        let mut r = DromRegistry::new();
        assert!(!r.set_mask(DromHandle(99), mask(0, 1)));
    }
}
