//! Core-distribution algorithms for the node manager (paper §3.3, Listing 3).
//!
//! "Cores distribution keeps jobs in separate sockets to improve data
//! locality and reduce interference between jobs" and "maintains running and
//! new processes balanced in the number of cores per task".
//!
//! All functions are pure: they map a node spec plus per-job core budgets to
//! disjoint [`CpuMask`]s, so they are easy to property-test.

use cluster::cpumask::CpuMask;
use cluster::spec::NodeSpec;

/// Splits `total` cores into `parts` budgets differing by at most one
/// (balanced distribution). The first `total % parts` budgets get the extra
/// core — deterministic, so placement is reproducible.
pub fn balanced_budgets(total: u32, parts: u32) -> Vec<u32> {
    assert!(parts > 0, "cannot split across zero jobs");
    let base = total / parts;
    let extra = (total % parts) as usize;
    (0..parts as usize)
        .map(|i| base + u32::from(i < extra))
        .collect()
}

/// Assigns disjoint socket-aligned masks for the given per-job core budgets.
///
/// Budgets are laid out left-to-right over the node's cores. Because cores
/// are numbered socket-major, a job whose budget equals a socket size lands
/// exactly on one socket — the isolation the paper found optimal. Budgets
/// must sum to at most the node's core count.
pub fn socket_aligned_masks(spec: &NodeSpec, budgets: &[u32]) -> Vec<CpuMask> {
    let ncores = spec.cores() as usize;
    let total: u32 = budgets.iter().sum();
    assert!(
        total <= spec.cores(),
        "budgets ({total}) exceed node cores ({})",
        spec.cores()
    );
    let mut masks = Vec::with_capacity(budgets.len());
    let mut cursor = 0usize;
    for &b in budgets {
        masks.push(CpuMask::range(ncores, cursor, cursor + b as usize));
        cursor += b as usize;
    }
    masks
}

/// Number of distinct sockets a mask touches.
pub fn sockets_touched(spec: &NodeSpec, mask: &CpuMask) -> u32 {
    let mut touched = vec![false; spec.sockets as usize];
    for c in mask.iter() {
        touched[spec.socket_of(c as u32) as usize] = true;
    }
    touched.iter().filter(|&&t| t).count() as u32
}

/// Shrinks `mask` to `target` cores, preferring to vacate whole sockets
/// (keeps the sockets where the job already has the most cores).
pub fn shrink_socket_first(spec: &NodeSpec, mask: &CpuMask, target: u32) -> CpuMask {
    let have = mask.count() as u32;
    if target >= have {
        return mask.clone();
    }
    // Count the job's cores per socket.
    let mut per_socket: Vec<(u32, u32)> = (0..spec.sockets)
        .map(|s| {
            let cnt = mask
                .iter()
                .filter(|&c| spec.socket_of(c as u32) == s)
                .count() as u32;
            (s, cnt)
        })
        .collect();
    // Keep densest sockets first; tie-break on socket id for determinism.
    per_socket.sort_by_key(|&(s, cnt)| (std::cmp::Reverse(cnt), s));

    let mut out = CpuMask::empty(spec.cores() as usize);
    let mut remaining = target;
    for (s, _) in per_socket {
        if remaining == 0 {
            break;
        }
        let lo = s * spec.cores_per_socket;
        for c in lo..lo + spec.cores_per_socket {
            if remaining == 0 {
                break;
            }
            if mask.contains(c as usize) {
                out.set(c as usize);
                remaining -= 1;
            }
        }
    }
    out
}

/// Expands `mask` by `extra` cores taken from `available` (lowest first,
/// preferring sockets the job already occupies for locality).
pub fn expand_into(spec: &NodeSpec, mask: &CpuMask, available: &CpuMask, extra: u32) -> CpuMask {
    let mut out = mask.clone();
    let mut remaining = extra;
    // First pass: same-socket cores.
    for c in available.iter() {
        if remaining == 0 {
            break;
        }
        if out.contains(c) {
            continue;
        }
        let sock = spec.socket_of(c as u32);
        let on_socket = mask
            .iter()
            .any(|mc| spec.socket_of(mc as u32) == sock);
        if on_socket {
            out.set(c);
            remaining -= 1;
        }
    }
    // Second pass: anything free.
    for c in available.iter() {
        if remaining == 0 {
            break;
        }
        if !out.contains(c) {
            out.set(c);
            remaining -= 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::spec::ClusterSpec;

    fn mn4() -> NodeSpec {
        ClusterSpec::marenostrum4(1).node // 2 × 24
    }

    #[test]
    fn balanced_budgets_differ_by_at_most_one() {
        assert_eq!(balanced_budgets(48, 2), vec![24, 24]);
        assert_eq!(balanced_budgets(48, 5), vec![10, 10, 10, 9, 9]);
        assert_eq!(balanced_budgets(3, 5), vec![1, 1, 1, 0, 0]);
    }

    #[test]
    fn socket_aligned_masks_are_disjoint_and_isolated() {
        let spec = mn4();
        let masks = socket_aligned_masks(&spec, &[24, 24]);
        assert!(masks[0].is_disjoint(&masks[1]));
        assert_eq!(sockets_touched(&spec, &masks[0]), 1);
        assert_eq!(sockets_touched(&spec, &masks[1]), 1);
        assert_eq!(masks[0], spec.socket_mask(0));
        assert_eq!(masks[1], spec.socket_mask(1));
    }

    #[test]
    #[should_panic(expected = "exceed node cores")]
    fn overcommitted_budgets_panic() {
        socket_aligned_masks(&mn4(), &[40, 40]);
    }

    #[test]
    fn shrink_prefers_vacating_a_socket() {
        let spec = mn4();
        let full = CpuMask::full(48);
        let kept = shrink_socket_first(&spec, &full, 24);
        assert_eq!(kept.count(), 24);
        assert_eq!(sockets_touched(&spec, &kept), 1, "kept cores on one socket");
    }

    #[test]
    fn shrink_to_larger_target_is_identity() {
        let spec = mn4();
        let m = CpuMask::range(48, 0, 10);
        assert_eq!(shrink_socket_first(&spec, &m, 20), m);
    }

    #[test]
    fn shrink_keeps_subset_of_original() {
        let spec = mn4();
        let m = CpuMask::range(48, 12, 40); // straddles both sockets
        let kept = shrink_socket_first(&spec, &m, 10);
        assert_eq!(kept.count(), 10);
        for c in kept.iter() {
            assert!(m.contains(c), "core {c} not in original mask");
        }
        // Densest socket of the original is socket 0 (cores 12..24 = 12 of
        // them vs 16 on socket 1) — wait, socket 1 has 40-24=16. Densest is 1.
        assert!(kept.iter().all(|c| spec.socket_of(c as u32) == 1));
    }

    #[test]
    fn expand_prefers_same_socket() {
        let spec = mn4();
        let m = CpuMask::range(48, 0, 4); // socket 0
        let mut avail = CpuMask::empty(48);
        avail.set(30); // socket 1
        avail.set(5); // socket 0
        let grown = expand_into(&spec, &m, &avail, 1);
        assert!(grown.contains(5), "same-socket core taken first");
        assert!(!grown.contains(30));
    }

    #[test]
    fn expand_falls_back_to_other_socket() {
        let spec = mn4();
        let m = CpuMask::range(48, 0, 4);
        let avail = CpuMask::range(48, 24, 26); // only socket-1 cores free
        let grown = expand_into(&spec, &m, &avail, 2);
        assert_eq!(grown.count(), 6);
        assert!(grown.contains(24) && grown.contains(25));
    }

    #[test]
    fn expand_never_exceeds_available() {
        let spec = mn4();
        let m = CpuMask::range(48, 0, 2);
        let avail = CpuMask::range(48, 2, 4);
        let grown = expand_into(&spec, &m, &avail, 10);
        assert_eq!(grown.count(), 4, "only 2 extra cores existed");
    }
}
