//! The SharingFactor rule (paper §3.3).
//!
//! "We defined the SharingFactor, a limit on computational resources that can
//! be taken from a running job in a computational node when shrunk" — with
//! the floor that a job never shrinks below one core per MPI rank.

/// Fraction of a node's cores a resident job may *lose* when shrunk.
///
/// The paper's evaluated value is `0.5` (jobs isolated on one of two
/// sockets). `SharingFactor(0.0)` disables malleability entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharingFactor(f64);

impl SharingFactor {
    /// The paper's production setting for MareNostrum4 (two sockets).
    pub const HALF: SharingFactor = SharingFactor(0.5);

    /// Creates a sharing factor, clamped to `[0, 1)`.
    ///
    /// A factor of 1.0 would allow shrinking a job to zero cores, which the
    /// model forbids; values ≥ 1 are clamped just below.
    pub fn new(f: f64) -> SharingFactor {
        SharingFactor(f.clamp(0.0, 0.999))
    }

    pub fn value(self) -> f64 {
        self.0
    }

    /// Cores a resident job keeps when shrunk on a node with `full` cores,
    /// given it runs `ranks` MPI ranks on that node (floor: 1 core/rank).
    ///
    /// `keep = max(full − floor(full·sf), ranks)`, capped at `full`.
    pub fn keep_cores(self, full: u32, ranks: u32) -> u32 {
        let takeable = (full as f64 * self.0).floor() as u32;
        (full - takeable).max(ranks.max(1)).min(full)
    }

    /// Cores freed for the incoming job: `full − keep`.
    pub fn freed_cores(self, full: u32, ranks: u32) -> u32 {
        full - self.keep_cores(full, ranks)
    }
}

impl Default for SharingFactor {
    fn default() -> Self {
        SharingFactor::HALF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_splits_a_48_core_node() {
        let sf = SharingFactor::HALF;
        assert_eq!(sf.keep_cores(48, 2), 24);
        assert_eq!(sf.freed_cores(48, 2), 24);
    }

    #[test]
    fn rank_floor_limits_shrink() {
        let sf = SharingFactor::new(0.9);
        // 16-core node, 8 ranks: can't go below 8 cores even at sf=0.9.
        assert_eq!(sf.keep_cores(16, 8), 8);
        assert_eq!(sf.freed_cores(16, 8), 8);
    }

    #[test]
    fn zero_factor_keeps_everything() {
        let sf = SharingFactor::new(0.0);
        assert_eq!(sf.keep_cores(48, 1), 48);
        assert_eq!(sf.freed_cores(48, 1), 0);
    }

    #[test]
    fn factor_clamped_below_one() {
        let sf = SharingFactor::new(5.0);
        assert!(sf.value() < 1.0);
        // Even at the clamp, at least one core per rank survives.
        assert!(sf.keep_cores(16, 1) >= 1);
    }

    #[test]
    fn ranks_above_full_still_capped_at_full() {
        let sf = SharingFactor::HALF;
        assert_eq!(sf.keep_cores(8, 64), 8);
        assert_eq!(sf.freed_cores(8, 64), 0);
    }

    #[test]
    fn zero_ranks_treated_as_one() {
        let sf = SharingFactor::new(0.999);
        assert_eq!(sf.keep_cores(16, 0), 1);
    }
}
