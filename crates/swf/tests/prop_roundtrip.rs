//! Property test: SWF write → parse is the identity on records.

use proptest::prelude::*;
use swf::{parse_str, write_string, JobStatus, SwfJob, Trace};

fn arb_job() -> impl Strategy<Value = SwfJob> {
    (
        1u64..1_000_000,
        -1i64..10_000_000,
        -1i64..1_000_000,
        -1i64..1_000_000,
        -1i64..100_000,
        prop_oneof![Just(-1.0f64), (0u32..1_000_000).prop_map(|v| v as f64 / 4.0)],
        -1i64..100_000,
        -1i64..1_000_000,
        -1i64..5000,
        (-1i64..5, -1i64..5000, -1i64..5000),
    )
        .prop_map(
            |(id, submit, wait, run, procs, cpu, req_procs, req_time, user, (st, prec, think))| {
                SwfJob {
                    job_id: id,
                    submit,
                    wait,
                    run_time: run,
                    used_procs: procs,
                    avg_cpu_time: cpu,
                    used_mem: -1.0,
                    req_procs,
                    req_time,
                    req_mem: -1.0,
                    status: JobStatus::from_code(st),
                    user,
                    group: -1,
                    app: -1,
                    queue: -1,
                    partition: 1,
                    preceding_job: prec,
                    think_time: think,
                }
            },
        )
}

proptest! {
    #[test]
    fn write_parse_roundtrip(jobs in prop::collection::vec(arb_job(), 0..50)) {
        let trace = Trace::new(Default::default(), jobs);
        let text = write_string(&trace);
        let back = parse_str(&text).expect("own output parses");
        prop_assert_eq!(back.jobs, trace.jobs);
    }

    #[test]
    fn every_written_line_has_18_fields(job in arb_job()) {
        let line = swf::write::format_line(&job);
        prop_assert_eq!(line.split_whitespace().count(), 18);
    }
}
