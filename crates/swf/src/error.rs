//! Error type for SWF parsing and I/O.

use std::fmt;

/// Errors produced while reading an SWF trace.
#[derive(Debug)]
pub enum SwfError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A data line did not have the mandatory 18 fields.
    FieldCount {
        line: usize,
        found: usize,
    },
    /// A field failed numeric conversion.
    BadField {
        line: usize,
        field: usize,
        value: String,
    },
}

impl fmt::Display for SwfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwfError::Io(e) => write!(f, "I/O error: {e}"),
            SwfError::FieldCount { line, found } => {
                write!(f, "line {line}: expected 18 fields, found {found}")
            }
            SwfError::BadField { line, field, value } => {
                write!(f, "line {line}: field {field} is not numeric: {value:?}")
            }
        }
    }
}

impl std::error::Error for SwfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SwfError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SwfError {
    fn from(e: std::io::Error) -> Self {
        SwfError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SwfError::FieldCount { line: 3, found: 5 };
        assert!(e.to_string().contains("line 3"));
        let e = SwfError::BadField {
            line: 9,
            field: 2,
            value: "xyz".into(),
        };
        assert!(e.to_string().contains("field 2"));
        let e = SwfError::from(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
    }
}
