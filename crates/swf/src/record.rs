//! The 18-field SWF job record.

/// Completion status of a job (SWF field 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobStatus {
    /// 0 — job failed.
    Failed,
    /// 1 — job completed normally.
    Completed,
    /// 2 — partial execution, will continue (checkpointed trace).
    PartialToBeContinued,
    /// 3 — partial execution, last segment.
    PartialLast,
    /// 4 — job was cancelled.
    Cancelled,
    /// −1 (or anything else) — unknown.
    Unknown,
}

impl JobStatus {
    pub fn from_code(code: i64) -> JobStatus {
        match code {
            0 => JobStatus::Failed,
            1 => JobStatus::Completed,
            2 => JobStatus::PartialToBeContinued,
            3 => JobStatus::PartialLast,
            4 => JobStatus::Cancelled,
            _ => JobStatus::Unknown,
        }
    }

    pub fn code(self) -> i64 {
        match self {
            JobStatus::Failed => 0,
            JobStatus::Completed => 1,
            JobStatus::PartialToBeContinued => 2,
            JobStatus::PartialLast => 3,
            JobStatus::Cancelled => 4,
            JobStatus::Unknown => -1,
        }
    }
}

/// One job record, mirroring SWF v2.2 exactly.
///
/// Missing values are encoded as `-1` in the file; numeric fields keep that
/// convention (`i64`/`f64`) and the typed accessors (`runtime()`,
/// `requested_time()`, …) translate them into `Option`s.
#[derive(Debug, Clone, PartialEq)]
pub struct SwfJob {
    /// 1: job number, a counter starting from 1.
    pub job_id: u64,
    /// 2: submit time in seconds since trace start.
    pub submit: i64,
    /// 3: wait time in seconds (difference between submit and start), −1 unknown.
    pub wait: i64,
    /// 4: run time in seconds (wall clock), −1 unknown.
    pub run_time: i64,
    /// 5: number of allocated processors, −1 unknown.
    pub used_procs: i64,
    /// 6: average CPU time used per processor, seconds, −1 unknown.
    pub avg_cpu_time: f64,
    /// 7: used memory per processor, KB, −1 unknown.
    pub used_mem: f64,
    /// 8: requested number of processors, −1 unknown.
    pub req_procs: i64,
    /// 9: requested (user-estimated) wall-clock time, seconds, −1 unknown.
    pub req_time: i64,
    /// 10: requested memory per processor, KB, −1 unknown.
    pub req_mem: f64,
    /// 11: completion status.
    pub status: JobStatus,
    /// 12: user id, −1 unknown.
    pub user: i64,
    /// 13: group id, −1 unknown.
    pub group: i64,
    /// 14: executable (application) number, −1 unknown.
    pub app: i64,
    /// 15: queue number, −1 unknown.
    pub queue: i64,
    /// 16: partition number, −1 unknown.
    pub partition: i64,
    /// 17: preceding job number (dependency), −1 none.
    pub preceding_job: i64,
    /// 18: think time from preceding job, seconds, −1 none.
    pub think_time: i64,
}

impl Default for SwfJob {
    fn default() -> Self {
        SwfJob {
            job_id: 0,
            submit: 0,
            wait: -1,
            run_time: -1,
            used_procs: -1,
            avg_cpu_time: -1.0,
            used_mem: -1.0,
            req_procs: -1,
            req_time: -1,
            req_mem: -1.0,
            status: JobStatus::Unknown,
            user: -1,
            group: -1,
            app: -1,
            queue: -1,
            partition: -1,
            preceding_job: -1,
            think_time: -1,
        }
    }
}

impl SwfJob {
    /// A minimal, valid record for simulation: id, submit, runtime, size and
    /// user estimate.
    pub fn for_simulation(
        job_id: u64,
        submit: u64,
        run_time: u64,
        procs: u64,
        req_time: u64,
    ) -> SwfJob {
        SwfJob {
            job_id,
            submit: submit as i64,
            run_time: run_time as i64,
            used_procs: procs as i64,
            req_procs: procs as i64,
            req_time: req_time as i64,
            status: JobStatus::Completed,
            ..SwfJob::default()
        }
    }

    /// Actual runtime if known.
    pub fn runtime(&self) -> Option<u64> {
        (self.run_time >= 0).then_some(self.run_time as u64)
    }

    /// Requested (estimated) wall time if known, falling back to the actual
    /// runtime — the usual convention when replaying traces with missing
    /// estimates.
    pub fn requested_time(&self) -> Option<u64> {
        if self.req_time >= 0 {
            Some(self.req_time as u64)
        } else {
            self.runtime()
        }
    }

    /// Processor count to use when replaying: requested, else used.
    pub fn procs(&self) -> Option<u64> {
        if self.req_procs > 0 {
            Some(self.req_procs as u64)
        } else if self.used_procs > 0 {
            Some(self.used_procs as u64)
        } else {
            None
        }
    }

    /// Wait time if recorded.
    pub fn wait_time(&self) -> Option<u64> {
        (self.wait >= 0).then_some(self.wait as u64)
    }

    /// True when the record carries everything needed to simulate it.
    pub fn is_simulatable(&self) -> bool {
        self.submit >= 0 && self.runtime().is_some() && self.procs().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_codes_roundtrip() {
        for code in [-1i64, 0, 1, 2, 3, 4] {
            let s = JobStatus::from_code(code);
            assert_eq!(s.code(), code);
        }
        assert_eq!(JobStatus::from_code(99), JobStatus::Unknown);
    }

    #[test]
    fn defaults_are_unknown() {
        let j = SwfJob::default();
        assert_eq!(j.runtime(), None);
        assert_eq!(j.requested_time(), None);
        assert_eq!(j.procs(), None);
        assert_eq!(j.wait_time(), None);
        assert!(!j.is_simulatable());
    }

    #[test]
    fn for_simulation_is_simulatable() {
        let j = SwfJob::for_simulation(1, 100, 3600, 64, 7200);
        assert!(j.is_simulatable());
        assert_eq!(j.runtime(), Some(3600));
        assert_eq!(j.requested_time(), Some(7200));
        assert_eq!(j.procs(), Some(64));
    }

    #[test]
    fn requested_time_falls_back_to_runtime() {
        let mut j = SwfJob::for_simulation(1, 0, 500, 4, 600);
        j.req_time = -1;
        assert_eq!(j.requested_time(), Some(500));
    }

    #[test]
    fn procs_prefers_requested() {
        let mut j = SwfJob {
            used_procs: 32,
            ..SwfJob::default()
        };
        assert_eq!(j.procs(), Some(32));
        j.req_procs = 64;
        assert_eq!(j.procs(), Some(64));
    }
}
