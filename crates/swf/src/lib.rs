//! # swf — Standard Workload Format support
//!
//! Implements the Parallel Workloads Archive **Standard Workload Format
//! v2.2** (Feitelson, <http://www.cs.huji.ac.il/labs/parallel/workload/swf.html>):
//! the 18-field job record, the `;`-prefixed header comments, a tolerant
//! parser, a canonical writer, summary statistics and the cleaning filters
//! the paper applies to the CEA-Curie log ("only considering the primary
//! partition").
//!
//! The paper's workloads 3 and 4 are SWF traces (RICC-2010, CEA-Curie-2011).
//! We are offline, so the `workload` crate synthesises statistically matched
//! traces *through this crate's types*; if the genuine archives are available
//! the experiment binaries accept them directly via `--swf <file>`.

pub mod error;
pub mod filter;
pub mod header;
pub mod parse;
pub mod record;
pub mod stats;
pub mod write;

pub use error::SwfError;
pub use header::SwfHeader;
pub use parse::{parse_file, parse_reader, parse_str, Trace};
pub use record::{JobStatus, SwfJob};
pub use stats::TraceStats;
pub use write::{write_string, write_to};
