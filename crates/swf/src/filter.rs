//! Trace cleaning filters.
//!
//! The paper uses "the cleaned version of CEA-Curie … only considering the
//! primary partition". These filters reproduce the archive's standard
//! cleaning steps: keep one partition, drop unusable records, clamp
//! anomalous estimates, and renumber/rebase so the trace starts at t = 0.

use crate::parse::Trace;
#[cfg(test)]
use crate::record::SwfJob;

/// Keeps only jobs of the given partition (SWF field 16).
pub fn keep_partition(trace: &mut Trace, partition: i64) {
    trace.jobs.retain(|j| j.partition == partition);
}

/// The partition with the most jobs, if any ("primary partition").
pub fn primary_partition(trace: &Trace) -> Option<i64> {
    let mut counts: std::collections::HashMap<i64, usize> = std::collections::HashMap::new();
    for j in &trace.jobs {
        *counts.entry(j.partition).or_default() += 1;
    }
    counts
        .into_iter()
        .max_by_key(|&(p, n)| (n, std::cmp::Reverse(p)))
        .map(|(p, _)| p)
}

/// Drops records that cannot be replayed (no runtime or no size, zero
/// runtime, or non-positive processor counts).
pub fn drop_unusable(trace: &mut Trace) -> usize {
    let before = trace.len();
    trace
        .jobs
        .retain(|j| j.is_simulatable() && j.runtime().unwrap_or(0) > 0);
    before - trace.len()
}

/// Caps requested times at `max` seconds and guarantees
/// `req_time >= run_time` (a scheduler would have killed the job otherwise).
pub fn sanitize_estimates(trace: &mut Trace, max: u64) {
    for j in &mut trace.jobs {
        if j.run_time < 0 {
            continue;
        }
        if j.req_time < 0 || j.req_time < j.run_time {
            j.req_time = j.run_time;
        }
        if j.req_time as u64 > max {
            j.req_time = max as i64;
        }
        if (j.run_time as u64) > max {
            j.run_time = max as i64;
        }
    }
}

/// Shifts submit times so the earliest is 0, sorts by submit and renumbers
/// job ids from 1, preserving relative order.
pub fn rebase_and_renumber(trace: &mut Trace) {
    trace.sort_by_submit();
    let base = trace.jobs.first().map(|j| j.submit).unwrap_or(0);
    for (i, j) in trace.jobs.iter_mut().enumerate() {
        j.submit -= base;
        j.job_id = (i + 1) as u64;
    }
}

/// Scales processor requests down to fit a system of `max_procs`, clamping
/// oversized jobs (the Cirne-model "scaled to the considered system size").
pub fn clamp_to_system(trace: &mut Trace, max_procs: u64) -> usize {
    let mut clamped = 0;
    for j in &mut trace.jobs {
        if j.req_procs > max_procs as i64 {
            j.req_procs = max_procs as i64;
            clamped += 1;
        }
        if j.used_procs > max_procs as i64 {
            j.used_procs = max_procs as i64;
        }
    }
    clamped
}

/// Full cleaning pipeline as applied to the paper's Workload 4.
pub fn clean_like_curie(trace: &mut Trace, max_req_time: u64) {
    if let Some(p) = primary_partition(trace) {
        keep_partition(trace, p);
    }
    drop_unusable(trace);
    sanitize_estimates(trace, max_req_time);
    rebase_and_renumber(trace);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(id: u64, submit: i64, run: i64, procs: i64, partition: i64) -> SwfJob {
        SwfJob {
            job_id: id,
            submit,
            run_time: run,
            req_procs: procs,
            used_procs: procs,
            req_time: run,
            partition,
            ..SwfJob::default()
        }
    }

    #[test]
    fn primary_partition_picks_most_jobs() {
        let trace = Trace::new(
            Default::default(),
            vec![j(1, 0, 1, 1, 2), j(2, 0, 1, 1, 2), j(3, 0, 1, 1, 5)],
        );
        assert_eq!(primary_partition(&trace), Some(2));
    }

    #[test]
    fn keep_partition_filters() {
        let mut trace = Trace::new(
            Default::default(),
            vec![j(1, 0, 1, 1, 2), j(2, 0, 1, 1, 3)],
        );
        keep_partition(&mut trace, 3);
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.jobs[0].job_id, 2);
    }

    #[test]
    fn drop_unusable_removes_zero_runtime() {
        let mut trace = Trace::new(
            Default::default(),
            vec![j(1, 0, 0, 4, 1), j(2, 0, 10, 4, 1), SwfJob::default()],
        );
        let dropped = drop_unusable(&mut trace);
        assert_eq!(dropped, 2);
        assert_eq!(trace.jobs[0].job_id, 2);
    }

    #[test]
    fn sanitize_fixes_underestimates_and_caps() {
        let mut trace = Trace::new(Default::default(), vec![j(1, 0, 100, 1, 1)]);
        trace.jobs[0].req_time = 10; // user underestimated
        sanitize_estimates(&mut trace, 1_000);
        assert_eq!(trace.jobs[0].req_time, 100);
        trace.jobs[0].req_time = 5_000;
        sanitize_estimates(&mut trace, 1_000);
        assert_eq!(trace.jobs[0].req_time, 1_000);
    }

    #[test]
    fn rebase_renumbers_in_submit_order() {
        let mut trace = Trace::new(
            Default::default(),
            vec![j(7, 500, 1, 1, 1), j(9, 100, 1, 1, 1)],
        );
        rebase_and_renumber(&mut trace);
        assert_eq!(trace.jobs[0].job_id, 1);
        assert_eq!(trace.jobs[0].submit, 0);
        assert_eq!(trace.jobs[1].submit, 400);
    }

    #[test]
    fn clamp_to_system_caps_procs() {
        let mut trace = Trace::new(Default::default(), vec![j(1, 0, 1, 100, 1)]);
        assert_eq!(clamp_to_system(&mut trace, 64), 1);
        assert_eq!(trace.jobs[0].req_procs, 64);
    }

    #[test]
    fn clean_pipeline_runs_end_to_end() {
        let mut trace = Trace::new(
            Default::default(),
            vec![
                j(1, 100, 10, 4, 1),
                j(2, 50, 20, 8, 1),
                j(3, 0, 30, 2, 9), // minority partition, dropped
                SwfJob::default(), // unusable, dropped
            ],
        );
        clean_like_curie(&mut trace, 86_400);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.jobs[0].submit, 0);
        assert_eq!(trace.jobs[0].job_id, 1);
    }
}
