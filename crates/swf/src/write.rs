//! Canonical SWF writer.
//!
//! Produces archive-style output: header comments first, then one record per
//! line with single-space separation. Floating-point fields are written as
//! integers when they are whole numbers, matching the published traces.

use crate::parse::Trace;
use crate::record::SwfJob;
use std::io::Write;

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Formats one record as an SWF data line.
pub fn format_line(j: &SwfJob) -> String {
    format!(
        "{} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
        j.job_id,
        j.submit,
        j.wait,
        j.run_time,
        j.used_procs,
        fmt_f64(j.avg_cpu_time),
        fmt_f64(j.used_mem),
        j.req_procs,
        j.req_time,
        fmt_f64(j.req_mem),
        j.status.code(),
        j.user,
        j.group,
        j.app,
        j.queue,
        j.partition,
        j.preceding_job,
        j.think_time,
    )
}

/// Writes a trace to any writer.
pub fn write_to<W: Write>(trace: &Trace, mut w: W) -> std::io::Result<()> {
    for line in trace.header.to_lines() {
        writeln!(w, "{line}")?;
    }
    for job in &trace.jobs {
        writeln!(w, "{}", format_line(job))?;
    }
    Ok(())
}

/// Serialises a trace to a `String`.
pub fn write_string(trace: &Trace) -> String {
    let mut buf = Vec::new();
    write_to(trace, &mut buf).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("SWF output is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_str;
    use crate::record::{JobStatus, SwfJob};

    #[test]
    fn roundtrip_preserves_records() {
        let mut trace = Trace::default();
        trace.header.set("MaxNodes", 4);
        trace.jobs.push(SwfJob::for_simulation(1, 0, 100, 8, 120));
        let mut j2 = SwfJob::for_simulation(2, 50, 10, 4, 20);
        j2.avg_cpu_time = 9.25;
        j2.status = JobStatus::Cancelled;
        trace.jobs.push(j2);

        let text = write_string(&trace);
        let back = parse_str(&text).unwrap();
        assert_eq!(back.jobs, trace.jobs);
        assert_eq!(back.header.max_nodes(), Some(4));
    }

    #[test]
    fn whole_floats_written_as_integers() {
        assert_eq!(fmt_f64(-1.0), "-1");
        assert_eq!(fmt_f64(2048.0), "2048");
        assert_eq!(fmt_f64(9.25), "9.25");
    }

    #[test]
    fn line_has_18_fields() {
        let j = SwfJob::default();
        let line = format_line(&j);
        assert_eq!(line.split_whitespace().count(), 18);
    }
}
