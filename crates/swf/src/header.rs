//! SWF header comments.
//!
//! SWF headers are `;`-prefixed `Key: Value` lines. Only a handful matter to
//! the simulator (`MaxNodes`, `MaxProcs`, `UnixStartTime`); everything else
//! is preserved verbatim so a parsed-then-written trace keeps its provenance.

use std::collections::BTreeMap;

/// Parsed header of an SWF file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SwfHeader {
    /// `Key → Value` pairs in sorted order (deterministic output).
    pub fields: BTreeMap<String, String>,
    /// Comment lines that were not `Key: Value` shaped.
    pub freeform: Vec<String>,
}

impl SwfHeader {
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses one header line (without the leading `;`).
    pub fn add_line(&mut self, line: &str) {
        let line = line.trim();
        if line.is_empty() {
            return;
        }
        if let Some((k, v)) = line.split_once(':') {
            let k = k.trim();
            // Header keys are single tokens like `MaxProcs`; anything with
            // internal whitespace is prose, not a field.
            if !k.is_empty() && !k.contains(char::is_whitespace) {
                self.fields.insert(k.to_string(), v.trim().to_string());
                return;
            }
        }
        self.freeform.push(line.to_string());
    }

    pub fn set(&mut self, key: &str, value: impl ToString) {
        self.fields.insert(key.to_string(), value.to_string());
    }

    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields.get(key).map(String::as_str)
    }

    fn get_u64(&self, key: &str) -> Option<u64> {
        self.get(key)?.split_whitespace().next()?.parse().ok()
    }

    /// `MaxNodes` field, if present.
    pub fn max_nodes(&self) -> Option<u64> {
        self.get_u64("MaxNodes")
    }

    /// `MaxProcs` field, if present.
    pub fn max_procs(&self) -> Option<u64> {
        self.get_u64("MaxProcs")
    }

    /// `UnixStartTime` field, if present.
    pub fn unix_start_time(&self) -> Option<u64> {
        self.get_u64("UnixStartTime")
    }

    /// Serialises the header back into `;` comment lines.
    pub fn to_lines(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("; {k}: {v}"))
            .collect();
        out.extend(self.freeform.iter().map(|l| format!("; {l}")));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_key_value_lines() {
        let mut h = SwfHeader::new();
        h.add_line(" MaxProcs: 80640");
        h.add_line("MaxNodes: 5040");
        h.add_line("UnixStartTime: 1234567");
        assert_eq!(h.max_procs(), Some(80640));
        assert_eq!(h.max_nodes(), Some(5040));
        assert_eq!(h.unix_start_time(), Some(1234567));
    }

    #[test]
    fn prose_goes_to_freeform() {
        let mut h = SwfHeader::new();
        h.add_line("This trace was converted from the original logs");
        h.add_line("");
        assert!(h.fields.is_empty());
        assert_eq!(h.freeform.len(), 1);
    }

    #[test]
    fn value_with_trailing_comment_parses() {
        let mut h = SwfHeader::new();
        h.add_line("MaxNodes: 1024 (after cleaning)");
        assert_eq!(h.max_nodes(), Some(1024));
    }

    #[test]
    fn roundtrips_to_lines() {
        let mut h = SwfHeader::new();
        h.set("MaxNodes", 16);
        h.add_line("note line");
        let lines = h.to_lines();
        assert_eq!(lines, vec!["; MaxNodes: 16", "; note line"]);

        let mut h2 = SwfHeader::new();
        for l in &lines {
            h2.add_line(l.trim_start_matches(';'));
        }
        assert_eq!(h, h2);
    }

    #[test]
    fn missing_fields_are_none() {
        let h = SwfHeader::new();
        assert_eq!(h.max_nodes(), None);
        assert_eq!(h.get("Whatever"), None);
    }
}
