//! Trace summary statistics (the columns of the paper's Table 1).

use crate::parse::Trace;
use crate::record::SwfJob;

/// Aggregate statistics of a trace, computed from the *recorded* fields
/// (i.e. what the original system observed, not a re-simulation).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    pub jobs: usize,
    /// Jobs carrying enough data to simulate.
    pub simulatable: usize,
    pub max_procs_requested: u64,
    pub total_core_seconds: f64,
    pub mean_runtime: f64,
    pub mean_procs: f64,
    /// Mean recorded response time (wait + run), where both are known.
    pub mean_response: f64,
    /// Mean recorded slowdown (response / runtime), runtime floored at 1 s.
    pub mean_slowdown: f64,
    /// Span from first submit to last recorded end.
    pub makespan: u64,
}

impl TraceStats {
    /// Computes statistics over all simulatable jobs in the trace.
    pub fn compute(trace: &Trace) -> TraceStats {
        let mut s = TraceStats {
            jobs: trace.len(),
            ..TraceStats::default()
        };
        let mut first_submit = i64::MAX;
        let mut last_end = i64::MIN;
        let mut n_resp = 0usize;
        let mut sum_rt = 0.0;
        let mut sum_procs = 0.0;
        let mut sum_resp = 0.0;
        let mut sum_sd = 0.0;
        for j in &trace.jobs {
            let (Some(rt), Some(p)) = (j.runtime(), j.procs()) else {
                continue;
            };
            s.simulatable += 1;
            sum_rt += rt as f64;
            sum_procs += p as f64;
            s.total_core_seconds += rt as f64 * p as f64;
            s.max_procs_requested = s.max_procs_requested.max(p);
            first_submit = first_submit.min(j.submit);
            if let Some(w) = j.wait_time() {
                let resp = (w + rt) as f64;
                sum_resp += resp;
                sum_sd += resp / (rt.max(1) as f64);
                n_resp += 1;
                last_end = last_end.max(j.submit + (w + rt) as i64);
            } else {
                last_end = last_end.max(j.submit + rt as i64);
            }
        }
        if s.simulatable > 0 {
            let n = s.simulatable as f64;
            s.mean_runtime = sum_rt / n;
            s.mean_procs = sum_procs / n;
            s.makespan = (last_end - first_submit).max(0) as u64;
        }
        if n_resp > 0 {
            s.mean_response = sum_resp / n_resp as f64;
            s.mean_slowdown = sum_sd / n_resp as f64;
        }
        s
    }
}

/// Recorded slowdown of one job, if derivable.
pub fn job_slowdown(j: &SwfJob) -> Option<f64> {
    let rt = j.runtime()?;
    let w = j.wait_time()?;
    Some((w + rt) as f64 / rt.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::SwfJob;

    fn job(id: u64, submit: i64, wait: i64, run: i64, procs: i64) -> SwfJob {
        SwfJob {
            job_id: id,
            submit,
            wait,
            run_time: run,
            req_procs: procs,
            used_procs: procs,
            req_time: run,
            ..SwfJob::default()
        }
    }

    #[test]
    fn stats_over_simple_trace() {
        let trace = Trace::new(
            Default::default(),
            vec![job(1, 0, 0, 100, 4), job(2, 50, 50, 100, 8)],
        );
        let s = TraceStats::compute(&trace);
        assert_eq!(s.jobs, 2);
        assert_eq!(s.simulatable, 2);
        assert_eq!(s.max_procs_requested, 8);
        assert!((s.mean_runtime - 100.0).abs() < 1e-9);
        assert!((s.mean_procs - 6.0).abs() < 1e-9);
        // responses: 100 and 150 -> mean 125; slowdowns 1.0 and 1.5 -> 1.25
        assert!((s.mean_response - 125.0).abs() < 1e-9);
        assert!((s.mean_slowdown - 1.25).abs() < 1e-9);
        // ends: 100 and 200; first submit 0
        assert_eq!(s.makespan, 200);
        assert!((s.total_core_seconds - 1200.0).abs() < 1e-9);
    }

    #[test]
    fn unsimulatable_jobs_ignored() {
        let bad = SwfJob {
            submit: 5,
            ..SwfJob::default()
        };
        let trace = Trace::new(Default::default(), vec![bad, job(2, 0, 0, 10, 1)]);
        let s = TraceStats::compute(&trace);
        assert_eq!(s.jobs, 2);
        assert_eq!(s.simulatable, 1);
    }

    #[test]
    fn slowdown_floors_runtime() {
        let j = job(1, 0, 10, 0, 1);
        assert_eq!(job_slowdown(&j), Some(10.0));
    }

    #[test]
    fn empty_trace_is_zeroed() {
        let s = TraceStats::compute(&Trace::default());
        assert_eq!(s, TraceStats::default());
    }
}
