//! Tolerant SWF parser.
//!
//! Real archive traces contain oddities (floating-point processor counts,
//! stray whitespace, short lines in damaged logs). The parser accepts any
//! whitespace separation, parses integers through `f64` when needed, and can
//! run in *lenient* mode (skip malformed lines, the archive-recommended
//! behaviour) or *strict* mode (error out, used by our tests).

use crate::error::SwfError;
use crate::header::SwfHeader;
use crate::record::{JobStatus, SwfJob};
use std::io::BufRead;

/// A parsed trace: header plus job records in file order.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    pub header: SwfHeader,
    pub jobs: Vec<SwfJob>,
}

impl Trace {
    pub fn new(header: SwfHeader, jobs: Vec<SwfJob>) -> Self {
        Trace { header, jobs }
    }

    /// Number of job records.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Sorts records by submit time (stable), as replaying requires.
    pub fn sort_by_submit(&mut self) {
        self.jobs.sort_by_key(|j| j.submit);
    }
}

fn parse_i64(tok: &str) -> Option<i64> {
    if let Ok(v) = tok.parse::<i64>() {
        return Some(v);
    }
    // Some archive traces write integer fields as floats ("32.0").
    tok.parse::<f64>().ok().map(|f| f.round() as i64)
}

fn parse_f64(tok: &str) -> Option<f64> {
    tok.parse::<f64>().ok()
}

/// Parses a single 18-field data line. `line_no` is only used for errors.
pub fn parse_line(line: &str, line_no: usize) -> Result<SwfJob, SwfError> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    if toks.len() < 18 {
        return Err(SwfError::FieldCount {
            line: line_no,
            found: toks.len(),
        });
    }
    let int = |idx: usize| -> Result<i64, SwfError> {
        parse_i64(toks[idx]).ok_or_else(|| SwfError::BadField {
            line: line_no,
            field: idx + 1,
            value: toks[idx].to_string(),
        })
    };
    let flt = |idx: usize| -> Result<f64, SwfError> {
        parse_f64(toks[idx]).ok_or_else(|| SwfError::BadField {
            line: line_no,
            field: idx + 1,
            value: toks[idx].to_string(),
        })
    };

    Ok(SwfJob {
        job_id: int(0)?.max(0) as u64,
        submit: int(1)?,
        wait: int(2)?,
        run_time: int(3)?,
        used_procs: int(4)?,
        avg_cpu_time: flt(5)?,
        used_mem: flt(6)?,
        req_procs: int(7)?,
        req_time: int(8)?,
        req_mem: flt(9)?,
        status: JobStatus::from_code(int(10)?),
        user: int(11)?,
        group: int(12)?,
        app: int(13)?,
        queue: int(14)?,
        partition: int(15)?,
        preceding_job: int(16)?,
        think_time: int(17)?,
    })
}

/// Parses an SWF document from any buffered reader.
///
/// With `lenient == true`, malformed data lines are skipped (counted in the
/// returned tuple); with `false` the first malformed line aborts the parse.
pub fn parse_reader<R: BufRead>(reader: R, lenient: bool) -> Result<(Trace, usize), SwfError> {
    let mut header = SwfHeader::new();
    let mut jobs = Vec::new();
    let mut skipped = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix(';') {
            header.add_line(rest);
            continue;
        }
        match parse_line(trimmed, idx + 1) {
            Ok(job) => jobs.push(job),
            Err(e) if lenient => {
                let _ = e;
                skipped += 1;
            }
            Err(e) => return Err(e),
        }
    }
    Ok((Trace { header, jobs }, skipped))
}

/// Parses an SWF document from a string (strict mode).
pub fn parse_str(input: &str) -> Result<Trace, SwfError> {
    parse_reader(input.as_bytes(), false).map(|(t, _)| t)
}

/// Reads an SWF file from disk in lenient mode.
pub fn parse_file(path: &std::path::Path) -> Result<(Trace, usize), SwfError> {
    let file = std::fs::File::open(path)?;
    parse_reader(std::io::BufReader::new(file), true)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; Version: 2.2
; MaxNodes: 8
; MaxProcs: 64
1 0 10 100 8 -1 -1 8 200 -1 1 3 1 5 1 1 -1 -1
2 5 -1 50 16 99.5 2048 16 60 4096 0 4 2 6 1 1 1 30
";

    #[test]
    fn parses_sample() {
        let t = parse_str(SAMPLE).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.header.max_nodes(), Some(8));
        assert_eq!(t.header.max_procs(), Some(64));
        let j = &t.jobs[0];
        assert_eq!(j.job_id, 1);
        assert_eq!(j.wait, 10);
        assert_eq!(j.run_time, 100);
        assert_eq!(j.status, JobStatus::Completed);
        let j2 = &t.jobs[1];
        assert_eq!(j2.avg_cpu_time, 99.5);
        assert_eq!(j2.status, JobStatus::Failed);
        assert_eq!(j2.think_time, 30);
    }

    #[test]
    fn short_line_errors_in_strict_mode() {
        let bad = "1 2 3\n";
        match parse_str(bad) {
            Err(SwfError::FieldCount { line: 1, found: 3 }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn lenient_mode_skips_bad_lines() {
        let mixed = format!("{SAMPLE}not a data line at all\n");
        let (t, skipped) = parse_reader(mixed.as_bytes(), true).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(skipped, 1);
    }

    #[test]
    fn float_shaped_integers_accepted() {
        let line = "3 0.0 10.0 100.0 8.0 -1 -1 8 200 -1 1 -1 -1 -1 -1 -1 -1 -1";
        let j = parse_line(line, 1).unwrap();
        assert_eq!(j.used_procs, 8);
        assert_eq!(j.run_time, 100);
    }

    #[test]
    fn non_numeric_field_reports_position() {
        let line = "1 0 10 abc 8 -1 -1 8 200 -1 1 -1 -1 -1 -1 -1 -1 -1";
        match parse_line(line, 7) {
            Err(SwfError::BadField { line: 7, field: 4, .. }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn sort_by_submit_is_stable() {
        let mut t = parse_str(SAMPLE).unwrap();
        t.jobs[0].submit = 100;
        t.sort_by_submit();
        assert_eq!(t.jobs[0].job_id, 2);
    }
}
