//! Property: any prefix-corruption of a valid WAL recovers the longest
//! valid prefix and never panics — torn (truncated) tails, appended
//! garbage, and bit-flipped bytes alike.

use proptest::prelude::*;
use sd_durable::wal::{encode_frame, scan_bytes, FRAME_HEADER};

/// Build a valid log image plus per-record end offsets.
fn build_log(payload_lens: &[usize]) -> (Vec<u8>, Vec<usize>) {
    let mut image = Vec::new();
    let mut ends = Vec::new();
    for (i, &len) in payload_lens.iter().enumerate() {
        // Deterministic, position-dependent payload bytes.
        let payload: Vec<u8> = (0..len).map(|j| (i * 31 + j * 7) as u8).collect();
        encode_frame(&mut image, (i + 1) as u64, &payload);
        ends.push(image.len());
    }
    (image, ends)
}

/// Records whose frames end at or before `boundary` are unaffected by any
/// corruption at byte offsets >= `boundary`.
fn intact_until(ends: &[usize], boundary: usize) -> usize {
    ends.iter().take_while(|&&e| e <= boundary).count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn roundtrip_recovers_everything(lens in prop::collection::vec(0usize..80, 0..16)) {
        let (image, _) = build_log(&lens);
        let out = scan_bytes(&image);
        prop_assert_eq!(out.records.len(), lens.len());
        prop_assert!(!out.torn_tail);
        prop_assert_eq!(out.valid_bytes, image.len() as u64);
        for (i, rec) in out.records.iter().enumerate() {
            prop_assert_eq!(rec.seq, (i + 1) as u64);
            prop_assert_eq!(rec.payload.len(), lens[i]);
        }
    }

    #[test]
    fn truncation_recovers_longest_valid_prefix(
        lens in prop::collection::vec(0usize..80, 1..16),
        cut_frac in 0.0f64..1.0,
    ) {
        let (image, ends) = build_log(&lens);
        let cut = ((image.len() as f64) * cut_frac) as usize;
        let out = scan_bytes(&image[..cut]);
        let intact = intact_until(&ends, cut);
        // Truncation removes bytes without altering any: the scan recovers
        // exactly the frames that fit and stops at the partial tail frame.
        let consumed = if intact == 0 { 0 } else { ends[intact - 1] };
        prop_assert_eq!(out.records.len(), intact);
        prop_assert_eq!(out.valid_bytes, consumed as u64);
        prop_assert_eq!(out.torn_tail, cut > consumed);
        for (i, rec) in out.records.iter().enumerate() {
            prop_assert_eq!(rec.seq, (i + 1) as u64);
        }
    }

    #[test]
    fn bit_flip_never_panics_and_keeps_prefix(
        lens in prop::collection::vec(0usize..80, 1..16),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let (mut image, ends) = build_log(&lens);
        prop_assume!(!image.is_empty());
        let pos = ((image.len() as f64) * pos_frac) as usize % image.len();
        image[pos] ^= 1 << bit;
        let out = scan_bytes(&image);
        // Frames entirely before the flipped byte are untouched and must
        // all be recovered intact (the scan may recover more if the flip
        // lands in a later frame that still fails cleanly at its own
        // boundary — never fewer).
        let intact = intact_until(&ends, pos);
        prop_assert!(out.records.len() >= intact, "lost intact prefix: {} < {}", out.records.len(), intact);
        for (i, rec) in out.records.iter().take(intact).enumerate() {
            prop_assert_eq!(rec.seq, (i + 1) as u64);
            let expect: Vec<u8> = (0..lens[i]).map(|j| (i * 31 + j * 7) as u8).collect();
            prop_assert_eq!(&rec.payload, &expect);
        }
    }

    #[test]
    fn appended_garbage_never_panics_and_keeps_all_records(
        lens in prop::collection::vec(0usize..80, 0..12),
        garbage in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let (mut image, _) = build_log(&lens);
        let valid_len = image.len();
        image.extend_from_slice(&garbage);
        let out = scan_bytes(&image);
        // All original records survive. Garbage may, with CRC-collision
        // luck, parse as extra frames — but never destroys the prefix.
        prop_assert!(out.records.len() >= lens.len());
        for (i, rec) in out.records.iter().take(lens.len()).enumerate() {
            prop_assert_eq!(rec.seq, (i + 1) as u64);
        }
        prop_assert!(out.valid_bytes >= valid_len as u64);
    }

    #[test]
    fn arbitrary_bytes_never_panic(data in prop::collection::vec(any::<u8>(), 0..256)) {
        let out = scan_bytes(&data);
        // Total function: whatever it recovered is a valid prefix.
        prop_assert!(out.valid_bytes <= data.len() as u64);
        prop_assert_eq!(out.torn_tail, out.valid_bytes < data.len() as u64);
        let _ = out.records;
    }

    #[test]
    fn checkpoint_decode_never_panics(
        seq in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 0..128),
        flip_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let image = sd_durable::checkpoint::encode(seq, &payload);
        prop_assert_eq!(
            sd_durable::checkpoint::decode(&image).map(|c| (c.applied_seq, c.payload)),
            Some((seq, payload.clone()))
        );
        let mut bad = image.clone();
        let pos = ((bad.len() as f64) * flip_frac) as usize % bad.len();
        bad[pos] ^= 1 << bit;
        // Single-bit corruption is always caught.
        prop_assert!(sd_durable::checkpoint::decode(&bad).is_none());
        // Arbitrary truncation is always caught.
        let cut = pos.min(image.len() - 1);
        prop_assert!(sd_durable::checkpoint::decode(&image[..cut]).is_none());
    }
}

/// Header-sized corruption sweep, exhaustive over the first frame: every
/// single-bit flip in the 16-byte header of a one-record log must yield an
/// empty recovery (torn tail), never a panic or a wrong record.
#[test]
fn exhaustive_header_flips() {
    let mut image = Vec::new();
    encode_frame(&mut image, 1, b"payload-bytes");
    for byte in 0..FRAME_HEADER {
        for bit in 0..8 {
            let mut bad = image.clone();
            bad[byte] ^= 1 << bit;
            let out = scan_bytes(&bad);
            assert!(
                out.records.is_empty() || out.records[0].payload != b"payload-bytes" || out.records[0].seq != 1,
                "header flip at {byte}.{bit} must not reproduce the record verbatim",
            );
            assert!(out.valid_bytes <= bad.len() as u64);
        }
    }
}
