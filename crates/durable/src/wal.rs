//! The write-ahead log: length-prefixed, checksummed frames.
//!
//! On-disk grammar (all integers little-endian):
//!
//! ```text
//! wal     := frame*
//! frame   := len:u32  crc:u32  seq:u64  payload:[u8; len]
//! crc     := CRC-32(seq_bytes ++ payload)
//! ```
//!
//! `seq` is a global monotone sequence number assigned by the single writer;
//! it ties the log to the checkpoint (recovery skips frames whose `seq` is
//! already covered by the checkpoint's `applied_seq`). The payload is opaque
//! bytes — the service layer owns the record encoding.
//!
//! Recovery scans the longest valid prefix: the scan stops at the first frame
//! that is short, oversized, or fails its checksum, and reports whether any
//! bytes were discarded (`torn_tail`). A torn or bit-flipped tail is the
//! expected artifact of `kill -9` / power loss mid-append and is never an
//! error — the scanner cannot panic on any input.

use crate::crc::Crc32;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Frame header size: len(4) + crc(4) + seq(8).
pub const FRAME_HEADER: usize = 16;

/// Sanity cap so a garbage length prefix cannot trigger a huge allocation.
pub const MAX_RECORD_LEN: u32 = 16 * 1024 * 1024;

/// When appended records are flushed to stable storage.
///
/// Surviving `kill -9` (process death, OS survives) needs no fsync at all —
/// written pages live in the page cache. The knob only matters for power
/// loss / kernel panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// fsync after every append (power-loss durable per record, slowest).
    Always,
    /// fsync only when installing a checkpoint (default: the durability
    /// boundary is the last checkpoint; tail records may be lost on power
    /// failure but never on process death).
    #[default]
    Checkpoint,
    /// never fsync (benchmarks and tests).
    Never,
}

impl FsyncPolicy {
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "checkpoint" => Some(FsyncPolicy::Checkpoint),
            "never" => Some(FsyncPolicy::Never),
            _ => None,
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Checkpoint => "checkpoint",
            FsyncPolicy::Never => "never",
        }
    }
}

/// One recovered frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    pub seq: u64,
    pub payload: Vec<u8>,
}

/// Result of scanning a log image for its longest valid prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanOutcome {
    pub records: Vec<WalRecord>,
    /// Bytes of the valid prefix; the file is truncated to this length
    /// before the writer appends again.
    pub valid_bytes: u64,
    /// True when trailing bytes after the valid prefix were discarded.
    pub torn_tail: bool,
}

/// Encode one frame into `buf` (single `write` syscall per append).
pub fn encode_frame(buf: &mut Vec<u8>, seq: u64, payload: &[u8]) {
    let seq_bytes = seq.to_le_bytes();
    let mut crc = Crc32::new();
    crc.update(&seq_bytes);
    crc.update(payload);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc.finish().to_le_bytes());
    buf.extend_from_slice(&seq_bytes);
    buf.extend_from_slice(payload);
}

/// Longest-valid-prefix scan over an in-memory log image. Pure, total, and
/// panic-free on arbitrary bytes (property-tested in `tests/corruption.rs`).
pub fn scan_bytes(data: &[u8]) -> ScanOutcome {
    let mut records = Vec::new();
    let mut off = 0usize;
    loop {
        let rest = data.len() - off;
        if rest < FRAME_HEADER {
            break;
        }
        let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap());
        if len > MAX_RECORD_LEN || (len as usize) > rest - FRAME_HEADER {
            break;
        }
        let stored_crc = u32::from_le_bytes(data[off + 4..off + 8].try_into().unwrap());
        let seq_bytes: [u8; 8] = data[off + 8..off + 16].try_into().unwrap();
        let payload = &data[off + FRAME_HEADER..off + FRAME_HEADER + len as usize];
        let mut crc = Crc32::new();
        crc.update(&seq_bytes);
        crc.update(payload);
        if crc.finish() != stored_crc {
            break;
        }
        records.push(WalRecord {
            seq: u64::from_le_bytes(seq_bytes),
            payload: payload.to_vec(),
        });
        off += FRAME_HEADER + len as usize;
    }
    ScanOutcome {
        records,
        valid_bytes: off as u64,
        torn_tail: off < data.len(),
    }
}

/// Scan a log file; a missing file is an empty log.
pub fn scan_file(path: &Path) -> io::Result<ScanOutcome> {
    let mut data = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut data)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    Ok(scan_bytes(&data))
}

/// Appender positioned at the end of the valid prefix.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    policy: FsyncPolicy,
    buf: Vec<u8>,
    records_written: u64,
    bytes: u64,
}

impl WalWriter {
    /// Open (creating if absent), truncate to `valid_bytes` — dropping any
    /// torn tail so new appends never follow garbage — and seek to the end.
    pub fn open(path: &Path, valid_bytes: u64, policy: FsyncPolicy) -> io::Result<WalWriter> {
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(path)?;
        file.set_len(valid_bytes)?;
        file.seek(SeekFrom::Start(valid_bytes))?;
        Ok(WalWriter {
            file,
            policy,
            buf: Vec::with_capacity(256),
            records_written: 0,
            bytes: valid_bytes,
        })
    }

    pub fn append(&mut self, seq: u64, payload: &[u8]) -> io::Result<()> {
        self.buf.clear();
        encode_frame(&mut self.buf, seq, payload);
        self.file.write_all(&self.buf)?;
        if self.policy == FsyncPolicy::Always {
            self.file.sync_data()?;
        }
        self.records_written += 1;
        self.bytes += self.buf.len() as u64;
        Ok(())
    }

    /// Truncate the log to empty (after a checkpoint has captured its
    /// contents).
    pub fn reset(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        if self.policy != FsyncPolicy::Never {
            self.file.sync_data()?;
        }
        self.bytes = 0;
        Ok(())
    }

    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Current on-disk size of the log in bytes (valid prefix at open plus
    /// every append since, zeroed by [`reset`]).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_image(records: &[(u64, &[u8])]) -> Vec<u8> {
        let mut buf = Vec::new();
        for (seq, payload) in records {
            encode_frame(&mut buf, *seq, payload);
        }
        buf
    }

    #[test]
    fn roundtrip_preserves_records() {
        let image = log_image(&[(1, b"alpha"), (2, b""), (3, &[0u8; 100])]);
        let out = scan_bytes(&image);
        assert!(!out.torn_tail);
        assert_eq!(out.valid_bytes, image.len() as u64);
        assert_eq!(out.records.len(), 3);
        assert_eq!(out.records[0].seq, 1);
        assert_eq!(out.records[0].payload, b"alpha");
        assert_eq!(out.records[1].payload, b"");
        assert_eq!(out.records[2].payload, vec![0u8; 100]);
    }

    #[test]
    fn empty_log_is_clean() {
        let out = scan_bytes(&[]);
        assert!(out.records.is_empty());
        assert!(!out.torn_tail);
    }

    #[test]
    fn truncated_tail_recovers_prefix() {
        let image = log_image(&[(1, b"first"), (2, b"second")]);
        // Cut mid-way through the second frame.
        let cut = FRAME_HEADER + 5 + FRAME_HEADER + 2;
        let out = scan_bytes(&image[..cut]);
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.records[0].payload, b"first");
        assert!(out.torn_tail);
        assert_eq!(out.valid_bytes, (FRAME_HEADER + 5) as u64);
    }

    #[test]
    fn bit_flip_in_payload_drops_frame() {
        let mut image = log_image(&[(1, b"first"), (2, b"second")]);
        let last = image.len() - 1;
        image[last] ^= 0x40;
        let out = scan_bytes(&image);
        assert_eq!(out.records.len(), 1);
        assert!(out.torn_tail);
    }

    #[test]
    fn huge_length_prefix_is_rejected_not_allocated() {
        let mut image = log_image(&[(1, b"ok")]);
        image.extend_from_slice(&u32::MAX.to_le_bytes());
        image.extend_from_slice(&[0u8; 12]);
        let out = scan_bytes(&image);
        assert_eq!(out.records.len(), 1);
        assert!(out.torn_tail);
    }

    #[test]
    fn writer_truncates_torn_tail_on_open() {
        let dir = std::env::temp_dir().join(format!("sd-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let mut image = log_image(&[(1, b"keep")]);
        image.extend_from_slice(b"torn!");
        std::fs::write(&path, &image).unwrap();

        let scan = scan_file(&path).unwrap();
        assert!(scan.torn_tail);
        let mut w = WalWriter::open(&path, scan.valid_bytes, FsyncPolicy::Never).unwrap();
        w.append(2, b"after").unwrap();
        drop(w);

        let out = scan_file(&path).unwrap();
        assert!(!out.torn_tail);
        assert_eq!(out.records.len(), 2);
        assert_eq!(out.records[1].payload, b"after");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
