//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`), table-driven.
//!
//! The workspace is dependency-free, so the checksum lives here rather than
//! pulling `crc32fast`. One table lookup per byte is plenty for WAL records
//! that are tens of bytes each.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// Incremental CRC-32 over multiple slices (a frame checksums the sequence
/// number and the payload without concatenating them first).
#[derive(Debug, Clone)]
pub struct Crc32(u32);

impl Crc32 {
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    pub fn update(&mut self, data: &[u8]) {
        let mut c = self.0;
        for &b in data {
            c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    pub fn finish(&self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot convenience.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check values for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"abcdefghijklmnopqrstuvwxyz";
        let mut inc = Crc32::new();
        inc.update(&data[..7]);
        inc.update(&data[7..19]);
        inc.update(&data[19..]);
        assert_eq!(inc.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0xA5u8; 64];
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32(&data), base, "flip at {byte}.{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }
}
