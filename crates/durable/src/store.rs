//! Directory-level store: one checkpoint + one WAL, and the recovery
//! protocol that ties them together.
//!
//! Layout: `<dir>/checkpoint.bin` + `<dir>/wal.log`.
//!
//! Invariants the protocol maintains:
//!
//! 1. Every state-mutating command is appended (with its global seq) to the
//!    WAL *before* it is applied — single-writer ordering makes the log a
//!    total order of effects.
//! 2. A checkpoint records `applied_seq`, the seq of the last record its
//!    payload already reflects. Recovery replays only `seq > applied_seq`,
//!    so crashing between checkpoint install and WAL truncation (step 2 and
//!    3 of [`DurableStore::install_checkpoint`]) never double-applies.
//! 3. After recovery the caller installs a fresh checkpoint of the rebuilt
//!    state, collapsing the log again.

use crate::checkpoint;
use crate::wal::{self, FsyncPolicy, ScanOutcome, WalRecord, WalWriter};
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

pub const WAL_FILE: &str = "wal.log";

/// What recovery found in the directory.
#[derive(Debug)]
pub struct Recovery {
    /// Checkpoint payload, when a valid checkpoint exists.
    pub checkpoint: Option<Vec<u8>>,
    /// Seq already covered by the checkpoint (0 when none).
    pub applied_seq: u64,
    /// WAL records to replay, in order; only `seq > applied_seq`.
    pub records: Vec<WalRecord>,
    /// Records skipped because the checkpoint already covered them (the
    /// crash-between-install-and-truncate window).
    pub skipped: u64,
    /// True when a torn/corrupt WAL tail was discarded.
    pub torn_tail: bool,
    /// First unused sequence number (resume the writer from here).
    pub next_seq: u64,
}

impl Recovery {
    /// Anything to restore at all? False for a fresh directory.
    pub fn is_fresh(&self) -> bool {
        self.checkpoint.is_none() && self.records.is_empty()
    }
}

/// Open store, positioned to append.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    wal: WalWriter,
    policy: FsyncPolicy,
    checkpoints_written: u64,
    /// When the current WAL segment (records since the last checkpoint)
    /// started accumulating; `None` while the segment is empty. Feeds the
    /// `sd_serve_wal_segment_age_seconds` gauge — the signal the ROADMAP's
    /// still-open compaction policy needs.
    segment_started: Option<Instant>,
}

impl DurableStore {
    /// Open (or create) the store at `dir`, recovering whatever is there.
    /// The WAL is truncated to its longest valid prefix so subsequent
    /// appends never follow garbage.
    pub fn open(dir: &Path, policy: FsyncPolicy) -> io::Result<(DurableStore, Recovery)> {
        std::fs::create_dir_all(dir)?;
        let cp = checkpoint::read(dir);
        let (applied_seq, checkpoint) = match cp {
            Some(c) => (c.applied_seq, Some(c.payload)),
            None => (0, None),
        };
        let wal_path = dir.join(WAL_FILE);
        let ScanOutcome {
            records,
            valid_bytes,
            torn_tail,
        } = wal::scan_file(&wal_path)?;
        let max_seq = records
            .iter()
            .map(|r| r.seq)
            .max()
            .unwrap_or(0)
            .max(applied_seq);
        let total = records.len() as u64;
        let records: Vec<WalRecord> = records.into_iter().filter(|r| r.seq > applied_seq).collect();
        let skipped = total - records.len() as u64;
        let wal = WalWriter::open(&wal_path, valid_bytes, policy)?;
        let recovery = Recovery {
            checkpoint,
            applied_seq,
            records,
            skipped,
            torn_tail,
            next_seq: max_seq + 1,
        };
        let segment_started = (wal.bytes() > 0).then(Instant::now);
        let store = DurableStore {
            dir: dir.to_path_buf(),
            wal,
            policy,
            checkpoints_written: 0,
            segment_started,
        };
        Ok((store, recovery))
    }

    /// Append one record; call *before* applying its effect.
    pub fn append(&mut self, seq: u64, payload: &[u8]) -> io::Result<()> {
        if self.segment_started.is_none() {
            self.segment_started = Some(Instant::now());
        }
        self.wal.append(seq, payload)
    }

    /// Install a checkpoint capturing all effects up to `applied_seq`, then
    /// truncate the WAL. Crash-safe at every step (see module docs).
    pub fn install_checkpoint(&mut self, applied_seq: u64, payload: &[u8]) -> io::Result<()> {
        // Checkpoints are rare; always take the fsync-protected atomic
        // install regardless of the (per-append) fsync policy.
        checkpoint::write(&self.dir, applied_seq, payload)?;
        self.wal.reset()?;
        self.checkpoints_written += 1;
        self.segment_started = None;
        Ok(())
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    pub fn wal_records_written(&self) -> u64 {
        self.wal.records_written()
    }

    pub fn checkpoints_written(&self) -> u64 {
        self.checkpoints_written
    }

    /// Current on-disk WAL size in bytes (zero right after a checkpoint).
    pub fn wal_bytes(&self) -> u64 {
        self.wal.bytes()
    }

    /// Age of the oldest un-checkpointed WAL record in seconds (0.0 when
    /// the segment is empty).
    pub fn wal_segment_age_seconds(&self) -> f64 {
        self.segment_started
            .map(|t| t.elapsed().as_secs_f64())
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "sd-store-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn fresh_directory_recovers_empty() {
        let dir = tmp_dir("fresh");
        let (_store, rec) = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
        assert!(rec.is_fresh());
        assert_eq!(rec.next_seq, 1);
        assert!(!rec.torn_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_then_reopen_replays_in_order() {
        let dir = tmp_dir("replay");
        {
            let (mut store, rec) = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
            assert!(rec.is_fresh());
            store.append(1, b"one").unwrap();
            store.append(2, b"two").unwrap();
            store.append(3, b"three").unwrap();
        } // dropped without checkpoint ≈ crash
        let (_store, rec) = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
        assert!(rec.checkpoint.is_none());
        let seqs: Vec<u64> = rec.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        assert_eq!(rec.next_seq, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_and_bounds_replay() {
        let dir = tmp_dir("ckpt");
        {
            let (mut store, _) = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
            assert_eq!(store.wal_bytes(), 0);
            assert_eq!(store.wal_segment_age_seconds(), 0.0, "empty segment");
            store.append(1, b"one").unwrap();
            store.append(2, b"two").unwrap();
            assert!(store.wal_bytes() > 0, "appends grow the log");
            assert!(store.wal_segment_age_seconds() >= 0.0);
            store.install_checkpoint(2, b"state@2").unwrap();
            assert_eq!(store.wal_bytes(), 0, "checkpoint collapses the log");
            assert_eq!(store.wal_segment_age_seconds(), 0.0);
            store.append(3, b"three").unwrap();
            assert_eq!(
                store.wal_bytes(),
                (crate::wal::FRAME_HEADER + 5) as u64,
                "one frame: header + payload"
            );
        }
        let (_store, rec) = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(rec.checkpoint.as_deref(), Some(b"state@2".as_slice()));
        assert_eq!(rec.applied_seq, 2);
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0].seq, 3);
        assert_eq!(rec.next_seq, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The crash window between checkpoint install and WAL truncation:
    /// records the checkpoint already covers must be skipped, not replayed.
    #[test]
    fn stale_wal_records_are_skipped_after_checkpoint() {
        let dir = tmp_dir("stale");
        {
            let (mut store, _) = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
            store.append(1, b"one").unwrap();
            store.append(2, b"two").unwrap();
        }
        // Simulate "checkpoint installed, truncate never happened".
        checkpoint::write(&dir, 2, b"state@2").unwrap();
        let (_store, rec) = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(rec.checkpoint.as_deref(), Some(b"state@2".as_slice()));
        assert!(rec.records.is_empty(), "covered records must not replay");
        assert_eq!(rec.skipped, 2);
        assert_eq!(rec.next_seq, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_discarded_and_flagged() {
        let dir = tmp_dir("torn");
        {
            let (mut store, _) = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
            store.append(1, b"good").unwrap();
        }
        // Torn append: half a frame of garbage at the tail.
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join(WAL_FILE))
            .unwrap();
        f.write_all(&[0xDE, 0xAD, 0xBE, 0xEF, 0x01]).unwrap();
        drop(f);
        let (mut store, rec) = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
        assert!(rec.torn_tail);
        assert_eq!(rec.records.len(), 1);
        // New appends land after the valid prefix and scan clean.
        store.append(2, b"after").unwrap();
        drop(store);
        let (_s, rec2) = DurableStore::open(&dir, FsyncPolicy::Never).unwrap();
        assert!(!rec2.torn_tail);
        assert_eq!(rec2.records.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
