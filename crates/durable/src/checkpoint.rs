//! Atomic, checksummed checkpoints.
//!
//! On-disk grammar (all integers little-endian):
//!
//! ```text
//! checkpoint := magic:u32("SDCK")  version:u32  applied_seq:u64
//!               len:u32  crc:u32  payload:[u8; len]
//! crc        := CRC-32(applied_seq_bytes ++ payload)
//! ```
//!
//! `applied_seq` is the sequence number of the last WAL record whose effect
//! the payload captures; recovery replays only records with a larger seq, so
//! a crash *between* installing the checkpoint and truncating the WAL cannot
//! double-apply.
//!
//! Installation is atomic: write `checkpoint.tmp`, fsync it, `rename(2)` over
//! `checkpoint.bin`, then best-effort fsync of the directory. A reader only
//! ever sees the old or the new image, never a torn one; a corrupt file
//! (power loss before the rename landed, manual tampering) decodes to `None`
//! and recovery falls back to replaying the full WAL.

use crate::crc::Crc32;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

pub const CHECKPOINT_FILE: &str = "checkpoint.bin";
const TMP_FILE: &str = "checkpoint.tmp";
const MAGIC: u32 = 0x5344_434B; // "SDCK"
const VERSION: u32 = 1;
const HEADER: usize = 24; // magic(4) + version(4) + applied_seq(8) + len(4) + crc(4)

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    pub applied_seq: u64,
    pub payload: Vec<u8>,
}

fn checksum(applied_seq: u64, payload: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(&applied_seq.to_le_bytes());
    crc.update(payload);
    crc.finish()
}

/// Serialize a checkpoint image (pure; used by the writer and by tests).
pub fn encode(applied_seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER + payload.len());
    buf.extend_from_slice(&MAGIC.to_le_bytes());
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&applied_seq.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&checksum(applied_seq, payload).to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Decode a checkpoint image; `None` on any corruption. Total and panic-free
/// on arbitrary bytes.
pub fn decode(data: &[u8]) -> Option<Checkpoint> {
    if data.len() < HEADER {
        return None;
    }
    let magic = u32::from_le_bytes(data[0..4].try_into().unwrap());
    let version = u32::from_le_bytes(data[4..8].try_into().unwrap());
    if magic != MAGIC || version != VERSION {
        return None;
    }
    let applied_seq = u64::from_le_bytes(data[8..16].try_into().unwrap());
    let len = u32::from_le_bytes(data[16..20].try_into().unwrap()) as usize;
    let stored_crc = u32::from_le_bytes(data[20..24].try_into().unwrap());
    if data.len() - HEADER != len {
        return None;
    }
    let payload = &data[HEADER..];
    if checksum(applied_seq, payload) != stored_crc {
        return None;
    }
    Some(Checkpoint {
        applied_seq,
        payload: payload.to_vec(),
    })
}

/// Atomically install a checkpoint in `dir`.
pub fn write(dir: &Path, applied_seq: u64, payload: &[u8]) -> io::Result<()> {
    let tmp = dir.join(TMP_FILE);
    let dst = dir.join(CHECKPOINT_FILE);
    let image = encode(applied_seq, payload);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&image)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &dst)?;
    // Durability of the rename itself: fsync the directory. Works on Linux;
    // harmless to skip where unsupported.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Load the checkpoint from `dir`; `None` when absent or corrupt.
pub fn read(dir: &Path) -> Option<Checkpoint> {
    let mut data = Vec::new();
    File::open(dir.join(CHECKPOINT_FILE))
        .ok()?
        .read_to_end(&mut data)
        .ok()?;
    decode(&data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let image = encode(42, b"state bytes");
        let cp = decode(&image).expect("valid image decodes");
        assert_eq!(cp.applied_seq, 42);
        assert_eq!(cp.payload, b"state bytes");
    }

    #[test]
    fn corruption_yields_none() {
        let image = encode(7, b"payload");
        for i in 0..image.len() {
            let mut bad = image.clone();
            bad[i] ^= 0x01;
            // Flipping the low bit of any byte must invalidate the image
            // (magic, version, seq, len, crc, or payload all participate).
            assert!(decode(&bad).is_none(), "flip at byte {i} went undetected");
        }
        assert!(decode(&image[..image.len() - 1]).is_none());
        assert!(decode(&[]).is_none());
    }

    #[test]
    fn install_and_read_back() {
        let dir = std::env::temp_dir().join(format!("sd-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(read(&dir).is_none());
        write(&dir, 3, b"v1").unwrap();
        assert_eq!(read(&dir).unwrap().payload, b"v1");
        write(&dir, 9, b"v2-longer-payload").unwrap();
        let cp = read(&dir).unwrap();
        assert_eq!(cp.applied_seq, 9);
        assert_eq!(cp.payload, b"v2-longer-payload");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
