//! `sd-durable` — crash tolerance for the online scheduling service.
//!
//! Dependency-free (like `sd-trace`): a checksummed, length-prefixed
//! write-ahead log ([`wal`]), atomic checkpoints ([`checkpoint`]), and the
//! directory-level store + recovery protocol that ties them together
//! ([`store`]). The payload encoding is owned by the caller (`sd-serve`);
//! this crate only guarantees that whatever bytes were appended come back in
//! order, that a torn or bit-flipped tail is cleanly discarded (never a
//! panic), and that checkpoint installation is atomic.
//!
//! The recovery claim the service builds on top: the scheduler is a
//! deterministic single-writer state machine over a virtual clock, so
//! *checkpoint + replay of the logged command stream is bit-identical to
//! never having crashed* (pinned end-to-end in `tests/serve_equivalence.rs`
//! at the workspace root, and by the chaos harness in `sd-loadgen --soak`).

pub mod checkpoint;
pub mod crc;
pub mod store;
pub mod wal;

pub use checkpoint::Checkpoint;
pub use crc::crc32;
pub use store::{DurableStore, Recovery, WAL_FILE};
pub use wal::{scan_bytes, FsyncPolicy, ScanOutcome, WalRecord, WalWriter};
