//! Fuzz-style corpus of malformed wire input against a *live* server: every
//! entry must be answered with a 4xx (or a clean close), the server must
//! never panic, and it must keep serving well-formed requests afterwards.

use drom::SharingFactor;
use sd_policy::SdPolicy;
use sd_serve::client::Client;
use sd_serve::engine::{ClockMode, Engine};
use sd_serve::server::{self, ServerConfig};
use slurm_sim::{IdealModel, SimState, SlurmConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

fn start_server() -> (SocketAddr, std::thread::JoinHandle<()>) {
    let mut spec = cluster::ClusterSpec::ricc();
    spec.nodes = 8;
    let state = SimState::new_online(
        spec,
        SlurmConfig::default(),
        Box::new(IdealModel),
        SharingFactor::HALF,
    );
    let engine = Engine::new(state, Box::new(SdPolicy::default()), ClockMode::Virtual);
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral bind");
    let addr = listener.local_addr().unwrap();
    let h = std::thread::spawn(move || {
        let _ = server::run(engine, listener, ServerConfig { workers: 2, ..Default::default() });
    });
    (addr, h)
}

/// Sends raw bytes, returns the response status line (empty = closed).
fn poke(addr: SocketAddr, payload: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let _ = s.write_all(payload);
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut buf = Vec::new();
    let _ = s.read_to_end(&mut buf);
    String::from_utf8_lossy(&buf)
        .lines()
        .next()
        .unwrap_or_default()
        .to_string()
}

const CORPUS: &[&[u8]] = &[
    b"",
    b"\r\n\r\n",
    b"GARBAGE\r\n\r\n",
    b"get /healthz HTTP/1.1\r\n\r\n",
    b"GET healthz HTTP/1.1\r\n\r\n",
    b"GET /healthz SPDY/3\r\n\r\n",
    b"GET /healthz HTTP/1.1 bonus\r\n\r\n",
    b"GET /healthz\r\n\r\n",
    b"GET /healthz HTTP/1.1\r\nno-colon-here\r\n\r\n",
    b"POST /v1/jobs HTTP/1.1\r\ncontent-length: -5\r\n\r\n",
    b"POST /v1/jobs HTTP/1.1\r\ncontent-length: 99999999999999\r\n\r\n",
    b"POST /v1/jobs HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
    b"POST /v1/jobs HTTP/1.1\r\ncontent-length: 7\r\n\r\nnotjson",
    b"POST /v1/jobs HTTP/1.1\r\ncontent-length: 2\r\n\r\n{}",
    b"POST /v1/jobs HTTP/1.1\r\ncontent-length: 22\r\n\r\n{\"procs\": \"sixteen\"}..",
    b"POST /v1/clock/advance HTTP/1.1\r\ncontent-length: 11\r\n\r\n{\"to\": -10}",
    b"GET /v1/jobs/not-a-number HTTP/1.1\r\n\r\n",
    b"GET /v1/jobs/0 HTTP/1.1\r\n\r\n",
    b"GET /totally/unknown HTTP/1.1\r\n\r\n",
    b"PATCH /healthz HTTP/1.1\r\n\r\n",
    b"DELETE /v1/drain HTTP/1.1\r\n\r\n",
    b"\xff\xfe\xfd\xfc\r\n\r\n",
    b"\x00\x01\x02\x03\x04\r\n\r\n",
    b"POST /v1/jobs HTTP/1.1\r\ncontent-length: 4\r\n\r\n[[[[",
    b"GET /../../etc/passwd HTTP/1.1\r\n\r\n",
];

#[test]
fn malformed_input_always_4xx_never_a_crash() {
    let (addr, handle) = start_server();

    for (i, payload) in CORPUS.iter().enumerate() {
        let status = poke(addr, payload);
        if payload.is_empty() || *payload == b"\r\n\r\n" {
            // Pure close / stray CRLF: a clean drop or a 4xx are both fine.
            assert!(
                status.is_empty() || status.starts_with("HTTP/1.1 4"),
                "corpus[{i}]: {status:?}"
            );
            continue;
        }
        assert!(
            status.starts_with("HTTP/1.1 4"),
            "corpus[{i}] {:?} answered {status:?}",
            String::from_utf8_lossy(payload)
        );
    }

    // Oversized header block (streamed, no Content-Length games).
    let mut big = Vec::from(&b"GET /healthz HTTP/1.1\r\n"[..]);
    for i in 0..4000 {
        big.extend_from_slice(format!("x-filler-{i}: {}\r\n", "y".repeat(20)).as_bytes());
    }
    big.extend_from_slice(b"\r\n");
    let status = poke(addr, &big);
    assert!(status.starts_with("HTTP/1.1 413"), "oversized head: {status:?}");

    // The server survived all of it and still works.
    let mut client = Client::connect(addr).expect("server still accepting");
    client.health().expect("healthz after the corpus");
    let res = client.shutdown().expect("clean shutdown");
    assert_eq!(res.outcomes.len(), 0);
    handle.join().expect("server thread did not panic");
}
