//! Crash tolerance through *real* process death (DESIGN.md §14).
//!
//! The in-process engine tests and `tests/serve_equivalence.rs` prove the
//! recovery logic over crash *images*; these tests drive the actual
//! `sd-serve` binary: SIGTERM must drain and exit 0 with a final
//! checkpoint, and a `kill -9` mid-traffic must lose nothing that was
//! acknowledged — the soak harness's one-assert contract.

#![cfg(unix)]

use sd_serve::soak::{self, SoakOptions};
use sd_serve::{Client, Json, SubmitRequest};
use std::io::BufRead as _;
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};

fn server_bin() -> std::path::PathBuf {
    env!("CARGO_BIN_EXE_sd_serve").into()
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sd-crash-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawns `sd_serve` and parses its listen line.
fn spawn_server(args: &[&str]) -> (Child, SocketAddr) {
    let mut child = Command::new(server_bin())
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn sd_serve");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    let addr = loop {
        line.clear();
        assert!(
            reader.read_line(&mut line).expect("read stdout") > 0,
            "server exited before printing its address"
        );
        if let Some(rest) = line.trim().strip_prefix("sd-serve listening on ") {
            break rest.parse().expect("listen address");
        }
    };
    (child, addr)
}

fn sigterm(child: &Child) {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    let rc = unsafe { kill(child.id() as i32, 15) };
    assert_eq!(rc, 0, "kill(SIGTERM)");
}

fn submit_some(client: &mut Client, n: u64) {
    for i in 0..n {
        client
            .submit(&SubmitRequest {
                procs: 4,
                req_time: 600,
                run_time: 300,
                submit: Some(i * 10),
                malleable: None,
                trace_id: None,
                tenant: None,
                project: None,
            })
            .expect("submit");
    }
}

#[test]
fn sigterm_drains_and_exits_cleanly_without_wal() {
    let (mut child, addr) = spawn_server(&["--port", "0", "--nodes", "8"]);
    let mut client = Client::connect(addr).expect("connect");
    submit_some(&mut client, 3);
    sigterm(&child);
    let status = child.wait().expect("wait");
    assert!(status.success(), "SIGTERM must exit 0, got {status:?}");
}

#[test]
fn sigterm_with_wal_lands_a_final_checkpoint() {
    let wal = tmp_dir("sigterm-wal");
    let wal_s = wal.display().to_string();
    let args = ["--port", "0", "--nodes", "8", "--wal", &wal_s];
    let (mut child, addr) = spawn_server(&args);
    let mut client = Client::connect(addr).expect("connect");
    submit_some(&mut client, 5);
    sigterm(&child);
    let status = child.wait().expect("wait");
    assert!(status.success(), "SIGTERM must exit 0, got {status:?}");

    // The shutdown checkpoint collapsed the log, and a restart resumes with
    // every acknowledged submission present.
    let (mut child2, addr2) = spawn_server(&args);
    let mut client2 = Client::connect(addr2).expect("reconnect");
    let stats = client2.stats().expect("stats");
    assert_eq!(
        stats.get("jobs_total").and_then(Json::as_u64),
        Some(5),
        "acknowledged submissions survive SIGTERM + restart"
    );
    let metrics = client2.metrics().expect("metrics");
    assert!(
        metrics.contains("sd_serve_recovered{mode=\"clean\"} 1"),
        "restart after graceful shutdown recovers clean"
    );
    assert!(
        metrics.contains("sd_serve_wal_records_replayed_total 0"),
        "the final checkpoint left nothing to replay:\n{metrics}"
    );
    client2.shutdown().expect("shutdown");
    let _ = child2.wait();
    let _ = std::fs::remove_dir_all(&wal);
}

#[test]
fn kill9_soak_recovers_bit_identically() {
    let jobs = workload::PaperWorkload::W3Ricc.generate(7, 0.02).jobs;
    assert!(jobs.len() > 50, "enough traffic to kill into");
    let wal = tmp_dir("soak");
    let report = soak::run(
        &jobs,
        &SoakOptions {
            cycles: 2,
            server_bin: server_bin(),
            server_args: vec!["--cluster".into(), "w3".into(), "--scale".into(), "0.02".into()],
            wal_dir: wal.clone(),
            seed: 11,
            rate: Some(5_000.0),
        },
    )
    .expect("soak campaign");
    assert_eq!(report.cycles, 2);
    assert_eq!(report.submitted, jobs.len() as u64);
    assert_eq!(
        report.recovered, report.reference,
        "kill -9 recovery diverged from the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&wal);
}
