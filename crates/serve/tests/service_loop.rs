//! End-to-end service behaviour over loopback: submit/query/cancel flows,
//! Prometheus counters, concurrent clients, and the loadgen harness.

use drom::SharingFactor;
use sd_policy::SdPolicy;
use sd_serve::client::Client;
use sd_serve::engine::{ClockMode, Engine};
use sd_serve::json::Json;
use sd_serve::loadgen::{self, LoadgenOptions};
use sd_serve::proto::SubmitRequest;
use sd_serve::server::{self, ServerConfig};
use slurm_sim::{IdealModel, SimResult, SimState, SlurmConfig, StaticBackfill};
use std::net::SocketAddr;

fn start(nodes: u32, sd: bool) -> (SocketAddr, std::thread::JoinHandle<Option<SimResult>>) {
    let mut spec = cluster::ClusterSpec::ricc();
    spec.nodes = nodes;
    let state = SimState::new_online(
        spec,
        SlurmConfig::default(),
        Box::new(IdealModel),
        SharingFactor::HALF,
    );
    let scheduler: Box<dyn slurm_sim::Scheduler + Send> = if sd {
        Box::new(SdPolicy::default())
    } else {
        Box::new(StaticBackfill)
    };
    let engine = Engine::new(state, scheduler, ClockMode::Virtual);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let h = std::thread::spawn(move || {
        server::run(engine, listener, ServerConfig { workers: 4, ..Default::default() }).ok()
    });
    (addr, h)
}

fn submit(client: &mut Client, procs: u64, run: u64, at: u64) -> u64 {
    client
        .submit(&SubmitRequest {
            procs,
            req_time: run * 2,
            run_time: run,
            submit: Some(at),
            malleable: None,
            trace_id: None,
            tenant: None,
            project: None,
        })
        .expect("submit accepted")
        .0
}

#[test]
fn submit_query_advance_result_lifecycle() {
    let (addr, h) = start(8, true);
    let mut client = Client::connect(addr).unwrap();
    client.health().unwrap();

    let id1 = submit(&mut client, 16, 100, 0);
    let id2 = submit(&mut client, 16, 100, 50);
    assert_eq!((id1, id2), (1, 2));

    // Nothing simulated yet: both pending, clock at 0.
    let job = client.job(id1).unwrap();
    assert_eq!(job.get("state").and_then(Json::as_str), Some("pending"));

    // Advance past the first submit: job 1 starts.
    assert_eq!(client.advance(10).unwrap(), 10);
    let job = client.job(id1).unwrap();
    assert_eq!(job.get("state").and_then(Json::as_str), Some("running"));
    assert_eq!(job.get("cores").and_then(Json::as_u64), Some(16));

    // Drain: everything completes; the result is consistent.
    client.drain().unwrap();
    let res = client.result().unwrap();
    assert_eq!(res.outcomes.len(), 2);
    assert_eq!(res.leftover_pending, 0);
    assert_eq!(res.scheduler, "sd-policy");

    let final_res = client.shutdown().unwrap();
    assert_eq!(final_res, res, "drained snapshot equals the final result");
    let server_res = h.join().unwrap().expect("server returned a result");
    assert_eq!(server_res, final_res, "client decode matches server state");
}

#[test]
fn metrics_exposition_tracks_job_counters() {
    let (addr, h) = start(8, true);
    let mut client = Client::connect(addr).unwrap();
    for i in 0..10 {
        submit(&mut client, 8, 50, i * 5);
    }
    client.drain().unwrap();
    let text = client.metrics().unwrap();
    assert!(text.contains("sd_serve_jobs_submitted_total 10"), "{text}");
    assert!(text.contains("sd_serve_jobs_completed_total 10"), "{text}");
    assert!(text.contains("sd_serve_jobs_pending 0"), "{text}");
    // The PR 4 pass/skip counters are exported.
    assert!(text.contains("sd_serve_sched_passes_total"), "{text}");
    assert!(text.contains("sd_serve_sched_passes_skipped_total"), "{text}");
    // HTTP counters moved too.
    assert!(text.contains("sd_serve_http_requests_total{class=\"2xx\"}"), "{text}");
    client.shutdown().unwrap();
    h.join().unwrap();
}

#[test]
fn cancel_unblocks_queue_and_counts() {
    let (addr, h) = start(4, false);
    let mut client = Client::connect(addr).unwrap();
    // Machine-filling head, then a canceller, then a small job.
    submit(&mut client, 32, 1000, 0);
    let blocker = submit(&mut client, 32, 1000, 0);
    submit(&mut client, 8, 100, 0);
    client.advance(0).unwrap();
    client.cancel(blocker).unwrap();
    // Cancelling again → 409, unknown id → 404.
    let err = client.cancel(blocker).unwrap_err();
    assert!(err.to_string().contains("409"), "{err}");
    let err = client.cancel(999).unwrap_err();
    assert!(err.to_string().contains("404"), "{err}");
    client.drain().unwrap();
    let res = client.shutdown().unwrap();
    h.join().unwrap();
    assert_eq!(res.outcomes.len(), 2, "cancelled job never ran");
    assert_eq!(res.stats.cancelled, 1);
}

#[test]
fn concurrent_clients_share_one_scheduler() {
    let (addr, h) = start(16, true);
    let mut threads = Vec::new();
    for t in 0..4u64 {
        threads.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            for i in 0..25u64 {
                c.submit(&SubmitRequest {
                    procs: 8,
                    req_time: 200,
                    run_time: 100,
                    submit: Some(1000 + t * 25 + i),
                    malleable: None,
                    trace_id: None,
                    tenant: None,
                    project: None,
                })
                .unwrap();
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let mut client = Client::connect(addr).unwrap();
    client.drain().unwrap();
    let res = client.shutdown().unwrap();
    h.join().unwrap();
    assert_eq!(res.outcomes.len(), 100, "all 4 × 25 submissions completed");
    assert_eq!(res.leftover_pending, 0);
    // Ids were assigned densely by the single scheduler thread.
    let mut ids: Vec<u64> = res.outcomes.iter().map(|o| o.id.0).collect();
    ids.sort_unstable();
    assert_eq!(ids, (1..=100).collect::<Vec<_>>());
}

#[test]
fn trace_and_explain_endpoints_cover_quota_skips() {
    // 4 × 8-core nodes; tenant 1 may run at most 2 requested nodes at once.
    let mut spec = cluster::ClusterSpec::ricc();
    spec.nodes = 4;
    let mut tenants = slurm_sim::TenantRegistry::new();
    tenants.add(slurm_sim::Tenant {
        quota: slurm_sim::Quota { node_seconds: None, max_running_width: Some(2) },
        ..slurm_sim::Tenant::unlimited(1, 0)
    });
    let state = SimState::new_online(
        spec,
        SlurmConfig { tenants, ..SlurmConfig::default() },
        Box::new(IdealModel),
        SharingFactor::HALF,
    );
    let ring = std::sync::Arc::new(slurm_sim::TraceRing::new(4096));
    let hists = std::sync::Arc::new(sd_serve::ServeHistograms::default());
    let engine = Engine::new(state, Box::new(StaticBackfill), ClockMode::Virtual)
        .with_trace(ring.clone())
        .with_histograms(hists.clone());
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let h = std::thread::spawn(move || {
        server::run(engine, listener, ServerConfig { workers: 4, trace: Some(ring), hists, ..Default::default() }).ok()
    });
    let mut client = Client::connect(addr).unwrap();

    let submit_as = |client: &mut Client, procs: u64, run: u64, at: u64| {
        client
            .submit(&SubmitRequest {
                procs,
                req_time: run * 2,
                run_time: run,
                submit: Some(at),
                malleable: None,
                trace_id: None,
                tenant: Some(1),
                project: Some(0),
            })
            .expect("submit accepted")
            .0
    };
    // Job 1 takes tenant 1 to its width cap; job 2 must wait on the quota.
    let id1 = submit_as(&mut client, 16, 100, 0);
    let id2 = submit_as(&mut client, 8, 50, 1);
    client.advance(10).unwrap();

    // /v1/trace: cursor tail with the quota decision visible.
    let tail = client.trace(0, 1000).unwrap();
    let next = tail.get("next").and_then(Json::as_u64).unwrap();
    assert!(next > 0, "{tail:?}");
    assert_eq!(tail.get("dropped").and_then(Json::as_u64), Some(0));
    let events = tail.get("events").and_then(Json::as_arr).unwrap();
    assert_eq!(events.len() as u64, next);
    let kinds: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("event").and_then(Json::as_str))
        .collect();
    assert!(kinds.contains(&"submitted"), "{kinds:?}");
    assert!(kinds.contains(&"started"), "{kinds:?}");
    assert!(kinds.contains(&"quota_skipped"), "{kinds:?}");
    // Cursor resume: nothing new until the clock moves again.
    let again = client.trace(next, 1000).unwrap();
    assert_eq!(again.get("events").and_then(Json::as_arr).map(<[Json]>::len), Some(0));

    client.drain().unwrap();

    // /v1/explain/{id2}: the full decision chain of the quota-skipped job.
    let explain = client.explain(id2).unwrap();
    assert_eq!(explain.get("tracing").and_then(Json::as_bool), Some(true));
    assert_eq!(explain.get("overwritten").and_then(Json::as_u64), Some(0));
    let job = explain.get("job").unwrap();
    assert_eq!(job.get("id").and_then(Json::as_u64), Some(id2));
    assert_eq!(job.get("state").and_then(Json::as_str), Some("done"));
    let chain: Vec<&str> = explain
        .get("decisions")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(|e| e.get("event").and_then(Json::as_str))
        .collect();
    let pos = |k: &str| {
        chain
            .iter()
            .position(|&c| c == k)
            .unwrap_or_else(|| panic!("missing {k} in decision chain {chain:?}"))
    };
    assert!(
        pos("submitted") < pos("quota_skipped")
            && pos("quota_skipped") < pos("started")
            && pos("started") < pos("completed"),
        "decision chain out of order: {chain:?}"
    );
    // The quota event names the tenant.
    let decisions = explain.get("decisions").and_then(Json::as_arr).unwrap();
    let quota_ev = decisions
        .iter()
        .find(|e| e.get("event").and_then(Json::as_str) == Some("quota_skipped"))
        .unwrap();
    assert_eq!(quota_ev.get("tenant").and_then(Json::as_u64), Some(1));
    assert!(client.explain(99).is_err(), "unknown job is a 404");

    // /metrics: the three histogram series are exposed.
    let text = client.metrics().unwrap();
    for series in [
        "sd_serve_http_request_duration_seconds",
        "sd_serve_pass_duration_seconds",
        "sd_serve_job_wait_seconds",
    ] {
        assert!(
            text.contains(&format!("# TYPE {series} histogram")),
            "missing {series}: {text}"
        );
        assert!(text.contains(&format!("{series}_bucket{{le=\"+Inf\"}}")), "{series}");
    }
    assert!(text.contains("sd_serve_timing_calls_total{function=\"backfill_trial\"}"));
    // Requests flowed, passes ran, job 2 waited: the counts are live.
    let count = |name: &str| -> f64 {
        text.lines()
            .find_map(|l| l.strip_prefix(name).and_then(|r| r.strip_prefix(' ')))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(-1.0)
    };
    assert!(count("sd_serve_http_request_duration_seconds_count") > 0.0);
    assert!(count("sd_serve_pass_duration_seconds_count") > 0.0);
    assert!(count("sd_serve_job_wait_seconds_count") >= 2.0);

    let _ = id1;
    client.shutdown().unwrap();
    h.join().unwrap();
}

#[test]
fn untraced_server_answers_trace_404_and_bare_explain() {
    let (addr, h) = start(8, true);
    let mut client = Client::connect(addr).unwrap();
    let id = submit(&mut client, 8, 50, 0);
    let err = client.trace(0, 10).unwrap_err();
    assert!(err.to_string().contains("404"), "{err}");
    // Explain still answers — with an empty history and tracing=false.
    let explain = client.explain(id).unwrap();
    assert_eq!(explain.get("tracing").and_then(Json::as_bool), Some(false));
    assert_eq!(
        explain.get("decisions").and_then(Json::as_arr).map(<[Json]>::len),
        Some(0)
    );
    client.shutdown().unwrap();
    h.join().unwrap();
}

#[test]
fn loadgen_reports_throughput_and_deltas() {
    let (addr, h) = start(32, true);
    let jobs: Vec<swf::SwfJob> = (0..50)
        .map(|i| swf::SwfJob::for_simulation(i + 1, i * 7, 60 + i, 8, 300))
        .collect();
    let report = loadgen::run(
        addr,
        &jobs,
        &LoadgenOptions {
            rate: None,
            virtual_timestamps: true,
            drain: true,
            shutdown: true,
            tenants: None,
            max_retries: 0,
        },
    )
    .unwrap();
    assert_eq!(report.submitted, 50);
    assert_eq!(report.rejected, 0);
    assert!(report.achieved_rate > 0.0);
    assert_eq!(report.delta("completed"), 50.0);
    let final_res = report.final_result.as_ref().expect("shutdown collects the result");
    assert_eq!(final_res.outcomes.len(), 50);
    assert!(report.latency_ms.is_some());
    let rendered = report.render();
    assert!(rendered.contains("achieved rate"), "{rendered}");
    h.join().unwrap();
}
