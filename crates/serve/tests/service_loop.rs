//! End-to-end service behaviour over loopback: submit/query/cancel flows,
//! Prometheus counters, concurrent clients, and the loadgen harness.

use drom::SharingFactor;
use sd_policy::SdPolicy;
use sd_serve::client::Client;
use sd_serve::engine::{ClockMode, Engine};
use sd_serve::json::Json;
use sd_serve::loadgen::{self, LoadgenOptions};
use sd_serve::proto::SubmitRequest;
use sd_serve::server::{self, ServerConfig};
use slurm_sim::{IdealModel, SimResult, SimState, SlurmConfig, StaticBackfill};
use std::net::SocketAddr;

fn start(nodes: u32, sd: bool) -> (SocketAddr, std::thread::JoinHandle<Option<SimResult>>) {
    let mut spec = cluster::ClusterSpec::ricc();
    spec.nodes = nodes;
    let state = SimState::new_online(
        spec,
        SlurmConfig::default(),
        Box::new(IdealModel),
        SharingFactor::HALF,
    );
    let scheduler: Box<dyn slurm_sim::Scheduler + Send> = if sd {
        Box::new(SdPolicy::default())
    } else {
        Box::new(StaticBackfill)
    };
    let engine = Engine::new(state, scheduler, ClockMode::Virtual);
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let h = std::thread::spawn(move || {
        server::run(engine, listener, ServerConfig { workers: 4 }).ok()
    });
    (addr, h)
}

fn submit(client: &mut Client, procs: u64, run: u64, at: u64) -> u64 {
    client
        .submit(&SubmitRequest {
            procs,
            req_time: run * 2,
            run_time: run,
            submit: Some(at),
            malleable: None,
            trace_id: None,
            tenant: None,
            project: None,
        })
        .expect("submit accepted")
        .0
}

#[test]
fn submit_query_advance_result_lifecycle() {
    let (addr, h) = start(8, true);
    let mut client = Client::connect(addr).unwrap();
    client.health().unwrap();

    let id1 = submit(&mut client, 16, 100, 0);
    let id2 = submit(&mut client, 16, 100, 50);
    assert_eq!((id1, id2), (1, 2));

    // Nothing simulated yet: both pending, clock at 0.
    let job = client.job(id1).unwrap();
    assert_eq!(job.get("state").and_then(Json::as_str), Some("pending"));

    // Advance past the first submit: job 1 starts.
    assert_eq!(client.advance(10).unwrap(), 10);
    let job = client.job(id1).unwrap();
    assert_eq!(job.get("state").and_then(Json::as_str), Some("running"));
    assert_eq!(job.get("cores").and_then(Json::as_u64), Some(16));

    // Drain: everything completes; the result is consistent.
    client.drain().unwrap();
    let res = client.result().unwrap();
    assert_eq!(res.outcomes.len(), 2);
    assert_eq!(res.leftover_pending, 0);
    assert_eq!(res.scheduler, "sd-policy");

    let final_res = client.shutdown().unwrap();
    assert_eq!(final_res, res, "drained snapshot equals the final result");
    let server_res = h.join().unwrap().expect("server returned a result");
    assert_eq!(server_res, final_res, "client decode matches server state");
}

#[test]
fn metrics_exposition_tracks_job_counters() {
    let (addr, h) = start(8, true);
    let mut client = Client::connect(addr).unwrap();
    for i in 0..10 {
        submit(&mut client, 8, 50, i * 5);
    }
    client.drain().unwrap();
    let text = client.metrics().unwrap();
    assert!(text.contains("sd_serve_jobs_submitted_total 10"), "{text}");
    assert!(text.contains("sd_serve_jobs_completed_total 10"), "{text}");
    assert!(text.contains("sd_serve_jobs_pending 0"), "{text}");
    // The PR 4 pass/skip counters are exported.
    assert!(text.contains("sd_serve_sched_passes_total"), "{text}");
    assert!(text.contains("sd_serve_sched_passes_skipped_total"), "{text}");
    // HTTP counters moved too.
    assert!(text.contains("sd_serve_http_requests_total{class=\"2xx\"}"), "{text}");
    client.shutdown().unwrap();
    h.join().unwrap();
}

#[test]
fn cancel_unblocks_queue_and_counts() {
    let (addr, h) = start(4, false);
    let mut client = Client::connect(addr).unwrap();
    // Machine-filling head, then a canceller, then a small job.
    submit(&mut client, 32, 1000, 0);
    let blocker = submit(&mut client, 32, 1000, 0);
    submit(&mut client, 8, 100, 0);
    client.advance(0).unwrap();
    client.cancel(blocker).unwrap();
    // Cancelling again → 409, unknown id → 404.
    let err = client.cancel(blocker).unwrap_err();
    assert!(err.to_string().contains("409"), "{err}");
    let err = client.cancel(999).unwrap_err();
    assert!(err.to_string().contains("404"), "{err}");
    client.drain().unwrap();
    let res = client.shutdown().unwrap();
    h.join().unwrap();
    assert_eq!(res.outcomes.len(), 2, "cancelled job never ran");
    assert_eq!(res.stats.cancelled, 1);
}

#[test]
fn concurrent_clients_share_one_scheduler() {
    let (addr, h) = start(16, true);
    let mut threads = Vec::new();
    for t in 0..4u64 {
        threads.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            for i in 0..25u64 {
                c.submit(&SubmitRequest {
                    procs: 8,
                    req_time: 200,
                    run_time: 100,
                    submit: Some(1000 + t * 25 + i),
                    malleable: None,
                    trace_id: None,
                    tenant: None,
                    project: None,
                })
                .unwrap();
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let mut client = Client::connect(addr).unwrap();
    client.drain().unwrap();
    let res = client.shutdown().unwrap();
    h.join().unwrap();
    assert_eq!(res.outcomes.len(), 100, "all 4 × 25 submissions completed");
    assert_eq!(res.leftover_pending, 0);
    // Ids were assigned densely by the single scheduler thread.
    let mut ids: Vec<u64> = res.outcomes.iter().map(|o| o.id.0).collect();
    ids.sort_unstable();
    assert_eq!(ids, (1..=100).collect::<Vec<_>>());
}

#[test]
fn loadgen_reports_throughput_and_deltas() {
    let (addr, h) = start(32, true);
    let jobs: Vec<swf::SwfJob> = (0..50)
        .map(|i| swf::SwfJob::for_simulation(i + 1, i * 7, 60 + i, 8, 300))
        .collect();
    let report = loadgen::run(
        addr,
        &jobs,
        &LoadgenOptions {
            rate: None,
            virtual_timestamps: true,
            drain: true,
            shutdown: true,
            tenants: None,
        },
    )
    .unwrap();
    assert_eq!(report.submitted, 50);
    assert_eq!(report.rejected, 0);
    assert!(report.achieved_rate > 0.0);
    assert_eq!(report.delta("completed"), 50.0);
    let final_res = report.final_result.as_ref().expect("shutdown collects the result");
    assert_eq!(final_res.outcomes.len(), 50);
    assert!(report.latency_ms.is_some());
    let rendered = report.render();
    assert!(rendered.contains("achieved rate"), "{rendered}");
    h.join().unwrap();
}
