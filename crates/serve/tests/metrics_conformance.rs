//! Prometheus exposition-format conformance (DESIGN.md §15): every series a
//! live server emits must carry `# HELP` / `# TYPE` headers, parse under a
//! strict grammar (names, label quoting/escaping, float samples), never
//! duplicate a series, and keep histogram buckets cumulative with an `+Inf`
//! bucket equal to `_count`. The scrape runs against a real booted server so
//! the check covers exactly what an agent would ingest.

use drom::SharingFactor;
use sd_policy::SdPolicy;
use sd_serve::client::Client;
use sd_serve::engine::Engine;
use sd_serve::proto::SubmitRequest;
use sd_serve::server::{self, ServerConfig};
use sd_serve::FsyncPolicy;
use slurm_sim::{IdealModel, SlurmConfig};
use std::collections::{BTreeMap, BTreeSet};

/// One parsed sample line: metric name, sorted label pairs, value.
#[derive(Debug, Clone, PartialEq)]
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

fn is_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Strictly parses a `{k="v",…}` label block, honouring the exposition
/// escapes (`\\`, `\"`, `\n`) and rejecting anything malformed.
fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = s.chars().peekable();
    loop {
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if !is_name(&key) {
            return Err(format!("bad label name `{key}` in `{s}`"));
        }
        if chars.next() != Some('"') {
            return Err(format!("label `{key}`: value must be quoted in `{s}`"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape {other:?} in `{s}`")),
                },
                Some('"') => break,
                Some('\n') | None => return Err(format!("unterminated label value in `{s}`")),
                Some(c) => value.push(c),
            }
        }
        labels.push((key, value));
        match chars.next() {
            Some(',') => continue,
            None => break,
            Some(c) => return Err(format!("expected `,` or end of labels, got `{c}` in `{s}`")),
        }
    }
    Ok(labels)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (head, value) = match line.find('}') {
        Some(close) => {
            let open = line
                .find('{')
                .ok_or_else(|| format!("`}}` without `{{`: {line}"))?;
            let labels = parse_labels(&line[open + 1..close])?;
            let rest = line[close + 1..]
                .strip_prefix(' ')
                .ok_or_else(|| format!("missing space after labels: {line}"))?;
            (
                Sample { name: line[..open].to_string(), labels, value: 0.0 },
                rest,
            )
        }
        None => {
            let (name, rest) = line
                .split_once(' ')
                .ok_or_else(|| format!("no sample value: {line}"))?;
            (
                Sample { name: name.to_string(), labels: Vec::new(), value: 0.0 },
                rest,
            )
        }
    };
    if !is_name(&head.name) {
        return Err(format!("bad metric name `{}`", head.name));
    }
    let value: f64 = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v
            .parse()
            .map_err(|_| format!("unparseable sample value `{v}` in: {line}"))?,
    };
    Ok(Sample { value, ..head })
}

/// Scrapes a live server and runs the strict conformance checks.
fn check_exposition(text: &str) {
    let mut helps: BTreeSet<String> = BTreeSet::new();
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples: Vec<Sample> = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').expect("HELP carries text");
            assert!(is_name(name), "bad HELP name: {line}");
            assert!(!help.trim().is_empty(), "empty HELP text: {line}");
            assert!(helps.insert(name.to_string()), "duplicate HELP for {name}");
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, ty) = rest.split_once(' ').expect("TYPE carries a type");
            assert!(is_name(name), "bad TYPE name: {line}");
            assert!(
                matches!(ty, "counter" | "gauge" | "histogram" | "summary" | "untyped"),
                "invalid TYPE `{ty}` for {name}"
            );
            assert!(
                types.insert(name.to_string(), ty.to_string()).is_none(),
                "duplicate TYPE for {name}"
            );
        } else if let Some(rest) = line.strip_prefix('#') {
            panic!("unknown comment form: #{rest}");
        } else {
            samples.push(parse_sample(line).unwrap_or_else(|e| panic!("{e}")));
        }
    }
    assert!(!samples.is_empty(), "server emitted no samples");

    // Every sample belongs to a family that declared both HELP and TYPE;
    // histogram child series resolve to their family name.
    let family_of = |name: &str| -> String {
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(stem) = name.strip_suffix(suffix) {
                if types.get(stem).map(String::as_str) == Some("histogram") {
                    return stem.to_string();
                }
            }
        }
        name.to_string()
    };
    for s in &samples {
        let fam = family_of(&s.name);
        assert!(types.contains_key(&fam), "{}: no # TYPE for family {fam}", s.name);
        assert!(helps.contains(&fam), "{}: no # HELP for family {fam}", s.name);
        if types[&fam] != "histogram" {
            assert_eq!(fam, s.name, "suffix reserved for histograms: {}", s.name);
        }
    }
    // And every declared family emits at least one sample.
    for name in types.keys() {
        assert!(
            samples.iter().any(|s| family_of(&s.name) == *name),
            "family {name} declared but emitted no samples"
        );
        assert!(helps.contains(name), "family {name} has TYPE but no HELP");
    }

    // No duplicate series (same name + same label set).
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for s in &samples {
        let mut key = s.name.clone();
        let mut labels = s.labels.clone();
        labels.sort();
        for (k, v) in &labels {
            key.push_str(&format!("|{k}={v}"));
        }
        assert!(seen.insert(key), "duplicate series: {} {:?}", s.name, s.labels);
    }

    // Histogram invariants: per label-set (minus `le`), buckets have
    // strictly increasing bounds, cumulative counts, and an +Inf bucket
    // that equals the family's `_count`.
    let histograms: Vec<&String> = types
        .iter()
        .filter(|(_, ty)| ty.as_str() == "histogram")
        .map(|(n, _)| n)
        .collect();
    assert!(!histograms.is_empty(), "the server exposes histograms");
    for fam in histograms {
        let group_key = |s: &Sample| {
            let mut labels: Vec<_> =
                s.labels.iter().filter(|(k, _)| k != "le").cloned().collect();
            labels.sort();
            format!("{labels:?}")
        };
        let mut buckets: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
        let mut counts: BTreeMap<String, f64> = BTreeMap::new();
        for s in &samples {
            if s.name == format!("{fam}_bucket") {
                let le = s
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .unwrap_or_else(|| panic!("{fam}_bucket without le: {:?}", s.labels));
                let bound = match le.1.as_str() {
                    "+Inf" => f64::INFINITY,
                    v => v.parse().unwrap_or_else(|_| panic!("bad le `{v}`")),
                };
                buckets.entry(group_key(s)).or_default().push((bound, s.value));
            } else if s.name == format!("{fam}_count") {
                counts.insert(group_key(s), s.value);
            }
        }
        assert!(!buckets.is_empty(), "{fam}: histogram with no buckets");
        for (group, series) in &buckets {
            assert!(
                series.windows(2).all(|w| w[0].0 < w[1].0),
                "{fam}{group}: le bounds not strictly increasing"
            );
            assert!(
                series.windows(2).all(|w| w[0].1 <= w[1].1),
                "{fam}{group}: bucket counts not cumulative"
            );
            let (last_bound, last_count) = *series.last().unwrap();
            assert_eq!(last_bound, f64::INFINITY, "{fam}{group}: missing +Inf bucket");
            assert_eq!(
                Some(&last_count),
                counts.get(group),
                "{fam}{group}: +Inf bucket != _count"
            );
        }
    }
}

#[test]
fn live_scrape_is_strictly_conformant() {
    // A durable engine with SLOs declared covers every metric family the
    // server can emit: HTTP counters, job/cluster gauges, histograms, WAL
    // gauges and the SLO burn-rate block.
    let dir = std::env::temp_dir().join(format!("sd-metrics-conf-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let (engine, _status) = Engine::recover(
        &dir,
        FsyncPolicy::Never,
        64,
        cluster::ClusterSpec::ricc(),
        SlurmConfig::default(),
        Box::new(IdealModel),
        SharingFactor::HALF,
        Box::new(SdPolicy::default()),
    )
    .expect("fresh durable engine");
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let slos = vec![
        sd_obs::SloSpec::parse("submit_availability", 0.99).unwrap(),
        sd_obs::SloSpec::parse("p99_wait_seconds", 100_000.0).unwrap(),
    ];
    let h = std::thread::spawn(move || {
        server::run(engine, listener, ServerConfig { workers: 2, slos, ..Default::default() }).ok()
    });

    let mut client = Client::connect(addr).unwrap();
    for i in 0..20u64 {
        client
            .submit(&SubmitRequest {
                procs: 8,
                req_time: 200,
                run_time: 100,
                submit: Some(i * 10),
                malleable: None,
                trace_id: None,
                tenant: Some(1 + i % 3),
                project: None,
            })
            .expect("submit");
    }
    client.drain().expect("drain");
    // Wait for the SLO sampler's first publication so the scrape includes
    // the budget gauges.
    for _ in 0..50 {
        if client.slo().is_ok() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
    }

    let text = client.metrics().expect("scrape");
    check_exposition(&text);
    for series in [
        "sd_serve_wal_bytes",
        "sd_serve_wal_segment_age_seconds",
        "sd_serve_slo_error_budget_remaining",
        "sd_serve_submit_requests_total",
    ] {
        assert!(text.contains(series), "scrape is missing {series}:\n{text}");
    }

    client.shutdown().expect("shutdown");
    h.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn strict_parser_rejects_malformed_lines() {
    // The checker itself must have teeth, or the conformance test proves
    // nothing. Feed it representative violations.
    assert!(parse_sample("sd_serve_jobs_pending 3").is_ok());
    assert!(parse_sample("x{tenant=\"1\"} 2.5").is_ok());
    assert!(parse_sample("x{l=\"a\\\"b\\\\c\"} 1").is_ok(), "escaped quote + backslash");
    assert!(parse_sample("9metric 1").is_err(), "name cannot start with a digit");
    assert!(parse_sample("x{tenant=1} 2").is_err(), "unquoted label value");
    assert!(parse_sample("x{tenant=\"1} 2").is_err(), "unterminated value");
    assert!(parse_sample("x{tenant=\"1\"}2").is_err(), "missing space");
    assert!(parse_sample("x nope").is_err(), "non-numeric sample");
    assert!(parse_sample("x{l=\"\\q\"} 1").is_err(), "unknown escape");
}
