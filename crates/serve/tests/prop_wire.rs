//! Property tests for the wire layer (vendored proptest):
//!
//! * HTTP request framing: `parse(render(req)) == req` for arbitrary
//!   methods, paths, queries, header sets and binary bodies.
//! * JSON: `parse(render(v)) == v` for arbitrary value trees (finite
//!   numbers), and `render` is injective enough to be stable.
//! * Protocol: `SubmitRequest` and `SimResult` survive the full
//!   encode → render → parse → decode pipeline unchanged.

use proptest::prelude::*;
use sd_serve::http::{read_request, Request};
use sd_serve::json::Json;
use sd_serve::proto::{decode_result, encode_result, SubmitRequest};
use std::io::Cursor;

// ----- generators -----

fn token(rng: &mut proptest::TestRng, alphabet: &[u8], len: usize) -> String {
    (0..len)
        .map(|_| alphabet[rng.below(alphabet.len())] as char)
        .collect()
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        0u8..3,
        1usize..12,
        0usize..10,
        0usize..4,
        proptest::collection::vec(any::<u8>(), 0..200),
        any::<u64>(),
    )
        .prop_map(|(m, path_len, q_len, n_headers, body, seed)| {
            let mut rng = proptest::TestRng::new(seed);
            let method = ["GET", "POST", "DELETE"][m as usize].to_string();
            let seg = token(&mut rng, b"abcdefghij0123456789_-.", path_len);
            let mut req = Request::new(&method, &format!("/{seg}"));
            if q_len > 0 {
                req.query = token(&mut rng, b"abc=&123", q_len);
            }
            for i in 0..n_headers {
                let name = format!("x-{}-{}", token(&mut rng, b"abcdef", 4), i);
                let len = 1 + rng.below(20);
                let value = token(&mut rng, b"abcdef ghij,;=/0123456789", len);
                req.headers.push((name, value.trim().to_string()));
            }
            req.body = body;
            req
        })
}

fn arb_json(depth: u32) -> BoxedStrategy<Json> {
    if depth == 0 {
        prop_oneof![
            Just(Json::Null),
            any::<bool>().prop_map(Json::Bool),
            (-1.0e12f64..1.0e12).prop_map(Json::Num),
            (0u64..1_000_000).prop_map(|v| Json::Num(v as f64)),
            (0usize..12, any::<u64>()).prop_map(|(len, seed)| {
                let mut rng = proptest::TestRng::new(seed);
                Json::Str(token(&mut rng, b"ab\"\\\ncd {}:,[]\te\xc3\xa9", len))
            }),
        ]
        .boxed()
    } else {
        prop_oneof![
            arb_json(0),
            proptest::collection::vec(arb_json(depth - 1), 0..4).prop_map(Json::Arr),
            (proptest::collection::vec(arb_json(depth - 1), 0..4), any::<u64>()).prop_map(
                |(vals, seed)| {
                    let mut rng = proptest::TestRng::new(seed);
                    Json::Obj(
                        vals.into_iter()
                            .enumerate()
                            .map(|(i, v)| {
                                (format!("k{}-{}", i, token(&mut rng, b"abc", 3)), v)
                            })
                            .collect(),
                    )
                }
            ),
        ]
        .boxed()
    }
}

// ----- properties -----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn http_request_roundtrips(req in arb_request()) {
        let wire = req.render();
        let back = read_request(&mut Cursor::new(wire))
            .expect("rendered request parses")
            .expect("not EOF");
        prop_assert_eq!(&back.method, &req.method);
        prop_assert_eq!(&back.path, &req.path);
        prop_assert_eq!(&back.query, &req.query);
        prop_assert_eq!(&back.body, &req.body);
        // Every original header survives (renderer may add content-length).
        for (k, v) in &req.headers {
            prop_assert_eq!(back.header(k), Some(v.as_str()), "header {}", k);
        }
    }

    #[test]
    fn json_roundtrips(v in arb_json(3)) {
        let text = v.render();
        let back = Json::parse(&text);
        prop_assert!(back.is_ok(), "render produced unparsable `{}`", text);
        prop_assert_eq!(back.unwrap(), v, "wire text {}", text);
    }

    #[test]
    fn json_parse_never_panics_on_mutations(v in arb_json(2), cut in 0usize..64) {
        // Truncating valid documents must fail cleanly, never panic.
        let text = v.render();
        let cut = cut.min(text.len());
        let _ = Json::parse(&text[..cut]);
        let _ = Json::parse(&text[cut..]);
    }

    #[test]
    fn submit_request_roundtrips(
        procs in 1u64..10_000,
        req_time in 0u64..1_000_000,
        run_time in 1u64..1_000_000,
        submit in proptest::prop_oneof![Just(None), (0u64..1_000_000_000).prop_map(Some)],
        malleable in proptest::prop_oneof![Just(None), any::<bool>().prop_map(Some)],
        trace_id in proptest::prop_oneof![Just(None), (1u64..1_000_000_000).prop_map(Some)],
        tenant in proptest::prop_oneof![Just(None), (0u64..10_000).prop_map(Some)],
        project in proptest::prop_oneof![Just(None), (0u64..100).prop_map(Some)],
    ) {
        let r = SubmitRequest { procs, req_time, run_time, submit, malleable, trace_id, tenant, project };
        let text = r.encode().render();
        let back = SubmitRequest::decode(&Json::parse(&text).unwrap());
        prop_assert_eq!(back.unwrap(), r);
    }

    #[test]
    fn sim_result_roundtrips_with_exact_floats(
        energy in -1.0e9f64..1.0e9,
        n_outcomes in 0usize..8,
        seed in any::<u64>(),
    ) {
        let mut rng = proptest::TestRng::new(seed);
        let outcomes: Vec<slurm_sim::JobOutcome> = (0..n_outcomes).map(|i| {
            let submit = rng.below(10_000) as u64;
            let start = submit + rng.below(5_000) as u64;
            let end = start + 1 + rng.below(100_000) as u64;
            slurm_sim::JobOutcome {
                id: cluster::JobId(i as u64 + 1),
                submit: simkit::SimTime(submit),
                start: simkit::SimTime(start),
                end: simkit::SimTime(end),
                nodes: 1 + rng.below(100) as u32,
                procs: 1 + rng.below(4_000) as u64,
                req_time: rng.below(1_000_000) as u64,
                static_runtime: 1 + rng.below(500_000) as u64,
                malleable_backfilled: rng.below(2) == 0,
                was_mate: rng.below(2) == 0,
                tenant: rng.below(97) as u32,
                app: if rng.below(3) == 0 {
                    Some(workload::APPS[rng.below(workload::APPS.len())].id)
                } else {
                    None
                },
            }
        }).collect();
        let r = slurm_sim::SimResult {
            scheduler: "sd-policy",
            first_submit: simkit::SimTime(rng.below(1000) as u64),
            last_end: simkit::SimTime(rng.below(1_000_000) as u64),
            makespan: rng.below(1_000_000) as u64,
            energy_joules: energy,
            leftover_pending: rng.below(5),
            leftover_running: rng.below(5),
            stats: slurm_sim::SimStats {
                started_static: rng.below(1000) as u64,
                started_malleable: rng.below(1000) as u64,
                sched_passes: rng.below(100_000) as u64,
                passes_skipped: rng.below(100_000) as u64,
                peak_profile_len: rng.below(10_000),
                ..Default::default()
            },
            outcomes,
        };
        let text = encode_result(&r).render();
        let back = decode_result(&Json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(back, r);
    }
}
