//! `sd-loadgen` — replay a workload as live traffic against `sd-serve`.
//!
//! ```sh
//! sd-loadgen --addr 127.0.0.1:8080 --workload w3 --scale 0.05 --jobs 100
//! sd-loadgen --addr 127.0.0.1:8080 --swf trace.swf --rate 500 --shutdown
//! ```
//!
//! Reports achieved submit throughput, per-request latency percentiles and
//! the end-state `/v1/stats` deltas. `--min-rate` / `--expect-completed`
//! turn the report into assertions (non-zero exit) for CI.

use sd_serve::loadgen::{self, LoadgenOptions};
use sd_serve::soak::{self, SoakOptions};

const USAGE: &str = "sd-loadgen — drive live traffic through sd-serve

  --addr <host:port>       service address (required unless --soak)
  --workload <w1|w2|w3|w4> synthetic workload to replay (default w3)
  --scale <f64>            workload scale (default 0.05)
  --seed <u64>             generator seed (default 42)
  --swf <path>             replay an SWF file instead of a generator
  --jobs <n>               cap the number of submissions
  --tenants <n>            submit under n round-robin tenant identities
                           (default: carry each record's own SWF user/group)
  --rate <r>               target submissions per wall second (default: flat out)
  --no-timestamps          submit without virtual timestamps (realtime servers)
  --no-drain               skip the final /v1/drain
  --shutdown               stop the server afterwards, print its final result
  --min-rate <r>           fail (exit 1) if achieved rate falls below r
  --expect-completed <n>   fail (exit 1) unless exactly n jobs completed
  --latency-out <csv>      write the request-latency histogram (ms buckets) to a file
  --max-retries <n>        transport-failure retries per request, with capped
                           exponential backoff + jitter (default 0 = fail fast)
  --slo-gate               after the run, fetch /v1/slo and exit 3 if any
                           declared objective is breached (the server must be
                           started with --slo; incompatible with --shutdown)
  --soak <cycles>          chaos mode: spawn sd-serve with --wal, kill -9 it
                           <cycles> times mid-traffic, restart + resync each
                           time, and fail unless the recovered /v1/result is
                           bit-identical to an uninterrupted reference run
  --soak-wal <dir>         WAL directory for --soak (default: a fresh
                           directory under the system temp dir; wiped first)
  --server-bin <path>      sd-serve binary for --soak (default: the sd-serve
                           next to this executable)
  --help, -h               this text";

fn fail(msg: &str) -> ! {
    println!("{msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut addr: Option<String> = None;
    let mut workload = "w3".to_string();
    let mut scale = 0.05f64;
    let mut seed = 42u64;
    let mut swf_path: Option<String> = None;
    let mut jobs_cap: Option<usize> = None;
    let mut opts = LoadgenOptions::default();
    let mut min_rate: Option<f64> = None;
    let mut expect_completed: Option<u64> = None;
    let mut latency_out: Option<String> = None;
    let mut soak_cycles: Option<u32> = None;
    let mut soak_wal: Option<std::path::PathBuf> = None;
    let mut server_bin: Option<std::path::PathBuf> = None;
    let mut slo_gate = false;

    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match a.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--workload" => workload = value("--workload"),
            "--scale" => scale = value("--scale").parse().unwrap_or_else(|_| fail("bad --scale")),
            "--seed" => seed = value("--seed").parse().unwrap_or_else(|_| fail("bad --seed")),
            "--swf" => swf_path = Some(value("--swf")),
            "--jobs" => jobs_cap = Some(value("--jobs").parse().unwrap_or_else(|_| fail("bad --jobs"))),
            "--tenants" => {
                let n: u32 = value("--tenants").parse().unwrap_or_else(|_| fail("bad --tenants"));
                if n == 0 {
                    fail("--tenants must be at least 1");
                }
                opts.tenants = Some(n);
            }
            "--rate" => {
                let r: f64 = value("--rate").parse().unwrap_or_else(|_| fail("bad --rate"));
                if r <= 0.0 || r.is_nan() {
                    fail("--rate must be > 0");
                }
                opts.rate = Some(r);
            }
            "--no-timestamps" => opts.virtual_timestamps = false,
            "--no-drain" => opts.drain = false,
            "--shutdown" => opts.shutdown = true,
            "--min-rate" => {
                min_rate = Some(value("--min-rate").parse().unwrap_or_else(|_| fail("bad --min-rate")))
            }
            "--expect-completed" => {
                expect_completed = Some(
                    value("--expect-completed")
                        .parse()
                        .unwrap_or_else(|_| fail("bad --expect-completed")),
                )
            }
            "--latency-out" => latency_out = Some(value("--latency-out")),
            "--max-retries" => {
                opts.max_retries = value("--max-retries")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --max-retries"));
            }
            "--slo-gate" => slo_gate = true,
            "--soak" => {
                let n: u32 = value("--soak").parse().unwrap_or_else(|_| fail("bad --soak"));
                if n == 0 {
                    fail("--soak must be at least 1 cycle");
                }
                soak_cycles = Some(n);
            }
            "--soak-wal" => soak_wal = Some(value("--soak-wal").into()),
            "--server-bin" => server_bin = Some(value("--server-bin").into()),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => fail(&format!("unknown flag: {other}")),
        }
    }
    let mut jobs: Vec<swf::SwfJob> = match &swf_path {
        Some(path) => {
            let (trace, _skipped) = swf::parse_file(std::path::Path::new(path))
                .unwrap_or_else(|e| fail(&format!("{path}: {e:?}")));
            trace.jobs
        }
        None => {
            let w = match workload.as_str() {
                "w1" => workload::PaperWorkload::W1Cirne,
                "w2" => workload::PaperWorkload::W2CirneIdeal,
                "w3" => workload::PaperWorkload::W3Ricc,
                "w4" => workload::PaperWorkload::W4Curie,
                v => fail(&format!("unknown --workload {v} (w1|w2|w3|w4)")),
            };
            w.generate(seed, scale).jobs
        }
    };
    if let Some(cap) = jobs_cap {
        jobs.truncate(cap);
    }
    if jobs.is_empty() {
        fail("workload produced no jobs");
    }

    // Chaos mode: the harness spawns its own servers; --addr is unused.
    if let Some(cycles) = soak_cycles {
        let server_bin = server_bin.unwrap_or_else(|| {
            let mut p = std::env::current_exe()
                .unwrap_or_else(|e| fail(&format!("cannot locate this executable: {e}")));
            p.set_file_name("sd_serve");
            p
        });
        let wal_dir = soak_wal.unwrap_or_else(|| {
            std::env::temp_dir().join(format!("sd-soak-{}", std::process::id()))
        });
        let sopts = SoakOptions {
            cycles,
            server_bin,
            server_args: vec![
                "--cluster".into(),
                workload.clone(),
                "--scale".into(),
                scale.to_string(),
            ],
            wal_dir,
            seed,
            rate: opts.rate,
        };
        sd_obs::log_event!(
            Info,
            "soak",
            "{} kill -9 cycles over {} jobs (server {}, wal {})",
            cycles,
            jobs.len(),
            sopts.server_bin.display(),
            sopts.wal_dir.display(),
        );
        match soak::run(&jobs, &sopts) {
            Ok(report) => {
                println!("{}", report.render());
                return;
            }
            Err(e) => {
                sd_obs::log_event!(Error, "soak", "FAILED: {e}");
                std::process::exit(1);
            }
        }
    }

    let Some(addr) = addr else {
        fail("--addr <host:port> is required");
    };
    let addr: std::net::SocketAddr = addr
        .parse()
        .unwrap_or_else(|_| fail(&format!("bad --addr {addr}")));

    sd_obs::log_event!(
        Info,
        "loadgen",
        "replaying {} jobs against {addr} ({})",
        jobs.len(),
        match opts.rate {
            Some(r) => format!("target {r}/s"),
            None => "flat out".to_string(),
        }
    );
    let report = loadgen::run(addr, &jobs, &opts).unwrap_or_else(|e| {
        sd_obs::log_event!(Error, "loadgen", "run failed: {e}");
        std::process::exit(1);
    });
    print!("{}", report.render());

    if let Some(path) = &latency_out {
        if let Err(e) = std::fs::write(path, report.latency_hist.csv()) {
            sd_obs::log_event!(Error, "loadgen", "writing {path}: {e}");
            std::process::exit(1);
        }
        sd_obs::log_event!(Info, "loadgen", "latency histogram written to {path}");
    }

    let mut failed = false;
    if let Some(min) = min_rate {
        if report.achieved_rate < min {
            sd_obs::log_event!(
                Error,
                "loadgen",
                "FAIL: achieved rate {:.0}/s below required {min}/s",
                report.achieved_rate
            );
            failed = true;
        }
    }
    if let Some(want) = expect_completed {
        let got = report.delta("completed");
        if (got - want as f64).abs() > 0.5 {
            sd_obs::log_event!(Error, "loadgen", "FAIL: {got} jobs completed, expected {want}");
            failed = true;
        }
        // Cross-check the Prometheus exposition against the same truth.
        for counter in ["sd_serve_jobs_completed_total", "sd_serve_jobs_submitted_total"] {
            match report.metric(counter) {
                Some(v) if (v - want as f64).abs() <= 0.5 => {}
                other => {
                    sd_obs::log_event!(Error, "loadgen", "FAIL: /metrics {counter} = {other:?}, expected {want}");
                    failed = true;
                }
            }
        }
        if report.metric("sd_serve_jobs_pending") != Some(0.0) {
            sd_obs::log_event!(Error, "loadgen", "FAIL: /metrics reports pending jobs after drain");
            failed = true;
        }
    }
    if report.rejected > 0 {
        sd_obs::log_event!(Info, "loadgen", "note: {} submissions rejected", report.rejected);
    }
    if failed {
        std::process::exit(1);
    }

    // The SLO gate runs after every assertion above passed: the run itself is
    // healthy, now ask the server whether its declared objectives survived.
    if slo_gate {
        if opts.shutdown {
            fail("--slo-gate needs the server alive after the run; drop --shutdown");
        }
        let mut client = sd_serve::client::Client::new(addr);
        // The server's sampler publishes its first evaluation ~1s after
        // boot; a gate racing a very short run polls briefly before giving
        // up (a missing --slo on the server stays a hard failure).
        let mut v = client.slo();
        for _ in 0..20 {
            if v.is_ok() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(250));
            v = client.slo();
        }
        let v = v.unwrap_or_else(|e| {
            sd_obs::log_event!(Error, "loadgen", "slo gate: {e}");
            std::process::exit(3);
        });
        let slos = v.get("slos").and_then(sd_serve::json::Json::as_arr);
        let mut breached = 0u32;
        for s in slos.into_iter().flatten() {
            let name = s.get("slo").and_then(sd_serve::json::Json::as_str).unwrap_or("?");
            let budget = s
                .get("budget_remaining")
                .and_then(sd_serve::json::Json::as_f64)
                .unwrap_or(0.0);
            let bad = s
                .get("breached")
                .and_then(sd_serve::json::Json::as_bool)
                .unwrap_or(false);
            println!(
                "slo gate: {name:<24} budget {:>6.1}%  {}",
                budget * 100.0,
                if bad { "BREACHED" } else { "ok" }
            );
            if bad {
                breached += 1;
            }
        }
        if breached > 0 {
            sd_obs::log_event!(Error, "loadgen", "slo gate: {breached} objective(s) breached");
            std::process::exit(3);
        }
        println!("slo gate: all objectives met");
    }
}
