//! `sd-top` — a live terminal dashboard for one `sd-serve` instance.
//!
//! ```sh
//! sd-top --addr 127.0.0.1:8080            # refresh until Ctrl-C
//! sd-top --addr 127.0.0.1:8080 --once     # one plain frame (scripts/CI)
//! ```
//!
//! Each frame polls `/v1/stats`, `/metrics` and `/v1/slo` and renders
//! throughput, queue depth, tenant shares, a pass-latency sparkline, WAL
//! lag and SLO error-budget bars with plain ANSI escapes — no terminal
//! library, works in any VT100-ish emulator.

use sd_serve::client::Client;
use sd_serve::json::Json;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

const USAGE: &str = "sd-top — live dashboard for sd-serve

  --addr <host:port>   service address (default 127.0.0.1:8080)
  --interval <ms>      refresh period in milliseconds (default 1000)
  --frames <n>         exit after n frames (default: run until interrupted)
  --once               plain single frame without screen control (= --frames 1)
  --help, -h           this text";

fn fail(msg: &str) -> ! {
    println!("{msg}\n\n{USAGE}");
    std::process::exit(2);
}

const SPARK: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders `values` as a unicode sparkline scaled to its own max.
fn sparkline(values: &VecDeque<f64>) -> String {
    let max = values.iter().cloned().fold(0.0f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if max <= 0.0 {
                SPARK[0]
            } else {
                let i = ((v / max) * (SPARK.len() - 1) as f64).round() as usize;
                SPARK[i.min(SPARK.len() - 1)]
            }
        })
        .collect()
}

/// A `[#####-----]` bar for a fraction in [0, 1] (clamped).
fn bar(frac: f64, width: usize) -> String {
    let filled = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    format!("[{}{}]", "#".repeat(filled), "-".repeat(width - filled))
}

/// First sample value of an unlabelled series in exposition text.
fn metric(text: &str, name: &str) -> Option<f64> {
    text.lines().find_map(|l| {
        let rest = l.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.parse().ok()
    })
}

fn u64_of(v: &Json, key: &str) -> u64 {
    v.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn f64_of(v: &Json, key: &str) -> f64 {
    v.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

/// Per-frame deltas need the previous cumulative counters.
struct Prev {
    at: Instant,
    completed: u64,
    submitted: u64,
    pass_sum: f64,
    pass_count: f64,
}

fn main() {
    let mut addr = "127.0.0.1:8080".to_string();
    let mut interval = Duration::from_millis(1000);
    let mut frames: Option<u64> = None;
    let mut once = false;

    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match a.as_str() {
            "--addr" => addr = value("--addr"),
            "--interval" => {
                let ms: u64 = value("--interval")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --interval"));
                interval = Duration::from_millis(ms.max(100));
            }
            "--frames" => {
                frames = Some(
                    value("--frames")
                        .parse()
                        .unwrap_or_else(|_| fail("bad --frames")),
                )
            }
            "--once" => once = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown flag {other}")),
        }
    }
    if once {
        frames = Some(1);
    }
    let addr: std::net::SocketAddr = addr
        .parse()
        .unwrap_or_else(|_| fail("bad --addr (need host:port)"));

    let mut client = Client::new(addr).with_retries(3);
    let mut pass_means: VecDeque<f64> = VecDeque::with_capacity(60);
    let mut prev: Option<Prev> = None;
    let mut frame = 0u64;
    loop {
        let stats = match client.stats() {
            Ok(s) => s,
            Err(e) => {
                println!("sd-top: {e}");
                std::process::exit(1);
            }
        };
        let metrics_text = client.metrics().unwrap_or_default();
        let slo = client.slo().ok(); // 404 when no SLOs are declared

        let now = Instant::now();
        let completed = u64_of(&stats, "completed");
        let submitted = u64_of(&stats, "submitted");
        let pass_sum = metric(&metrics_text, "sd_serve_pass_duration_seconds_sum").unwrap_or(0.0);
        let pass_count =
            metric(&metrics_text, "sd_serve_pass_duration_seconds_count").unwrap_or(0.0);
        let (done_rate, submit_rate, pass_mean_ms) = match &prev {
            Some(p) => {
                let dt = now.duration_since(p.at).as_secs_f64().max(1e-9);
                let dc = (pass_count - p.pass_count).max(0.0);
                let mean = if dc > 0.0 { (pass_sum - p.pass_sum) / dc * 1e3 } else { 0.0 };
                (
                    completed.saturating_sub(p.completed) as f64 / dt,
                    submitted.saturating_sub(p.submitted) as f64 / dt,
                    mean,
                )
            }
            None => (0.0, 0.0, if pass_count > 0.0 { pass_sum / pass_count * 1e3 } else { 0.0 }),
        };
        prev = Some(Prev { at: now, completed, submitted, pass_sum, pass_count });
        if pass_means.len() == 60 {
            pass_means.pop_front();
        }
        pass_means.push_back(pass_mean_ms);

        let mut out = String::with_capacity(2048);
        if !once {
            out.push_str("\x1b[H\x1b[2J"); // home + clear
        }
        out.push_str(&format!(
            "sd-top — {addr}  scheduler={}  t={}s  frame {}\n\n",
            stats.get("scheduler").and_then(Json::as_str).unwrap_or("?"),
            u64_of(&stats, "now"),
            frame + 1,
        ));
        out.push_str(&format!(
            "jobs     submitted {:>8}  pending {:>6}  running {:>6}  completed {:>8}\n",
            submitted,
            u64_of(&stats, "pending"),
            u64_of(&stats, "running"),
            completed,
        ));
        out.push_str(&format!(
            "rates    submit {submit_rate:>8.1}/s  complete {done_rate:>8.1}/s\n"
        ));
        out.push_str(&format!(
            "cluster  busy cores {:>8}  empty nodes {:>5}  util {}\n",
            u64_of(&stats, "busy_cores"),
            u64_of(&stats, "empty_nodes"),
            bar(
                f64_of(&stats, "busy_cores")
                    / (f64_of(&stats, "nodes") * 8.0).max(1.0),
                20
            ),
        ));
        out.push_str(&format!(
            "passes   run {:>8}  skipped {:>8}  mean {:>7.3} ms  {}\n",
            u64_of(&stats, "sched_passes"),
            u64_of(&stats, "passes_skipped"),
            pass_mean_ms,
            sparkline(&pass_means),
        ));
        if let Some(bytes) = metric(&metrics_text, "sd_serve_wal_bytes") {
            out.push_str(&format!(
                "wal      {bytes:>8.0} B unsnapshotted  segment age {:>6.1}s  checkpoints {:>4.0}\n",
                metric(&metrics_text, "sd_serve_wal_segment_age_seconds").unwrap_or(0.0),
                metric(&metrics_text, "sd_serve_checkpoints_written_total").unwrap_or(0.0),
            ));
        }
        if let Some(tenants) = stats.get("tenants").and_then(Json::as_arr) {
            if !tenants.is_empty() {
                let total: f64 = tenants.iter().map(|t| f64_of(t, "running_width")).sum();
                out.push_str("\ntenant      share                  submitted  limited  completed\n");
                for t in tenants {
                    let width = f64_of(t, "running_width");
                    let share = if total > 0.0 { width / total } else { 0.0 };
                    out.push_str(&format!(
                        "{:>6}      {} {:>4.0}%  {:>9}  {:>7}  {:>9}\n",
                        u64_of(t, "tenant"),
                        bar(share, 16),
                        share * 100.0,
                        u64_of(t, "submitted"),
                        u64_of(t, "rate_limited"),
                        u64_of(t, "completed"),
                    ));
                }
            }
        }
        if let Some(slos) = slo.as_ref().and_then(|s| s.get("slos")).and_then(Json::as_arr) {
            out.push_str("\nslo                        budget                 fast   slow\n");
            for s in slos {
                let budget = f64_of(s, "budget_remaining");
                let breached = s.get("breached").and_then(Json::as_bool).unwrap_or(false);
                out.push_str(&format!(
                    "{:<24}   {} {:>5.1}%  {:>5.2} {:>6.2}  {}\n",
                    s.get("slo").and_then(Json::as_str).unwrap_or("?"),
                    bar(budget, 16),
                    budget * 100.0,
                    f64_of(s, "burn_fast"),
                    f64_of(s, "burn_slow"),
                    if breached { "BREACHED" } else { "ok" },
                ));
            }
        }
        print!("{out}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();

        frame += 1;
        if frames.is_some_and(|n| frame >= n) {
            return;
        }
        std::thread::sleep(interval);
    }
}
