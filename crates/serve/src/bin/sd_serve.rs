//! `sd-serve` — run the malleable-job scheduler as a long-lived service.
//!
//! ```sh
//! sd-serve                            # W3-like machine, SD policy, virtual clock
//! sd-serve --port 8080 --workers 8
//! sd-serve --mode realtime --compression 600
//! sd-serve --cluster w4 --scale 0.05 --policy static
//! ```
//!
//! Prints `sd-serve listening on 127.0.0.1:<port>` once bound (port 0 picks
//! an ephemeral port — the CI smoke step parses this line), then blocks
//! until a client posts `/v1/shutdown`.

use cluster::ClusterSpec;
use drom::SharingFactor;
use sd_durable::FsyncPolicy;
use sd_policy::{MaxSlowdown, SdPolicy, SdPolicyConfig};
use sd_serve::engine::{ClockMode, Engine};
use sd_serve::server::{self, ServerConfig};
use slurm_sim::{
    AppAwareModel, IdealModel, RateModel, Scheduler, SimState, SlurmConfig, StaticBackfill,
    WorstCaseModel,
};
use workload::PaperWorkload;

const USAGE: &str = "sd-serve — online scheduling service (HTTP/JSON)

  --port <n>             TCP port (default 0 = ephemeral; printed when bound)
  --workers <n>          HTTP worker threads (default 4)
  --mode <virtual|realtime>   clock mode (default virtual)
  --compression <x>      realtime: simulated seconds per wall second (default 60)
  --cluster <w1|w2|w3|w4|ricc|curie|mn4|mn4_real_run>  machine preset (default w3)
  --scale <f64>          machine scale for w* presets (default 0.05)
  --nodes <n>            override the node count
  --policy <sd|static>   scheduler (default sd)
  --maxsd <x|inf|dyn>    SD-Policy cut-off (default dyn)
  --model <ideal|worst_case|app_aware>  runtime model (default ideal)
  --sharing <f64>        sharing factor in [0,1) (default 0.5)
  --malleable-fraction <f64>  fraction of draw-decided malleable jobs (default 1)
  --tenant-rate <id=rps> per-tenant submit rate limit in submissions per wall
                         second (repeatable; unlisted tenants are unlimited)
  --trace                enable decision tracing (GET /v1/trace, /v1/explain/{id})
  --trace-capacity <n>   trace ring size in events (default 65536; power of two)
  --legacy-path          run the pre-incremental scheduler hot path
  --backend <profile|slottree>  availability backend (default profile;
                         results are identical, only scheduler cost moves)
  --wal <dir>            crash tolerance: write-ahead log + checkpoints in
                         <dir>; on restart the service recovers the exact
                         pre-crash state before accepting traffic
                         (virtual clock only)
  --checkpoint-every <n> records between checkpoints (default 256)
  --wal-fsync <always|checkpoint|never>  fsync policy for WAL appends
                         (default checkpoint; checkpoints always fsync)
  --log-level <error|warn|info|debug|trace>  structured-log verbosity for
                         the in-memory ring, GET /v1/logs and the stderr
                         echo (default info)
  --log-json <path>      also write every retained log record as one JSON
                         line to <path>
  --slo <key=value>      declare a service-level objective (repeatable):
                         p99_wait_seconds=<s>, pass_duration_p95=<s>,
                         submit_availability=<fraction>; enables GET /v1/slo
                         and the sd_serve_slo_* burn-rate gauges
  --help, -h             this text";

fn fail(msg: &str) -> ! {
    println!("{msg}\n\n{USAGE}");
    std::process::exit(2);
}

struct Cli {
    port: u16,
    workers: usize,
    mode: ClockMode,
    cluster: String,
    scale: f64,
    nodes: Option<u32>,
    policy: String,
    maxsd: String,
    model: String,
    sharing: f64,
    malleable_fraction: f64,
    tenant_rates: Vec<(u64, f64)>,
    trace: bool,
    trace_capacity: usize,
    legacy: bool,
    backend: slurm_sim::AvailBackendKind,
    wal: Option<std::path::PathBuf>,
    checkpoint_every: u64,
    wal_fsync: FsyncPolicy,
    log_level: sd_obs::Level,
    log_json: Option<std::path::PathBuf>,
    slos: Vec<sd_obs::SloSpec>,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        port: 0,
        workers: 4,
        mode: ClockMode::Virtual,
        cluster: "w3".into(),
        scale: 0.05,
        nodes: None,
        policy: "sd".into(),
        maxsd: "dyn".into(),
        model: "ideal".into(),
        sharing: 0.5,
        malleable_fraction: 1.0,
        tenant_rates: Vec::new(),
        trace: false,
        trace_capacity: 65_536,
        legacy: false,
        backend: slurm_sim::AvailBackendKind::default(),
        wal: None,
        checkpoint_every: 256,
        wal_fsync: FsyncPolicy::default(),
        log_level: sd_obs::Level::Info,
        log_json: None,
        slos: Vec::new(),
    };
    let mut compression: f64 = 60.0;
    let mut realtime = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match a.as_str() {
            "--port" => cli.port = value("--port").parse().unwrap_or_else(|_| fail("bad --port")),
            "--workers" => {
                cli.workers = value("--workers").parse().unwrap_or_else(|_| fail("bad --workers"));
                if cli.workers == 0 {
                    fail("--workers must be at least 1");
                }
            }
            "--mode" => match value("--mode").as_str() {
                "virtual" => realtime = false,
                "realtime" => realtime = true,
                v => fail(&format!("--mode must be virtual or realtime, got {v}")),
            },
            "--compression" => {
                compression = value("--compression")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --compression"));
                if compression <= 0.0 || compression.is_nan() {
                    fail("--compression must be > 0");
                }
            }
            "--cluster" => cli.cluster = value("--cluster"),
            "--scale" => cli.scale = value("--scale").parse().unwrap_or_else(|_| fail("bad --scale")),
            "--nodes" => cli.nodes = Some(value("--nodes").parse().unwrap_or_else(|_| fail("bad --nodes"))),
            "--policy" => cli.policy = value("--policy"),
            "--maxsd" => cli.maxsd = value("--maxsd"),
            "--model" => cli.model = value("--model"),
            "--sharing" => cli.sharing = value("--sharing").parse().unwrap_or_else(|_| fail("bad --sharing")),
            "--malleable-fraction" => {
                cli.malleable_fraction = value("--malleable-fraction")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --malleable-fraction"))
            }
            "--tenant-rate" => {
                let v = value("--tenant-rate");
                let Some((id, rate)) = v.split_once('=') else {
                    fail(&format!("--tenant-rate wants <id=rps>, got {v}"));
                };
                let id: u64 = id.parse().unwrap_or_else(|_| fail("bad --tenant-rate id"));
                let rate: f64 = rate.parse().unwrap_or_else(|_| fail("bad --tenant-rate rps"));
                if rate <= 0.0 || rate.is_nan() {
                    fail("--tenant-rate rps must be > 0");
                }
                cli.tenant_rates.push((id, rate));
            }
            "--trace" => cli.trace = true,
            "--trace-capacity" => {
                cli.trace_capacity = value("--trace-capacity")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --trace-capacity"));
                if cli.trace_capacity == 0 {
                    fail("--trace-capacity must be at least 1");
                }
            }
            "--legacy-path" => cli.legacy = true,
            "--wal" => cli.wal = Some(value("--wal").into()),
            "--checkpoint-every" => {
                cli.checkpoint_every = value("--checkpoint-every")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --checkpoint-every"));
                if cli.checkpoint_every == 0 {
                    fail("--checkpoint-every must be at least 1");
                }
            }
            "--wal-fsync" => {
                let v = value("--wal-fsync");
                cli.wal_fsync = match v.as_str() {
                    "always" => FsyncPolicy::Always,
                    "checkpoint" => FsyncPolicy::Checkpoint,
                    "never" => FsyncPolicy::Never,
                    _ => fail(&format!(
                        "--wal-fsync must be always, checkpoint or never, got {v}"
                    )),
                };
            }
            "--log-level" => {
                let v = value("--log-level");
                cli.log_level = sd_obs::Level::parse(&v).unwrap_or_else(|| {
                    fail(&format!("--log-level must be error|warn|info|debug|trace, got {v}"))
                });
            }
            "--log-json" => cli.log_json = Some(value("--log-json").into()),
            "--slo" => {
                let v = value("--slo");
                let Some((key, val)) = v.split_once('=') else {
                    fail(&format!("--slo wants <key=value>, got {v}"));
                };
                let val: f64 = val.parse().unwrap_or_else(|_| fail("bad --slo value"));
                let spec = sd_obs::SloSpec::parse(key, val)
                    .unwrap_or_else(|e| fail(&format!("bad --slo: {e}")));
                cli.slos.push(spec);
            }
            "--backend" => {
                let v = value("--backend");
                cli.backend = slurm_sim::AvailBackendKind::parse(&v)
                    .unwrap_or_else(|| fail(&format!("--backend must be profile or slottree, got {v}")));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => fail(&format!("unknown flag: {other}")),
        }
    }
    if realtime {
        cli.mode = ClockMode::Realtime { compression };
    }
    cli
}

fn cluster_spec(cli: &Cli) -> ClusterSpec {
    let mut spec = match cli.cluster.as_str() {
        "w1" => PaperWorkload::W1Cirne.cluster(cli.scale),
        "w2" => PaperWorkload::W2CirneIdeal.cluster(cli.scale),
        "w3" => PaperWorkload::W3Ricc.cluster(cli.scale),
        "w4" => PaperWorkload::W4Curie.cluster(cli.scale),
        "ricc" => ClusterSpec::ricc(),
        "curie" => ClusterSpec::cea_curie(),
        "mn4" => ClusterSpec::marenostrum4(1024),
        "mn4_real_run" => ClusterSpec::mn4_real_run(),
        v => fail(&format!("unknown --cluster preset {v}")),
    };
    if let Some(n) = cli.nodes {
        spec.nodes = n;
    }
    spec
}

fn main() {
    let cli = parse_cli();
    // Logging first: everything below (recovery included) emits into the
    // ring and the stderr echo at the configured verbosity.
    sd_obs::set_ring_level(cli.log_level);
    sd_obs::set_stderr_level(cli.log_level);
    if let Some(path) = &cli.log_json {
        sd_obs::attach_json_sink(path)
            .unwrap_or_else(|e| fail(&format!("opening --log-json {}: {e}", path.display())));
    }
    slurm_sim::timing::init_from_env();
    // Continuous profiling: the service holds one always-armed window so
    // `GET /v1/profile` has cumulative totals to fall back on; windowed
    // requests still diff around their own arm/disarm pair.
    slurm_sim::timing::arm();
    let spec = cluster_spec(&cli);
    if !(0.0..1.0).contains(&cli.sharing) {
        fail("--sharing must be in [0, 1)");
    }
    if !(0.0..=1.0).contains(&cli.malleable_fraction) {
        fail("--malleable-fraction must be in [0, 1]");
    }
    let model: Box<dyn RateModel> = match cli.model.as_str() {
        "ideal" => Box::new(IdealModel),
        "worst_case" => Box::new(WorstCaseModel),
        "app_aware" => Box::new(AppAwareModel),
        v => fail(&format!("unknown --model {v}")),
    };
    let cfg = SlurmConfig {
        malleable_fraction: cli.malleable_fraction,
        incremental: !cli.legacy,
        avail_backend: cli.backend,
        ..SlurmConfig::default()
    };
    let scheduler: Box<dyn Scheduler + Send> = match cli.policy.as_str() {
        "static" => Box::new(StaticBackfill),
        "sd" => {
            let maxsd = match cli.maxsd.as_str() {
                "dyn" => MaxSlowdown::DynAvg,
                "inf" => MaxSlowdown::Infinite,
                v => MaxSlowdown::Static(
                    v.parse().unwrap_or_else(|_| fail("bad --maxsd")),
                ),
            };
            Box::new(SdPolicy::new(SdPolicyConfig {
                max_slowdown: maxsd,
                ..SdPolicyConfig::default()
            }))
        }
        v => fail(&format!("unknown --policy {v}")),
    };

    // Crash tolerance: recover checkpoint + WAL (and collapse the log into a
    // fresh checkpoint) *before* binding — no traffic is accepted until the
    // pre-crash state is fully rebuilt.
    let engine = match &cli.wal {
        Some(dir) => {
            if cli.mode != ClockMode::Virtual {
                fail("--wal requires the virtual clock (realtime replay is not deterministic)");
            }
            let (engine, status) = Engine::recover(
                dir,
                cli.wal_fsync,
                cli.checkpoint_every,
                spec.clone(),
                cfg,
                model,
                SharingFactor::new(cli.sharing),
                scheduler,
            )
            .unwrap_or_else(|e| fail(&format!("WAL recovery failed: {e}")));
            match status.recovered {
                None => sd_obs::log_event!(
                    Info,
                    "wal",
                    "fresh log in {} (fsync {}, checkpoint every {} records)",
                    dir.display(),
                    cli.wal_fsync.label(),
                    cli.checkpoint_every,
                ),
                Some(mode) => sd_obs::log_event!(
                    Info,
                    "wal",
                    "recovered from {} in {:.3}s ({mode}; {} records replayed)",
                    dir.display(),
                    status.recovery_seconds,
                    status.records_replayed,
                ),
            }
            engine
        }
        None => {
            let state =
                SimState::new_online(spec.clone(), cfg, model, SharingFactor::new(cli.sharing));
            Engine::new(state, scheduler, cli.mode)
        }
    };
    let hists = std::sync::Arc::new(sd_serve::metrics::ServeHistograms::default());
    let ring = cli
        .trace
        .then(|| std::sync::Arc::new(slurm_sim::TraceRing::new(cli.trace_capacity)));
    let mut engine = engine.with_histograms(hists.clone());
    if let Some(r) = &ring {
        engine = engine.with_trace(r.clone());
        sd_obs::log_event!(Info, "serve", "decision tracing on";
            ring_capacity = r.capacity());
    }
    if !cli.tenant_rates.is_empty() {
        engine = engine.with_tenant_rates(&cli.tenant_rates);
        sd_obs::log_event!(
            Info,
            "serve",
            "tenant rate limits: {}",
            cli.tenant_rates
                .iter()
                .map(|(id, r)| format!("{id}={r}/s"))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }

    let listener = std::net::TcpListener::bind(("127.0.0.1", cli.port))
        .unwrap_or_else(|e| fail(&format!("binding 127.0.0.1:{}: {e}", cli.port)));
    let addr = listener.local_addr().expect("bound listener has an address");
    println!("sd-serve listening on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    sd_obs::log_event!(
        Info,
        "serve",
        "machine: {} × {}-core nodes | policy: {} | clock: {:?} | workers: {}",
        spec.nodes,
        spec.node.cores(),
        cli.policy,
        cli.mode,
        cli.workers,
    );
    if !cli.slos.is_empty() {
        sd_obs::log_event!(
            Info,
            "slo",
            "objectives declared: {}",
            cli.slos
                .iter()
                .map(|s| s.name.as_str())
                .collect::<Vec<_>>()
                .join(" ")
        );
    }

    // Graceful SIGTERM/SIGINT: drain, final checkpoint (with --wal), exit 0.
    sd_serve::signals::install();
    let server_cfg = ServerConfig {
        workers: cli.workers,
        trace: ring,
        hists,
        signal_stop: true,
        slos: cli.slos.clone(),
    };
    let outcome = server::run(engine, listener, server_cfg);
    match &outcome {
        Ok(result) => {
            sd_obs::log_event!(
                Info,
                "serve",
                "shutdown: {} jobs completed, makespan {}, mean slowdown {:.2}, energy {:.1} kWh",
                result.outcomes.len(),
                result.makespan,
                result.mean_slowdown(),
                result.energy_joules / 3.6e6,
            );
        }
        Err(e) => {
            sd_obs::log_event!(Error, "serve", "server error: {e}");
        }
    }
    sd_obs::flush_sink();
    if outcome.is_err() {
        std::process::exit(1);
    }
}
