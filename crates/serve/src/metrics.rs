//! Prometheus text exposition for `GET /metrics`.
//!
//! Gauges and counters come from the engine's [`Snapshot`] (authoritative,
//! read under the single-writer scheduler thread) plus the HTTP-layer
//! request counters. Plain text format 0.0.4: `# HELP`/`# TYPE` pairs and
//! one sample per line — scrapeable by any Prometheus without extra deps.
//!
//! Three histogram-typed series ride along: HTTP request latency and
//! scheduler pass duration (wall clock, observed lock-free into
//! [`ServeHistograms`] by the workers/engine) and the submit→start wait of
//! started jobs (virtual time, rebuilt from outcomes at snapshot time so
//! the simulation result stays wall-clock-free).

use crate::engine::Snapshot;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Request-level counters maintained by the HTTP workers.
#[derive(Debug, Default)]
pub struct HttpCounters {
    pub requests_2xx: AtomicU64,
    pub requests_4xx: AtomicU64,
    pub requests_5xx: AtomicU64,
    pub connections: AtomicU64,
    /// `POST /v1/jobs` acceptances (2xx) — the "good" side of the submit
    /// availability SLO.
    pub submit_ok: AtomicU64,
    /// `POST /v1/jobs` refusals attributable to the service (429 rate
    /// limits and 5xx); client errors (malformed bodies, clock violations)
    /// do not burn the availability budget.
    pub submit_refused: AtomicU64,
}

impl HttpCounters {
    pub fn count_status(&self, status: u16) {
        let c = match status {
            200..=299 => &self.requests_2xx,
            400..=499 => &self.requests_4xx,
            _ => &self.requests_5xx,
        };
        c.fetch_add(1, Ordering::Relaxed);
    }
}

/// Upper bounds (seconds) for the wall-clock duration histograms: 10 µs to
/// 1 s in a 1-2.5-5 ladder, `+Inf` implicit.
pub const DURATION_BOUNDS_S: [f64; 14] = [
    0.000_01, 0.000_025, 0.000_05, 0.000_1, 0.000_25, 0.000_5, 0.001, 0.002_5, 0.005, 0.01,
    0.025, 0.05, 0.1, 1.0,
];

/// A fixed-bucket histogram writable from any thread (relaxed atomics) —
/// the wall-clock counterpart of `sched_metrics::Histogram`.
#[derive(Debug)]
pub struct AtomicHistogram {
    /// Per-bucket counts; the last entry is the `+Inf` overflow bucket.
    buckets: [AtomicU64; DURATION_BOUNDS_S.len() + 1],
    sum_nanos: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_nanos: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    pub fn observe(&self, secs: f64) {
        let idx = DURATION_BOUNDS_S
            .iter()
            .position(|&b| secs <= b)
            .unwrap_or(DURATION_BOUNDS_S.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos
            .fetch_add((secs.max(0.0) * 1e9) as u64, Ordering::Relaxed);
    }

    /// Per-bucket counts with the `+Inf` overflow appended (lock-free read;
    /// the SLO sampler feeds these to `sd_obs::good_within`).
    pub fn counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    pub fn sum_secs(&self) -> f64 {
        self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }
}

/// The service's wall-clock histograms, shared between the HTTP workers
/// (request latency), the engine's pass timer and the `/metrics` renderer.
#[derive(Debug, Default)]
pub struct ServeHistograms {
    /// Wall time spent routing one HTTP request (engine round-trip included).
    pub request_seconds: AtomicHistogram,
    /// Wall time of one scheduler pass (`Scheduler::schedule` call).
    pub pass_seconds: AtomicHistogram,
}

/// Escapes a label value per the exposition format: backslash, double
/// quote and newline must be backslash-escaped inside `label="..."`.
pub fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn sample(out: &mut String, name: &str, help: &str, kind: &str, value: impl std::fmt::Display) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
    let _ = writeln!(out, "{name} {value}");
}

/// One histogram exposition block: cumulative `_bucket{le=...}` samples,
/// `_sum`, `_count`. `counts` holds per-bucket counts with the `+Inf`
/// overflow bucket appended after `bounds`.
fn histogram(out: &mut String, name: &str, help: &str, bounds: &[f64], counts: &[u64], sum: f64) {
    debug_assert_eq!(counts.len(), bounds.len() + 1);
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cum = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        cum += c;
        if i < bounds.len() {
            let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", bounds[i]);
        } else {
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
        }
    }
    let _ = writeln!(out, "{name}_sum {sum}");
    let _ = writeln!(out, "{name}_count {cum}");
}

fn atomic_histogram(out: &mut String, name: &str, help: &str, h: &AtomicHistogram) {
    histogram(out, name, help, &DURATION_BOUNDS_S, &h.counts(), h.sum_secs());
}

/// Renders the full exposition. Deterministic order (the wall-clock
/// histogram and timing values are the only non-deterministic numbers).
/// `slos` carries the burn-rate engine's current view (empty without
/// `--slo`).
pub fn render(
    snap: &Snapshot,
    http: &HttpCounters,
    hists: &ServeHistograms,
    slos: &[sd_obs::SloStatus],
) -> String {
    let mut out = String::with_capacity(2048);
    let s = &snap.stats;
    sample(&mut out, "sd_serve_sim_now_seconds", "Virtual clock position.", "gauge", snap.now);
    sample(&mut out, "sd_serve_jobs_submitted_total", "Jobs accepted over the API.", "counter", snap.submitted);
    sample(&mut out, "sd_serve_jobs_total", "Jobs known to the simulator.", "gauge", snap.jobs_total);
    sample(&mut out, "sd_serve_jobs_pending", "Jobs waiting in the queue.", "gauge", snap.pending);
    sample(&mut out, "sd_serve_jobs_running", "Jobs currently executing.", "gauge", snap.running);
    sample(&mut out, "sd_serve_jobs_completed_total", "Jobs that finished.", "counter", snap.completed);
    sample(&mut out, "sd_serve_jobs_cancelled_total", "Jobs withdrawn.", "counter", s.cancelled);
    sample(&mut out, "sd_serve_quota_skipped_total", "Backfill trials skipped by tenant quotas.", "counter", s.quota_skipped);
    sample(&mut out, "sd_serve_started_static_total", "Exclusive whole-node starts.", "counter", s.started_static);
    sample(&mut out, "sd_serve_started_malleable_total", "Malleable co-scheduled starts.", "counter", s.started_malleable);
    sample(&mut out, "sd_serve_unique_mates_total", "Distinct jobs shrunk as mates.", "counter", s.unique_mates);
    sample(&mut out, "sd_serve_shrink_events_total", "Mate shrink operations.", "counter", s.shrink_events);
    sample(&mut out, "sd_serve_expand_events_total", "Expand-back operations.", "counter", s.expand_events);
    sample(&mut out, "sd_serve_relocations_total", "Shrunk borrowers moved to idle nodes.", "counter", s.relocations);
    sample(&mut out, "sd_serve_sched_passes_total", "Scheduling passes executed.", "counter", s.sched_passes);
    sample(&mut out, "sd_serve_sched_passes_skipped_total", "Passes skipped by no-op gating.", "counter", s.passes_skipped);
    sample(&mut out, "sd_serve_events_dispatched_total", "Simulation events dispatched.", "counter", s.events_dispatched);
    sample(&mut out, "sd_serve_events_outstanding", "Events still scheduled.", "gauge", snap.events_outstanding);
    sample(&mut out, "sd_serve_peak_profile_len", "Largest availability-profile length seen.", "gauge", s.peak_profile_len);
    sample(&mut out, "sd_serve_busy_cores", "Cores currently allocated.", "gauge", snap.busy_cores);
    sample(&mut out, "sd_serve_empty_nodes", "Completely idle nodes.", "gauge", snap.empty_nodes);
    sample(&mut out, "sd_serve_cluster_nodes", "Machine size in nodes.", "gauge", snap.nodes);
    sample(&mut out, "sd_serve_energy_joules_total", "Energy integral over the makespan window.", "counter", format_args!("{}", snap.energy_joules));
    sample(&mut out, "sd_serve_mean_slowdown", "Mean slowdown of completed jobs.", "gauge", format_args!("{}", snap.mean_slowdown));
    sample(&mut out, "sd_serve_mean_response_seconds", "Mean response time of completed jobs.", "gauge", format_args!("{}", snap.mean_response));
    sample(&mut out, "sd_serve_makespan_seconds", "First submit to last end, so far.", "gauge", snap.makespan);

    let _ = writeln!(out, "# HELP sd_serve_http_requests_total HTTP requests by status class.");
    let _ = writeln!(out, "# TYPE sd_serve_http_requests_total counter");
    for (class, v) in [
        ("2xx", &http.requests_2xx),
        ("4xx", &http.requests_4xx),
        ("5xx", &http.requests_5xx),
    ] {
        let _ = writeln!(
            out,
            "sd_serve_http_requests_total{{class=\"{class}\"}} {}",
            v.load(Ordering::Relaxed)
        );
    }
    sample(&mut out, "sd_serve_http_connections_total", "Accepted TCP connections.", "counter", http.connections.load(Ordering::Relaxed));

    let _ = writeln!(out, "# HELP sd_serve_submit_requests_total Submit attempts by outcome (ok = accepted, refused = 429/5xx).");
    let _ = writeln!(out, "# TYPE sd_serve_submit_requests_total counter");
    for (result, v) in [("ok", &http.submit_ok), ("refused", &http.submit_refused)] {
        let _ = writeln!(
            out,
            "sd_serve_submit_requests_total{{result=\"{}\"}} {}",
            escape_label(result),
            v.load(Ordering::Relaxed)
        );
    }

    atomic_histogram(
        &mut out,
        "sd_serve_http_request_duration_seconds",
        "Wall time to serve one HTTP request.",
        &hists.request_seconds,
    );
    atomic_histogram(
        &mut out,
        "sd_serve_pass_duration_seconds",
        "Wall time of one scheduler pass.",
        &hists.pass_seconds,
    );
    histogram(
        &mut out,
        "sd_serve_job_wait_seconds",
        "Virtual submit-to-start wait of started jobs.",
        snap.wait_hist.bounds(),
        snap.wait_hist.counts(),
        snap.wait_hist.sum(),
    );

    // The simulator's per-function timing probes (dormant unless enabled
    // with SD_TIMING / slurm_sim::timing::enable) as labelled counters.
    let timing = slurm_sim::timing::report();
    let _ = writeln!(out, "# HELP sd_serve_timing_seconds_total Wall seconds attributed to instrumented hot functions.");
    let _ = writeln!(out, "# TYPE sd_serve_timing_seconds_total counter");
    for f in &timing {
        let _ = writeln!(out, "sd_serve_timing_seconds_total{{function=\"{}\"}} {}", escape_label(f.name), f.total_secs);
    }
    let _ = writeln!(out, "# HELP sd_serve_timing_calls_total Invocations of instrumented hot functions.");
    let _ = writeln!(out, "# TYPE sd_serve_timing_calls_total counter");
    for f in &timing {
        let _ = writeln!(out, "sd_serve_timing_calls_total{{function=\"{}\"}} {}", escape_label(f.name), f.count);
    }

    if !slos.is_empty() {
        let _ = writeln!(out, "# HELP sd_serve_slo_error_budget_remaining Fraction of the SLO error budget left (1 = untouched, <= 0 = exhausted).");
        let _ = writeln!(out, "# TYPE sd_serve_slo_error_budget_remaining gauge");
        for s in slos {
            let _ = writeln!(out, "sd_serve_slo_error_budget_remaining{{slo=\"{}\"}} {}", escape_label(&s.name), s.budget_remaining);
        }
        let _ = writeln!(out, "# HELP sd_serve_slo_burn_rate Error-budget burn rate by evaluation window (1 = exactly on budget).");
        let _ = writeln!(out, "# TYPE sd_serve_slo_burn_rate gauge");
        for s in slos {
            let _ = writeln!(out, "sd_serve_slo_burn_rate{{slo=\"{}\",window=\"fast\"}} {}", escape_label(&s.name), s.burn_fast);
            let _ = writeln!(out, "sd_serve_slo_burn_rate{{slo=\"{}\",window=\"slow\"}} {}", escape_label(&s.name), s.burn_slow);
        }
        let _ = writeln!(out, "# HELP sd_serve_slo_breached Whether the SLO is currently breached (budget exhausted or both windows page-level burning).");
        let _ = writeln!(out, "# TYPE sd_serve_slo_breached gauge");
        for s in slos {
            let _ = writeln!(out, "sd_serve_slo_breached{{slo=\"{}\"}} {}", escape_label(&s.name), u64::from(s.breached));
        }
    }

    if let Some(w) = &snap.wal {
        sample(&mut out, "sd_serve_wal_records_written_total", "Commands appended to the write-ahead log since boot.", "counter", w.records_written);
        sample(&mut out, "sd_serve_wal_records_replayed_total", "WAL records replayed during boot recovery.", "counter", w.records_replayed);
        sample(&mut out, "sd_serve_checkpoints_written_total", "Checkpoints installed since boot.", "counter", w.checkpoints_written);
        sample(&mut out, "sd_serve_recovery_duration_seconds", "Wall time of boot recovery (restore + replay).", "gauge", format_args!("{}", w.recovery_seconds));
        sample(&mut out, "sd_serve_wal_bytes", "Current on-disk size of the write-ahead log.", "gauge", w.wal_bytes);
        sample(&mut out, "sd_serve_wal_segment_age_seconds", "Age of the oldest un-checkpointed WAL record.", "gauge", format_args!("{}", w.wal_segment_age_seconds));
        let _ = writeln!(out, "# HELP sd_serve_recovered Whether this boot recovered prior state, by recovery mode.");
        let _ = writeln!(out, "# TYPE sd_serve_recovered gauge");
        for mode in ["clean", "torn_tail"] {
            let v = u64::from(w.recovered == Some(mode));
            let _ = writeln!(out, "sd_serve_recovered{{mode=\"{mode}\"}} {v}");
        }
    }

    if !snap.tenants.is_empty() {
        for (name, help, get) in [
            (
                "sd_serve_tenant_submitted_total",
                "Jobs accepted per tenant.",
                (|t| t.submitted) as fn(&crate::engine::TenantSnap) -> u64,
            ),
            (
                "sd_serve_tenant_rate_limited_total",
                "Submissions refused by the per-tenant rate limit.",
                |t| t.rate_limited,
            ),
            (
                "sd_serve_tenant_completed_total",
                "Jobs completed per tenant.",
                |t| t.completed,
            ),
            (
                "sd_serve_tenant_quota_skipped_total",
                "Backfill trials skipped by this tenant's quota.",
                |t| t.quota_skipped,
            ),
        ] {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            for t in &snap.tenants {
                let _ = writeln!(out, "{name}{{tenant=\"{}\"}} {}", t.tenant, get(t));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ClockMode;

    fn snap() -> Snapshot {
        Snapshot {
            scheduler: "sd-policy",
            now: 1234,
            clock: ClockMode::Virtual,
            nodes: 64,
            cores_per_node: 8,
            busy_cores: 100,
            empty_nodes: 10,
            jobs_total: 20,
            pending: 3,
            running: 5,
            completed: 12,
            events_outstanding: 5,
            stats: Default::default(),
            energy_joules: 1.5e6,
            mean_slowdown: 2.5,
            mean_response: 100.0,
            mean_wait: 10.0,
            makespan: 5000,
            submitted: 20,
            tenants: vec![],
            wait_hist: sched_metrics::Histogram::wait_seconds(),
            wal: None,
        }
    }

    #[test]
    fn exposition_has_expected_series() {
        let http = HttpCounters::default();
        http.count_status(200);
        http.count_status(204);
        http.count_status(404);
        http.count_status(500);
        let text = render(&snap(), &http, &ServeHistograms::default(), &[]);
        assert!(text.contains("sd_serve_jobs_submitted_total 20"));
        assert!(text.contains("sd_serve_sim_now_seconds 1234"));
        assert!(text.contains("sd_serve_sched_passes_skipped_total 0"));
        assert!(text.contains("sd_serve_http_requests_total{class=\"2xx\"} 2"));
        assert!(text.contains("sd_serve_http_requests_total{class=\"4xx\"} 1"));
        assert!(text.contains("sd_serve_http_requests_total{class=\"5xx\"} 1"));
        assert!(text.contains("sd_serve_timing_calls_total{function=\"earliest_start\"}"));
        // Every HELP has a TYPE and at least one sample.
        let helps = text.matches("# HELP").count();
        let types = text.matches("# TYPE").count();
        assert_eq!(helps, types);
        assert!(helps >= 20, "{helps} series");
        let hist_types = text
            .lines()
            .filter(|l| l.starts_with("# TYPE") && l.ends_with("histogram"))
            .count();
        assert!(hist_types >= 3, "{hist_types} histogram series");
    }

    #[test]
    fn histograms_expose_cumulative_buckets() {
        let hists = ServeHistograms::default();
        hists.request_seconds.observe(0.000_02); // → le 0.000025
        hists.request_seconds.observe(0.003); // → le 0.005
        hists.request_seconds.observe(30.0); // → +Inf
        hists.pass_seconds.observe(0.000_2);
        let mut s = snap();
        s.wait_hist.observe(5.0);
        s.wait_hist.observe(50_000.0);
        let text = render(&s, &HttpCounters::default(), &hists, &[]);
        assert!(
            text.contains("sd_serve_http_request_duration_seconds_bucket{le=\"0.000025\"} 1"),
            "{text}"
        );
        assert!(text.contains("sd_serve_http_request_duration_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("sd_serve_http_request_duration_seconds_count 3"));
        assert!(text.contains("sd_serve_pass_duration_seconds_count 1"));
        assert!(text.contains("sd_serve_job_wait_seconds_count 2"));
        assert!(text.contains("sd_serve_job_wait_seconds_sum 50005"));
        // Buckets are cumulative: every later bucket ≥ the first one.
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("sd_serve_http_request_duration_seconds_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
    }

    #[test]
    fn tenant_series_are_labelled() {
        let mut s = snap();
        s.tenants = vec![
            crate::engine::TenantSnap {
                tenant: 1,
                submitted: 10,
                rate_limited: 0,
                completed: 8,
                quota_skipped: 0,
                ..Default::default()
            },
            crate::engine::TenantSnap {
                tenant: 2,
                submitted: 5,
                rate_limited: 3,
                completed: 4,
                quota_skipped: 7,
                ..Default::default()
            },
        ];
        let text = render(&s, &HttpCounters::default(), &ServeHistograms::default(), &[]);
        assert!(text.contains("sd_serve_tenant_submitted_total{tenant=\"1\"} 10"), "{text}");
        assert!(text.contains("sd_serve_tenant_rate_limited_total{tenant=\"2\"} 3"), "{text}");
        assert!(text.contains("sd_serve_tenant_quota_skipped_total{tenant=\"2\"} 7"), "{text}");
        assert!(text.contains("sd_serve_quota_skipped_total 0"), "{text}");
    }

    #[test]
    fn wal_series_render_only_when_durable() {
        let http = HttpCounters::default();
        let hists = ServeHistograms::default();
        let text = render(&snap(), &http, &hists, &[]);
        assert!(!text.contains("sd_serve_wal_records_written_total"), "{text}");
        let mut s = snap();
        s.wal = Some(crate::engine::WalStatus {
            records_written: 7,
            records_replayed: 3,
            checkpoints_written: 2,
            recovery_seconds: 0.25,
            recovered: Some("torn_tail"),
            wal_bytes: 168,
            wal_segment_age_seconds: 4.5,
        });
        let text = render(&s, &http, &hists, &[]);
        assert!(text.contains("sd_serve_wal_records_written_total 7"), "{text}");
        assert!(text.contains("sd_serve_wal_records_replayed_total 3"), "{text}");
        assert!(text.contains("sd_serve_checkpoints_written_total 2"), "{text}");
        assert!(text.contains("sd_serve_recovery_duration_seconds 0.25"), "{text}");
        assert!(text.contains("sd_serve_wal_bytes 168"), "{text}");
        assert!(text.contains("sd_serve_wal_segment_age_seconds 4.5"), "{text}");
        assert!(text.contains("sd_serve_recovered{mode=\"clean\"} 0"), "{text}");
        assert!(text.contains("sd_serve_recovered{mode=\"torn_tail\"} 1"), "{text}");
    }

    #[test]
    fn slo_gauges_render_per_objective() {
        let slo = sd_obs::SloStatus {
            name: "submit_availability".into(),
            kind: sd_obs::SloKind::Availability,
            objective: 0.999,
            threshold: 0.0,
            good: 990,
            total: 1000,
            bad_fraction: 0.01,
            budget_remaining: -9.0,
            burn_fast: 10.0,
            burn_slow: 10.0,
            fast_window: 300,
            slow_window: 3600,
            breached: true,
        };
        let text = render(&snap(), &HttpCounters::default(), &ServeHistograms::default(), &[slo]);
        assert!(
            text.contains("sd_serve_slo_error_budget_remaining{slo=\"submit_availability\"} -9"),
            "{text}"
        );
        assert!(
            text.contains("sd_serve_slo_burn_rate{slo=\"submit_availability\",window=\"fast\"} 10"),
            "{text}"
        );
        assert!(text.contains("sd_serve_slo_breached{slo=\"submit_availability\"} 1"), "{text}");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn deterministic_output() {
        let http = HttpCounters::default();
        let hists = ServeHistograms::default();
        assert_eq!(
            render(&snap(), &http, &hists, &[]),
            render(&snap(), &http, &hists, &[])
        );
    }
}
