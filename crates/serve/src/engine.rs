//! The scheduler thread: single writer over the simulation.
//!
//! Every HTTP worker translates its request into a [`Command`] and sends it
//! over one mpsc channel; this loop is the only code that ever touches the
//! [`SimState`]/[`Controller`]. That keeps the PR 4 incremental hot path
//! single-writer by construction — no locks around the availability-profile
//! cache, the queue index or the energy meter (DESIGN.md §10).
//!
//! Two clock modes share one code path ([`Controller::step_until`], the same
//! loop `Controller::run` uses offline):
//!
//! * **Virtual** (deterministic): the clock only advances when a client asks
//!   (`/v1/clock/advance`, `/v1/drain`). Submissions carry explicit virtual
//!   timestamps; a scripted session therefore feeds the simulator the exact
//!   event sequence an offline replay would build up front, and produces a
//!   bit-identical [`SimResult`] (pinned by `tests/serve_equivalence.rs`).
//! * **Realtime**: the clock tracks the wall clock scaled by a compression
//!   factor (sim-seconds per wall-second); due events are processed as their
//!   instants pass, and submissions default to "now".

use crate::durable::{EngineCheckpoint, WalCmd};
use crate::metrics::ServeHistograms;
use crate::proto::SubmitRequest;
use sd_durable::{DurableStore, FsyncPolicy};
use simkit::SimTime;
use slurm_sim::{Controller, DirtyFlags, Scheduler, SimResult, SimState, SubmitError, TraceRing};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the service clock advances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClockMode {
    /// Deterministic: advance only on client request.
    Virtual,
    /// Wall-clock driven, `compression` sim-seconds per wall-second.
    Realtime { compression: f64 },
}

/// Acknowledgement of an accepted submission.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitAck {
    pub id: u64,
    /// Effective virtual submit instant.
    pub submit: u64,
}

/// Queue/cluster/campaign snapshot used by `/v1/*` reads and `/metrics`.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub scheduler: &'static str,
    pub now: u64,
    pub clock: ClockMode,
    pub nodes: u32,
    pub cores_per_node: u32,
    pub busy_cores: u64,
    pub empty_nodes: u32,
    pub jobs_total: usize,
    pub pending: usize,
    pub running: usize,
    pub completed: usize,
    pub events_outstanding: usize,
    pub stats: slurm_sim::SimStats,
    pub energy_joules: f64,
    /// Completed-job aggregates so far (campaign-style).
    pub mean_slowdown: f64,
    pub mean_response: f64,
    pub mean_wait: f64,
    pub makespan: u64,
    /// Total submissions accepted over the API.
    pub submitted: u64,
    /// Per-tenant breakdown, ascending by tenant id. Empty when the service
    /// has seen no tenant traffic and no registry is configured.
    pub tenants: Vec<TenantSnap>,
    /// Submit→start wait of completed jobs, bucketed (virtual seconds) —
    /// rendered as the `sd_serve_job_wait_seconds` histogram.
    pub wait_hist: sched_metrics::Histogram,
    /// Durability counters; `None` when running without `--wal`.
    pub wal: Option<WalStatus>,
}

/// One tenant's slice of the service counters: wire-side submission counts
/// merged with the simulator's per-tenant accounting (when a
/// [`slurm_sim::TenantRegistry`] is configured).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantSnap {
    pub tenant: u64,
    /// Submissions accepted over the API for this tenant.
    pub submitted: u64,
    /// Submissions refused by the per-tenant rate limit (429).
    pub rate_limited: u64,
    /// Jobs of this tenant that started.
    pub started: u64,
    /// Jobs of this tenant that completed.
    pub completed: u64,
    /// Backfill trials skipped because a quota was exhausted.
    pub quota_skipped: u64,
    /// Requested nodes currently running.
    pub running_width: u64,
}

/// Per-job status for `GET /v1/jobs/{id}`.
#[derive(Debug, Clone)]
pub struct JobView {
    pub id: u64,
    pub state: &'static str,
    pub submit: u64,
    pub req_nodes: u32,
    pub req_time: u64,
    pub malleable: bool,
    pub start: Option<u64>,
    pub end: Option<u64>,
    pub cores: Option<u64>,
    pub rate: Option<f64>,
}

/// One pending-queue entry for `GET /v1/queue`.
#[derive(Debug, Clone)]
pub struct QueueView {
    pub id: u64,
    pub req_nodes: u32,
    pub req_time: u64,
}

/// The decision chain of one job for `GET /v1/explain/{id}`: its current
/// status plus every trace event that mentions it, oldest first.
#[derive(Debug, Clone)]
pub struct ExplainView {
    pub job: JobView,
    /// Whether a trace ring is attached (without one the history is empty).
    pub tracing: bool,
    /// Events involving the job still held in the ring, ascending by seq.
    pub events: Vec<slurm_sim::TraceEvent>,
    /// Ring events overwritten since creation — when non-zero, the oldest
    /// part of this job's history may be missing.
    pub overwritten: u64,
}

/// Why a command was refused (mapped to 4xx by the server).
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Submit/advance instant lies before the virtual clock.
    Clock(String),
    /// The job record cannot be simulated.
    Rejected(String),
    /// Unknown job id.
    NoSuchJob(u64),
    /// The job is not in a cancellable state (already finished/cancelled).
    NotPending(u64),
    /// The tenant exceeded its configured submit rate (HTTP 429).
    RateLimited(u64),
    /// Operation requires the other clock mode.
    WrongMode(&'static str),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Clock(m) | EngineError::Rejected(m) => write!(f, "{m}"),
            EngineError::NoSuchJob(id) => write!(f, "no job with id {id}"),
            EngineError::NotPending(id) => write!(f, "job {id} is not cancellable"),
            EngineError::RateLimited(t) => {
                write!(f, "tenant {t} exceeded its submit rate limit")
            }
            EngineError::WrongMode(m) => write!(f, "{m}"),
        }
    }
}

/// Commands from the HTTP workers. Each carries its own reply channel.
pub enum Command {
    Submit {
        req: SubmitRequest,
        reply: Sender<Result<SubmitAck, EngineError>>,
    },
    Cancel {
        id: u64,
        reply: Sender<Result<(), EngineError>>,
    },
    JobInfo {
        id: u64,
        reply: Sender<Result<JobView, EngineError>>,
    },
    /// Full decision history of one job (trace-backed).
    Explain {
        id: u64,
        reply: Sender<Result<ExplainView, EngineError>>,
    },
    Queue {
        limit: usize,
        reply: Sender<(usize, Vec<QueueView>)>,
    },
    Stats {
        reply: Sender<Snapshot>,
    },
    /// Virtual mode: process every event batch with `time <= to`.
    Advance {
        to: u64,
        reply: Sender<Result<u64, EngineError>>,
    },
    /// Virtual mode: run the event loop until nothing remains; replies with
    /// the final clock.
    Drain {
        reply: Sender<Result<u64, EngineError>>,
    },
    /// Read-only result of the run so far (complete once drained).
    Result {
        reply: Sender<SimResult>,
    },
    /// Stop the engine; replies with the final result.
    Shutdown {
        reply: Sender<SimResult>,
    },
}

/// Wall-clock token bucket: `rate` tokens/second, burst capacity `max(rate, 1)`.
struct TokenBucket {
    rate: f64,
    capacity: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(rate: f64) -> TokenBucket {
        let capacity = rate.max(1.0);
        TokenBucket {
            rate,
            capacity,
            tokens: capacity,
            last: Instant::now(),
        }
    }

    fn allow(&mut self) -> bool {
        let now = Instant::now();
        let refill = now.duration_since(self.last).as_secs_f64() * self.rate;
        self.tokens = (self.tokens + refill).min(self.capacity);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Wire-side per-tenant counters (keyed by the tenant id on the request,
/// which may or may not be in the simulator's registry).
#[derive(Default)]
struct TenantWire {
    submitted: u64,
    rate_limited: u64,
}

/// WAL/checkpoint figures for `/metrics` (present only with `--wal`).
#[derive(Debug, Clone, PartialEq)]
pub struct WalStatus {
    /// Records appended since this process opened the log.
    pub records_written: u64,
    /// Records replayed during boot recovery.
    pub records_replayed: u64,
    /// Checkpoints installed since this process opened the store.
    pub checkpoints_written: u64,
    /// Wall time of boot recovery (open + restore + replay + checkpoint).
    pub recovery_seconds: f64,
    /// `None`: fresh directory; `"clean"`: recovered an intact image;
    /// `"torn_tail"`: recovered after discarding a corrupt WAL tail.
    pub recovered: Option<&'static str>,
    /// Current on-disk WAL size (zero right after a checkpoint).
    pub wal_bytes: u64,
    /// Age of the oldest un-checkpointed record (0.0 when the log is empty).
    pub wal_segment_age_seconds: f64,
}

/// Write-ahead durability attached to the engine (DESIGN.md §14). Every
/// state-mutating command is logged *before* it is applied; a checkpoint is
/// installed (collapsing the log) every `checkpoint_every` records and at
/// shutdown.
struct Durability {
    store: DurableStore,
    checkpoint_every: u64,
    records_since_checkpoint: u64,
    /// Next WAL sequence number (global, resumes across restarts).
    next_seq: u64,
    replayed: u64,
    recovery_seconds: f64,
    recovered: Option<&'static str>,
    /// A failed append or checkpoint makes recovery guarantees void; noted
    /// once (loudly) and surfaced here rather than crashing the service.
    degraded: bool,
}

/// The engine: owns the controller, executes commands sequentially.
pub struct Engine {
    ctl: Controller<Box<dyn Scheduler + Send>>,
    mode: ClockMode,
    /// Virtual mode: highest instant the clock was advanced to. Submissions
    /// must not land before it (they would rewrite already-simulated past).
    floor: SimTime,
    /// Realtime mode: wall anchor of sim t = 0.
    epoch: Instant,
    submitted: u64,
    /// Per-tenant submit rate limits (wall clock), empty = unlimited.
    tenant_rates: std::collections::HashMap<u64, TokenBucket>,
    /// Wire counters per tenant id; BTreeMap for deterministic snapshots.
    tenant_wire: std::collections::BTreeMap<u64, TenantWire>,
    /// Decision-trace ring, shared with `/v1/trace` readers.
    trace: Option<Arc<TraceRing>>,
    /// Write-ahead log + checkpoints; `None` = in-memory only.
    dur: Option<Durability>,
}

/// Wraps the configured scheduler to time each pass into the service's
/// wall-clock histograms (`sd_serve_pass_duration_seconds`).
struct TimedScheduler {
    inner: Box<dyn Scheduler + Send>,
    hists: Arc<ServeHistograms>,
}

impl Scheduler for TimedScheduler {
    fn schedule(&mut self, st: &mut SimState) {
        let t0 = Instant::now();
        self.inner.schedule(st);
        self.hists.pass_seconds.observe(t0.elapsed().as_secs_f64());
    }

    fn pass_needed(&self, st: &SimState, dirty: DirtyFlags) -> bool {
        self.inner.pass_needed(st, dirty)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// Placeholder used only while swapping the scheduler box in
/// [`Engine::with_histograms`]; never scheduled.
struct NeverScheduled;

impl Scheduler for NeverScheduled {
    fn schedule(&mut self, _st: &mut SimState) {
        unreachable!("placeholder scheduler must be replaced before use");
    }
}

impl Engine {
    pub fn new(state: SimState, scheduler: Box<dyn Scheduler + Send>, mode: ClockMode) -> Engine {
        Engine {
            ctl: Controller::new(state, scheduler),
            mode,
            floor: SimTime::ZERO,
            epoch: Instant::now(),
            submitted: 0,
            tenant_rates: Default::default(),
            tenant_wire: Default::default(),
            trace: None,
            dur: None,
        }
    }

    /// Builds a crash-tolerant virtual-clock engine: opens (or creates) the
    /// durable store at `dir`, restores the checkpointed state, replays the
    /// outstanding WAL records through the exact command paths the live
    /// service uses, and installs a fresh checkpoint so the next boot starts
    /// from a collapsed log. Returns the engine plus a recovery summary.
    ///
    /// The WAL requires the deterministic virtual clock: realtime replay
    /// would re-time events against a different wall clock.
    #[allow(clippy::too_many_arguments)]
    pub fn recover(
        dir: &std::path::Path,
        policy: FsyncPolicy,
        checkpoint_every: u64,
        spec: cluster::ClusterSpec,
        cfg: slurm_sim::SlurmConfig,
        rate_model: Box<dyn slurm_sim::RateModel>,
        sharing: drom::SharingFactor,
        scheduler: Box<dyn Scheduler + Send>,
    ) -> Result<(Engine, WalStatus), String> {
        let t0 = Instant::now();
        let (store, rec) = DurableStore::open(dir, policy)
            .map_err(|e| format!("open WAL store at {}: {e}", dir.display()))?;
        let recovered = if rec.is_fresh() {
            None
        } else if rec.torn_tail {
            Some("torn_tail")
        } else {
            Some("clean")
        };
        let mut engine = match &rec.checkpoint {
            Some(bytes) => {
                let cp = EngineCheckpoint::decode(bytes)
                    .map_err(|e| format!("corrupt engine checkpoint: {e}"))?;
                let state = SimState::restore(spec, cfg, rate_model, sharing, &cp.state)
                    .map_err(|e| format!("restore checkpointed state: {e}"))?;
                let mut e = Engine::new(state, scheduler, ClockMode::Virtual);
                e.floor = SimTime(cp.floor);
                e.submitted = cp.submitted;
                e.tenant_wire = cp
                    .tenant_wire
                    .into_iter()
                    .map(|(t, s, r)| {
                        (t, TenantWire { submitted: s, rate_limited: r })
                    })
                    .collect();
                e
            }
            None => Engine::new(
                SimState::new_online(spec, cfg, rate_model, sharing),
                scheduler,
                ClockMode::Virtual,
            ),
        };
        let mut replayed = 0u64;
        for record in &rec.records {
            let cmd = WalCmd::decode(&record.payload)
                .map_err(|e| format!("undecodable WAL record seq {}: {e}", record.seq))?;
            engine.apply_replayed(cmd);
            replayed += 1;
        }
        engine.dur = Some(Durability {
            store,
            checkpoint_every: checkpoint_every.max(1),
            records_since_checkpoint: 0,
            next_seq: rec.next_seq,
            replayed,
            recovery_seconds: 0.0,
            recovered,
            degraded: false,
        });
        // Collapse the replayed log so a crash during this session never
        // replays the previous session's records on top of them again.
        engine.checkpoint_now();
        let d = engine.dur.as_mut().unwrap();
        d.recovery_seconds = t0.elapsed().as_secs_f64();
        let status = WalStatus {
            records_written: d.store.wal_records_written(),
            records_replayed: d.replayed,
            checkpoints_written: d.store.checkpoints_written(),
            recovery_seconds: d.recovery_seconds,
            recovered: d.recovered,
            wal_bytes: d.store.wal_bytes(),
            wal_segment_age_seconds: d.store.wal_segment_age_seconds(),
        };
        Ok((engine, status))
    }

    /// Installs per-tenant submit rate limits (submissions per wall-second;
    /// burst capacity is `max(rate, 1)`). Unlisted tenants are unlimited.
    pub fn with_tenant_rates(mut self, rates: &[(u64, f64)]) -> Engine {
        self.tenant_rates = rates
            .iter()
            .map(|&(t, r)| (t, TokenBucket::new(r)))
            .collect();
        self
    }

    /// Attaches a decision-trace ring: the simulator emits into it and
    /// `Explain` answers from it. Share the same `Arc` with the HTTP layer
    /// so `/v1/trace` can tail it lock-free.
    pub fn with_trace(mut self, ring: Arc<TraceRing>) -> Engine {
        self.ctl.state.attach_trace(ring.clone());
        self.trace = Some(ring);
        self
    }

    /// Times every scheduler pass into `hists.pass_seconds`.
    pub fn with_histograms(mut self, hists: Arc<ServeHistograms>) -> Engine {
        let inner = std::mem::replace(&mut self.ctl.scheduler, Box::new(NeverScheduled));
        self.ctl.scheduler = Box::new(TimedScheduler { inner, hists });
        self
    }

    /// The service clock: everything already simulated or advanced past.
    fn virtual_now(&self) -> SimTime {
        self.ctl.state.now.max(self.floor)
    }

    /// Realtime: the sim instant the wall clock has reached.
    fn realtime_target(&self) -> SimTime {
        let ClockMode::Realtime { compression } = self.mode else {
            unreachable!("realtime_target in virtual mode");
        };
        let elapsed = self.epoch.elapsed().as_secs_f64();
        SimTime((elapsed * compression) as u64)
    }

    /// Runs the command loop to completion. Returns the final result (also
    /// sent to the `Shutdown` requester, if that is how the loop ended).
    pub fn run(mut self, rx: Receiver<Command>) -> SimResult {
        self.epoch = Instant::now();
        loop {
            let cmd = match self.mode {
                ClockMode::Virtual => match rx.recv() {
                    Ok(c) => c,
                    Err(_) => break, // every client handle dropped
                },
                ClockMode::Realtime { compression } => {
                    // Catch the clock up, then wait for either the next
                    // command or the next due event.
                    let target = self.realtime_target();
                    self.ctl.step_until(Some(target));
                    self.floor = self.floor.max(target);
                    let timeout = self
                        .next_event_wall_delay(compression)
                        .unwrap_or(Duration::from_millis(200))
                        .min(Duration::from_millis(200));
                    match rx.recv_timeout(timeout) {
                        Ok(c) => c,
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            };
            let stop = self.handle(cmd);
            // Log records carry the virtual instant; publish it after every
            // command so concurrently-emitted records stamp the right time.
            sd_obs::set_virtual_now(self.virtual_now().secs());
            if stop {
                break;
            }
        }
        self.ctl.into_result()
    }

    fn next_event_wall_delay(&self, compression: f64) -> Option<Duration> {
        // peek_time needs &mut (lazy cancellation); approximate with the
        // queue emptiness check and a short poll otherwise.
        if self.ctl.state.events.is_empty() {
            None
        } else {
            Some(Duration::from_millis((50.0 / compression.max(1e-9)) as u64).max(Duration::from_millis(5)))
        }
    }

    /// Executes one command; `true` = shutdown.
    fn handle(&mut self, cmd: Command) -> bool {
        match cmd {
            Command::Submit { req, reply } => {
                let _ = reply.send(self.submit(req));
            }
            Command::Cancel { id, reply } => {
                self.log(&WalCmd::Cancel(id));
                let r = self.cancel(id);
                self.maybe_checkpoint();
                let _ = reply.send(r);
            }
            Command::JobInfo { id, reply } => {
                let _ = reply.send(self.job_view(id));
            }
            Command::Explain { id, reply } => {
                let _ = reply.send(self.explain(id));
            }
            Command::Queue { limit, reply } => {
                let st = &self.ctl.state;
                let entries = st
                    .queue
                    .prefix(limit)
                    .map(|e| QueueView {
                        id: e.job.0,
                        req_nodes: e.req_nodes,
                        req_time: e.req_time,
                    })
                    .collect();
                let _ = reply.send((st.queue.len(), entries));
            }
            Command::Stats { reply } => {
                let _ = reply.send(self.snapshot());
            }
            Command::Advance { to, reply } => {
                self.log(&WalCmd::Advance(to));
                let r = self.advance(to);
                self.maybe_checkpoint();
                let _ = reply.send(r);
            }
            Command::Drain { reply } => {
                if self.mode == ClockMode::Virtual {
                    self.log(&WalCmd::Drain);
                    self.ctl.step_until(None);
                    self.maybe_checkpoint();
                    let _ = reply.send(Ok(self.virtual_now().secs()));
                } else {
                    let _ = reply.send(Err(EngineError::WrongMode(
                        "drain requires the virtual clock",
                    )));
                }
            }
            Command::Result { reply } => {
                let name = self.ctl.scheduler.name();
                let _ = reply.send(SimResult::snapshot(&self.ctl.state, name));
            }
            Command::Shutdown { reply } => {
                // Final checkpoint: a restart after a graceful stop resumes
                // from the exact shutdown state with an empty log.
                self.checkpoint_now();
                let name = self.ctl.scheduler.name();
                let _ = reply.send(SimResult::snapshot(&self.ctl.state, name));
                return true;
            }
        }
        false
    }

    /// Earliest legal submit instant (virtual mode). Every batch at an
    /// instant ≤ `state.now` has already run, so a new event there would
    /// split what offline is one batch into two (diverging the pass
    /// accounting): the bound is exclusive of `now` once anything has been
    /// dispatched. Instants between `now` and the advance floor hold no
    /// processed batches and stay legal.
    fn min_virtual_submit(&self) -> SimTime {
        let now = self.ctl.state.now;
        if self.ctl.state.stats.events_dispatched > 0 {
            SimTime(now.secs() + 1)
        } else {
            now
        }
    }

    /// Appends one command to the WAL (no-op without `--wal`). Called
    /// *before* the command is applied — the log is a total order of
    /// effects. An append failure cannot be surfaced to the already-running
    /// simulation, so it degrades durability loudly instead of crashing.
    fn log(&mut self, cmd: &WalCmd) {
        let Some(d) = self.dur.as_mut() else { return };
        let seq = d.next_seq;
        d.next_seq += 1;
        d.records_since_checkpoint += 1;
        if let Err(e) = d.store.append(seq, &cmd.encode()) {
            if !d.degraded {
                sd_obs::log_event!(
                    Error,
                    "wal",
                    "append failed ({e}); crash recovery is no longer guaranteed";
                    seq = seq
                );
            }
            d.degraded = true;
        }
    }

    /// Serialises the full durable image: engine counters + the canonical
    /// simulator state.
    fn checkpoint_payload(&self) -> Vec<u8> {
        EngineCheckpoint {
            floor: self.floor.secs(),
            submitted: self.submitted,
            tenant_wire: self
                .tenant_wire
                .iter()
                .map(|(&t, w)| (t, w.submitted, w.rate_limited))
                .collect(),
            state: self.ctl.state.checkpoint_bytes(),
        }
        .encode()
    }

    /// Installs a checkpoint covering everything applied so far and resets
    /// the record counter. No-op without `--wal`.
    fn checkpoint_now(&mut self) {
        if self.dur.is_none() {
            return;
        }
        let payload = self.checkpoint_payload();
        let d = self.dur.as_mut().unwrap();
        // Seqs start at 1, so `next_seq - 1` is the last logged (= applied)
        // record; 0 = "nothing beyond the checkpoint".
        let applied = d.next_seq - 1;
        if let Err(e) = d.store.install_checkpoint(applied, &payload) {
            if !d.degraded {
                sd_obs::log_event!(
                    Error,
                    "wal",
                    "checkpoint failed ({e}); crash recovery is no longer guaranteed";
                    applied = applied
                );
            }
            d.degraded = true;
        } else {
            sd_obs::log_event!(Debug, "wal", "checkpoint installed"; applied = applied);
        }
        d.records_since_checkpoint = 0;
    }

    /// Checkpoints when the per-`checkpoint_every` budget is used up.
    fn maybe_checkpoint(&mut self) {
        let due = self
            .dur
            .as_ref()
            .is_some_and(|d| d.records_since_checkpoint >= d.checkpoint_every);
        if due {
            self.checkpoint_now();
        }
    }

    /// Re-applies one recovered WAL command. Replay goes through the same
    /// code paths live traffic does, minus the WAL append (the record is
    /// already on disk) and minus the rate limiter (refusals were never
    /// logged, and throttling is a wall-clock concern).
    fn apply_replayed(&mut self, cmd: WalCmd) {
        match cmd {
            WalCmd::Submit(req) => {
                let _ = self.apply_submit(req);
            }
            WalCmd::Cancel(id) => {
                let _ = self.cancel(id);
            }
            WalCmd::Advance(to) => {
                let _ = self.advance(to);
            }
            WalCmd::Drain => self.ctl.step_until(None),
        }
    }

    fn submit(&mut self, req: SubmitRequest) -> Result<SubmitAck, EngineError> {
        let tenant = req.tenant.unwrap_or(0);
        if let Some(bucket) = self.tenant_rates.get_mut(&tenant) {
            if !bucket.allow() {
                self.tenant_wire.entry(tenant).or_default().rate_limited += 1;
                return Err(EngineError::RateLimited(tenant));
            }
        }
        // Log after the (non-deterministic, wall-clock) rate gate but before
        // any effect: replay then reproduces exactly the accepted traffic.
        self.log(&WalCmd::Submit(req.clone()));
        let ack = self.apply_submit(req);
        match &ack {
            Ok(a) => {
                sd_obs::log_event!(Debug, "engine", "submit accepted";
                    id = a.id, tenant = tenant, submit = a.submit);
            }
            Err(e) => {
                sd_obs::log_event!(Debug, "engine", "submit refused: {e}"; tenant = tenant);
            }
        }
        self.maybe_checkpoint();
        ack
    }

    fn apply_submit(&mut self, req: SubmitRequest) -> Result<SubmitAck, EngineError> {
        let tenant = req.tenant.unwrap_or(0);
        let (min, default) = match self.mode {
            ClockMode::Virtual => {
                let min = self.min_virtual_submit();
                (min, min.max(self.floor))
            }
            ClockMode::Realtime { .. } => {
                let target = self.realtime_target();
                (self.ctl.state.now, target)
            }
        };
        let submit = match req.submit {
            Some(t) => {
                if SimTime(t) < min {
                    return Err(EngineError::Clock(format!(
                        "submit time {t} is at or before an already-simulated instant \
                         (earliest accepted: {})",
                        min.secs()
                    )));
                }
                t
            }
            None => default.secs(),
        };
        // Dense id = next job-table slot (SimState assigns the same); the
        // malleability draw forks from the client's trace identity when
        // given, matching the offline constructor on the same trace.
        let id = self.ctl.state.job_count() as u64 + 1;
        let sj = req.to_swf(req.trace_id.unwrap_or(id), submit);
        match self.ctl.state.submit_job(&sj, req.malleable) {
            Ok(id) => {
                self.submitted += 1;
                self.tenant_wire.entry(tenant).or_default().submitted += 1;
                Ok(SubmitAck { id: id.0, submit })
            }
            Err(SubmitError::Unusable) => Err(EngineError::Rejected(
                "job record cannot be simulated (check procs/run_time)".into(),
            )),
            Err(e @ SubmitError::InPast { .. }) => Err(EngineError::Clock(e.to_string())),
        }
    }

    fn cancel(&mut self, id: u64) -> Result<(), EngineError> {
        if id == 0 || id as usize > self.ctl.state.job_count() {
            return Err(EngineError::NoSuchJob(id));
        }
        if self.ctl.state.cancel_job(cluster::JobId(id)) {
            // A dropped queue entry can unblock backfill immediately; run a
            // (gated) pass now instead of waiting for the next event batch.
            self.ctl.pass_now();
            Ok(())
        } else {
            Err(EngineError::NotPending(id))
        }
    }

    fn advance(&mut self, to: u64) -> Result<u64, EngineError> {
        if self.mode != ClockMode::Virtual {
            return Err(EngineError::WrongMode(
                "advance requires the virtual clock (realtime advances itself)",
            ));
        }
        self.ctl.step_until(Some(SimTime(to)));
        self.floor = self.floor.max(SimTime(to));
        sd_obs::log_event!(Debug, "engine", "clock advanced"; to = to);
        Ok(self.virtual_now().secs())
    }

    fn job_view(&self, id: u64) -> Result<JobView, EngineError> {
        if id == 0 || id as usize > self.ctl.state.job_count() {
            return Err(EngineError::NoSuchJob(id));
        }
        let job = self.ctl.state.job(cluster::JobId(id));
        let run = job.running();
        let done = self
            .ctl
            .state
            .outcomes()
            .iter()
            .find(|o| o.id.0 == id);
        Ok(JobView {
            id,
            state: job.state_label(),
            submit: job.spec.submit.secs(),
            req_nodes: job.spec.req_nodes,
            req_time: job.spec.req_time,
            malleable: job.spec.malleable,
            start: run
                .map(|r| r.start.secs())
                .or_else(|| done.map(|o| o.start.secs())),
            end: done.map(|o| o.end.secs()),
            cores: run.map(|r| r.total_cores()),
            rate: run.map(|r| r.rate),
        })
    }

    /// The job's status plus every decision about it still in the ring.
    fn explain(&self, id: u64) -> Result<ExplainView, EngineError> {
        let job = self.job_view(id)?;
        let (tracing, events, overwritten) = match &self.trace {
            None => (false, Vec::new(), 0),
            Some(r) => (
                true,
                r.snapshot()
                    .into_iter()
                    .filter(|e| e.kind.involves(id))
                    .collect(),
                r.overwritten(),
            ),
        };
        Ok(ExplainView { job, tracing, events, overwritten })
    }

    fn snapshot(&self) -> Snapshot {
        let st = &self.ctl.state;
        let outcomes = st.outcomes();
        let mut slow = 0.0;
        let mut resp = 0.0;
        let mut wait = 0.0;
        let mut wait_hist = sched_metrics::Histogram::wait_seconds();
        for o in outcomes {
            slow += o.slowdown();
            resp += o.response() as f64;
            wait += o.wait() as f64;
            wait_hist.observe(o.wait() as f64);
        }
        let n = outcomes.len().max(1) as f64;
        Snapshot {
            scheduler: self.ctl.scheduler.name(),
            now: self.virtual_now().secs(),
            clock: self.mode,
            nodes: st.spec().nodes,
            cores_per_node: st.spec().node.cores(),
            busy_cores: st.cluster.busy_cores(),
            empty_nodes: st.cluster.empty_node_count(),
            jobs_total: st.job_count(),
            pending: st.queue.len(),
            running: st.running_count(),
            completed: outcomes.len(),
            events_outstanding: st.events.len(),
            stats: st.stats.clone(),
            energy_joules: st.snapshot_energy(),
            mean_slowdown: slow / n,
            mean_response: resp / n,
            mean_wait: wait / n,
            makespan: st.last_end().since(st.first_submit().min(st.last_end())),
            submitted: self.submitted,
            tenants: self.tenant_snaps(),
            wait_hist,
            wal: self.dur.as_ref().map(|d| WalStatus {
                records_written: d.store.wal_records_written(),
                records_replayed: d.replayed,
                checkpoints_written: d.store.checkpoints_written(),
                recovery_seconds: d.recovery_seconds,
                recovered: d.recovered,
                wal_bytes: d.store.wal_bytes(),
                wal_segment_age_seconds: d.store.wal_segment_age_seconds(),
            }),
        }
    }

    /// Wire counters merged with the simulator's per-tenant accounting
    /// (registry slots aggregated by tenant id across projects).
    fn tenant_snaps(&self) -> Vec<TenantSnap> {
        let mut rows: std::collections::BTreeMap<u64, TenantSnap> = self
            .tenant_wire
            .iter()
            .map(|(&t, w)| {
                (
                    t,
                    TenantSnap {
                        tenant: t,
                        submitted: w.submitted,
                        rate_limited: w.rate_limited,
                        ..Default::default()
                    },
                )
            })
            .collect();
        let st = &self.ctl.state;
        for (slot, t) in st.cfg.tenants.iter().enumerate() {
            let u = &st.tenant_usage()[slot];
            let row = rows.entry(u64::from(t.id)).or_insert_with(|| TenantSnap {
                tenant: u64::from(t.id),
                ..Default::default()
            });
            // Offline-built or registry-only tenants have no wire count;
            // fall back to the simulator's own submit tally.
            if row.submitted == 0 {
                row.submitted = u.submitted;
            }
            row.started += u.started;
            row.completed += u.completed;
            row.quota_skipped += u.quota_skipped;
            row.running_width += u64::from(u.running_width);
        }
        rows.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::ClusterSpec;
    use drom::SharingFactor;
    use sd_policy::SdPolicy;
    use slurm_sim::{IdealModel, SlurmConfig};
    use std::sync::mpsc;

    fn spawn_engine(mode: ClockMode) -> (Sender<Command>, std::thread::JoinHandle<SimResult>) {
        let mut spec = ClusterSpec::ricc();
        spec.nodes = 8;
        let state = SimState::new_online(
            spec,
            SlurmConfig::default(),
            Box::new(IdealModel),
            SharingFactor::HALF,
        );
        let engine = Engine::new(state, Box::new(SdPolicy::default()), mode);
        let (tx, rx) = mpsc::channel();
        let h = std::thread::spawn(move || engine.run(rx));
        (tx, h)
    }

    fn submit(tx: &Sender<Command>, procs: u64, run: u64, at: u64) -> Result<SubmitAck, EngineError> {
        let (rtx, rrx) = mpsc::channel();
        tx.send(Command::Submit {
            req: SubmitRequest {
                procs,
                req_time: run * 2,
                run_time: run,
                submit: Some(at),
                malleable: None,
                trace_id: None,
                tenant: None,
                project: None,
            },
            reply: rtx,
        })
        .unwrap();
        rrx.recv().unwrap()
    }

    fn drain(tx: &Sender<Command>) -> u64 {
        let (rtx, rrx) = mpsc::channel();
        tx.send(Command::Drain { reply: rtx }).unwrap();
        rrx.recv().unwrap().unwrap()
    }

    fn shutdown(tx: &Sender<Command>) -> SimResult {
        let (rtx, rrx) = mpsc::channel();
        tx.send(Command::Shutdown { reply: rtx }).unwrap();
        rrx.recv().unwrap()
    }

    #[test]
    fn virtual_session_submits_drains_and_reports() {
        let (tx, h) = spawn_engine(ClockMode::Virtual);
        for i in 0..5u64 {
            let ack = submit(&tx, 8, 100, i * 10).unwrap();
            assert_eq!(ack.id, i + 1);
        }
        drain(&tx);
        let res = shutdown(&tx);
        assert_eq!(res.outcomes.len(), 5);
        assert_eq!(res.leftover_pending, 0);
        let joined = h.join().unwrap();
        assert_eq!(joined, res, "shutdown snapshot equals the final result");
    }

    #[test]
    fn clock_rejects_already_simulated_instants() {
        let (tx, h) = spawn_engine(ClockMode::Virtual);
        submit(&tx, 8, 50, 100).unwrap();
        let (rtx, rrx) = mpsc::channel();
        tx.send(Command::Advance { to: 500, reply: rtx }).unwrap();
        assert_eq!(rrx.recv().unwrap().unwrap(), 500);
        // The job ran 100→150, so batches exist at 100 and 150: instants up
        // to and *including* 150 are closed (a new event there would split
        // an offline batch in two)…
        for at in [0, 100, 149, 150] {
            let err = submit(&tx, 8, 50, at).unwrap_err();
            assert!(matches!(err, EngineError::Clock(_)), "t={at}: {err:?}");
        }
        // …while unprocessed instants stay open, even below the advance
        // floor — offline would order those batches identically.
        submit(&tx, 8, 50, 151).unwrap();
        submit(&tx, 8, 50, 300).unwrap();
        submit(&tx, 8, 50, 500).unwrap();
        drain(&tx);
        let res = shutdown(&tx);
        h.join().unwrap();
        assert_eq!(res.outcomes.len(), 4);
    }

    #[test]
    fn cancel_covers_pending_and_running_but_not_done() {
        let (tx, h) = spawn_engine(ClockMode::Virtual);
        // Two machine-filling jobs: the second stays queued at t=0.
        submit(&tx, 64, 1000, 0).unwrap();
        submit(&tx, 64, 1000, 0).unwrap();
        let (rtx, rrx) = mpsc::channel();
        tx.send(Command::Advance { to: 0, reply: rtx }).unwrap();
        rrx.recv().unwrap().unwrap();

        let cancel = |id: u64| {
            let (rtx, rrx) = mpsc::channel();
            tx.send(Command::Cancel { id, reply: rtx }).unwrap();
            rrx.recv().unwrap()
        };
        assert_eq!(cancel(2), Ok(()), "pending");
        assert_eq!(cancel(2), Err(EngineError::NotPending(2)), "already gone");
        assert_eq!(cancel(1), Ok(()), "running jobs are cancellable too");
        assert_eq!(cancel(99), Err(EngineError::NoSuchJob(99)));
        // A third job runs to completion and can no longer be cancelled.
        submit(&tx, 8, 50, 1).unwrap();
        drain(&tx);
        assert_eq!(cancel(3), Err(EngineError::NotPending(3)), "done");
        let res = shutdown(&tx);
        h.join().unwrap();
        assert_eq!(res.outcomes.len(), 1, "cancelled jobs record no outcome");
        assert_eq!(res.stats.cancelled, 2);
    }

    #[test]
    fn tenant_rate_limit_rejects_burst_and_counts() {
        let mut spec = ClusterSpec::ricc();
        spec.nodes = 8;
        let state = SimState::new_online(
            spec,
            SlurmConfig::default(),
            Box::new(IdealModel),
            SharingFactor::HALF,
        );
        // Tenant 2: one-token bucket at a negligible refill rate.
        let engine = Engine::new(state, Box::new(SdPolicy::default()), ClockMode::Virtual)
            .with_tenant_rates(&[(2, 1e-6)]);
        let (tx, rx) = mpsc::channel();
        let h = std::thread::spawn(move || engine.run(rx));

        let submit_as = |tenant: Option<u64>, at: u64| {
            let (rtx, rrx) = mpsc::channel();
            tx.send(Command::Submit {
                req: SubmitRequest {
                    procs: 8,
                    req_time: 100,
                    run_time: 50,
                    submit: Some(at),
                    malleable: None,
                    trace_id: None,
                    tenant,
                    project: None,
                },
                reply: rtx,
            })
            .unwrap();
            rrx.recv().unwrap()
        };
        submit_as(Some(2), 0).unwrap();
        assert_eq!(
            submit_as(Some(2), 1).unwrap_err(),
            EngineError::RateLimited(2),
            "burst capacity 1: the second submit is refused"
        );
        // Unlimited tenants are unaffected.
        submit_as(Some(1), 2).unwrap();
        submit_as(None, 3).unwrap();

        let (rtx, rrx) = mpsc::channel();
        tx.send(Command::Stats { reply: rtx }).unwrap();
        let snap = rrx.recv().unwrap();
        let row = |t: u64| snap.tenants.iter().find(|r| r.tenant == t).unwrap();
        assert_eq!((row(2).submitted, row(2).rate_limited), (1, 1));
        assert_eq!((row(1).submitted, row(1).rate_limited), (1, 0));
        assert_eq!(row(0).submitted, 1);
        shutdown(&tx);
        h.join().unwrap();
    }

    #[test]
    fn explain_returns_decision_chain_from_trace() {
        let mut spec = ClusterSpec::ricc();
        spec.nodes = 8;
        let state = SimState::new_online(
            spec,
            SlurmConfig::default(),
            Box::new(IdealModel),
            SharingFactor::HALF,
        );
        let ring = Arc::new(TraceRing::new(4096));
        let engine = Engine::new(state, Box::new(SdPolicy::default()), ClockMode::Virtual)
            .with_trace(ring)
            .with_histograms(Arc::new(ServeHistograms::default()));
        let (tx, rx) = mpsc::channel();
        let h = std::thread::spawn(move || engine.run(rx));
        // Job 1 fills the machine; job 2 queues behind it.
        submit(&tx, 64, 1000, 0).unwrap();
        submit(&tx, 64, 1000, 1).unwrap();
        drain(&tx);

        let explain = |id: u64| {
            let (rtx, rrx) = mpsc::channel();
            tx.send(Command::Explain { id, reply: rtx }).unwrap();
            rrx.recv().unwrap()
        };
        let v = explain(2).unwrap();
        assert!(v.tracing);
        assert_eq!(v.overwritten, 0);
        assert_eq!(v.job.id, 2);
        let kinds: Vec<&str> = v.events.iter().map(|e| e.kind.name()).collect();
        assert!(kinds.contains(&"submitted"), "{kinds:?}");
        assert!(kinds.contains(&"started"), "{kinds:?}");
        assert!(kinds.contains(&"completed"), "{kinds:?}");
        // Every event mentions the job, in ascending seq order.
        assert!(v.events.iter().all(|e| e.kind.involves(2)));
        assert!(v.events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(explain(99).is_err());
        // The pass timer observed at least one pass.
        let (rtx, rrx) = mpsc::channel();
        tx.send(Command::Stats { reply: rtx }).unwrap();
        let snap = rrx.recv().unwrap();
        assert!(snap.stats.sched_passes > 0);
        assert!(!snap.wait_hist.is_empty(), "completed jobs feed the wait histogram");
        shutdown(&tx);
        h.join().unwrap();
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "sd-serve-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    /// Durable engine over `dir` with a deliberately small checkpoint cadence
    /// so tests exercise both periodic checkpoints and log replay.
    fn recover_engine(dir: &std::path::Path) -> (Engine, WalStatus) {
        let mut spec = ClusterSpec::ricc();
        spec.nodes = 8;
        Engine::recover(
            dir,
            FsyncPolicy::Never,
            3,
            spec,
            SlurmConfig::default(),
            Box::new(IdealModel),
            SharingFactor::HALF,
            Box::new(SdPolicy::default()),
        )
        .unwrap()
    }

    fn advance(tx: &Sender<Command>, to: u64) -> u64 {
        let (rtx, rrx) = mpsc::channel();
        tx.send(Command::Advance { to, reply: rtx }).unwrap();
        rrx.recv().unwrap().unwrap()
    }

    #[test]
    fn crash_recovery_resumes_bit_identically() {
        let dir = tmp_dir("crash");
        // Session 1: accepted traffic hits the WAL, then the process
        // "crashes" — the engine is dropped without Shutdown, so no final
        // checkpoint is written.
        {
            let (engine, status) = recover_engine(&dir);
            assert!(status.recovered.is_none(), "fresh directory");
            let (tx, rx) = mpsc::channel();
            let h = std::thread::spawn(move || engine.run(rx));
            for i in 0..4u64 {
                submit(&tx, 16, 200, i * 10).unwrap();
            }
            advance(&tx, 120);
            drop(tx);
            h.join().unwrap();
        }
        // Session 2: recover and finish the run.
        let (engine, status) = recover_engine(&dir);
        assert_eq!(status.recovered, Some("clean"));
        assert!(status.records_replayed > 0, "{status:?}");
        let (tx, rx) = mpsc::channel();
        let h = std::thread::spawn(move || engine.run(rx));
        let (rtx, rrx) = mpsc::channel();
        tx.send(Command::Stats { reply: rtx }).unwrap();
        let snap = rrx.recv().unwrap();
        let wal = snap.wal.expect("durable engine exposes WAL status");
        assert_eq!(wal.records_replayed, status.records_replayed);
        assert!(wal.checkpoints_written >= 1, "recovery collapses the log");
        submit(&tx, 16, 200, 500).unwrap();
        drain(&tx);
        let recovered_result = shutdown(&tx);
        h.join().unwrap();

        // Reference: identical traffic against an engine that never crashed.
        let (tx, h) = spawn_engine(ClockMode::Virtual);
        for i in 0..4u64 {
            submit(&tx, 16, 200, i * 10).unwrap();
        }
        advance(&tx, 120);
        submit(&tx, 16, 200, 500).unwrap();
        drain(&tx);
        let reference = shutdown(&tx);
        h.join().unwrap();
        assert_eq!(recovered_result, reference, "recovery ≡ never crashed");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_wal_tail_is_discarded_without_panic() {
        let dir = tmp_dir("torn");
        {
            let (engine, _) = recover_engine(&dir);
            let (tx, rx) = mpsc::channel();
            let h = std::thread::spawn(move || engine.run(rx));
            submit(&tx, 8, 100, 0).unwrap();
            submit(&tx, 8, 100, 1).unwrap();
            drop(tx);
            h.join().unwrap();
        }
        // A torn append: half a frame of garbage at the log tail.
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("wal.log"))
            .unwrap();
        f.write_all(&[0x13, 0x37, 0xFF]).unwrap();
        drop(f);
        let (engine, status) = recover_engine(&dir);
        assert_eq!(status.recovered, Some("torn_tail"));
        assert_eq!(status.records_replayed, 2, "valid prefix fully replayed");
        let (tx, rx) = mpsc::channel();
        let h = std::thread::spawn(move || engine.run(rx));
        drain(&tx);
        let res = shutdown(&tx);
        h.join().unwrap();
        assert_eq!(res.outcomes.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn graceful_shutdown_checkpoint_collapses_log() {
        let dir = tmp_dir("grace");
        {
            let (engine, _) = recover_engine(&dir);
            let (tx, rx) = mpsc::channel();
            let h = std::thread::spawn(move || engine.run(rx));
            submit(&tx, 8, 100, 0).unwrap();
            drain(&tx);
            shutdown(&tx);
            h.join().unwrap();
        }
        let (engine, status) = recover_engine(&dir);
        assert_eq!(status.recovered, Some("clean"));
        assert_eq!(status.records_replayed, 0, "shutdown checkpoint collapsed the log");
        let (tx, rx) = mpsc::channel();
        let h = std::thread::spawn(move || engine.run(rx));
        let res = shutdown(&tx);
        h.join().unwrap();
        assert_eq!(res.outcomes.len(), 1, "completed work survives restarts");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn realtime_mode_processes_events_from_wall_clock() {
        let (tx, h) = spawn_engine(ClockMode::Realtime {
            compression: 10_000.0,
        });
        // Submit "now"; 100 sim-seconds pass in 10 ms of wall time.
        let (rtx, rrx) = mpsc::channel();
        tx.send(Command::Submit {
            req: SubmitRequest {
                procs: 8,
                req_time: 200,
                run_time: 100,
                submit: None,
                malleable: None,
                trace_id: None,
                tenant: None,
                project: None,
            },
            reply: rtx,
        })
        .unwrap();
        rrx.recv().unwrap().unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            std::thread::sleep(Duration::from_millis(20));
            let (rtx, rrx) = mpsc::channel();
            tx.send(Command::Stats { reply: rtx }).unwrap();
            let snap = rrx.recv().unwrap();
            if snap.completed == 1 {
                break;
            }
            assert!(Instant::now() < deadline, "job never completed: {snap:?}");
        }
        let res = shutdown(&tx);
        h.join().unwrap();
        assert_eq!(res.outcomes.len(), 1);
    }
}
