//! The load generator: replays a workload trace as live traffic against a
//! running `sd-serve` and reports achieved throughput, per-request latency
//! percentiles and end-state metric deltas.
//!
//! In virtual-clock mode the trace's own submit timestamps ride along with
//! each request and a final `/v1/drain` runs the simulation — so the service
//! under load produces the *same* schedule the offline simulator would,
//! while the wire, framing and scheduler-thread handoff are all exercised at
//! full speed. `--rate` throttles the wall-clock request rate instead of
//! going flat out.

use crate::client::{Client, ClientError};
use crate::json::Json;
use crate::proto::SubmitRequest;
use sched_metrics::{Histogram, Percentiles};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// What to replay and how fast.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Target submissions per wall-second (None = as fast as possible).
    pub rate: Option<f64>,
    /// Carry trace submit times (virtual mode). Off = submit "now"
    /// (realtime servers).
    pub virtual_timestamps: bool,
    /// Drain the virtual clock after the last submission.
    pub drain: bool,
    /// Shut the server down at the end and collect its final result.
    pub shutdown: bool,
    /// Submit under `N` round-robin tenant identities (job *i* goes to
    /// tenant `1 + i mod N`). `None` = carry each record's own SWF
    /// user/group, so a replay reproduces the offline tenant mix exactly.
    pub tenants: Option<u32>,
    /// Transport-failure retries per request (capped exponential backoff
    /// with jitter, see [`Client::with_retries`]). 0 = fail fast.
    pub max_retries: u32,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            rate: None,
            virtual_timestamps: true,
            drain: true,
            shutdown: false,
            tenants: None,
            max_retries: 0,
        }
    }
}

/// Per-tenant slice of a loadgen run.
#[derive(Debug)]
pub struct TenantLoad {
    pub tenant: u64,
    pub submitted: u64,
    pub rejected: u64,
    /// Submissions refused with 429 (per-tenant rate limit).
    pub rate_limited: u64,
    /// Achieved submissions per wall-second for this tenant alone.
    pub achieved_rate: f64,
    pub latency_ms: Option<Percentiles>,
}

/// Everything one loadgen run measured.
#[derive(Debug)]
pub struct LoadgenReport {
    pub submitted: u64,
    pub rejected: u64,
    /// Submissions refused with 429 (per-tenant rate limit), also counted
    /// in `rejected`.
    pub rate_limited: u64,
    /// Transport retries the client performed (reconnect + backoff).
    pub retries: u64,
    /// Per-tenant breakdown, ascending by tenant id (one entry even for
    /// untenanted runs, where everything lands on tenant 0).
    pub per_tenant: Vec<TenantLoad>,
    /// Wall seconds spent in the submission phase.
    pub submit_wall_s: f64,
    /// Achieved submissions per wall-second.
    pub achieved_rate: f64,
    /// Per-request latency percentiles, milliseconds — interpolated from
    /// [`latency_hist`](Self::latency_hist) buckets, not a sorted vector.
    pub latency_ms: Option<Percentiles>,
    /// The full submit→first-state-change latency histogram (milliseconds)
    /// behind those percentiles; `--latency-out` writes its CSV.
    pub latency_hist: Histogram,
    /// Wall seconds the final drain took (0 when not draining).
    pub drain_wall_s: f64,
    /// `/v1/stats` before the run and after the drain.
    pub stats_before: Json,
    pub stats_after: Json,
    /// Prometheus exposition captured after the drain (before shutdown).
    pub metrics_text: String,
    /// The server's final result (only with `shutdown`).
    pub final_result: Option<slurm_sim::SimResult>,
}

impl LoadgenReport {
    fn stat(v: &Json, key: &str) -> f64 {
        v.get(key).and_then(Json::as_f64).unwrap_or(0.0)
    }

    /// End-state delta of one `/v1/stats` numeric field (after − before).
    pub fn delta(&self, key: &str) -> f64 {
        Self::stat(&self.stats_after, key) - Self::stat(&self.stats_before, key)
    }

    /// Human-readable summary table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "submitted        {}", self.submitted);
        let _ = writeln!(out, "rejected         {}", self.rejected);
        if self.rate_limited > 0 {
            let _ = writeln!(out, "rate limited     {}", self.rate_limited);
        }
        if self.retries > 0 {
            let _ = writeln!(out, "transport retries {}", self.retries);
        }
        let _ = writeln!(out, "submit wall      {:.3} s", self.submit_wall_s);
        let _ = writeln!(out, "achieved rate    {:.0} submits/s", self.achieved_rate);
        if let Some(p) = &self.latency_ms {
            let _ = writeln!(
                out,
                "latency (ms)     p50 {:.3}  p90 {:.3}  p99 {:.3}  max {:.3}",
                p.p50, p.p90, p.p99, p.max
            );
        }
        if self.per_tenant.len() > 1 {
            for t in &self.per_tenant {
                let lat = t
                    .latency_ms
                    .as_ref()
                    .map(|p| format!("p50 {:.3}  p99 {:.3}", p.p50, p.p99))
                    .unwrap_or_default();
                let _ = writeln!(
                    out,
                    "tenant {:<4} ok {:<6} limited {:<4} {:.0}/s  {}",
                    t.tenant, t.submitted, t.rate_limited, t.achieved_rate, lat
                );
            }
        }
        if self.drain_wall_s > 0.0 {
            let _ = writeln!(out, "drain wall       {:.3} s", self.drain_wall_s);
        }
        let _ = writeln!(out, "Δ completed      {:+.0}", self.delta("completed"));
        let _ = writeln!(out, "Δ malleable      {:+.0}", self.delta("started_malleable"));
        let _ = writeln!(out, "Δ sched passes   {:+.0}", self.delta("sched_passes"));
        let _ = writeln!(out, "Δ passes skipped {:+.0}", self.delta("passes_skipped"));
        let _ = writeln!(out, "Δ energy (J)     {:+.3e}", self.delta("energy_joules"));
        if let Some(r) = &self.final_result {
            let _ = writeln!(
                out,
                "final            jobs {}  makespan {}  mean slowdown {:.2}",
                r.outcomes.len(),
                r.makespan,
                r.mean_slowdown()
            );
        }
        out
    }
}

/// Replays `jobs` (SWF records; `submit`/`run_time`/`procs`/`req_time` are
/// used) against the service at `addr`.
pub fn run(
    addr: SocketAddr,
    jobs: &[swf::SwfJob],
    opts: &LoadgenOptions,
) -> Result<LoadgenReport, ClientError> {
    let mut client = Client::new(addr).with_retries(opts.max_retries);
    client.health()?;
    let stats_before = client.stats()?;

    struct TenantAcc {
        submitted: u64,
        rejected: u64,
        rate_limited: u64,
        latency: Histogram,
    }
    impl Default for TenantAcc {
        fn default() -> Self {
            TenantAcc {
                submitted: 0,
                rejected: 0,
                rate_limited: 0,
                latency: Histogram::latency_ms(),
            }
        }
    }
    let mut latency = Histogram::latency_ms();
    let mut by_tenant: std::collections::BTreeMap<u64, TenantAcc> = Default::default();
    let mut submitted = 0u64;
    let mut rejected = 0u64;
    let mut rate_limited = 0u64;
    let pacing = opts.rate.map(|r| Duration::from_secs_f64(1.0 / r.max(1e-9)));
    let t0 = Instant::now();
    for (i, j) in jobs.iter().enumerate() {
        if let Some(gap) = pacing {
            let due = t0 + gap.mul_f64(i as f64);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
        }
        let (tenant, project) = match opts.tenants {
            Some(n) => (1 + (i as u64) % u64::from(n.max(1)), 0),
            None => (j.user.max(0) as u64, j.group.max(0) as u64),
        };
        let req = SubmitRequest {
            procs: j.procs().unwrap_or(1),
            req_time: j.requested_time().unwrap_or(0),
            run_time: j.runtime().unwrap_or(0),
            submit: if opts.virtual_timestamps {
                Some(j.submit.max(0) as u64)
            } else {
                None
            },
            malleable: None,
            // The record's own id seeds the malleability draw, so a
            // fraction < 1 server draws the same population an offline
            // build of this trace would.
            trace_id: Some(j.job_id),
            tenant: Some(tenant),
            project: Some(project),
        };
        let r0 = Instant::now();
        let acc = by_tenant.entry(tenant).or_default();
        match client.submit(&req) {
            Ok(_) => {
                submitted += 1;
                acc.submitted += 1;
            }
            Err(ClientError::Status(429, _)) => {
                rejected += 1;
                rate_limited += 1;
                acc.rejected += 1;
                acc.rate_limited += 1;
            }
            Err(ClientError::Status(_, _)) => {
                rejected += 1;
                acc.rejected += 1;
            }
            Err(e) => return Err(e),
        }
        let ms = r0.elapsed().as_secs_f64() * 1e3;
        latency.observe(ms);
        acc.latency.observe(ms);
    }
    let submit_wall_s = t0.elapsed().as_secs_f64();
    let per_tenant = by_tenant
        .into_iter()
        .map(|(tenant, a)| TenantLoad {
            tenant,
            submitted: a.submitted,
            rejected: a.rejected,
            rate_limited: a.rate_limited,
            achieved_rate: if submit_wall_s > 0.0 {
                a.submitted as f64 / submit_wall_s
            } else {
                0.0
            },
            latency_ms: a.latency.percentiles(),
        })
        .collect();

    let mut drain_wall_s = 0.0;
    if opts.drain {
        let d0 = Instant::now();
        client.drain()?;
        drain_wall_s = d0.elapsed().as_secs_f64();
    }
    let stats_after = client.stats()?;
    let metrics_text = client.metrics()?;
    let final_result = if opts.shutdown {
        Some(client.shutdown()?)
    } else {
        None
    };

    Ok(LoadgenReport {
        submitted,
        rejected,
        rate_limited,
        retries: client.retries(),
        per_tenant,
        submit_wall_s,
        achieved_rate: if submit_wall_s > 0.0 {
            submitted as f64 / submit_wall_s
        } else {
            0.0
        },
        latency_ms: latency.percentiles(),
        latency_hist: latency,
        drain_wall_s,
        stats_before,
        stats_after,
        metrics_text,
        final_result,
    })
}

impl LoadgenReport {
    /// The value of one Prometheus sample in the captured `/metrics` text.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics_text.lines().find_map(|l| {
            let rest = l.strip_prefix(name)?;
            let rest = rest.strip_prefix(' ')?;
            rest.trim().parse().ok()
        })
    }
}
