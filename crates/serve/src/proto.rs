//! The wire protocol: typed request/response bodies and their JSON
//! encodings. Everything round-trips (`decode(encode(x)) == x`), including
//! a full [`SimResult`] — floats survive bit-for-bit via the shortest-
//! roundtrip rendering in [`crate::json`].

use crate::json::{Json, JsonError};
use cluster::JobId;
use simkit::SimTime;
use slurm_sim::{JobOutcome, SimResult, SimStats};

/// A job submission, as posted to `POST /v1/jobs`.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// Processors requested (rounded up to whole nodes by the simulator).
    pub procs: u64,
    /// Requested wall limit (seconds).
    pub req_time: u64,
    /// True runtime on a static allocation (seconds) — the simulated
    /// "payload" of the job.
    pub run_time: u64,
    /// Virtual submit instant; `None` = "now" (required to be ≥ the clock).
    pub submit: Option<u64>,
    /// Force rigid (`false`) or malleable (`true`); `None` = the server's
    /// configured malleable-fraction draw.
    pub malleable: Option<bool>,
    /// Trace identity of the record, used as the seed of the per-job
    /// malleability draw (matching what an offline build of the same trace
    /// would draw). `None` = the dense id the server assigns. Irrelevant
    /// when `malleable` is explicit or the configured fraction is 1.
    pub trace_id: Option<u64>,
    /// Submitting tenant id (maps to the SWF `user` field); `None` = 0,
    /// the untenanted default.
    pub tenant: Option<u64>,
    /// Project/accounting group under the tenant (SWF `group`); `None` = 0.
    pub project: Option<u64>,
}

impl SubmitRequest {
    pub fn encode(&self) -> Json {
        Json::obj()
            .set("procs", self.procs)
            .set("req_time", self.req_time)
            .set("run_time", self.run_time)
            .set("submit", self.submit)
            .set("malleable", self.malleable)
            .set("trace_id", self.trace_id)
            .set("tenant", self.tenant)
            .set("project", self.project)
    }

    pub fn decode(v: &Json) -> Result<SubmitRequest, String> {
        let field = |k: &str| v.get(k).ok_or_else(|| format!("missing field `{k}`"));
        let num = |k: &str| {
            field(k)?
                .as_u64()
                .ok_or_else(|| format!("`{k}` must be a non-negative integer"))
        };
        let opt_num = |k: &str| match v.get(k) {
            None | Some(Json::Null) => Ok(None),
            Some(x) => x
                .as_u64()
                .map(Some)
                .ok_or_else(|| format!("`{k}` must be a non-negative integer")),
        };
        let opt_bool = |k: &str| match v.get(k) {
            None | Some(Json::Null) => Ok(None),
            Some(x) => x
                .as_bool()
                .map(Some)
                .ok_or_else(|| format!("`{k}` must be a boolean")),
        };
        let r = SubmitRequest {
            procs: num("procs")?,
            req_time: num("req_time")?,
            run_time: num("run_time")?,
            submit: opt_num("submit")?,
            malleable: opt_bool("malleable")?,
            trace_id: opt_num("trace_id")?,
            tenant: opt_num("tenant")?,
            project: opt_num("project")?,
        };
        if r.procs == 0 {
            return Err("`procs` must be at least 1".into());
        }
        if r.run_time == 0 {
            return Err("`run_time` must be at least 1".into());
        }
        Ok(r)
    }

    /// The SWF record this submission denotes, under a given id and with the
    /// effective submit instant filled in.
    pub fn to_swf(&self, id: u64, submit: u64) -> swf::SwfJob {
        let mut j = swf::SwfJob::for_simulation(
            id,
            submit,
            self.run_time,
            self.procs,
            self.req_time.max(self.run_time),
        );
        j.user = self.tenant.unwrap_or(0) as i64;
        j.group = self.project.unwrap_or(0) as i64;
        j
    }
}

// ---------------------------------------------------------------------
// SimResult over the wire
// ---------------------------------------------------------------------

/// Applications cross the wire as their index in [`workload::APPS`].
fn app_index(a: workload::AppId) -> u64 {
    workload::APPS
        .iter()
        .position(|m| m.id == a)
        .expect("every AppId appears in APPS") as u64
}

fn app_from_index(i: u64) -> Result<workload::AppId, String> {
    workload::APPS
        .get(i as usize)
        .map(|m| m.id)
        .ok_or_else(|| format!("unknown app index {i}"))
}

fn encode_outcome(o: &JobOutcome) -> Json {
    Json::obj()
        .set("id", o.id.0)
        .set("submit", o.submit.secs())
        .set("start", o.start.secs())
        .set("end", o.end.secs())
        .set("nodes", o.nodes)
        .set("procs", o.procs)
        .set("req_time", o.req_time)
        .set("static_runtime", o.static_runtime)
        .set("malleable_backfilled", o.malleable_backfilled)
        .set("was_mate", o.was_mate)
        .set("app", o.app.map(app_index))
        .set("tenant", u64::from(o.tenant))
}

fn decode_outcome(v: &Json) -> Result<JobOutcome, String> {
    let num = |k: &str| {
        v.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("outcome field `{k}` missing or not an integer"))
    };
    let boolean = |k: &str| {
        v.get(k)
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("outcome field `{k}` missing or not a boolean"))
    };
    Ok(JobOutcome {
        id: JobId(num("id")?),
        submit: SimTime(num("submit")?),
        start: SimTime(num("start")?),
        end: SimTime(num("end")?),
        nodes: num("nodes")? as u32,
        procs: num("procs")?,
        req_time: num("req_time")?,
        static_runtime: num("static_runtime")?,
        malleable_backfilled: boolean("malleable_backfilled")?,
        was_mate: boolean("was_mate")?,
        tenant: num("tenant")? as u32,
        app: match v.get("app") {
            None | Some(Json::Null) => None,
            Some(x) => Some(app_from_index(
                x.as_u64().ok_or("outcome field `app` not an integer")?,
            )?),
        },
    })
}

fn encode_stats(s: &SimStats) -> Json {
    Json::obj()
        .set("started_static", s.started_static)
        .set("started_malleable", s.started_malleable)
        .set("unique_mates", s.unique_mates)
        .set("shrink_events", s.shrink_events)
        .set("expand_events", s.expand_events)
        .set("relocations", s.relocations)
        .set("sched_passes", s.sched_passes)
        .set("passes_skipped", s.passes_skipped)
        .set("cancelled", s.cancelled)
        .set("quota_skipped", s.quota_skipped)
        .set("events_dispatched", s.events_dispatched)
        .set("peak_profile_len", s.peak_profile_len)
}

fn decode_stats(v: &Json) -> Result<SimStats, String> {
    let num = |k: &str| {
        v.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("stats field `{k}` missing or not an integer"))
    };
    Ok(SimStats {
        started_static: num("started_static")?,
        started_malleable: num("started_malleable")?,
        unique_mates: num("unique_mates")?,
        shrink_events: num("shrink_events")?,
        expand_events: num("expand_events")?,
        relocations: num("relocations")?,
        sched_passes: num("sched_passes")?,
        passes_skipped: num("passes_skipped")?,
        cancelled: num("cancelled")?,
        quota_skipped: num("quota_skipped")?,
        events_dispatched: num("events_dispatched")?,
        peak_profile_len: num("peak_profile_len")? as usize,
    })
}

/// Scheduler labels cross the wire as strings; map the known ones back to
/// their `&'static str` identities so a decoded result compares equal.
fn scheduler_label(name: &str) -> &'static str {
    match name {
        "sd-policy" => "sd-policy",
        "static-backfill" => "static-backfill",
        "scheduler" => "scheduler",
        _ => "remote",
    }
}

/// Full result encoding (`GET /v1/result`, the shutdown response).
pub fn encode_result(r: &SimResult) -> Json {
    Json::obj()
        .set("scheduler", r.scheduler)
        .set("first_submit", r.first_submit.secs())
        .set("last_end", r.last_end.secs())
        .set("makespan", r.makespan)
        // Exact bits: shortest-roundtrip Display → parse restores the f64.
        .set("energy_joules", r.energy_joules)
        .set("leftover_pending", r.leftover_pending)
        .set("leftover_running", r.leftover_running)
        .set("stats", encode_stats(&r.stats))
        .set(
            "outcomes",
            r.outcomes.iter().map(encode_outcome).collect::<Vec<_>>(),
        )
}

pub fn decode_result(v: &Json) -> Result<SimResult, String> {
    let num = |k: &str| {
        v.get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("result field `{k}` missing or not an integer"))
    };
    let outcomes = v
        .get("outcomes")
        .and_then(Json::as_arr)
        .ok_or("result field `outcomes` missing")?
        .iter()
        .map(decode_outcome)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SimResult {
        scheduler: scheduler_label(
            v.get("scheduler")
                .and_then(Json::as_str)
                .ok_or("result field `scheduler` missing")?,
        ),
        first_submit: SimTime(num("first_submit")?),
        last_end: SimTime(num("last_end")?),
        makespan: num("makespan")?,
        energy_joules: v
            .get("energy_joules")
            .and_then(Json::as_f64)
            .ok_or("result field `energy_joules` missing")?,
        leftover_pending: num("leftover_pending")? as usize,
        leftover_running: num("leftover_running")? as usize,
        stats: decode_stats(v.get("stats").ok_or("result field `stats` missing")?)?,
        outcomes,
    })
}

/// Parses a JSON request body into a value, with a protocol-level error
/// string on failure.
pub fn body_json(body: &[u8]) -> Result<Json, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    Json::parse(text).map_err(|e: JsonError| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_roundtrip() {
        let r = SubmitRequest {
            procs: 16,
            req_time: 3600,
            run_time: 1800,
            submit: Some(42),
            malleable: Some(false),
            trace_id: Some(9001),
            tenant: Some(7),
            project: Some(2),
        };
        assert_eq!(SubmitRequest::decode(&r.encode()).unwrap(), r);
        let r2 = SubmitRequest {
            submit: None,
            malleable: None,
            trace_id: None,
            tenant: None,
            project: None,
            ..r
        };
        assert_eq!(SubmitRequest::decode(&r2.encode()).unwrap(), r2);
    }

    #[test]
    fn submit_validation() {
        let bad = Json::obj().set("procs", 0u64).set("req_time", 10u64).set("run_time", 5u64);
        assert!(SubmitRequest::decode(&bad).is_err());
        let missing = Json::obj().set("procs", 4u64);
        assert!(SubmitRequest::decode(&missing).unwrap_err().contains("req_time"));
        let wrong_type = Json::obj()
            .set("procs", "four")
            .set("req_time", 10u64)
            .set("run_time", 5u64);
        assert!(SubmitRequest::decode(&wrong_type).is_err());
    }

    #[test]
    fn result_roundtrips_bit_for_bit() {
        let r = SimResult {
            scheduler: "sd-policy",
            outcomes: vec![JobOutcome {
                id: JobId(3),
                submit: SimTime(10),
                start: SimTime(20),
                end: SimTime(500),
                nodes: 2,
                procs: 16,
                req_time: 600,
                static_runtime: 480,
                malleable_backfilled: true,
                was_mate: false,
                app: Some(workload::AppId::CoreNeuron),
                tenant: 7,
            }],
            stats: SimStats {
                started_static: 5,
                started_malleable: 1,
                sched_passes: 9,
                passes_skipped: 4,
                peak_profile_len: 17,
                ..Default::default()
            },
            first_submit: SimTime(10),
            last_end: SimTime(500),
            makespan: 490,
            energy_joules: 0.1 + 0.2, // deliberately non-representable
            leftover_pending: 0,
            leftover_running: 0,
        };
        let text = encode_result(&r).render();
        let back = decode_result(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }
}
