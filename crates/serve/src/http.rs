//! Minimal HTTP/1.1 framing over `std::io` — no TLS, no chunked bodies, no
//! dependencies. Exactly the subset the service and its load generator
//! speak: request line + headers + `Content-Length` body, persistent
//! connections by default.
//!
//! Both directions are symmetrical and pure over `BufRead`/byte buffers, so
//! the property tests round-trip `render → parse` without sockets, and the
//! malformed-input corpus drives [`read_request`] directly. Malformed input
//! is *always* a typed error (mapped to a 4xx by the server), never a panic.

use std::io::{BufRead, Write};

/// Upper bound on the request line + headers (bytes).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body (bytes).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Uppercase token (`GET`, `POST`, `DELETE`, …) — verbatim.
    pub method: String,
    /// Path component, always starting with `/`; the query is split off.
    pub path: String,
    /// Raw query string without the `?` (empty when absent).
    pub query: String,
    /// Header name/value pairs; names lower-cased, order preserved.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    pub fn new(method: &str, path: &str) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            query: String::new(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// First value of a header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == want)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to drop the connection after this exchange.
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Serialises the request (client side / round-trip tests). Emits
    /// `Content-Length` for the body; other headers verbatim.
    pub fn render(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.body.len());
        let target = if self.query.is_empty() {
            self.path.clone()
        } else {
            format!("{}?{}", self.path, self.query)
        };
        out.extend_from_slice(format!("{} {} HTTP/1.1\r\n", self.method, target).as_bytes());
        for (k, v) in &self.headers {
            out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
        }
        if !self.body.is_empty() || self.method == "POST" {
            out.extend_from_slice(format!("content-length: {}\r\n", self.body.len()).as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

/// Why a request could not be read.
#[derive(Debug, Clone, PartialEq)]
pub enum HttpError {
    /// The peer closed (or timed out) before a complete request arrived.
    /// Clean close *between* requests is `Ok(None)`, not this.
    Disconnected,
    /// Syntactically invalid input → respond 400.
    Malformed(String),
    /// Head or body exceeds the hard limits → respond 413.
    TooLarge(&'static str),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Disconnected => write!(f, "peer disconnected mid-request"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge(what) => write!(f, "{what} exceeds the configured limit"),
        }
    }
}

impl std::error::Error for HttpError {}

fn malformed(msg: impl Into<String>) -> HttpError {
    HttpError::Malformed(msg.into())
}

/// Reads one line terminated by `\n` (tolerating a preceding `\r`), bounded
/// by the remaining head budget. `Ok(None)` = clean EOF before any byte.
fn read_line(
    r: &mut impl BufRead,
    budget: &mut usize,
    first: bool,
) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() && first {
                    return Ok(None);
                }
                return Err(HttpError::Disconnected);
            }
            Ok(_) => {}
            Err(_) => return Err(HttpError::Disconnected),
        }
        if *budget == 0 {
            return Err(HttpError::TooLarge("request head"));
        }
        *budget -= 1;
        if byte[0] == b'\n' {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            let s = String::from_utf8(line).map_err(|_| malformed("non-UTF-8 header line"))?;
            return Ok(Some(s));
        }
        line.push(byte[0]);
    }
}

/// Reads one request from the stream. `Ok(None)` means the peer closed
/// cleanly between requests (keep-alive teardown).
pub fn read_request(r: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let Some(request_line) = read_line(r, &mut budget, true)? else {
        return Ok(None);
    };
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default();
    let target = parts.next().ok_or_else(|| malformed("request line needs a target"))?;
    let version = parts.next().ok_or_else(|| malformed("request line needs a version"))?;
    if parts.next().is_some() {
        return Err(malformed("request line has extra fields"));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(malformed("method must be an uppercase token"));
    }
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(malformed("unsupported HTTP version"));
    }
    if !target.starts_with('/') {
        return Err(malformed("target must be an absolute path"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_line(r, &mut budget, false)?.expect("EOF mapped to Disconnected");
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| malformed("header line without a colon"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(malformed("invalid header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut req = Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body: Vec::new(),
    };
    if req
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(malformed("chunked transfer encoding is not supported"));
    }
    if let Some(len) = req.header("content-length") {
        let len: usize = len
            .parse()
            .map_err(|_| malformed("unparsable content-length"))?;
        if len > MAX_BODY_BYTES {
            return Err(HttpError::TooLarge("request body"));
        }
        let mut body = vec![0u8; len];
        r.read_exact(&mut body).map_err(|_| HttpError::Disconnected)?;
        req.body = body;
    }
    Ok(Some(req))
}

/// One response. The server always sends `Content-Length` (no chunking).
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
}

impl Response {
    pub fn json(status: u16, v: &crate::json::Json) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: v.render().into_bytes(),
        }
    }

    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            body: body.into().into_bytes(),
        }
    }

    /// Standard error body: `{"error": "..."}`.
    pub fn error(status: u16, msg: &str) -> Response {
        Response::json(status, &crate::json::Json::obj().set("error", msg))
    }

    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            201 => "Created",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Status",
        }
    }

    /// Writes the full response; `close` adds `Connection: close`.
    pub fn write_to(&self, w: &mut impl Write, close: bool) -> std::io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n{}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
            if close { "connection: close\r\n" } else { "" },
        )?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Client side: reads one response (status + headers + sized body).
pub fn read_response(r: &mut impl BufRead) -> Result<(u16, Vec<u8>), HttpError> {
    let mut budget = MAX_HEAD_BYTES;
    let status_line = read_line(r, &mut budget, false)?.expect("EOF is Disconnected");
    let mut parts = status_line.split(' ');
    if !matches!(parts.next(), Some("HTTP/1.1" | "HTTP/1.0")) {
        return Err(malformed("bad status line"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| malformed("bad status code"))?;
    let mut content_length = 0usize;
    loop {
        let line = read_line(r, &mut budget, false)?.expect("EOF is Disconnected");
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| malformed("bad content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge("response body"));
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body).map_err(|_| HttpError::Disconnected)?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Option<Request>, HttpError> {
        read_request(&mut Cursor::new(bytes.to_vec()))
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(b"POST /v1/jobs?dry=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert_eq!(req.query, "dry=1");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn render_parse_roundtrip() {
        let mut req = Request::new("POST", "/v1/clock/advance");
        req.query = "a=1&b=2".into();
        req.headers.push(("host".into(), "127.0.0.1".into()));
        req.body = br#"{"to":100}"#.to_vec();
        let back = parse(&req.render()).unwrap().unwrap();
        assert_eq!(back.method, req.method);
        assert_eq!(back.path, req.path);
        assert_eq!(back.query, req.query);
        assert_eq!(back.body, req.body);
        assert_eq!(back.header("host"), Some("127.0.0.1"));
    }

    #[test]
    fn clean_eof_is_none_midstream_is_error() {
        assert_eq!(parse(b"").unwrap(), None);
        assert_eq!(parse(b"GET /x HT").unwrap_err(), HttpError::Disconnected);
        assert_eq!(
            parse(b"POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc").unwrap_err(),
            HttpError::Disconnected
        );
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        for bad in [
            b"get /x HTTP/1.1\r\n\r\n".as_slice(),
            b"GET x HTTP/1.1\r\n\r\n",
            b"GET /x HTTP/2\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbroken header\r\n\r\n",
            b"POST /x HTTP/1.1\r\ncontent-length: nope\r\n\r\n",
            b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
            b"\xff\xfe\r\n\r\n",
        ] {
            assert!(
                matches!(parse(bad), Err(HttpError::Malformed(_))),
                "{:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn oversized_head_and_body_rejected() {
        let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_HEAD_BYTES));
        assert_eq!(
            parse(huge.as_bytes()).unwrap_err(),
            HttpError::TooLarge("request head")
        );
        let body = format!(
            "POST /x HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert_eq!(
            parse(body.as_bytes()).unwrap_err(),
            HttpError::TooLarge("request body")
        );
    }

    #[test]
    fn response_roundtrips_through_client_reader() {
        let resp = Response::json(200, &crate::json::Json::obj().set("ok", true));
        let mut wire = Vec::new();
        resp.write_to(&mut wire, false).unwrap();
        let (status, body) = read_response(&mut Cursor::new(wire)).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, br#"{"ok":true}"#);
    }

    #[test]
    fn bare_lf_line_endings_tolerated() {
        let req = parse(b"GET /healthz HTTP/1.1\nhost: y\n\n").unwrap().unwrap();
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("y"));
    }
}
