//! # sd-serve — the scheduler as an online service
//!
//! Wraps `slurm-sim`'s controller + the SD-Policy behind a dependency-free
//! HTTP/1.1 + JSON API over `std::net` (DESIGN.md §10):
//!
//! * [`http`] / [`json`] / [`proto`] — the wire: framing, values, typed
//!   request/response encodings (all round-trip, floats bit-for-bit),
//! * [`engine`] — the single scheduler thread with two clock modes sharing
//!   one code path: a **deterministic virtual clock** (a scripted session is
//!   bit-identical to the offline replay — `tests/serve_equivalence.rs`) and
//!   a **real-time mode** with a configurable time-compression factor,
//! * [`server`] — bounded `std::thread::scope` worker pool feeding the
//!   engine through channels (single-writer hot path, no locks),
//! * [`metrics`] — Prometheus text exposition of the `sched_metrics`-style
//!   aggregates plus the PR 4 pass/skip counters,
//! * [`client`] / [`loadgen`] — the loopback client and the `sd-loadgen`
//!   traffic replayer (throughput, latency percentiles, metric deltas),
//! * [`durable`] / [`signals`] / [`soak`] — crash tolerance (DESIGN.md §14):
//!   WAL + checkpoint codecs over `sd-durable`, the SIGTERM/SIGINT latch,
//!   and the `sd-loadgen --soak` kill -9 chaos harness that proves
//!   recovery ≡ never crashed end to end.

pub mod client;
pub mod durable;
pub mod engine;
pub mod http;
pub mod json;
pub mod loadgen;
pub mod metrics;
pub mod proto;
pub mod server;
pub mod signals;
pub mod soak;

pub use client::{Client, ClientError};
pub use engine::{ClockMode, Command, Engine, EngineError, ExplainView, Snapshot, WalStatus};
pub use sd_durable::FsyncPolicy;
pub use json::Json;
pub use metrics::ServeHistograms;
pub use proto::SubmitRequest;
pub use server::{run, ServerConfig};
