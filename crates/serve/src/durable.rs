//! Wire formats for crash tolerance (DESIGN.md §14): the WAL record payload
//! (one state-mutating API command) and the engine-level checkpoint payload
//! (service counters + the canonical [`slurm_sim::SimState`] image).
//!
//! `sd-durable` owns framing, checksums and the recovery protocol; this
//! module owns what the framed bytes *mean*. Both encodings are tiny
//! hand-rolled little-endian formats — same dependency-free stance as the
//! rest of the crate.

use crate::proto::SubmitRequest;

/// One durably logged command. Only deterministic state mutations are
/// logged: reads, and submissions refused by the (wall-clock) rate limiter,
/// never reach the WAL.
#[derive(Debug, Clone, PartialEq)]
pub enum WalCmd {
    Submit(SubmitRequest),
    Cancel(u64),
    Advance(u64),
    Drain,
}

const TAG_SUBMIT: u8 = 0;
const TAG_CANCEL: u8 = 1;
const TAG_ADVANCE: u8 = 2;
const TAG_DRAIN: u8 = 3;

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_opt(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        None => buf.push(0),
        Some(x) => {
            buf.push(1);
            put_u64(buf, x);
        }
    }
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.data.len() - self.pos < n {
            return Err(format!("record truncated at offset {}", self.pos));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn opt(&mut self) -> Result<Option<u64>, String> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            b => Err(format!("bad option byte {b}")),
        }
    }
    fn done(&self) -> Result<(), String> {
        if self.pos != self.data.len() {
            return Err("trailing bytes in record".into());
        }
        Ok(())
    }
}

impl WalCmd {
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        match self {
            WalCmd::Submit(r) => {
                buf.push(TAG_SUBMIT);
                put_u64(&mut buf, r.procs);
                put_u64(&mut buf, r.req_time);
                put_u64(&mut buf, r.run_time);
                put_opt(&mut buf, r.submit);
                match r.malleable {
                    None => buf.push(2),
                    Some(b) => buf.push(b as u8),
                }
                put_opt(&mut buf, r.trace_id);
                put_opt(&mut buf, r.tenant);
                put_opt(&mut buf, r.project);
            }
            WalCmd::Cancel(id) => {
                buf.push(TAG_CANCEL);
                put_u64(&mut buf, *id);
            }
            WalCmd::Advance(to) => {
                buf.push(TAG_ADVANCE);
                put_u64(&mut buf, *to);
            }
            WalCmd::Drain => buf.push(TAG_DRAIN),
        }
        buf
    }

    pub fn decode(bytes: &[u8]) -> Result<WalCmd, String> {
        let mut c = Cursor { data: bytes, pos: 0 };
        let cmd = match c.u8()? {
            TAG_SUBMIT => WalCmd::Submit(SubmitRequest {
                procs: c.u64()?,
                req_time: c.u64()?,
                run_time: c.u64()?,
                submit: c.opt()?,
                malleable: match c.u8()? {
                    0 => Some(false),
                    1 => Some(true),
                    2 => None,
                    b => return Err(format!("bad malleable byte {b}")),
                },
                trace_id: c.opt()?,
                tenant: c.opt()?,
                project: c.opt()?,
            }),
            TAG_CANCEL => WalCmd::Cancel(c.u64()?),
            TAG_ADVANCE => WalCmd::Advance(c.u64()?),
            TAG_DRAIN => WalCmd::Drain,
            t => return Err(format!("unknown WAL command tag {t}")),
        };
        c.done()?;
        Ok(cmd)
    }
}

/// Engine-level state riding on top of the simulator image in a checkpoint:
/// the virtual-clock floor, the accepted-submission counter and the per-
/// tenant wire counters (`(tenant, submitted, rate_limited)` rows).
///
/// Deliberately *not* here: the wall-clock token buckets (rate limiting
/// restarts full — a crash must never carry over throttling debt) and the
/// trace ring (diagnostics, rebuilt empty).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EngineCheckpoint {
    pub floor: u64,
    pub submitted: u64,
    pub tenant_wire: Vec<(u64, u64, u64)>,
    pub state: Vec<u8>,
}

const MAGIC: u32 = 0x5344_4543; // "SDEC"
const VERSION: u32 = 1;

impl EngineCheckpoint {
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.state.len());
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&VERSION.to_le_bytes());
        put_u64(&mut buf, self.floor);
        put_u64(&mut buf, self.submitted);
        put_u64(&mut buf, self.tenant_wire.len() as u64);
        for &(t, s, r) in &self.tenant_wire {
            put_u64(&mut buf, t);
            put_u64(&mut buf, s);
            put_u64(&mut buf, r);
        }
        put_u64(&mut buf, self.state.len() as u64);
        buf.extend_from_slice(&self.state);
        buf
    }

    pub fn decode(bytes: &[u8]) -> Result<EngineCheckpoint, String> {
        let mut c = Cursor { data: bytes, pos: 0 };
        if c.u64()? != (u64::from(VERSION) << 32 | u64::from(MAGIC)) {
            return Err("not an engine checkpoint (bad magic/version)".into());
        }
        let floor = c.u64()?;
        let submitted = c.u64()?;
        let rows = c.u64()? as usize;
        if rows > bytes.len() {
            return Err("tenant row count exceeds payload".into());
        }
        let mut tenant_wire = Vec::with_capacity(rows);
        for _ in 0..rows {
            tenant_wire.push((c.u64()?, c.u64()?, c.u64()?));
        }
        let n = c.u64()? as usize;
        let state = c.take(n)?.to_vec();
        c.done()?;
        Ok(EngineCheckpoint { floor, submitted, tenant_wire, state })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submit() -> SubmitRequest {
        SubmitRequest {
            procs: 64,
            req_time: 3600,
            run_time: 1800,
            submit: Some(42),
            malleable: None,
            trace_id: Some(7),
            tenant: Some(3),
            project: None,
        }
    }

    #[test]
    fn wal_commands_round_trip() {
        let cmds = [
            WalCmd::Submit(submit()),
            WalCmd::Submit(SubmitRequest {
                submit: None,
                malleable: Some(true),
                ..submit()
            }),
            WalCmd::Cancel(9),
            WalCmd::Advance(1_000_000),
            WalCmd::Drain,
        ];
        for cmd in cmds {
            let bytes = cmd.encode();
            assert_eq!(WalCmd::decode(&bytes).unwrap(), cmd);
        }
    }

    #[test]
    fn wal_decode_rejects_garbage() {
        assert!(WalCmd::decode(&[]).is_err());
        assert!(WalCmd::decode(&[99]).is_err());
        // Truncated submit.
        let bytes = WalCmd::Submit(submit()).encode();
        for cut in 0..bytes.len() {
            assert!(WalCmd::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage.
        let mut long = WalCmd::Drain.encode();
        long.push(0);
        assert!(WalCmd::decode(&long).is_err());
    }

    #[test]
    fn engine_checkpoint_round_trips() {
        let cp = EngineCheckpoint {
            floor: 500,
            submitted: 12,
            tenant_wire: vec![(0, 4, 0), (3, 8, 2)],
            state: vec![1, 2, 3, 4, 5],
        };
        let bytes = cp.encode();
        assert_eq!(EngineCheckpoint::decode(&bytes).unwrap(), cp);
        assert!(EngineCheckpoint::decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(EngineCheckpoint::decode(b"junk").is_err());
    }
}
