//! Kill-and-reconnect chaos harness (`sd-loadgen --soak`).
//!
//! Drives a *real* `sd-serve` subprocess with `--wal`, `kill -9`s it at
//! random points mid-traffic, restarts it from the same WAL directory,
//! resynchronises, and finally asserts that the recovered run's
//! `/v1/result` is **bit-identical** to an uninterrupted reference run of
//! the same traffic — the "recovery ≡ never crashed" contract of
//! DESIGN.md §14, checked end to end through process death.
//!
//! Exactly-once resync: job ids are dense (submission *n* gets id *n*), so
//! `jobs_total` from `/v1/stats` after a restart is precisely the number of
//! submissions that survived durably — whether the kill landed before the
//! WAL append (command lost, resubmit), after it (recovery replays it), or
//! between apply and reply (ack lost, but the job is there). The client
//! resumes from that index instead of retrying acks blindly.

use crate::client::{Client, ClientError};
use crate::json::Json;
use crate::proto::SubmitRequest;
use slurm_sim::SimResult;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// One chaos campaign.
#[derive(Debug, Clone)]
pub struct SoakOptions {
    /// `kill -9` + restart cycles before the run is allowed to finish.
    pub cycles: u32,
    /// Path of the `sd-serve` binary to spawn.
    pub server_bin: PathBuf,
    /// Extra `sd-serve` flags (cluster/policy/model…); the harness adds
    /// `--port 0` and, for the chaos runs, `--wal <dir>`.
    pub server_args: Vec<String>,
    /// WAL directory for the chaos run (wiped at start).
    pub wal_dir: PathBuf,
    /// Seed for the kill-delay jitter (reproducible campaigns).
    pub seed: u64,
    /// Target submissions per wall second during the chaos run (None = flat
    /// out). Pacing stretches the submission window so kills land
    /// mid-traffic instead of after the burst; the virtual clock makes the
    /// result independent of wall pacing.
    pub rate: Option<f64>,
}

/// What the campaign did and proved.
#[derive(Debug)]
pub struct SoakReport {
    pub cycles: u32,
    /// Submissions the reference (and recovered) run accepted.
    pub submitted: u64,
    /// Submission attempts that died with the server mid-kill and were
    /// resubmitted after resync.
    pub resubmitted: u64,
    /// Wall time of the whole campaign.
    pub wall: Duration,
    /// The two final results that were compared equal.
    pub reference: SimResult,
    pub recovered: SimResult,
}

impl SoakReport {
    pub fn render(&self) -> String {
        format!(
            "soak: {} kill -9 cycles | {} jobs | {} resubmitted after resync | {:.2}s wall\n\
             recovered /v1/result ≡ uninterrupted reference ({} outcomes, makespan {})",
            self.cycles,
            self.submitted,
            self.resubmitted,
            self.wall.as_secs_f64(),
            self.reference.outcomes.len(),
            self.reference.makespan,
        )
    }
}

/// A spawned `sd-serve` with its parsed listen address.
struct Server {
    child: Child,
    addr: SocketAddr,
}

impl Server {
    /// Spawns the server and blocks until it prints its listen line (the
    /// port is ephemeral). Recovery happens before the print, so a returned
    /// server is fully caught up.
    fn spawn(bin: &PathBuf, args: &[String]) -> Result<Server, String> {
        let mut child = Command::new(bin)
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| format!("spawn {}: {e}", bin.display()))?;
        let stdout = child.stdout.take().expect("stdout piped");
        let mut reader = std::io::BufReader::new(stdout);
        let mut line = String::new();
        use std::io::BufRead as _;
        let addr = loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => {
                    let _ = child.kill();
                    return Err("server exited before printing its address".into());
                }
                Ok(_) => {
                    if let Some(rest) = line.trim().strip_prefix("sd-serve listening on ") {
                        break rest
                            .parse()
                            .map_err(|e| format!("bad listen address {rest:?}: {e}"))?;
                    }
                }
                Err(e) => {
                    let _ = child.kill();
                    return Err(format!("reading server stdout: {e}"));
                }
            }
        };
        // Keep draining stdout in the background so the child never blocks
        // on a full pipe.
        std::thread::spawn(move || {
            let mut sink = String::new();
            while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
                sink.clear();
            }
        });
        Ok(Server { child, addr })
    }

    fn kill9(&mut self) {
        let _ = self.child.kill(); // SIGKILL on unix
        let _ = self.child.wait();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn request_for(j: &swf::SwfJob) -> SubmitRequest {
    SubmitRequest {
        procs: j.procs().unwrap_or(1),
        req_time: j.requested_time().unwrap_or(0),
        run_time: j.runtime().unwrap_or(0),
        submit: Some(j.submit.max(0) as u64),
        malleable: None,
        trace_id: Some(j.job_id),
        tenant: Some(j.user.max(0) as u64),
        project: Some(j.group.max(0) as u64),
    }
}

/// Connect-with-patience: the server may be mid-restart.
fn connect(addr: SocketAddr) -> Result<Client, ClientError> {
    let mut c = Client::new(addr).with_retries(8);
    c.health()?;
    Ok(c)
}

/// Durably applied submissions = `jobs_total` (ids are dense and the soak
/// traffic never cancels).
fn applied_jobs(client: &mut Client) -> Result<usize, ClientError> {
    let stats = client.stats()?;
    Ok(stats
        .get("jobs_total")
        .and_then(Json::as_u64)
        .unwrap_or(0) as usize)
}

/// One full uninterrupted session: submit everything, drain, fetch the
/// result, shut down cleanly.
fn reference_run(
    bin: &PathBuf,
    args: &[String],
    jobs: &[swf::SwfJob],
) -> Result<SimResult, String> {
    let mut argv = args.to_vec();
    argv.extend(["--port".into(), "0".into()]);
    let server = Server::spawn(bin, &argv)?;
    let mut client = connect(server.addr).map_err(|e| format!("reference connect: {e}"))?;
    for (i, j) in jobs.iter().enumerate() {
        client
            .submit(&request_for(j))
            .map_err(|e| format!("reference submit {i}: {e}"))?;
    }
    client.drain().map_err(|e| format!("reference drain: {e}"))?;
    let result = client.result().map_err(|e| format!("reference result: {e}"))?;
    client
        .shutdown()
        .map_err(|e| format!("reference shutdown: {e}"))?;
    Ok(result)
}

/// Runs the chaos campaign. `jobs` should be ordered by submit time (SWF
/// order); both runs submit the identical request sequence.
pub fn run(jobs: &[swf::SwfJob], opts: &SoakOptions) -> Result<SoakReport, String> {
    if jobs.is_empty() {
        return Err("soak needs a non-empty workload".into());
    }
    let t0 = Instant::now();
    let reference = reference_run(&opts.server_bin, &opts.server_args, jobs)?;

    let _ = std::fs::remove_dir_all(&opts.wal_dir);
    let mut argv = opts.server_args.to_vec();
    argv.extend([
        "--port".into(),
        "0".into(),
        "--wal".into(),
        opts.wal_dir.display().to_string(),
        // Small cadence: kills land in every phase of the checkpoint cycle.
        "--checkpoint-every".into(),
        "16".into(),
    ]);

    let mut rng = opts.seed | 1;
    let mut next_delay_ms = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        5 + rng % 46 // 5..=50 ms
    };

    let mut resubmitted = 0u64;
    let mut kills = 0u32;
    let mut next = 0usize; // next job index to submit
    'campaign: loop {
        let mut server = Server::spawn(&opts.server_bin, &argv)?;
        let mut client =
            connect(server.addr).map_err(|e| format!("soak connect (cycle {kills}): {e}"))?;
        let durable = applied_jobs(&mut client)
            .map_err(|e| format!("soak resync (cycle {kills}): {e}"))?;
        if kills > 0 {
            // Attempts past the durable count died with the server.
            resubmitted += next.saturating_sub(durable) as u64;
        }
        next = durable;

        let armed = kills < opts.cycles;
        let fuse = Instant::now() + Duration::from_millis(next_delay_ms());
        let gap = opts.rate.map(|r| Duration::from_secs_f64(1.0 / r.max(1e-9)));
        while next < jobs.len() {
            if let Some(g) = gap {
                std::thread::sleep(g);
            }
            if armed && Instant::now() >= fuse {
                server.kill9();
                kills += 1;
                // The in-flight submit (if any) may or may not have made the
                // log; the next cycle's resync decides.
                continue 'campaign;
            }
            match client.submit(&request_for(&jobs[next])) {
                Ok(_) => next += 1,
                Err(ClientError::Status(s, body)) => {
                    return Err(format!("soak submit {next}: HTTP {s}: {body}"));
                }
                Err(_) if armed => {
                    // Transport death without our kill firing yet (e.g. the
                    // kill raced the request): treat it as the cycle kill.
                    server.kill9();
                    kills += 1;
                    continue 'campaign;
                }
                Err(e) => return Err(format!("soak submit {next}: {e}")),
            }
        }
        // All submissions durable. Burn any remaining kill budget on this
        // fully-checkpointable state: kill again, restart, resync (the next
        // cycle finds every job present and falls straight through here).
        if kills < opts.cycles {
            std::thread::sleep(Duration::from_millis(next_delay_ms() / 4));
            server.kill9();
            kills += 1;
            continue 'campaign;
        }
        match client.drain() {
            Ok(_) => {}
            // The last kill can race the final submit's response; one more
            // restart recovers (Drain was never logged) and re-drains.
            Err(ClientError::Io(_)) | Err(ClientError::Protocol(_)) => {
                drop(client);
                server.kill9();
                continue 'campaign;
            }
            Err(e) => return Err(format!("soak drain: {e}")),
        }
        let recovered = client.result().map_err(|e| format!("soak result: {e}"))?;
        client.shutdown().map_err(|e| format!("soak shutdown: {e}"))?;
        if recovered != reference {
            return Err(format!(
                "recovered result diverges from the uninterrupted reference: \
                 {} vs {} outcomes, makespan {} vs {}",
                recovered.outcomes.len(),
                reference.outcomes.len(),
                recovered.makespan,
                reference.makespan,
            ));
        }
        return Ok(SoakReport {
            cycles: kills,
            submitted: jobs.len() as u64,
            resubmitted,
            wall: t0.elapsed(),
            reference,
            recovered,
        });
    }
}
