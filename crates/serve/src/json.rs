//! Dependency-free JSON: a small value model, a strict recursive-descent
//! parser and a deterministic renderer.
//!
//! Design points that matter for the service:
//!
//! * **Objects preserve insertion order** (a `Vec` of pairs, not a map), so
//!   every encoder in [`crate::proto`] renders byte-identically run to run.
//! * **Numbers are `f64` parsed with `str::parse`** and rendered with Rust's
//!   shortest-roundtrip `Display`, so `parse(render(x)) == x` bit-for-bit —
//!   the virtual-clock equivalence test moves `energy_joules` through the
//!   wire and still compares with `==`.
//! * **The parser never panics** on arbitrary bytes (fuzz corpus test); it
//!   reports a byte offset instead, and recursion is depth-limited.

use std::fmt::Write as _;

/// Maximum nesting depth accepted by [`Json::parse`].
pub const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Ordered key/value pairs; lookup is linear (wire objects are tiny).
    Obj(Vec<(String, Json)>),
}

/// Parse failure: byte offset + message. Never a panic.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    pub pos: usize,
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Empty object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a field (builder style; panics on non-objects — encoder bug).
    pub fn set(mut self, key: &str, v: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), v.into())),
            _ => unreachable!("set() on a non-object"),
        }
        self
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Non-negative integer view (exact for values below 2⁵³).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.trunc() == *v && *v <= 9.007_199_254_740_992e15 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    // ----- rendering -----

    /// Deterministic text form (insertion order, shortest-roundtrip floats,
    /// non-finite numbers as `null`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => render_num(*v, out),
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    // ----- parsing -----

    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after the JSON document"));
        }
        Ok(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map(Into::into).unwrap_or(Json::Null)
    }
}

fn render_num(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null"); // NaN/inf are not JSON
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    if self.peek() != Some(b'u') {
                                        return Err(self.err("lone high surrogate"));
                                    }
                                    self.pos += 1;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp =
                                        0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 consumed the digits
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("raw control character in string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_from {
            return Err(self.err("number has no digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_from {
                return Err(self.err("decimal point with no digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_from = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_from {
                return Err(self.err("exponent with no digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII");
        let v: f64 = text
            .parse()
            .map_err(|_| self.err(format!("unparsable number `{text}`")))?;
        if !v.is_finite() {
            return Err(self.err("number overflows f64"));
        }
        Ok(Json::Num(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(Json::parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        let v = Json::parse(r#"{"a": [1, 2], "b": {"c": false}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn renders_deterministically_and_roundtrips() {
        let v = Json::obj()
            .set("id", 7u64)
            .set("rate", 0.125)
            .set("name", "w3 \"quoted\"")
            .set("tags", vec![Json::Null, Json::Bool(true)]);
        let text = v.render();
        assert_eq!(text, r#"{"id":7,"rate":0.125,"name":"w3 \"quoted\"","tags":[null,true]}"#);
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for v in [1.0e17 + 1.0, 0.1 + 0.2, f64::MIN_POSITIVE, 123_456_789.123_456] {
            let text = Json::Num(v).render();
            assert_eq!(Json::parse(&text).unwrap().as_f64(), Some(v), "{text}");
        }
    }

    #[test]
    fn non_finite_renders_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn rejects_malformed_without_panicking() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "tru", "1.", "-", "\"\\x\"", "\"\u{1}\"",
            "01a", "{\"a\":1,}", "[]]", "nullx", "\"\\ud800\"", "1e", "--1",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(10) + &"]".repeat(10);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".to_string())
        );
    }

    #[test]
    fn u64_view_guards_range_and_fraction() {
        assert_eq!(Json::Num(5.0).as_u64(), Some(5));
        assert_eq!(Json::Num(5.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
