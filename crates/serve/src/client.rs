//! Blocking loopback client for the service — used by `sd-loadgen`, the
//! equivalence test and the CI smoke step. Keep-alive with transparent
//! one-shot reconnect, typed wrappers over the JSON protocol.

use crate::http::{self, Request};
use crate::json::Json;
use crate::proto::{self, SubmitRequest};
use slurm_sim::SimResult;
use std::io::{BufReader, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    Protocol(String),
    /// Server answered with an error status; body text included.
    Status(u16, String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Status(code, body) => write!(f, "HTTP {code}: {body}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A persistent connection to one `sd-serve` instance.
pub struct Client {
    addr: SocketAddr,
    conn: Option<BufReader<TcpStream>>,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> Result<Client, ClientError> {
        let mut c = Client { addr, conn: None };
        c.ensure()?;
        Ok(c)
    }

    fn ensure(&mut self) -> Result<&mut BufReader<TcpStream>, ClientError> {
        if self.conn.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, Duration::from_secs(5))?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(Duration::from_secs(120)))?;
            self.conn = Some(BufReader::new(stream));
        }
        Ok(self.conn.as_mut().expect("just ensured"))
    }

    fn exchange_once(&mut self, wire: &[u8]) -> Result<(u16, Vec<u8>), ClientError> {
        let reader = self.ensure()?;
        reader.get_mut().write_all(wire)?;
        reader.get_mut().flush()?;
        match http::read_response(reader) {
            Ok(r) => Ok(r),
            Err(e) => Err(ClientError::Protocol(e.to_string())),
        }
    }

    /// One request/response, reconnecting once if the pooled connection was
    /// torn down (server-side idle timeout).
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<(u16, Vec<u8>), ClientError> {
        let mut req = Request::new(method, path);
        req.headers.push(("host".into(), self.addr.to_string()));
        if let Some(v) = body {
            req.headers
                .push(("content-type".into(), "application/json".into()));
            req.body = v.render().into_bytes();
        }
        let wire = req.render();
        match self.exchange_once(&wire) {
            Ok(r) => Ok(r),
            Err(_) => {
                self.conn = None; // stale keep-alive; retry on a fresh socket
                self.exchange_once(&wire)
            }
        }
    }

    fn request_json(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<Json, ClientError> {
        let (status, bytes) = self.request(method, path, body)?;
        let text = String::from_utf8_lossy(&bytes).into_owned();
        if !(200..300).contains(&status) {
            return Err(ClientError::Status(status, text));
        }
        Json::parse(&text).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    // ----- typed endpoints -----

    pub fn health(&mut self) -> Result<(), ClientError> {
        self.request_json("GET", "/healthz", None).map(|_| ())
    }

    /// Submits a job; returns `(id, effective submit time)`.
    pub fn submit(&mut self, req: &SubmitRequest) -> Result<(u64, u64), ClientError> {
        let v = self.request_json("POST", "/v1/jobs", Some(&req.encode()))?;
        let id = v
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("submit ack without id".into()))?;
        let submit = v.get("submit").and_then(Json::as_u64).unwrap_or(0);
        Ok((id, submit))
    }

    pub fn cancel(&mut self, id: u64) -> Result<(), ClientError> {
        self.request_json("POST", &format!("/v1/jobs/{id}/cancel"), None)
            .map(|_| ())
    }

    pub fn job(&mut self, id: u64) -> Result<Json, ClientError> {
        self.request_json("GET", &format!("/v1/jobs/{id}"), None)
    }

    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.request_json("GET", "/v1/stats", None)
    }

    /// Raw Prometheus exposition text.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let (status, bytes) = self.request("GET", "/metrics", None)?;
        if status != 200 {
            return Err(ClientError::Status(status, String::from_utf8_lossy(&bytes).into()));
        }
        String::from_utf8(bytes).map_err(|_| ClientError::Protocol("metrics not UTF-8".into()))
    }

    /// Tails the decision trace from cursor `since` (≤ `limit` events).
    pub fn trace(&mut self, since: u64, limit: u64) -> Result<Json, ClientError> {
        self.request_json("GET", &format!("/v1/trace?since={since}&limit={limit}"), None)
    }

    /// Full decision history of one job.
    pub fn explain(&mut self, id: u64) -> Result<Json, ClientError> {
        self.request_json("GET", &format!("/v1/explain/{id}"), None)
    }

    /// Advances the virtual clock; returns the new clock position.
    pub fn advance(&mut self, to: u64) -> Result<u64, ClientError> {
        let v = self.request_json(
            "POST",
            "/v1/clock/advance",
            Some(&Json::obj().set("to", to)),
        )?;
        v.get("now")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("advance ack without now".into()))
    }

    /// Runs the virtual clock until the event queue drains.
    pub fn drain(&mut self) -> Result<u64, ClientError> {
        let v = self.request_json("POST", "/v1/drain", None)?;
        v.get("now")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("drain ack without now".into()))
    }

    /// Read-only result of the run so far.
    pub fn result(&mut self) -> Result<SimResult, ClientError> {
        let v = self.request_json("GET", "/v1/result", None)?;
        proto::decode_result(&v).map_err(ClientError::Protocol)
    }

    /// Stops the server; returns its final result.
    pub fn shutdown(&mut self) -> Result<SimResult, ClientError> {
        let v = self.request_json("POST", "/v1/shutdown", None)?;
        proto::decode_result(&v).map_err(ClientError::Protocol)
    }
}
