//! Blocking loopback client for the service — used by `sd-loadgen`, the
//! equivalence test and the CI smoke step. Keep-alive with transparent
//! one-shot reconnect, typed wrappers over the JSON protocol.

use crate::http::{self, Request};
use crate::json::Json;
use crate::proto::{self, SubmitRequest};
use slurm_sim::SimResult;
use std::io::{BufReader, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    Protocol(String),
    /// Server answered with an error status; body text included.
    Status(u16, String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Status(code, body) => write!(f, "HTTP {code}: {body}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A persistent connection to one `sd-serve` instance.
pub struct Client {
    addr: SocketAddr,
    conn: Option<BufReader<TcpStream>>,
    /// Transport-failure retries allowed per request (beyond the free
    /// stale-keep-alive reconnect). 0 = fail fast.
    max_retries: u32,
    retries: u64,
    /// xorshift state for backoff jitter (decorrelates clients hammering a
    /// restarting server).
    jitter: u64,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> Result<Client, ClientError> {
        let mut c = Client::new(addr);
        c.ensure()?;
        Ok(c)
    }

    /// A client that has not connected yet — the first request will. Useful
    /// with [`with_retries`](Client::with_retries) when the server may not
    /// be up yet.
    pub fn new(addr: SocketAddr) -> Client {
        Client {
            addr,
            conn: None,
            max_retries: 0,
            retries: 0,
            jitter: (u64::from(std::process::id()) << 17) ^ u64::from(addr.port()) ^ 0x9E37_79B9,
        }
    }

    /// Allows up to `n` transport-failure retries per request, with capped
    /// exponential backoff (10 ms doubling to ~1.3 s) and ±50% jitter.
    /// Only connection-level failures are retried; an HTTP error status is
    /// an answer, not a failure.
    pub fn with_retries(mut self, n: u32) -> Client {
        self.max_retries = n;
        self
    }

    /// Transport retries performed so far (all requests).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    fn backoff(&mut self, attempt: u32) -> Duration {
        let base_ms = 10u64 << attempt.min(7); // 10ms .. 1.28s
        // xorshift64 → jitter factor in [0.5, 1.5).
        self.jitter ^= self.jitter << 13;
        self.jitter ^= self.jitter >> 7;
        self.jitter ^= self.jitter << 17;
        let frac = (self.jitter % 1000) as f64 / 1000.0;
        Duration::from_secs_f64(base_ms as f64 * 1e-3 * (0.5 + frac))
    }

    fn ensure(&mut self) -> Result<&mut BufReader<TcpStream>, ClientError> {
        if self.conn.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, Duration::from_secs(5))?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(Duration::from_secs(120)))?;
            self.conn = Some(BufReader::new(stream));
        }
        Ok(self.conn.as_mut().expect("just ensured"))
    }

    fn exchange_once(&mut self, wire: &[u8]) -> Result<(u16, Vec<u8>), ClientError> {
        let reader = self.ensure()?;
        reader.get_mut().write_all(wire)?;
        reader.get_mut().flush()?;
        match http::read_response(reader) {
            Ok(r) => Ok(r),
            Err(e) => Err(ClientError::Protocol(e.to_string())),
        }
    }

    /// One request/response, reconnecting once if the pooled connection was
    /// torn down (server-side idle timeout), then retrying with backoff up
    /// to the [`with_retries`](Client::with_retries) budget.
    ///
    /// Caution: a retried *mutation* may be applied twice if the server
    /// crashed after applying but before answering. Callers that need
    /// exactly-once (the soak harness) must resync from server state
    /// instead of blindly retrying submissions.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<(u16, Vec<u8>), ClientError> {
        let mut req = Request::new(method, path);
        req.headers.push(("host".into(), self.addr.to_string()));
        if let Some(v) = body {
            req.headers
                .push(("content-type".into(), "application/json".into()));
            req.body = v.render().into_bytes();
        }
        let wire = req.render();
        // A failure on a pooled connection gets one immediate free retry on
        // a fresh socket — that is the ordinary server-side idle timeout,
        // not an outage.
        let mut free_retry = self.conn.is_some();
        let mut attempt = 0u32;
        loop {
            match self.exchange_once(&wire) {
                Ok(r) => return Ok(r),
                Err(e) => {
                    self.conn = None;
                    if free_retry {
                        free_retry = false;
                        continue;
                    }
                    if attempt >= self.max_retries {
                        return Err(e);
                    }
                    attempt += 1;
                    self.retries += 1;
                    std::thread::sleep(self.backoff(attempt - 1));
                }
            }
        }
    }

    fn request_json(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&Json>,
    ) -> Result<Json, ClientError> {
        let (status, bytes) = self.request(method, path, body)?;
        let text = String::from_utf8_lossy(&bytes).into_owned();
        if !(200..300).contains(&status) {
            return Err(ClientError::Status(status, text));
        }
        Json::parse(&text).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    // ----- typed endpoints -----

    pub fn health(&mut self) -> Result<(), ClientError> {
        self.request_json("GET", "/healthz", None).map(|_| ())
    }

    /// Submits a job; returns `(id, effective submit time)`.
    pub fn submit(&mut self, req: &SubmitRequest) -> Result<(u64, u64), ClientError> {
        let v = self.request_json("POST", "/v1/jobs", Some(&req.encode()))?;
        let id = v
            .get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("submit ack without id".into()))?;
        let submit = v.get("submit").and_then(Json::as_u64).unwrap_or(0);
        Ok((id, submit))
    }

    pub fn cancel(&mut self, id: u64) -> Result<(), ClientError> {
        self.request_json("POST", &format!("/v1/jobs/{id}/cancel"), None)
            .map(|_| ())
    }

    pub fn job(&mut self, id: u64) -> Result<Json, ClientError> {
        self.request_json("GET", &format!("/v1/jobs/{id}"), None)
    }

    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.request_json("GET", "/v1/stats", None)
    }

    /// Raw Prometheus exposition text.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let (status, bytes) = self.request("GET", "/metrics", None)?;
        if status != 200 {
            return Err(ClientError::Status(status, String::from_utf8_lossy(&bytes).into()));
        }
        String::from_utf8(bytes).map_err(|_| ClientError::Protocol("metrics not UTF-8".into()))
    }

    /// Tails the decision trace from cursor `since` (≤ `limit` events).
    pub fn trace(&mut self, since: u64, limit: u64) -> Result<Json, ClientError> {
        self.request_json("GET", &format!("/v1/trace?since={since}&limit={limit}"), None)
    }

    /// Full decision history of one job.
    pub fn explain(&mut self, id: u64) -> Result<Json, ClientError> {
        self.request_json("GET", &format!("/v1/explain/{id}"), None)
    }

    /// Tails the structured log ring from cursor `since` (≤ `limit`
    /// records); `level` caps verbosity, `target` filters by subsystem.
    pub fn logs(
        &mut self,
        since: u64,
        limit: u64,
        level: Option<&str>,
        target: Option<&str>,
    ) -> Result<Json, ClientError> {
        let mut path = format!("/v1/logs?since={since}&limit={limit}");
        if let Some(l) = level {
            path.push_str(&format!("&level={l}"));
        }
        if let Some(t) = target {
            path.push_str(&format!("&target={t}"));
        }
        self.request_json("GET", &path, None)
    }

    /// Current SLO evaluations (404 → `Status` error when none declared).
    pub fn slo(&mut self) -> Result<Json, ClientError> {
        self.request_json("GET", "/v1/slo", None)
    }

    /// Collapsed-stack profile over a `seconds`-long window (flamegraph
    /// input; blocks for the window).
    pub fn profile(&mut self, seconds: u64) -> Result<String, ClientError> {
        let (status, bytes) = self.request("GET", &format!("/v1/profile?seconds={seconds}"), None)?;
        if status != 200 {
            return Err(ClientError::Status(status, String::from_utf8_lossy(&bytes).into()));
        }
        String::from_utf8(bytes).map_err(|_| ClientError::Protocol("profile not UTF-8".into()))
    }

    /// Advances the virtual clock; returns the new clock position.
    pub fn advance(&mut self, to: u64) -> Result<u64, ClientError> {
        let v = self.request_json(
            "POST",
            "/v1/clock/advance",
            Some(&Json::obj().set("to", to)),
        )?;
        v.get("now")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("advance ack without now".into()))
    }

    /// Runs the virtual clock until the event queue drains.
    pub fn drain(&mut self) -> Result<u64, ClientError> {
        let v = self.request_json("POST", "/v1/drain", None)?;
        v.get("now")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("drain ack without now".into()))
    }

    /// Read-only result of the run so far.
    pub fn result(&mut self) -> Result<SimResult, ClientError> {
        let v = self.request_json("GET", "/v1/result", None)?;
        proto::decode_result(&v).map_err(ClientError::Protocol)
    }

    /// Stops the server; returns its final result.
    pub fn shutdown(&mut self) -> Result<SimResult, ClientError> {
        let v = self.request_json("POST", "/v1/shutdown", None)?;
        proto::decode_result(&v).map_err(ClientError::Protocol)
    }
}
