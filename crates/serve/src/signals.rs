//! Std-only POSIX signal latch for graceful shutdown.
//!
//! `install` registers a handler for SIGTERM and SIGINT that does the only
//! async-signal-safe thing possible: set a global flag. The server's signal
//! watcher (`ServerConfig::signal_stop`) polls the latch and converts it
//! into an ordinary engine `Shutdown` command — in-flight HTTP commands
//! drain (the engine is strictly sequential), a final checkpoint lands when
//! a WAL is attached, and the process exits 0.
//!
//! No dependency on `libc`: the two syscalls needed (`signal`, `raise`) are
//! declared directly. On non-unix targets the latch exists but `install`
//! is a no-op.

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" fn on_signal(_sig: i32) {
    TRIGGERED.store(true, Ordering::SeqCst);
}

/// Routes SIGTERM and SIGINT into the latch. Idempotent.
#[cfg(unix)]
pub fn install() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler = on_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

#[cfg(not(unix))]
pub fn install() {}

/// True once any installed signal has fired. Sticky.
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::SeqCst)
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    #[test]
    fn sigterm_sets_the_latch() {
        extern "C" {
            fn raise(sig: i32) -> i32;
        }
        install();
        // With the handler installed, raising SIGTERM must not kill the
        // test process — it must only set the latch.
        unsafe {
            raise(SIGTERM);
        }
        assert!(triggered());
    }
}
