//! The HTTP server: a bounded `std::thread::scope` worker pool in front of
//! the single scheduler thread.
//!
//! Concurrency shape (DESIGN.md §10):
//!
//! ```text
//!   acceptor ──sync_channel(bounded)──▶ worker × N ──mpsc──▶ engine (1)
//! ```
//!
//! Workers parse HTTP, translate to [`Command`]s and block on a per-request
//! reply channel; the engine executes commands strictly sequentially, so the
//! simulator state has exactly one writer and no locks. Back-pressure is
//! structural: the connection channel is bounded, and each worker pipelines
//! at most one in-flight command.

use crate::engine::{ClockMode, Command, Engine, EngineError, JobView, Snapshot};
use crate::http::{self, HttpError, Request, Response};
use crate::json::Json;
use crate::metrics::{HttpCounters, ServeHistograms, DURATION_BOUNDS_S};
use crate::proto::{self, SubmitRequest};
use sd_obs::{good_within, SloKind, SloSpec, SloStatus, SloTracker};
use slurm_sim::{FieldVal, SimResult, TraceEvent, TraceRing};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Server configuration (the engine is built by the caller).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// HTTP worker threads (the scheduler thread is extra).
    pub workers: usize,
    /// Decision-trace ring backing `/v1/trace` — share the same `Arc` the
    /// engine was built with (`Engine::with_trace`).
    pub trace: Option<Arc<TraceRing>>,
    /// Wall-clock histograms for `/metrics` — share with
    /// `Engine::with_histograms` so pass durations land in the same place.
    pub hists: Arc<ServeHistograms>,
    /// Watch the process signal latch ([`crate::signals`]): on SIGTERM or
    /// SIGINT, drain in-flight commands, shut the engine down cleanly
    /// (final checkpoint included when a WAL is attached) and return the
    /// final result as if a client had posted `/v1/shutdown`. The caller
    /// must also run [`crate::signals::install`].
    pub signal_stop: bool,
    /// Declared service-level objectives. Non-empty spawns the burn-rate
    /// sampler thread and enables `GET /v1/slo` plus the SLO gauges on
    /// `/metrics`.
    pub slos: Vec<SloSpec>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            trace: None,
            hists: Arc::default(),
            signal_stop: false,
            slos: Vec::new(),
        }
    }
}

struct Shared {
    cmd_tx: Sender<Command>,
    counters: HttpCounters,
    stop: AtomicBool,
    final_result: Mutex<Option<SimResult>>,
    addr: std::net::SocketAddr,
    trace: Option<Arc<TraceRing>>,
    hists: Arc<ServeHistograms>,
    /// Latest burn-rate evaluation, refreshed by the SLO sampler thread;
    /// empty when no SLOs are declared.
    slo_statuses: Mutex<Vec<SloStatus>>,
}

/// Runs the service until a client posts `/v1/shutdown` (or the listener
/// dies). Blocks the calling thread; returns the final [`SimResult`] as the
/// engine saw it at shutdown.
pub fn run(
    engine: Engine,
    listener: TcpListener,
    cfg: ServerConfig,
) -> std::io::Result<SimResult> {
    let addr = listener.local_addr()?;
    let (cmd_tx, cmd_rx) = mpsc::channel::<Command>();
    let workers = cfg.workers.max(1);
    let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(workers * 2);
    let conn_rx = Mutex::new(conn_rx);
    let shared = Shared {
        cmd_tx,
        counters: HttpCounters::default(),
        stop: AtomicBool::new(false),
        final_result: Mutex::new(None),
        addr,
        trace: cfg.trace.clone(),
        hists: cfg.hists.clone(),
        slo_statuses: Mutex::new(Vec::new()),
    };

    std::thread::scope(|s| {
        s.spawn(|| engine.run(cmd_rx));
        for _ in 0..workers {
            s.spawn(|| worker_loop(&conn_rx, &shared));
        }
        if cfg.signal_stop {
            s.spawn(|| signal_watcher(&shared));
        }
        if !cfg.slos.is_empty() {
            let slos = cfg.slos.clone();
            s.spawn(|| slo_sampler(slos, &shared));
        }
        // Acceptor: this thread. Unblocked at shutdown by a self-connection.
        // Transient accept errors (ECONNABORTED from a reset handshake,
        // EMFILE under fd pressure) must not kill the daemon: back off and
        // retry, giving up only after a long unbroken error run.
        let mut consecutive_errors = 0u32;
        loop {
            match listener.accept() {
                Ok((conn, _)) => {
                    consecutive_errors = 0;
                    if shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                    if conn_tx.send(conn).is_err() {
                        break;
                    }
                }
                Err(_) if shared.stop.load(Ordering::SeqCst) => break,
                Err(_) => {
                    consecutive_errors += 1;
                    if consecutive_errors > 100 {
                        break; // the listener is genuinely dead
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
        drop(conn_tx); // workers drain and exit
        if !shared.stop.load(Ordering::SeqCst) {
            // The listener died without a client shutdown. The engine would
            // otherwise block forever in recv() (its Sender lives in
            // `shared`, which outlives the scope) — poke it loose with a
            // synthetic shutdown whose reply nobody reads.
            let (tx, _rx) = mpsc::channel();
            let _ = shared.cmd_tx.send(Command::Shutdown { reply: tx });
        }
    });

    shared
        .final_result
        .into_inner()
        .expect("final-result mutex poisoned")
        .ok_or_else(|| std::io::Error::other("listener died before a shutdown request"))
}

/// Polls the process signal latch; on SIGTERM/SIGINT performs the same
/// shutdown a client's `POST /v1/shutdown` would. The engine executes
/// commands strictly sequentially, so the `Shutdown` enqueued here drains
/// everything already accepted before the final snapshot (and, with a WAL,
/// the final checkpoint) is taken. Exits when the server stops for any
/// reason, so the scope always joins.
fn signal_watcher(shared: &Shared) {
    while !crate::signals::triggered() {
        if shared.stop.load(Ordering::SeqCst) {
            return; // the server is already shutting down normally
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    sd_obs::log_event!(Info, "serve", "termination signal received; draining and shutting down");
    let (rtx, rrx) = mpsc::channel();
    if shared.cmd_tx.send(Command::Shutdown { reply: rtx }).is_ok() {
        // A disconnect means a concurrent client shutdown beat us to the
        // engine and our command was dropped unprocessed — fine either way.
        if let Ok(res) = rrx.recv() {
            let mut slot = shared
                .final_result
                .lock()
                .expect("final-result mutex poisoned");
            if slot.is_none() {
                *slot = Some(res);
            }
        }
    }
    finish_shutdown(shared);
}

/// Burn-rate sampler: once per wall second, feeds each tracker the current
/// cumulative good/total counters for its kind and publishes the evaluated
/// statuses. Availability and pass duration read lock-free atomics; the
/// wait quantile needs the engine's wait histogram, one read-only `Stats`
/// round-trip per tick. Exits when the server stops or the engine is gone.
fn slo_sampler(specs: Vec<SloSpec>, shared: &Shared) {
    let mut trackers: Vec<SloTracker> = specs.into_iter().map(SloTracker::new).collect();
    let needs_snapshot = trackers
        .iter()
        .any(|t| t.spec().kind == SloKind::WaitQuantile);
    let start = Instant::now();
    loop {
        for _ in 0..4 {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(250));
        }
        let snap = if needs_snapshot {
            match call(shared, |reply| Command::Stats { reply }) {
                Ok(s) => Some(s),
                Err(_) => return, // engine gone
            }
        } else {
            None
        };
        let t = start.elapsed().as_secs();
        for tracker in &mut trackers {
            let (good, total) = match tracker.spec().kind {
                SloKind::Availability => {
                    let ok = shared.counters.submit_ok.load(Ordering::Relaxed);
                    let refused = shared.counters.submit_refused.load(Ordering::Relaxed);
                    (ok, ok + refused)
                }
                SloKind::PassQuantile => good_within(
                    &DURATION_BOUNDS_S,
                    &shared.hists.pass_seconds.counts(),
                    tracker.spec().threshold,
                ),
                SloKind::WaitQuantile => {
                    let h = &snap.as_ref().expect("snapshot fetched above").wait_hist;
                    good_within(h.bounds(), h.counts(), tracker.spec().threshold)
                }
            };
            tracker.record(t, good, total);
        }
        let statuses: Vec<SloStatus> = trackers.iter().map(|t| t.status()).collect();
        for s in &statuses {
            if s.breached {
                sd_obs::log_event!(Warn, "slo", "objective breached";
                    slo = s.name, budget = s.budget_remaining, burn_fast = s.burn_fast);
            }
        }
        *shared.slo_statuses.lock().expect("slo mutex poisoned") = statuses;
    }
}

fn worker_loop(conn_rx: &Mutex<mpsc::Receiver<TcpStream>>, shared: &Shared) {
    loop {
        let conn = {
            let rx = conn_rx.lock().expect("connection channel poisoned");
            rx.recv()
        };
        match conn {
            Ok(c) => serve_connection(c, shared),
            Err(_) => return, // acceptor gone
        }
    }
}

fn serve_connection(conn: TcpStream, shared: &Shared) {
    let _ = conn.set_nodelay(true);
    // Short read timeout: the idle wait below ticks on it, so an idle
    // keep-alive connection is dropped after a quiet period (workers cannot
    // be pinned forever by a silent peer) AND a shutdown releases blocked
    // workers within one tick instead of one full idle period.
    const IDLE_TICK: Duration = Duration::from_millis(500);
    const IDLE_TICKS_MAX: u32 = 60; // ≈30 s quiet → hang up
    let _ = conn.set_read_timeout(Some(IDLE_TICK));
    let Ok(write_half) = conn.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut reader = BufReader::new(conn);
    loop {
        // Wait for the next request head between requests, watching the
        // stop flag. Timeouts *inside* a request still map to Disconnected.
        let mut idle = 0u32;
        loop {
            use std::io::BufRead as _;
            match reader.fill_buf() {
                Ok([]) => return,  // clean close between requests
                Ok(_) => break,    // bytes waiting: parse a request
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if shared.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    idle += 1;
                    if idle >= IDLE_TICKS_MAX {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
        match http::read_request(&mut reader) {
            Ok(None) => return,
            Ok(Some(req)) => {
                let close = req.wants_close() || shared.stop.load(Ordering::SeqCst);
                let t0 = Instant::now();
                let resp = route(&req, shared);
                shared.hists.request_seconds.observe(t0.elapsed().as_secs_f64());
                shared.counters.count_status(resp.status);
                let is_shutdown = req.method == "POST" && req.path == "/v1/shutdown";
                if resp.write_to(&mut write_half, close).is_err() {
                    return;
                }
                if is_shutdown && resp.status == 200 {
                    finish_shutdown(shared);
                    return;
                }
                if close {
                    return;
                }
            }
            Err(HttpError::Disconnected) => return,
            Err(e) => {
                // Malformed input never kills the worker: answer 4xx, close.
                let status = match e {
                    HttpError::TooLarge(_) => 413,
                    _ => 400,
                };
                let resp = Response::error(status, &e.to_string());
                shared.counters.count_status(resp.status);
                let _ = resp.write_to(&mut write_half, true);
                return;
            }
        }
    }
}

/// After the shutdown response is on the wire: raise the stop flag and poke
/// the acceptor loose with a throwaway connection to our own socket.
fn finish_shutdown(shared: &Shared) {
    shared.stop.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_secs(1));
}

/// One round-trip to the engine.
fn call<T>(shared: &Shared, build: impl FnOnce(Sender<T>) -> Command) -> Result<T, Response> {
    let (tx, rx) = mpsc::channel();
    shared
        .cmd_tx
        .send(build(tx))
        .map_err(|_| Response::error(503, "scheduler is shutting down"))?;
    rx.recv()
        .map_err(|_| Response::error(503, "scheduler is shutting down"))
}

fn engine_error(e: EngineError) -> Response {
    let status = match &e {
        EngineError::Clock(_) | EngineError::WrongMode(_) => 409,
        EngineError::Rejected(_) => 400,
        EngineError::NoSuchJob(_) => 404,
        EngineError::NotPending(_) => 409,
        EngineError::RateLimited(_) => 429,
    };
    Response::error(status, &e.to_string())
}

fn route(req: &Request, shared: &Shared) -> Response {
    match route_inner(req, shared) {
        Ok(r) | Err(r) => r,
    }
}

fn route_inner(req: &Request, shared: &Shared) -> Result<Response, Response> {
    let path = req.path.as_str();
    let method = req.method.as_str();
    match (method, path) {
        ("GET", "/healthz") => Ok(Response::json(200, &Json::obj().set("ok", true))),
        ("GET", "/metrics") => {
            let snap = call(shared, |reply| Command::Stats { reply })?;
            let slos = shared
                .slo_statuses
                .lock()
                .expect("slo mutex poisoned")
                .clone();
            Ok(Response::text(
                200,
                crate::metrics::render(&snap, &shared.counters, &shared.hists, &slos),
            ))
        }
        ("GET", "/v1/trace") => {
            // Tail the ring lock-free right here — no engine round-trip, so
            // trace reads never queue behind scheduling work.
            let Some(ring) = &shared.trace else {
                return Err(Response::error(
                    404,
                    "tracing is not enabled (start the server with --trace)",
                ));
            };
            let since = query_u64(req, "since")?.unwrap_or(0);
            let limit = query_u64(req, "limit")?.unwrap_or(1_000).min(10_000) as usize;
            let tail = ring.read_since(since, limit);
            let events: Vec<Json> = tail.events.iter().map(event_json).collect();
            Ok(Response::json(
                200,
                &Json::obj()
                    .set("next", tail.next)
                    .set("dropped", tail.dropped)
                    .set("pushed", ring.pushed())
                    .set("capacity", ring.capacity() as u64)
                    .set("events", events),
            ))
        }
        ("GET", "/v1/logs") => {
            // Tail the global log ring lock-free — like /v1/trace, log reads
            // never queue behind scheduling work.
            let since = query_u64(req, "since")?.unwrap_or(0);
            let limit = query_u64(req, "limit")?.unwrap_or(1_000).min(10_000) as usize;
            let level = match query_str(req, "level") {
                None => None,
                Some(s) => Some(sd_obs::Level::parse(&s).ok_or_else(|| {
                    Response::error(400, "`level` must be error|warn|info|debug|trace")
                })?),
            };
            let target = query_str(req, "target");
            let tail = sd_obs::read_since(since, limit);
            let records: Vec<Json> = tail
                .records
                .iter()
                .filter(|r| level.is_none_or(|l| r.level <= l))
                .filter(|r| target.as_deref().is_none_or(|t| r.target == t))
                .map(log_record_json)
                .collect();
            Ok(Response::json(
                200,
                &Json::obj()
                    .set("next", tail.next)
                    .set("dropped", tail.dropped)
                    .set("head", sd_obs::ring_head())
                    .set("records", records),
            ))
        }
        ("GET", "/v1/slo") => {
            let statuses = shared
                .slo_statuses
                .lock()
                .expect("slo mutex poisoned")
                .clone();
            if statuses.is_empty() {
                return Err(Response::error(
                    404,
                    "no SLOs declared (start the server with --slo)",
                ));
            }
            let items: Vec<Json> = statuses.iter().map(slo_json).collect();
            Ok(Response::json(200, &Json::obj().set("slos", items)))
        }
        ("GET", "/v1/profile") => {
            // Windowed continuous profiling: snapshot the per-function
            // timing counters, arm the probes for `seconds`, diff, and
            // render Brendan-Gregg collapsed stacks. Blocks this worker for
            // the window — bounded, and the pool has more.
            let seconds = query_u64(req, "seconds")?.unwrap_or(1).clamp(1, 30);
            let before = slurm_sim::timing::report();
            slurm_sim::timing::arm();
            std::thread::sleep(Duration::from_secs(seconds));
            slurm_sim::timing::disarm();
            let after = slurm_sim::timing::report();
            let window = slurm_sim::timing::delta(&before, &after);
            // A quiet window (no passes ran) falls back to the cumulative
            // totals so the profile is never empty once traffic has flowed.
            let rows = if window.iter().all(|r| r.count == 0) { after } else { window };
            let stacks: Vec<sd_obs::StackSample> = slurm_sim::timing::stack_rows(&rows)
                .into_iter()
                .map(|(frames, v)| sd_obs::StackSample::new(frames, v))
                .collect();
            Ok(Response::text(200, sd_obs::collapsed(&stacks)))
        }
        ("GET", "/v1/stats") => {
            let snap = call(shared, |reply| Command::Stats { reply })?;
            Ok(Response::json(200, &snapshot_json(&snap)))
        }
        ("GET", "/v1/cluster") => {
            let snap = call(shared, |reply| Command::Stats { reply })?;
            Ok(Response::json(
                200,
                &Json::obj()
                    .set("nodes", snap.nodes)
                    .set("cores_per_node", snap.cores_per_node)
                    .set("busy_cores", snap.busy_cores)
                    .set("empty_nodes", snap.empty_nodes)
                    .set("running", snap.running),
            ))
        }
        ("GET", "/v1/queue") => {
            let (total, entries) = call(shared, |reply| Command::Queue { limit: 100, reply })?;
            let items: Vec<Json> = entries
                .iter()
                .map(|e| {
                    Json::obj()
                        .set("id", e.id)
                        .set("req_nodes", e.req_nodes)
                        .set("req_time", e.req_time)
                })
                .collect();
            Ok(Response::json(
                200,
                &Json::obj().set("pending", total).set("head", items),
            ))
        }
        ("POST", "/v1/jobs") => {
            let body = proto::body_json(&req.body).map_err(|e| Response::error(400, &e))?;
            let sub = SubmitRequest::decode(&body).map_err(|e| Response::error(400, &e))?;
            // Availability accounting: 2xx is good; 429/5xx burn the submit
            // SLO budget. Client errors (malformed bodies, clock conflicts)
            // never reach here or map to 4xx≠429 and count neither way.
            let refused = |r: Response| {
                if r.status == 429 || r.status >= 500 {
                    shared.counters.submit_refused.fetch_add(1, Ordering::Relaxed);
                }
                r
            };
            let ack = call(shared, |reply| Command::Submit { req: sub, reply })
                .map_err(&refused)?
                .map_err(|e| refused(engine_error(e)))?;
            shared.counters.submit_ok.fetch_add(1, Ordering::Relaxed);
            Ok(Response::json(
                201,
                &Json::obj().set("id", ack.id).set("submit", ack.submit),
            ))
        }
        ("POST", "/v1/clock/advance") => {
            let body = proto::body_json(&req.body).map_err(|e| Response::error(400, &e))?;
            let to = body
                .get("to")
                .and_then(Json::as_u64)
                .ok_or_else(|| Response::error(400, "`to` must be a non-negative integer"))?;
            let now = call(shared, |reply| Command::Advance { to, reply })?
                .map_err(engine_error)?;
            Ok(Response::json(200, &Json::obj().set("now", now)))
        }
        ("POST", "/v1/drain") => {
            let now = call(shared, |reply| Command::Drain { reply })?.map_err(engine_error)?;
            Ok(Response::json(200, &Json::obj().set("now", now).set("idle", true)))
        }
        ("GET", "/v1/result") => {
            let res = call(shared, |reply| Command::Result { reply })?;
            Ok(Response::json(200, &proto::encode_result(&res)))
        }
        ("POST", "/v1/shutdown") => {
            let res = call(shared, |reply| Command::Shutdown { reply })?;
            *shared
                .final_result
                .lock()
                .expect("final-result mutex poisoned") = Some(res.clone());
            Ok(Response::json(200, &proto::encode_result(&res)))
        }
        _ => {
            // /v1/jobs/{id} family.
            if let Some(rest) = path.strip_prefix("/v1/jobs/") {
                return route_job(method, rest, shared);
            }
            if let Some(rest) = path.strip_prefix("/v1/explain/") {
                if method != "GET" {
                    return Err(Response::error(405, "method not allowed for this path"));
                }
                let id: u64 = rest
                    .parse()
                    .map_err(|_| Response::error(400, "job id must be an integer"))?;
                let view = call(shared, |reply| Command::Explain { id, reply })?
                    .map_err(engine_error)?;
                let decisions: Vec<Json> = view.events.iter().map(event_json).collect();
                return Ok(Response::json(
                    200,
                    &Json::obj()
                        .set("job", job_json(&view.job))
                        .set("tracing", view.tracing)
                        .set("overwritten", view.overwritten)
                        .set("decisions", decisions),
                ));
            }
            if matches!(
                path,
                "/healthz" | "/metrics" | "/v1/stats" | "/v1/cluster" | "/v1/queue" | "/v1/jobs"
                    | "/v1/clock/advance" | "/v1/drain" | "/v1/result" | "/v1/shutdown"
                    | "/v1/trace" | "/v1/logs" | "/v1/slo" | "/v1/profile"
            ) {
                return Err(Response::error(405, "method not allowed for this path"));
            }
            Err(Response::error(404, "no such endpoint"))
        }
    }
}

/// First value of a `?key=value` query parameter parsed as u64; `Ok(None)`
/// when absent, 400 when present but malformed.
fn query_u64(req: &Request, key: &str) -> Result<Option<u64>, Response> {
    let Some(v) = req.query.split('&').find_map(|kv| {
        let (k, v) = kv.split_once('=')?;
        (k == key).then_some(v)
    }) else {
        return Ok(None);
    };
    v.parse()
        .map(Some)
        .map_err(|_| Response::error(400, &format!("`{key}` must be a non-negative integer")))
}

/// First value of a `?key=value` query parameter as a string (no decoding;
/// log targets and level names are plain tokens).
fn query_str(req: &Request, key: &str) -> Option<String> {
    req.query.split('&').find_map(|kv| {
        let (k, v) = kv.split_once('=')?;
        (k == key).then(|| v.to_string())
    })
}

/// One structured log record as a JSON object (mirrors
/// `sd_obs::LogRecord::to_json`, built on the server's own JSON tree).
fn log_record_json(r: &sd_obs::LogRecord) -> Json {
    let mut fields = Json::obj();
    for (k, v) in &r.fields {
        fields = fields.set(k.as_str(), v.as_str());
    }
    Json::obj()
        .set("seq", r.seq)
        .set("wall_us", r.wall_micros)
        .set("virt_s", r.virt_secs)
        .set("level", r.level.label())
        .set("target", r.target.as_str())
        .set("msg", r.message.as_str())
        .set("fields", fields)
        .set("truncated", r.truncated)
}

fn slo_json(s: &SloStatus) -> Json {
    Json::obj()
        .set("slo", s.name.as_str())
        .set("kind", s.kind.label())
        .set("objective", s.objective)
        .set("threshold", s.threshold)
        .set("good", s.good)
        .set("total", s.total)
        .set("bad_fraction", s.bad_fraction)
        .set("budget_remaining", s.budget_remaining)
        .set("burn_fast", s.burn_fast)
        .set("burn_slow", s.burn_slow)
        .set("fast_window", s.fast_window)
        .set("slow_window", s.slow_window)
        .set("breached", s.breached)
}

/// One trace event as a JSON object (`seq`, `t`, `event`, then the typed
/// payload fields).
fn event_json(ev: &TraceEvent) -> Json {
    let mut o = Json::obj()
        .set("seq", ev.seq)
        .set("t", ev.t)
        .set("event", ev.kind.name());
    for (k, v) in ev.kind.fields() {
        o = match v {
            FieldVal::U64(n) => o.set(k, n),
            FieldVal::Str(s) => o.set(k, s),
        };
    }
    o
}

fn route_job(method: &str, rest: &str, shared: &Shared) -> Result<Response, Response> {
    let (id_text, action) = match rest.split_once('/') {
        Some((id, act)) => (id, Some(act)),
        None => (rest, None),
    };
    let id: u64 = id_text
        .parse()
        .map_err(|_| Response::error(400, "job id must be an integer"))?;
    match (method, action) {
        ("GET", None) => {
            let view = call(shared, |reply| Command::JobInfo { id, reply })?
                .map_err(engine_error)?;
            Ok(Response::json(200, &job_json(&view)))
        }
        ("DELETE", None) | ("POST", Some("cancel")) => {
            call(shared, |reply| Command::Cancel { id, reply })?.map_err(engine_error)?;
            Ok(Response::json(200, &Json::obj().set("cancelled", id)))
        }
        _ => Err(Response::error(405, "method not allowed for this path")),
    }
}

fn job_json(view: &JobView) -> Json {
    Json::obj()
        .set("id", view.id)
        .set("state", view.state)
        .set("submit", view.submit)
        .set("req_nodes", view.req_nodes)
        .set("req_time", view.req_time)
        .set("malleable", view.malleable)
        .set("start", view.start)
        .set("end", view.end)
        .set("cores", view.cores)
        .set("rate", view.rate.map(Json::Num))
}

fn snapshot_json(snap: &Snapshot) -> Json {
    let s = &snap.stats;
    Json::obj()
        .set("scheduler", snap.scheduler)
        .set(
            "clock",
            match snap.clock {
                ClockMode::Virtual => Json::from("virtual"),
                ClockMode::Realtime { compression } => Json::obj()
                    .set("mode", "realtime")
                    .set("compression", compression),
            },
        )
        .set("now", snap.now)
        .set("jobs_total", snap.jobs_total)
        .set("submitted", snap.submitted)
        .set("pending", snap.pending)
        .set("running", snap.running)
        .set("completed", snap.completed)
        .set("cancelled", s.cancelled)
        .set("quota_skipped", s.quota_skipped)
        .set("events_outstanding", snap.events_outstanding)
        .set("started_static", s.started_static)
        .set("started_malleable", s.started_malleable)
        .set("unique_mates", s.unique_mates)
        .set("relocations", s.relocations)
        .set("sched_passes", s.sched_passes)
        .set("passes_skipped", s.passes_skipped)
        .set("events_dispatched", s.events_dispatched)
        .set("peak_profile_len", s.peak_profile_len)
        .set("mean_slowdown", snap.mean_slowdown)
        .set("mean_response", snap.mean_response)
        .set("mean_wait", snap.mean_wait)
        .set("makespan", snap.makespan)
        .set("energy_joules", snap.energy_joules)
        .set("busy_cores", snap.busy_cores)
        .set("empty_nodes", snap.empty_nodes)
        .set("nodes", snap.nodes)
        .set(
            "tenants",
            snap.tenants
                .iter()
                .map(|t| {
                    Json::obj()
                        .set("tenant", t.tenant)
                        .set("submitted", t.submitted)
                        .set("rate_limited", t.rate_limited)
                        .set("started", t.started)
                        .set("completed", t.completed)
                        .set("quota_skipped", t.quota_skipped)
                        .set("running_width", t.running_width)
                })
                .collect::<Vec<_>>(),
        )
}
