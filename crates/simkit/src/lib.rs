//! # simkit — deterministic discrete-event simulation toolkit
//!
//! Substrate for the BSC-SLURM-simulator equivalent used by the SD-Policy
//! reproduction. Provides:
//!
//! * [`SimTime`] — integer simulation time in seconds (matching the Standard
//!   Workload Format resolution) with saturating arithmetic,
//! * [`EventQueue`] — a binary-heap event queue with stable FIFO ordering for
//!   simultaneous events, the property that makes whole-simulation runs
//!   bit-reproducible,
//! * [`DetRng`] — seedable, forkable deterministic random streams,
//! * [`stats`] — streaming (Welford) accumulators and histograms used by the
//!   metric collectors.
//!
//! The engine is intentionally minimal: schedulers own their run loop and use
//! the queue directly, which keeps borrow patterns simple and the hot loop
//! free of dynamic dispatch.

pub mod engine;
pub mod event;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::Engine;
pub use event::{EventQueue, ScheduledEvent};
pub use rng::DetRng;
pub use stats::{Histogram, Welford};
pub use time::{SimTime, DAY, HOUR, MINUTE};
