//! Minimal simulation driver.
//!
//! The SLURM controller owns its own loop for borrow-pattern reasons, but
//! examples, tests and small models use [`Engine`]: a clock plus an event
//! queue with a run-until-quiescent driver.

use crate::event::{EventQueue, ScheduledEvent};
use crate::time::SimTime;

/// A simulation clock married to an event queue.
///
/// `E` is the caller's event payload. The engine enforces the fundamental
/// discrete-event invariant: the clock never moves backwards, and every event
/// is delivered at exactly its scheduled instant.
#[derive(Debug)]
pub struct Engine<E> {
    now: SimTime,
    queue: EventQueue<E>,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
        }
    }

    /// Current simulation instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Access to the underlying queue (to push or cancel events).
    pub fn queue(&mut self) -> &mut EventQueue<E> {
        &mut self.queue
    }

    /// Schedules `payload` `delay` seconds from now.
    pub fn schedule_in(&mut self, delay: u64, payload: E) -> crate::event::EventToken {
        self.queue.push(self.now.after(delay), payload)
    }

    /// Schedules `payload` at an absolute instant (must not be in the past).
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> crate::event::EventToken {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(at, payload)
    }

    /// Pops the next event and advances the clock to it.
    pub fn step(&mut self) -> Option<ScheduledEvent<E>> {
        let ev = self.queue.pop()?;
        debug_assert!(ev.time >= self.now, "event queue went backwards");
        self.now = ev.time;
        Some(ev)
    }

    /// Runs `handler` for every event until the queue is empty or `handler`
    /// returns `false`. The handler may schedule further events.
    pub fn run<F>(&mut self, mut handler: F)
    where
        F: FnMut(&mut Engine<E>, ScheduledEvent<E>) -> bool,
    {
        while let Some(ev) = self.step() {
            if !handler(self, ev) {
                break;
            }
        }
    }
}

/// Convenience free function: run a closed-loop simulation from a set of
/// initial events, returning the instant of the final event.
pub fn run_to_completion<E, F>(initial: Vec<(SimTime, E)>, mut handler: F) -> SimTime
where
    F: FnMut(SimTime, E, &mut Vec<(SimTime, E)>),
{
    let mut queue = EventQueue::new();
    for (t, e) in initial {
        queue.push(t, e);
    }
    let mut now = SimTime::ZERO;
    let mut newly = Vec::new();
    while let Some(ev) = queue.pop() {
        now = ev.time;
        handler(now, ev.payload, &mut newly);
        for (t, e) in newly.drain(..) {
            debug_assert!(t >= now);
            queue.push(t, e);
        }
    }
    now
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_events() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule_in(10, 1);
        eng.schedule_in(5, 2);
        let e = eng.step().unwrap();
        assert_eq!((e.payload, eng.now()), (2, SimTime(5)));
        let e = eng.step().unwrap();
        assert_eq!((e.payload, eng.now()), (1, SimTime(10)));
        assert!(eng.step().is_none());
    }

    #[test]
    fn handler_can_chain_events() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule_at(SimTime(1), 0);
        let mut seen = Vec::new();
        eng.run(|eng, ev| {
            seen.push((ev.time.secs(), ev.payload));
            if ev.payload < 3 {
                eng.schedule_in(2, ev.payload + 1);
            }
            true
        });
        assert_eq!(seen, vec![(1, 0), (3, 1), (5, 2), (7, 3)]);
    }

    #[test]
    fn run_stops_when_handler_returns_false() {
        let mut eng: Engine<u32> = Engine::new();
        for i in 0..10 {
            eng.schedule_in(i, i as u32);
        }
        let mut count = 0;
        eng.run(|_, _| {
            count += 1;
            count < 3
        });
        assert_eq!(count, 3);
    }

    #[test]
    fn run_to_completion_returns_last_instant() {
        let end = run_to_completion(vec![(SimTime(3), "x")], |now, _ev, out| {
            if now.secs() < 9 {
                out.push((now.after(3), "x"));
            }
        });
        assert_eq!(end, SimTime(9));
    }
}
