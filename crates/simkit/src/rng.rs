//! Deterministic random streams.
//!
//! Every stochastic component (arrival process, size/runtime sampling,
//! application assignment …) takes its own forked stream so that adding a new
//! consumer never perturbs the draws seen by existing ones — a requirement
//! for comparing policies on *identical* workloads.
//!
//! The generator is a self-contained xoshiro256++ seeded through SplitMix64,
//! so the crate has no external dependencies and the streams are stable
//! across platforms and toolchain upgrades.

/// SplitMix64 step, used to expand seeds and derive independent sub-seeds.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic, forkable random number generator.
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
    seed: u64,
}

impl DetRng {
    /// Creates a stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // Expand the 64-bit seed into xoshiro256++ state via SplitMix64, the
        // initialisation recommended by the xoshiro authors.
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s, seed }
    }

    /// The seed this stream was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent stream identified by `stream`.
    ///
    /// Forking is a pure function of `(seed, stream)`: the parent's position
    /// is not consumed, so forks can be taken in any order.
    pub fn fork(&self, stream: u64) -> DetRng {
        let mut s = self.seed ^ 0xA076_1D64_78BD_642F;
        let a = splitmix64(&mut s);
        let mut t = stream.wrapping_add(0x2545_F491_4F6C_DD1D);
        let b = splitmix64(&mut t);
        DetRng::new(a ^ b.rotate_left(17))
    }

    /// Next 64 bits of the stream (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Next 32 bits of the stream.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 high bits → the dyadic rationals k / 2^53 in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`; `lo == hi` returns `lo`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            lo
        } else {
            let x = lo + self.f64() * (hi - lo);
            // Guard the open upper bound: if the sum rounds up to `hi`,
            // clamp to the next float below it rather than jumping to `lo`.
            if x < hi {
                x
            } else {
                hi.next_down().max(lo)
            }
        }
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        let span = (hi - lo).wrapping_add(1);
        if span == 0 {
            // lo = 0, hi = u64::MAX: the whole domain.
            return self.next_u64();
        }
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let x = self.next_u64();
            if x < zone {
                return lo + x % span;
            }
        }
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Picks an index in `[0, weights.len())` proportional to `weights`.
    ///
    /// Falls back to index 0 if all weights are non-positive.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
        if total <= 0.0 || weights.is_empty() {
            return 0;
        }
        let mut x = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn forks_are_independent_of_parent_position() {
        let parent = DetRng::new(99);
        let mut f1 = parent.fork(3);
        let mut consumed = DetRng::new(99);
        let _ = consumed.next_u64(); // advance the parent
        let mut f2 = consumed.fork(3);
        for _ in 0..10 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
    }

    #[test]
    fn forks_with_different_streams_differ() {
        let parent = DetRng::new(99);
        let mut f1 = parent.fork(1);
        let mut f2 = parent.fork(2);
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn range_bounds_hold() {
        let mut r = DetRng::new(5);
        for _ in 0..1000 {
            let x = r.range_f64(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
            let n = r.range_u64(10, 20);
            assert!((10..=20).contains(&n));
        }
        assert_eq!(r.range_u64(5, 5), 5);
        assert_eq!(r.range_f64(1.0, 1.0), 1.0);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = DetRng::new(11);
        let w = [0.0, 10.0, 0.0];
        for _ in 0..100 {
            assert_eq!(r.weighted_index(&w), 1);
        }
        let mut counts = [0usize; 2];
        let w2 = [1.0, 3.0];
        for _ in 0..4000 {
            counts[r.weighted_index(&w2)] += 1;
        }
        let frac = counts[1] as f64 / 4000.0;
        assert!((0.70..0.80).contains(&frac), "frac = {frac}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0), "clamped above 1");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = DetRng::new(42);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0), "13 zero bytes is astronomically unlikely");
    }
}
