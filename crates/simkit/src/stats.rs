//! Streaming statistics.
//!
//! [`Welford`] implements the numerically stable one-pass mean/variance
//! algorithm; metric collectors keep one per series so multi-hundred-thousand
//! job runs never materialise per-job vectors unless asked to.

/// One-pass mean / variance / min / max accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Welford {
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another accumulator into this one (Chan et al. parallel form).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0 for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

/// Fixed-bucket histogram over `[0, +inf)` with caller-supplied edges.
///
/// Bucket `i` covers `[edges[i-1], edges[i])`, bucket 0 covers `[0, edges[0])`
/// and the final bucket is the overflow `[edges.last(), +inf)`.
#[derive(Debug, Clone)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
}

impl Histogram {
    /// `edges` must be strictly increasing and non-empty.
    pub fn new(edges: Vec<f64>) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly increasing"
        );
        let buckets = edges.len() + 1;
        Histogram {
            edges,
            counts: vec![0; buckets],
        }
    }

    /// Power-of-two edges `1, 2, 4, …, 2^(k-1)` (useful for job-size buckets).
    pub fn pow2(k: usize) -> Self {
        Histogram::new((0..k).map(|i| (1u64 << i) as f64).collect())
    }

    pub fn add(&mut self, x: f64) {
        let idx = self.bucket_of(x);
        self.counts[idx] += 1;
    }

    /// Index of the bucket `x` falls into.
    pub fn bucket_of(&self, x: f64) -> usize {
        match self
            .edges
            .binary_search_by(|e| e.partial_cmp(&x).unwrap_or(std::cmp::Ordering::Less))
        {
            Ok(i) => i + 1, // exactly on an edge -> right bucket (left-closed)
            Err(i) => i,
        }
    }

    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
        assert!((w.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn empty_welford_is_zeroed() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.min(), 0.0);
        assert_eq!(w.max(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.add(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Welford::new();
        a.add(1.0);
        a.add(3.0);
        let before = (a.count(), a.mean());
        a.merge(&Welford::new());
        assert_eq!((a.count(), a.mean()), before);

        let mut e = Welford::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new(vec![1.0, 10.0, 100.0]);
        for x in [0.5, 0.9, 1.0, 5.0, 99.0, 100.0, 1e6] {
            h.add(x);
        }
        assert_eq!(h.counts(), &[2, 2, 1, 2]);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn pow2_histogram_edges() {
        let h = Histogram::pow2(4);
        assert_eq!(h.edges(), &[1.0, 2.0, 4.0, 8.0]);
        assert_eq!(h.bucket_of(0.0), 0);
        assert_eq!(h.bucket_of(1.0), 1);
        assert_eq!(h.bucket_of(3.0), 2);
        assert_eq!(h.bucket_of(8.0), 4);
        assert_eq!(h.bucket_of(1000.0), 4);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_bad_edges() {
        let _ = Histogram::new(vec![1.0, 1.0]);
    }
}
