//! Simulation time.
//!
//! Time is measured in whole seconds from the simulation epoch (the
//! `UnixStartTime` of the workload), exactly like the Standard Workload
//! Format. All durations are plain `u64` seconds; [`SimTime`] is a newtype so
//! instants and durations cannot be mixed up silently.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// One minute in seconds.
pub const MINUTE: u64 = 60;
/// One hour in seconds.
pub const HOUR: u64 = 3600;
/// One day in seconds.
pub const DAY: u64 = 86_400;

/// An instant in simulation time (seconds since the simulation epoch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Seconds since the epoch.
    #[inline]
    pub fn secs(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as `f64` (for rate computations).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Duration from `earlier` to `self`, saturating at zero.
    #[inline]
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// `self + secs`, saturating at `SimTime::MAX`.
    #[inline]
    pub fn after(self, secs: u64) -> SimTime {
        SimTime(self.0.saturating_add(secs))
    }

    /// Calendar day index since the epoch (for per-day series).
    #[inline]
    pub fn day(self) -> u64 {
        self.0 / DAY
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: u64) -> SimTime {
        self.after(rhs)
    }
}

impl AddAssign<u64> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        *self = self.after(rhs);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: SimTime) -> u64 {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.0 / DAY;
        let h = (self.0 % DAY) / HOUR;
        let m = (self.0 % HOUR) / MINUTE;
        let s = self.0 % MINUTE;
        if d > 0 {
            write!(f, "{d}d {h:02}:{m:02}:{s:02}")
        } else {
            write!(f, "{h:02}:{m:02}:{s:02}")
        }
    }
}

/// Formats a duration in seconds as a short human string (`2d04h`, `3h05m`, `42s`).
pub fn fmt_duration(secs: u64) -> String {
    if secs >= DAY {
        format!("{}d{:02}h", secs / DAY, (secs % DAY) / HOUR)
    } else if secs >= HOUR {
        format!("{}h{:02}m", secs / HOUR, (secs % HOUR) / MINUTE)
    } else if secs >= MINUTE {
        format!("{}m{:02}s", secs / MINUTE, secs % MINUTE)
    } else {
        format!("{secs}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime(100);
        assert_eq!((t + 50).secs(), 150);
        assert_eq!(t.after(50) - t, 50);
        assert_eq!(t.since(SimTime(200)), 0, "since saturates");
    }

    #[test]
    fn saturating_add_never_wraps() {
        assert_eq!(SimTime::MAX + 1, SimTime::MAX);
        assert_eq!(SimTime::MAX.after(u64::MAX), SimTime::MAX);
    }

    #[test]
    fn day_index() {
        assert_eq!(SimTime(0).day(), 0);
        assert_eq!(SimTime(DAY - 1).day(), 0);
        assert_eq!(SimTime(DAY).day(), 1);
        assert_eq!(SimTime(10 * DAY + 5).day(), 10);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime(0).to_string(), "00:00:00");
        assert_eq!(SimTime(3661).to_string(), "01:01:01");
        assert_eq!(SimTime(DAY + 60).to_string(), "1d 00:01:00");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(42), "42s");
        assert_eq!(fmt_duration(125), "2m05s");
        assert_eq!(fmt_duration(2 * HOUR + 300), "2h05m");
        assert_eq!(fmt_duration(2 * DAY + 4 * HOUR), "2d04h");
    }

    #[test]
    fn ordering_is_by_instant() {
        assert!(SimTime(1) < SimTime(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }
}
