//! Cancellable, deterministic event queue.
//!
//! A thin wrapper over `BinaryHeap` that guarantees **stable FIFO order for
//! simultaneous events** via a monotonically increasing sequence number. This
//! is what makes two runs of the simulator with the same seed produce
//! identical schedules: ties at the same instant are broken by insertion
//! order, never by heap internals.
//!
//! Cancellation is *lazy*: [`EventQueue::cancel`] marks a token; stale events
//! are skipped by [`EventQueue::pop`]. This is the standard approach for
//! re-arming job-end events when malleability changes a job's completion
//! time, and it keeps push/pop at `O(log n)`.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Opaque handle used to cancel a scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

/// An event scheduled at a given instant.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    pub time: SimTime,
    pub payload: E,
    seq: u64,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event first,
        // and among equal instants the lowest sequence number (FIFO).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic priority queue of simulation events.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    cancelled: std::collections::HashSet<u64>,
    live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
            live: 0,
        }
    }

    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
            live: 0,
        }
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedules `payload` at `time`; returns a token usable with [`cancel`].
    ///
    /// [`cancel`]: EventQueue::cancel
    pub fn push(&mut self, time: SimTime, payload: E) -> EventToken {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { time, payload, seq });
        self.live += 1;
        EventToken(seq)
    }

    /// Cancels a previously scheduled event. Returns `true` if the token was
    /// still pending (i.e. not yet popped or cancelled).
    pub fn cancel(&mut self, token: EventToken) -> bool {
        if token.0 >= self.next_seq {
            return false;
        }
        if self.cancelled.insert(token.0) {
            // The event may have already been popped; `pop` removes tokens it
            // skips, so a still-present entry means it was genuinely pending.
            // We cannot cheaply confirm presence, so treat double-cancel as
            // the only failure mode and fix `live` lazily in `pop`.
            self.live = self.live.saturating_sub(1);
            true
        } else {
            false
        }
    }

    /// Next event instant, skipping cancelled entries, without popping.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_cancelled();
        self.heap.peek().map(|e| e.time)
    }

    /// Pops the earliest live event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.skip_cancelled();
        let ev = self.heap.pop()?;
        self.live = self.live.saturating_sub(1);
        Some(ev)
    }

    fn skip_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.remove(&top.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }

    /// Snapshot for persistence: every live entry as `(time, payload, seq)`
    /// in ascending `(time, seq)` order, plus the next sequence number.
    /// Sequence numbers are part of the snapshot because they break FIFO
    /// ties — restoring without them would reorder simultaneous events.
    pub fn snapshot(&self) -> (Vec<(SimTime, E, u64)>, u64)
    where
        E: Clone,
    {
        let mut live: Vec<(SimTime, E, u64)> = self
            .heap
            .iter()
            .filter(|e| !self.cancelled.contains(&e.seq))
            .map(|e| (e.time, e.payload.clone(), e.seq))
            .collect();
        live.sort_by_key(|a| (a.0, a.2));
        (live, self.next_seq)
    }

    /// Rebuilds a queue from a [`snapshot`](EventQueue::snapshot),
    /// preserving sequence numbers so tie order survives the round trip.
    pub fn from_snapshot(entries: Vec<(SimTime, E, u64)>, next_seq: u64) -> Self {
        let live = entries.len();
        let heap: BinaryHeap<ScheduledEvent<E>> = entries
            .into_iter()
            .map(|(time, payload, seq)| ScheduledEvent { time, payload, seq })
            .collect();
        EventQueue {
            heap,
            next_seq,
            cancelled: std::collections::HashSet::new(),
            live,
        }
    }

    /// Drains every live event in order (mostly for tests / teardown).
    pub fn drain_sorted(&mut self) -> Vec<ScheduledEvent<E>> {
        let mut out = Vec::with_capacity(self.live);
        while let Some(ev) = self.pop() {
            out.push(ev);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        let order: Vec<_> = q.drain_sorted().into_iter().map(|e| e.payload).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(5), i);
        }
        let order: Vec<_> = q.drain_sorted().into_iter().map(|e| e.payload).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let t1 = q.push(SimTime(1), "a");
        q.push(SimTime(2), "b");
        assert!(q.cancel(t1));
        assert!(!q.cancel(t1), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().payload, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_token_is_noop() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventToken(42)));
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let t = q.push(SimTime(1), "dead");
        q.push(SimTime(7), "live");
        q.cancel(t);
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.pop().unwrap().payload, "live");
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), 1);
        q.push(SimTime(5), 0);
        assert_eq!(q.pop().unwrap().payload, 0);
        q.push(SimTime(7), 2);
        q.push(SimTime(10), 3); // same time as payload 1, pushed later
        assert_eq!(q.pop().unwrap().payload, 2);
        assert_eq!(q.pop().unwrap().payload, 1);
        assert_eq!(q.pop().unwrap().payload, 3);
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.push(SimTime(1), ());
        q.push(SimTime(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
