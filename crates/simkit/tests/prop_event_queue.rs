//! Property tests for the event queue: the determinism backbone.

use proptest::prelude::*;
use simkit::{EventQueue, SimTime};

proptest! {
    /// Popped events are sorted by time, with FIFO order among equal times.
    #[test]
    fn pops_sorted_and_stable(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime(t), i);
        }
        let drained = q.drain_sorted();
        for w in drained.windows(2) {
            prop_assert!(w[0].time <= w[1].time);
            if w[0].time == w[1].time {
                prop_assert!(w[0].payload < w[1].payload, "FIFO among ties");
            }
        }
        prop_assert_eq!(drained.len(), times.len());
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn cancel_removes_exactly_the_cancelled(
        times in prop::collection::vec(0u64..100, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let tokens: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, q.push(SimTime(t), i)))
            .collect();
        let mut cancelled = std::collections::HashSet::new();
        for (i, tok) in &tokens {
            if *cancel_mask.get(*i % cancel_mask.len()).unwrap_or(&false) {
                prop_assert!(q.cancel(*tok));
                cancelled.insert(*i);
            }
        }
        let drained = q.drain_sorted();
        prop_assert_eq!(drained.len(), times.len() - cancelled.len());
        for ev in drained {
            prop_assert!(!cancelled.contains(&ev.payload));
        }
    }

    /// Interleaved push/pop maintains the heap invariant (next pop is the
    /// global minimum of the live set).
    #[test]
    fn interleaved_operations_keep_order(ops in prop::collection::vec((0u64..500, any::<bool>()), 1..300)) {
        let mut q = EventQueue::new();
        let mut reference: Vec<u64> = Vec::new();
        let mut last_popped = 0u64;
        for (t, is_pop) in ops {
            if is_pop {
                if let Some(ev) = q.pop() {
                    prop_assert!(ev.time.secs() >= last_popped || reference.is_empty());
                    let min = *reference.iter().min().unwrap();
                    prop_assert_eq!(ev.time.secs(), min);
                    let pos = reference.iter().position(|&x| x == min).unwrap();
                    reference.remove(pos);
                    last_popped = ev.time.secs();
                }
            } else {
                // Never schedule into the past relative to popped time.
                let t = t.max(last_popped);
                q.push(SimTime(t), 0u32);
                reference.push(t);
            }
        }
    }
}
