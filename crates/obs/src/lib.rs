//! # sd-obs — operational observability primitives
//!
//! Dependency-free building blocks shared by the service, the campaign
//! runner and the dashboards (DESIGN.md §15):
//!
//! * [`log`] — structured leveled logging: the [`log_event!`] macro feeds a
//!   bounded lock-free ring ([`LogRing`], the seqlock design of
//!   `sd-trace::TraceRing` generalised to variable-length records) plus an
//!   optional stderr echo and a JSON-lines file sink. Readers tail the ring
//!   by cursor without ever blocking the writer — that is what lets
//!   `GET /v1/logs` be served off the scheduler hot path.
//! * [`profile`] — Brendan-Gregg collapsed-stack rendering for the
//!   per-function timing accumulated by `slurm_sim::timing`
//!   (`stack;frames;joined value` lines — loadable in inferno and
//!   speedscope).
//! * [`slo`] — declarative service-level objectives with multi-window
//!   burn-rate math over cumulative good/total counters, the engine behind
//!   `[slo]` scenario sections, `GET /v1/slo` and `sd-loadgen --slo-gate`.

pub mod log;
pub mod profile;
pub mod slo;

pub use crate::log::{
    attach_json_sink, flush_sink, log_emit, log_enabled, read_since, ring_head, set_ring_level,
    set_stderr_level, set_virtual_now, stderr_level, Level, LogRecord, LogRing, LogTail,
};
pub use crate::profile::{collapsed, StackSample};
pub use crate::slo::{good_within, SloKind, SloSpec, SloStatus, SloTracker, BURN_PAGE_THRESHOLD, KNOWN_KEYS};

/// Minimal JSON string escaping (quotes, backslash, control characters) for
/// the JSON-lines log sink and the `/v1/logs` payload.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }
}
