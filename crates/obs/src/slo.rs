//! Declarative service-level objectives with multi-window burn-rate math.
//!
//! An SLO is an *objective fraction* of good events over total events
//! (e.g. "99% of waits under one hour", "99.9% of submits accepted"). The
//! error budget is the allowed bad fraction `1 - objective`; the *burn
//! rate* over a window is `bad_fraction_in_window / (1 - objective)` — 1.0
//! burns the budget exactly at the sustainable pace, 14.4 burns a 30-day
//! budget in ~2 days (the classic page-worthy threshold). Following the
//! SRE-workbook multi-window rule, [`SloStatus::breached`] fires when the
//! budget is exhausted outright or when *both* the fast and the slow
//! window burn above [`BURN_PAGE_THRESHOLD`] — the fast window gives
//! detection latency, the slow window de-flaps it.
//!
//! Trackers consume *cumulative* `(good, total)` counters (monotone, the
//! shape Prometheus counters and the service's histograms already have)
//! sampled on a timeline the caller owns — wall seconds in `sd-serve`,
//! virtual seconds in offline evaluation.

use std::collections::VecDeque;

/// Both burn windows above this rate ⇒ the SLO is breached (page).
pub const BURN_PAGE_THRESHOLD: f64 = 14.4;

/// Default fast / slow burn windows in seconds (5 min / 1 h).
pub const DEFAULT_FAST_WINDOW: u64 = 300;
pub const DEFAULT_SLOW_WINDOW: u64 = 3600;

/// What the objective measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloKind {
    /// Fraction of queue waits at or under `threshold` virtual seconds.
    WaitQuantile,
    /// Fraction of scheduler passes at or under `threshold` wall seconds.
    PassQuantile,
    /// Fraction of submit requests answered 2xx (429/5xx are bad).
    Availability,
}

impl SloKind {
    pub fn label(self) -> &'static str {
        match self {
            SloKind::WaitQuantile => "wait_quantile",
            SloKind::PassQuantile => "pass_quantile",
            SloKind::Availability => "availability",
        }
    }
}

/// One declared objective, parsed from a `[slo]` scenario entry or an
/// `--slo key=value` flag.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// The declaration key, used as the `{slo="…"}` label value.
    pub name: String,
    pub kind: SloKind,
    /// Objective fraction of good events in `[0, 1)`.
    pub objective: f64,
    /// Threshold for the quantile kinds (seconds); 0 for availability.
    pub threshold: f64,
    pub fast_window: u64,
    pub slow_window: u64,
}

/// The declaration grammar: `key = value` with these keys.
pub const KNOWN_KEYS: [&str; 3] = ["p99_wait_seconds", "pass_duration_p95", "submit_availability"];

impl SloSpec {
    /// Parses one declaration entry. The key fixes kind and objective; the
    /// value is the threshold (quantile kinds) or the objective fraction
    /// (availability).
    pub fn parse(key: &str, value: f64) -> Result<SloSpec, String> {
        let (kind, objective, threshold) = match key {
            "p99_wait_seconds" => {
                if value <= 0.0 {
                    return Err(format!("{key} needs a positive threshold, got {value}"));
                }
                (SloKind::WaitQuantile, 0.99, value)
            }
            "pass_duration_p95" => {
                if value <= 0.0 {
                    return Err(format!("{key} needs a positive threshold, got {value}"));
                }
                (SloKind::PassQuantile, 0.95, value)
            }
            "submit_availability" => {
                if !(0.0..1.0).contains(&value) {
                    return Err(format!(
                        "{key} needs an objective fraction in [0, 1), got {value}"
                    ));
                }
                (SloKind::Availability, value, 0.0)
            }
            other => {
                return Err(format!(
                    "unknown slo `{other}` (known: {})",
                    KNOWN_KEYS.join(", ")
                ))
            }
        };
        Ok(SloSpec {
            name: key.to_string(),
            kind,
            objective,
            threshold,
            fast_window: DEFAULT_FAST_WINDOW,
            slow_window: DEFAULT_SLOW_WINDOW,
        })
    }
}

/// One cumulative sample on the tracker's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Sample {
    t: u64,
    good: u64,
    total: u64,
}

/// Evaluated state of one SLO.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    pub name: String,
    pub kind: SloKind,
    pub objective: f64,
    pub threshold: f64,
    pub good: u64,
    pub total: u64,
    /// All-time bad fraction (0 when no events yet).
    pub bad_fraction: f64,
    /// `1 - bad_fraction / (1 - objective)`; 1.0 = untouched budget, ≤ 0 =
    /// exhausted. May go negative (overspent).
    pub budget_remaining: f64,
    pub burn_fast: f64,
    pub burn_slow: f64,
    pub fast_window: u64,
    pub slow_window: u64,
    pub breached: bool,
}

/// Burn-rate tracker over cumulative good/total counters.
#[derive(Debug)]
pub struct SloTracker {
    spec: SloSpec,
    samples: VecDeque<Sample>,
}

impl SloTracker {
    pub fn new(spec: SloSpec) -> SloTracker {
        SloTracker { spec, samples: VecDeque::new() }
    }

    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Records a cumulative `(good, total)` observation at time `t` seconds
    /// (monotone in `t`; counters clamp monotone defensively). Samples
    /// older than the slow window (plus one anchor) are discarded.
    pub fn record(&mut self, t: u64, good: u64, total: u64) {
        let (good, total) = match self.samples.back() {
            Some(last) => (good.max(last.good), total.max(last.total)),
            None => (good, total),
        };
        self.samples.push_back(Sample { t, good, total });
        let horizon = t.saturating_sub(self.spec.slow_window);
        // Keep one sample at-or-before the horizon as the window anchor.
        while self.samples.len() > 2 && self.samples[1].t <= horizon {
            self.samples.pop_front();
        }
    }

    /// Burn rate over the trailing `window` seconds ending at the newest
    /// sample: bad fraction within the window over the allowed bad
    /// fraction. 0 when the window saw no events.
    fn burn(&self, window: u64) -> f64 {
        let Some(newest) = self.samples.back() else { return 0.0 };
        let start = newest.t.saturating_sub(window);
        // The last sample at-or-before the window start anchors the deltas.
        let anchor = self
            .samples
            .iter()
            .rev()
            .find(|s| s.t <= start)
            .or_else(|| self.samples.front())
            .copied()
            .unwrap_or(*newest);
        let d_total = newest.total.saturating_sub(anchor.total);
        if d_total == 0 {
            return 0.0;
        }
        let d_bad = d_total.saturating_sub(newest.good.saturating_sub(anchor.good));
        let allowed = (1.0 - self.spec.objective).max(f64::EPSILON);
        (d_bad as f64 / d_total as f64) / allowed
    }

    pub fn status(&self) -> SloStatus {
        let (good, total) = self
            .samples
            .back()
            .map(|s| (s.good, s.total))
            .unwrap_or((0, 0));
        let bad_fraction = if total == 0 {
            0.0
        } else {
            (total - good) as f64 / total as f64
        };
        let allowed = (1.0 - self.spec.objective).max(f64::EPSILON);
        let budget_remaining = 1.0 - bad_fraction / allowed;
        let burn_fast = self.burn(self.spec.fast_window);
        let burn_slow = self.burn(self.spec.slow_window);
        let breached = budget_remaining <= 0.0
            || (burn_fast > BURN_PAGE_THRESHOLD && burn_slow > BURN_PAGE_THRESHOLD);
        SloStatus {
            name: self.spec.name.clone(),
            kind: self.spec.kind,
            objective: self.spec.objective,
            threshold: self.spec.threshold,
            good,
            total,
            bad_fraction,
            budget_remaining,
            burn_fast,
            burn_slow,
            fast_window: self.spec.fast_window,
            slow_window: self.spec.slow_window,
            breached,
        }
    }
}

/// `(good, total)` split of a cumulative-bucket histogram against a
/// threshold using Prometheus `le` semantics: buckets whose upper bound is
/// ≤ `threshold` count good; the overflow bucket (`counts` has one more
/// entry than `bounds`) is always bad.
pub fn good_within(bounds: &[f64], counts: &[u64], threshold: f64) -> (u64, u64) {
    let mut good = 0u64;
    let mut total = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        total += c;
        if i < bounds.len() && bounds[i] <= threshold {
            good += c;
        }
    }
    (good, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(objective: f64) -> SloSpec {
        SloSpec {
            name: "test".into(),
            kind: SloKind::Availability,
            objective,
            threshold: 0.0,
            fast_window: 300,
            slow_window: 3600,
        }
    }

    #[test]
    fn parse_known_keys() {
        let s = SloSpec::parse("p99_wait_seconds", 3600.0).unwrap();
        assert_eq!(s.kind, SloKind::WaitQuantile);
        assert_eq!(s.objective, 0.99);
        assert_eq!(s.threshold, 3600.0);
        let s = SloSpec::parse("pass_duration_p95", 0.01).unwrap();
        assert_eq!(s.kind, SloKind::PassQuantile);
        assert_eq!(s.objective, 0.95);
        let s = SloSpec::parse("submit_availability", 0.999).unwrap();
        assert_eq!(s.kind, SloKind::Availability);
        assert_eq!(s.objective, 0.999);
        assert!(SloSpec::parse("submit_availability", 1.0).is_err());
        assert!(SloSpec::parse("p99_wait_seconds", 0.0).is_err());
        assert!(SloSpec::parse("nope", 1.0).is_err());
    }

    #[test]
    fn empty_tracker_has_full_budget() {
        let t = SloTracker::new(spec(0.99));
        let s = t.status();
        assert_eq!(s.total, 0);
        assert_eq!(s.budget_remaining, 1.0);
        assert_eq!(s.burn_fast, 0.0);
        assert!(!s.breached);
    }

    #[test]
    fn all_good_keeps_budget_intact() {
        let mut t = SloTracker::new(spec(0.99));
        t.record(0, 100, 100);
        t.record(60, 500, 500);
        let s = t.status();
        assert_eq!(s.budget_remaining, 1.0);
        assert!(!s.breached);
    }

    #[test]
    fn overspent_budget_goes_negative_and_breaches() {
        // objective 0.99 → allowed 1% bad; exactly 1% spends ~the whole
        // budget, 2% overspends it.
        let mut t = SloTracker::new(spec(0.99));
        t.record(0, 0, 0);
        t.record(60, 990, 1000);
        assert!(t.status().budget_remaining.abs() < 1e-9);
        t.record(120, 1960, 2000);
        let s = t.status();
        assert!(s.budget_remaining < -0.5, "{s:?}");
        assert!(s.breached, "budget overspent");
    }

    #[test]
    fn burn_rate_is_windowed() {
        let mut t = SloTracker::new(spec(0.9)); // allowed 10% bad
        // First hour: perfect. Then a burst of 50% bad inside 5 minutes.
        t.record(0, 1000, 1000);
        t.record(3600, 2000, 2000);
        t.record(3900, 2100, 2200);
        let s = t.status();
        // Fast window (300 s): 100 bad / 200 total = 50% bad → burn 5.0.
        assert!((s.burn_fast - 5.0).abs() < 1e-9, "{}", s.burn_fast);
        // Slow window (3600 s): 100 bad / 1200 total → burn ~0.83.
        assert!(s.burn_slow < 1.0);
        assert!(!s.breached, "slow window de-flaps the burst");
    }

    #[test]
    fn sustained_burn_breaches_both_windows() {
        let mut t = SloTracker::new(spec(0.99)); // allowed 1% bad
        t.record(0, 0, 0);
        for i in 1..=80u64 {
            // 50% bad continuously for over an hour.
            t.record(i * 60, i * 50, i * 100);
        }
        let s = t.status();
        assert!(s.burn_fast > BURN_PAGE_THRESHOLD);
        assert!(s.burn_slow > BURN_PAGE_THRESHOLD);
        assert!(s.breached);
    }

    #[test]
    fn good_within_splits_on_le() {
        let bounds = [1.0, 10.0, 100.0];
        let counts = [5, 3, 2, 1]; // +Inf overflow = 1
        assert_eq!(good_within(&bounds, &counts, 10.0), (8, 11));
        assert_eq!(good_within(&bounds, &counts, 0.5), (0, 11));
        assert_eq!(good_within(&bounds, &counts, 1e9), (10, 11));
    }
}
