//! Structured leveled logging into a bounded lock-free ring.
//!
//! The ring reuses the seqlock discipline of `sd-trace::TraceRing`,
//! generalised to variable-length records: each slot carries a stamp word
//! (odd = mid-write, `2i + 2` = slot stably holds record `i`), a meta word
//! (level, payload length, truncation flag), wall/virtual timestamps and a
//! fixed block of payload words holding the `\x1f`-separated
//! `target, message, key\x1evalue…` text. Writers serialise through one
//! atomic flag (any thread may log); readers never block — a record
//! overwritten or caught mid-write is *counted dropped*, never returned
//! torn. That contract is property-tested in `tests/prop_log_ring.rs`.
//!
//! On top of the ring sits the process-global [`Logger`] behind the
//! [`log_event!`] macro: one relaxed atomic load when the level is off,
//! ring + optional stderr echo + optional JSON-lines file sink when on.

use crate::json_escape;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::atomic::fence;
use std::sync::{Mutex, OnceLock};
use std::time::SystemTime;

/// Severity, ordered by verbosity: `Error < Warn < Info < Debug < Trace`.
/// "Level `l` is enabled at threshold `t`" means `l <= t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Error = 1,
    Warn = 2,
    Info = 3,
    Debug = 4,
    Trace = 5,
}

impl Level {
    pub fn label(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            1 => Level::Error,
            2 => Level::Warn,
            4 => Level::Debug,
            5 => Level::Trace,
            _ => Level::Info,
        }
    }
}

/// One decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Global sequence number (ring cursor space).
    pub seq: u64,
    /// Wall-clock microseconds since the Unix epoch at emit time.
    pub wall_micros: u64,
    /// Virtual-clock seconds at emit time (0 until [`set_virtual_now`]).
    pub virt_secs: u64,
    pub level: Level,
    pub target: String,
    pub message: String,
    pub fields: Vec<(String, String)>,
    /// True when the encoded payload exceeded the slot capacity and the
    /// tail was cut (always at a UTF-8-safe point via lossy decode).
    pub truncated: bool,
}

impl LogRecord {
    /// One JSON object (no trailing newline) — the `/v1/logs` element and
    /// the JSON-lines sink format.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"seq\":{},\"wall_us\":{},\"virt_s\":{},\"level\":\"{}\",\"target\":\"{}\",\"msg\":\"{}\"",
            self.seq,
            self.wall_micros,
            self.virt_secs,
            self.level.label(),
            json_escape(&self.target),
            json_escape(&self.message),
        );
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
            }
            out.push('}');
        }
        if self.truncated {
            out.push_str(",\"truncated\":true");
        }
        out.push('}');
        out
    }
}

/// Result of a cursor read: decoded records, the next cursor, and how many
/// records in the requested span were lost to wrap-around or a concurrent
/// overwrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogTail {
    pub records: Vec<LogRecord>,
    pub next: u64,
    pub dropped: u64,
}

/// Payload capacity per slot in 8-byte words (384 bytes of encoded text).
const DATA_WORDS: usize = 48;
const DATA_BYTES: usize = DATA_WORDS * 8;
/// Unit separator between target / message / fields in the encoded payload.
const SEP: u8 = 0x1f;
/// Separator between a field key and its value.
const KV: u8 = 0x1e;

struct Slot {
    stamp: AtomicU64,
    /// bits 0..=31 payload byte length, bits 32..=39 level, bit 40 truncated.
    meta: AtomicU64,
    wall_micros: AtomicU64,
    virt_secs: AtomicU64,
    data: [AtomicU64; DATA_WORDS],
}

impl Slot {
    fn empty() -> Slot {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Slot {
            stamp: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            wall_micros: AtomicU64::new(0),
            virt_secs: AtomicU64::new(0),
            data: [ZERO; DATA_WORDS],
        }
    }
}

/// The stamp a slot stably holding record `i` carries. Strictly increasing
/// across laps and never 0 (the empty-slot stamp) or odd (mid-write).
fn stable_stamp(i: u64) -> u64 {
    2 * i + 2
}

/// Bounded multi-producer (serialised) / multi-consumer (lock-free) ring of
/// structured log records.
pub struct LogRing {
    slots: Box<[Slot]>,
    mask: u64,
    /// Records written so far == the next record's sequence number.
    head: AtomicU64,
    /// Writer serialisation flag: producers spin (the write section is a
    /// few dozen relaxed stores) instead of interleaving slot updates.
    writing: AtomicBool,
}

impl LogRing {
    /// Capacity is rounded up to a power of two and clamped to `8..=2^20`.
    pub fn new(capacity: usize) -> LogRing {
        let cap = capacity.clamp(8, 1 << 20).next_power_of_two();
        LogRing {
            slots: (0..cap).map(|_| Slot::empty()).collect(),
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
            writing: AtomicBool::new(false),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records written so far (== the cursor one past the newest record).
    pub fn head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Encode and append one record. Any thread may call this; concurrent
    /// writers serialise on the internal flag.
    pub fn push(
        &self,
        level: Level,
        wall_micros: u64,
        virt_secs: u64,
        target: &str,
        message: &str,
        fields: &[(&str, String)],
    ) {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(target.as_bytes());
        buf.push(SEP);
        buf.extend_from_slice(message.as_bytes());
        for (k, v) in fields {
            buf.push(SEP);
            buf.extend_from_slice(k.as_bytes());
            buf.push(KV);
            buf.extend_from_slice(v.as_bytes());
        }
        let truncated = buf.len() > DATA_BYTES;
        buf.truncate(DATA_BYTES);
        let len = buf.len();
        buf.resize(len.div_ceil(8) * 8, 0);
        let meta = len as u64
            | (level as u64) << 32
            | if truncated { 1u64 << 40 } else { 0 };

        while self
            .writing
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
        let i = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(i & self.mask) as usize];
        slot.stamp.store(2 * i + 1, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        slot.meta.store(meta, Ordering::Relaxed);
        slot.wall_micros.store(wall_micros, Ordering::Relaxed);
        slot.virt_secs.store(virt_secs, Ordering::Relaxed);
        for (w, chunk) in slot.data.iter().zip(buf.chunks(8)) {
            w.store(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")), Ordering::Relaxed);
        }
        fence(Ordering::SeqCst);
        slot.stamp.store(stable_stamp(i), Ordering::Relaxed);
        self.head.store(i + 1, Ordering::Release);
        self.writing.store(false, Ordering::Release);
    }

    /// Tail up to `limit` records from `cursor`. Records the writer lapped
    /// (or overwrote mid-read) are counted in `dropped`, never returned
    /// torn or out of order. `next` resumes the tail.
    pub fn read_since(&self, cursor: u64, limit: usize) -> LogTail {
        let head = self.head.load(Ordering::Acquire);
        let capacity = self.slots.len() as u64;
        let oldest = head.saturating_sub(capacity);
        let lo = cursor.max(oldest).min(head);
        let mut dropped = lo - cursor.min(lo);
        let hi = head.min(lo + limit as u64);
        let mut records = Vec::with_capacity((hi - lo) as usize);
        for i in lo..hi {
            match self.read_slot(i) {
                Some(r) => records.push(r),
                None => dropped += 1,
            }
        }
        LogTail { records, next: hi, dropped }
    }

    /// Seqlock read of one record; `None` when the slot no longer (or does
    /// not yet stably) hold record `i`.
    fn read_slot(&self, i: u64) -> Option<LogRecord> {
        let slot = &self.slots[(i & self.mask) as usize];
        let want = stable_stamp(i);
        let before = slot.stamp.load(Ordering::Relaxed);
        fence(Ordering::SeqCst);
        if before != want {
            return None;
        }
        let meta = slot.meta.load(Ordering::Relaxed);
        let wall_micros = slot.wall_micros.load(Ordering::Relaxed);
        let virt_secs = slot.virt_secs.load(Ordering::Relaxed);
        let len = (meta & 0xFFFF_FFFF) as usize;
        if len > DATA_BYTES {
            return None; // torn meta from a lapped writer
        }
        let mut bytes = Vec::with_capacity(len.div_ceil(8) * 8);
        for w in slot.data.iter().take(len.div_ceil(8)) {
            bytes.extend_from_slice(&w.load(Ordering::Relaxed).to_le_bytes());
        }
        bytes.truncate(len);
        fence(Ordering::SeqCst);
        if slot.stamp.load(Ordering::Relaxed) != want {
            return None;
        }
        let level = Level::from_u8(((meta >> 32) & 0xFF) as u8);
        let truncated = meta & (1 << 40) != 0;
        let mut parts = bytes.split(|&b| b == SEP);
        let target = String::from_utf8_lossy(parts.next().unwrap_or(&[])).into_owned();
        let message = String::from_utf8_lossy(parts.next().unwrap_or(&[])).into_owned();
        let fields = parts
            .map(|p| {
                let mut kv = p.splitn(2, |&b| b == KV);
                let k = String::from_utf8_lossy(kv.next().unwrap_or(&[])).into_owned();
                let v = String::from_utf8_lossy(kv.next().unwrap_or(&[])).into_owned();
                (k, v)
            })
            .collect();
        Some(LogRecord {
            seq: i,
            wall_micros,
            virt_secs,
            level,
            target,
            message,
            fields,
            truncated,
        })
    }
}

/// Process-global logger state behind [`log_event!`].
pub struct Logger {
    ring: LogRing,
    ring_level: AtomicU8,
    stderr_level: AtomicU8,
    virt_secs: AtomicU64,
    sink_armed: AtomicBool,
    sink: Mutex<Option<std::io::BufWriter<std::fs::File>>>,
}

static LOGGER: OnceLock<Logger> = OnceLock::new();

/// Default ring capacity: 16 Ki records (~7 MiB), allocated on first log.
const DEFAULT_RING: usize = 1 << 14;

pub fn logger() -> &'static Logger {
    LOGGER.get_or_init(|| Logger {
        ring: LogRing::new(DEFAULT_RING),
        ring_level: AtomicU8::new(Level::Info as u8),
        stderr_level: AtomicU8::new(Level::Info as u8),
        virt_secs: AtomicU64::new(0),
        sink_armed: AtomicBool::new(false),
        sink: Mutex::new(None),
    })
}

/// Verbosity threshold for records kept in the ring (and JSON sink).
pub fn set_ring_level(l: Level) {
    logger().ring_level.store(l as u8, Ordering::Relaxed);
}

/// Verbosity threshold for the human-readable stderr echo (default: info,
/// matching the chattiness of the `eprintln!` sites this replaced).
pub fn set_stderr_level(l: Level) {
    logger().stderr_level.store(l as u8, Ordering::Relaxed);
}

pub fn stderr_level() -> Level {
    Level::from_u8(logger().stderr_level.load(Ordering::Relaxed))
}

/// Publishes the engine's virtual clock so records carry both timelines.
pub fn set_virtual_now(secs: u64) {
    logger().virt_secs.store(secs, Ordering::Relaxed);
}

/// Is anything listening at this level? One relaxed load per sink — the
/// whole disabled-path cost of a [`log_event!`] call site.
pub fn log_enabled(l: Level) -> bool {
    let lg = logger();
    let v = l as u8;
    v <= lg.ring_level.load(Ordering::Relaxed) || v <= lg.stderr_level.load(Ordering::Relaxed)
}

/// Streams every ring-enabled record to `path` as JSON lines.
pub fn attach_json_sink(path: &std::path::Path) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    let lg = logger();
    *lg.sink.lock().expect("log sink poisoned") = Some(std::io::BufWriter::new(f));
    lg.sink_armed.store(true, Ordering::Release);
    Ok(())
}

/// Flushes the JSON-lines sink (call before exit; records are buffered).
pub fn flush_sink() {
    let lg = logger();
    if lg.sink_armed.load(Ordering::Acquire) {
        if let Some(w) = lg.sink.lock().expect("log sink poisoned").as_mut() {
            let _ = w.flush();
        }
    }
}

fn wall_micros_now() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Emit one record to every armed sink. Call through [`log_event!`], which
/// performs the level check before paying for formatting.
pub fn log_emit(level: Level, target: &str, message: &str, fields: &[(&str, String)]) {
    let lg = logger();
    let wall = wall_micros_now();
    let virt = lg.virt_secs.load(Ordering::Relaxed);
    let to_ring = level as u8 <= lg.ring_level.load(Ordering::Relaxed);
    if to_ring {
        lg.ring.push(level, wall, virt, target, message, fields);
        if lg.sink_armed.load(Ordering::Acquire) {
            let rec = LogRecord {
                seq: lg.ring.head().saturating_sub(1),
                wall_micros: wall,
                virt_secs: virt,
                level,
                target: target.to_string(),
                message: message.to_string(),
                fields: fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
                truncated: false,
            };
            if let Some(w) = lg.sink.lock().expect("log sink poisoned").as_mut() {
                let _ = writeln!(w, "{}", rec.to_json());
            }
        }
    }
    if level as u8 <= lg.stderr_level.load(Ordering::Relaxed) {
        let mut line = format!("[{} {}] {}", level.label(), target, message);
        for (k, v) in fields {
            line.push_str(&format!(" {k}={v}"));
        }
        eprintln!("{line}");
    }
}

/// Tails the global ring (see [`LogRing::read_since`]).
pub fn read_since(cursor: u64, limit: usize) -> LogTail {
    logger().ring.read_since(cursor, limit)
}

/// Records ever pushed to the global ring (tail cursor upper bound).
pub fn ring_head() -> u64 {
    logger().ring.head()
}

/// Structured leveled logging:
///
/// ```
/// use sd_obs::log_event;
/// log_event!(Info, "engine", "pass {} done", 7; started = 3, queue = 12);
/// log_event!(Warn, "wal", "append failed");
/// ```
///
/// The level is an identifier (`Error | Warn | Info | Debug | Trace`);
/// everything after the target up to `;` is a `format!` argument list; the
/// optional `; key = value, …` tail becomes structured fields (values
/// through `Display`). Costs one relaxed atomic load when the level is off.
#[macro_export]
macro_rules! log_event {
    ($lvl:ident, $target:expr, $($fmt:expr),+ $(,)? $(; $($k:ident = $v:expr),+ $(,)?)?) => {{
        let __lvl = $crate::Level::$lvl;
        if $crate::log_enabled(__lvl) {
            let __msg = format!($($fmt),+);
            let __fields: &[(&str, String)] = &[
                $($( (stringify!($k), format!("{}", $v)) ),+)?
            ];
            $crate::log_emit(__lvl, $target, &__msg, __fields);
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_roundtrips_records_in_order() {
        let ring = LogRing::new(64);
        for i in 0..10u64 {
            ring.push(
                Level::Info,
                1000 + i,
                i,
                "engine",
                &format!("event {i}"),
                &[("job", format!("{i}"))],
            );
        }
        let tail = ring.read_since(0, 100);
        assert_eq!(tail.records.len(), 10);
        assert_eq!(tail.dropped, 0);
        assert_eq!(tail.next, 10);
        for (i, r) in tail.records.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert_eq!(r.target, "engine");
            assert_eq!(r.message, format!("event {i}"));
            assert_eq!(r.fields, vec![("job".to_string(), format!("{i}"))]);
            assert_eq!(r.virt_secs, i as u64);
            assert_eq!(r.level, Level::Info);
        }
    }

    #[test]
    fn wrap_drops_oldest_and_counts_them() {
        let ring = LogRing::new(8);
        for i in 0..20u64 {
            ring.push(Level::Debug, 0, 0, "t", &format!("m{i}"), &[]);
        }
        let tail = ring.read_since(0, 100);
        assert_eq!(tail.dropped, 12, "capacity 8, 20 written");
        assert_eq!(tail.records.len(), 8);
        assert_eq!(tail.records[0].seq, 12);
        assert_eq!(tail.records.last().unwrap().message, "m19");
    }

    #[test]
    fn cursor_resumes_where_tail_left_off() {
        let ring = LogRing::new(16);
        for i in 0..5u64 {
            ring.push(Level::Info, 0, 0, "t", &format!("m{i}"), &[]);
        }
        let t1 = ring.read_since(0, 3);
        assert_eq!(t1.records.len(), 3);
        assert_eq!(t1.next, 3);
        let t2 = ring.read_since(t1.next, 100);
        assert_eq!(t2.records.len(), 2);
        assert_eq!(t2.records[0].message, "m3");
    }

    #[test]
    fn oversize_record_truncates_and_flags() {
        let ring = LogRing::new(8);
        let big = "x".repeat(1000);
        ring.push(Level::Warn, 0, 0, "t", &big, &[]);
        let tail = ring.read_since(0, 1);
        let r = &tail.records[0];
        assert!(r.truncated);
        assert!(r.message.len() < 1000);
        assert!(r.message.starts_with("xxx"));
    }

    #[test]
    fn level_thresholds_gate_the_macro() {
        // Process-global state: use a distinctive target and only assert on
        // records this test wrote.
        set_ring_level(Level::Info);
        let before = read_since(0, 0).next;
        log_event!(Debug, "gate-test", "below threshold");
        assert_eq!(read_since(0, 0).next, before, "debug suppressed at info");
        set_ring_level(Level::Debug);
        log_event!(Debug, "gate-test", "now visible"; answer = 42);
        let tail = read_since(before, 10);
        let rec = tail
            .records
            .iter()
            .find(|r| r.target == "gate-test")
            .expect("record landed");
        assert_eq!(rec.fields, vec![("answer".to_string(), "42".to_string())]);
        set_ring_level(Level::Info);
    }

    #[test]
    fn json_line_shape() {
        let r = LogRecord {
            seq: 7,
            wall_micros: 123,
            virt_secs: 9,
            level: Level::Warn,
            target: "wal".to_string(),
            message: "torn \"tail\"".to_string(),
            fields: vec![("bytes".to_string(), "5".to_string())],
            truncated: false,
        };
        let j = r.to_json();
        assert!(j.starts_with("{\"seq\":7,"));
        assert!(j.contains("\"level\":\"warn\""));
        assert!(j.contains("\"msg\":\"torn \\\"tail\\\"\""));
        assert!(j.contains("\"fields\":{\"bytes\":\"5\"}"));
    }

    #[test]
    fn concurrent_tailing_never_tears() {
        let ring = std::sync::Arc::new(LogRing::new(32));
        let w = {
            let ring = ring.clone();
            std::thread::spawn(move || {
                for i in 0..4000u64 {
                    ring.push(Level::Info, i, i, "w", &format!("msg {i}"), &[]);
                }
            })
        };
        let mut cursor = 0u64;
        while cursor < 3000 {
            let tail = ring.read_since(cursor, 64);
            for r in &tail.records {
                assert_eq!(r.message, format!("msg {}", r.seq), "torn record");
                assert_eq!(r.wall_micros, r.seq);
            }
            cursor = tail.next;
        }
        w.join().unwrap();
    }
}
