//! Collapsed-stack ("folded") profile rendering — the Brendan Gregg
//! `flamegraph.pl` / inferno / speedscope input format: one line per unique
//! stack, frames joined by `;`, a space, then the sample value.
//!
//! The workspace's profiler is not a PC sampler: `slurm_sim::timing`
//! accumulates exact wall time per instrumented hot function. Callers map
//! those accumulators onto a nominal call hierarchy (see
//! `slurm_sim::timing::stack_rows`) and hand the rows here; duplicate
//! stacks are folded, values summed, and lines emitted in deterministic
//! (sorted) order so identical inputs render byte-identically.

use std::collections::BTreeMap;

/// One attributed stack: frames root-first plus a sample value (the
/// workspace convention is integer microseconds of wall time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackSample {
    pub frames: Vec<String>,
    pub value: u64,
}

impl StackSample {
    pub fn new<I, S>(frames: I, value: u64) -> StackSample
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        StackSample { frames: frames.into_iter().map(Into::into).collect(), value }
    }
}

/// Renders samples as collapsed-stack text. Zero-valued and frame-less
/// samples are dropped (flamegraph tools reject empty lines); semicolons
/// inside frame names are replaced with `:` to keep the grammar parseable.
pub fn collapsed(samples: &[StackSample]) -> String {
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for s in samples {
        if s.value == 0 || s.frames.is_empty() {
            continue;
        }
        let key = s
            .frames
            .iter()
            .map(|f| f.replace(';', ":"))
            .collect::<Vec<_>>()
            .join(";");
        *folded.entry(key).or_insert(0) += s.value;
    }
    let mut out = String::new();
    for (stack, value) in folded {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_duplicates_and_sorts() {
        let samples = vec![
            StackSample::new(["sd", "pass", "backfill_trial"], 30),
            StackSample::new(["sd", "pass"], 5),
            StackSample::new(["sd", "pass", "backfill_trial"], 12),
        ];
        let text = collapsed(&samples);
        assert_eq!(text, "sd;pass 5\nsd;pass;backfill_trial 42\n");
    }

    #[test]
    fn drops_zero_and_escapes_semicolons() {
        let samples = vec![
            StackSample::new(["a;b", "c"], 1),
            StackSample::new(["dead"], 0),
        ];
        assert_eq!(collapsed(&samples), "a:b;c 1\n");
    }

    #[test]
    fn empty_input_renders_empty() {
        assert_eq!(collapsed(&[]), "");
    }
}
