//! Property tests for the log ring's seqlock contract (ISSUE 10 satellite):
//! a reader tailing by cursor while the writer wraps must never observe a
//! torn record (message inconsistent with its seq) or an out-of-order /
//! duplicated sequence — lost records are only ever *counted*, in
//! `dropped`, and cursors stay monotone.

use proptest::prelude::*;
use sd_obs::{Level, LogRing};
use std::sync::Arc;

proptest! {
    /// Single-threaded wrap: for any capacity/writes/cursor/limit, a tail
    /// returns exactly the still-resident span, in order, with the lost
    /// prefix counted.
    #[test]
    fn tail_is_exact_without_concurrency(
        cap in 3usize..9,            // ring capacity 8..256 after rounding
        writes in 0u64..700,
        cursor in 0u64..800,
        limit in 0usize..700,
    ) {
        let ring = LogRing::new(1 << cap);
        let capacity = ring.capacity() as u64;
        for i in 0..writes {
            ring.push(Level::Info, i, i, "t", &format!("m{i}"), &[]);
        }
        let tail = ring.read_since(cursor, limit);
        let oldest = writes.saturating_sub(capacity);
        let lo = cursor.max(oldest).min(writes);
        let hi = writes.min(lo + limit as u64);
        prop_assert_eq!(tail.dropped, lo - cursor.min(lo));
        prop_assert_eq!(tail.next, hi);
        prop_assert_eq!(tail.records.len() as u64, hi - lo);
        for (k, r) in tail.records.iter().enumerate() {
            prop_assert_eq!(r.seq, lo + k as u64);
            prop_assert_eq!(&r.message, &format!("m{}", r.seq));
            prop_assert_eq!(r.wall_micros, r.seq);
        }
    }

    /// Concurrent wrap: a writer lapping a small ring while a reader tails.
    /// Every returned record must be internally consistent and strictly
    /// ordered; records + dropped must account for the whole cursor span.
    #[test]
    fn concurrent_reader_never_sees_torn_or_out_of_order(
        cap in 3usize..6,
        writes in 100u64..1200,
        limit in 1usize..80,
    ) {
        let ring = Arc::new(LogRing::new(1 << cap));
        let writer = {
            let ring = ring.clone();
            std::thread::spawn(move || {
                for i in 0..writes {
                    ring.push(
                        Level::Debug,
                        i.wrapping_mul(31),
                        i,
                        "w",
                        &format!("payload {i}"),
                        &[("i", format!("{i}"))],
                    );
                }
            })
        };
        let mut cursor = 0u64;
        let mut accounted = 0u64;
        let mut last_seq: Option<u64> = None;
        while cursor < writes {
            let tail = ring.read_since(cursor, limit);
            prop_assert!(tail.next >= cursor, "cursor is monotone");
            accounted += tail.dropped + tail.records.len() as u64;
            for r in &tail.records {
                prop_assert_eq!(&r.message, &format!("payload {}", r.seq), "torn message");
                prop_assert_eq!(r.wall_micros, r.seq.wrapping_mul(31), "torn timestamp");
                prop_assert_eq!(r.virt_secs, r.seq, "torn virtual time");
                prop_assert_eq!(&r.fields[0].1, &format!("{}", r.seq), "torn field");
                if let Some(prev) = last_seq {
                    prop_assert!(r.seq > prev, "out-of-order: {} after {prev}", r.seq);
                }
                last_seq = Some(r.seq);
            }
            cursor = tail.next;
        }
        writer.join().unwrap();
        prop_assert_eq!(accounted, writes, "records + dropped cover the span");
    }
}
