//! Property tests for the §3.4 closed forms: the raw `increase` term is
//! non-negative for every wall time Eqs. 5/6 can produce (the invariant its
//! call sites assert now that the function no longer clamps), and the
//! closed forms agree with the simulator's continuous integrator.

use cluster::NodeId;
use proptest::prelude::*;
use sd_policy::models::{
    ideal_wall_time, increase, worst_case_wall_time, IdealModel, RateInputs, RateModel, Slot,
    WorstCaseModel,
};
use simkit::SimTime;
use slurm_sim::RunningJob;

const FULL: u32 = 48;

fn arb_slots() -> impl Strategy<Value = Vec<(Vec<u32>, u64)>> {
    prop::collection::vec(
        (prop::collection::vec(1u32..=FULL, 2..=2), 1u64..800),
        1..6,
    )
}

proptest! {
    /// Any Eq. 5/6 wall time satisfies `wall ≥ static work`, so the raw
    /// increase is non-negative — a negative value would mean the model and
    /// the work it integrates disagree.
    #[test]
    fn increase_non_negative_over_model_outputs(slots in arb_slots()) {
        let total_work: f64 = slots.iter().map(|(_, w)| *w as f64).sum();
        let model_slots: Vec<Slot> = slots
            .iter()
            .map(|(cores, w)| Slot { cpus_per_node: cores.clone(), static_work: *w as f64 })
            .collect();
        let ideal = ideal_wall_time(&model_slots, FULL);
        let worst = worst_case_wall_time(&model_slots, FULL);
        prop_assert!(increase(ideal, total_work) >= -1e-9, "ideal wall {ideal} < work {total_work}");
        prop_assert!(increase(worst, total_work) >= -1e-9, "worst wall {worst} < work {total_work}");
        // And the bound pairing: ideal increase ≤ worst-case increase.
        prop_assert!(increase(ideal, total_work) <= increase(worst, total_work) + 1e-9);
    }

    /// The closed forms invert the integrator: drive a job through an
    /// integer slot timeline, convert the banked work per slot into the
    /// paper's `Slot` records, and the closed-form wall time of those slots
    /// recovers exactly the wall time spent — so the raw `increase` over
    /// integrator-produced values is non-negative, the invariant call sites
    /// assert.
    #[test]
    fn closed_forms_invert_the_integrator(slots in arb_slots(), ideal in any::<bool>()) {
        let model: Box<dyn RateModel> = if ideal { Box::new(IdealModel) } else { Box::new(WorstCaseModel) };
        let mut job = RunningJob::new(
            SimTime(0),
            vec![NodeId(0), NodeId(1)],
            vec![FULL, FULL],
            FULL,
            1_000_000,
        );
        let mut now = 0u64;
        let mut paper_slots: Vec<Slot> = Vec::new();
        for (cores, wall) in &slots {
            let inputs = RateInputs { cores, full_cores: FULL, app: None, neighbour_mem: 0.0 };
            let rate = model.rate(&inputs);
            job.cores = cores.clone();
            job.set_rate(SimTime(now), rate);
            let before = job.work_done;
            now += wall;
            job.bank(SimTime(now));
            paper_slots.push(Slot {
                cpus_per_node: cores.clone(),
                static_work: job.work_done - before,
            });
        }
        let wall = if ideal {
            ideal_wall_time(&paper_slots, FULL)
        } else {
            worst_case_wall_time(&paper_slots, FULL)
        };
        prop_assert!(
            (wall - now as f64).abs() < 1e-6,
            "closed form {} vs wall actually spent {}",
            wall,
            now
        );
        let inc = increase(wall, job.work_done);
        prop_assert!(inc >= -1e-9, "negative increase {inc} from integrator-consistent inputs");
    }
}
