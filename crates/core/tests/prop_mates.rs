//! Property tests for mate selection (Eqs. 1–3): the heuristic must respect
//! every constraint and, for m ≤ 2, be *optimal* over the candidate list.

use cluster::JobId;
use proptest::prelude::*;
use sd_policy::mates::{pick_mates, Candidate};
use sd_policy::SdPolicyConfig;

fn arb_candidates() -> impl Strategy<Value = Vec<Candidate>> {
    prop::collection::vec((1u32..8, 0u32..1000), 1..24).prop_map(|raw| {
        let mut v: Vec<Candidate> = raw
            .into_iter()
            .enumerate()
            .map(|(i, (w, p))| Candidate {
                id: JobId(i as u64 + 1),
                weight: w,
                penalty: p as f64 / 10.0,
            })
            .collect();
        v.sort_by(|a, b| a.penalty.partial_cmp(&b.penalty).unwrap());
        v
    })
}

/// Brute force: all subsets of size ≤ m with Σw = target, min Σp.
fn brute_force(cands: &[Candidate], target: u32, m: usize) -> Option<f64> {
    let n = cands.len();
    let mut best: Option<f64> = None;
    for mask in 1u32..(1 << n.min(20)) {
        if (mask.count_ones() as usize) > m {
            continue;
        }
        let mut w = 0u32;
        let mut p = 0.0;
        for (i, c) in cands.iter().enumerate() {
            if mask & (1 << i) != 0 {
                w += c.weight;
                p += c.penalty;
            }
        }
        if w == target && best.is_none_or(|b| p < b) {
            best = Some(p);
        }
    }
    best
}

proptest! {
    /// The default (m = 2) search finds the brute-force optimum whenever one
    /// exists, and never fabricates a solution when none does.
    #[test]
    fn pair_search_is_optimal(cands in arb_candidates(), target in 1u32..12) {
        let cfg = SdPolicyConfig::default();
        let picked = pick_mates(&cands, target, 0, &cfg);
        let best = brute_force(&cands, target, 2);
        match (picked, best) {
            (Some(sel), Some(b)) => {
                prop_assert!((sel.performance_impact - b).abs() < 1e-9,
                    "heuristic {} vs optimum {}", sel.performance_impact, b);
            }
            (None, None) => {}
            (got, want) => {
                return Err(TestCaseError::fail(format!("mismatch: {got:?} vs {want:?}")));
            }
        }
    }

    /// Every selection satisfies the structural constraints: Σw = W,
    /// |mates| ≤ m, distinct mates, PI = Σ penalties.
    #[test]
    fn selections_respect_constraints(
        cands in arb_candidates(),
        target in 1u32..12,
        m in 1usize..4,
    ) {
        let cfg = SdPolicyConfig { max_mates: m, ..SdPolicyConfig::default() };
        if let Some(sel) = pick_mates(&cands, target, 0, &cfg) {
            prop_assert!(sel.mates.len() <= m);
            let mut ids = sel.mates.clone();
            ids.sort();
            ids.dedup();
            prop_assert_eq!(ids.len(), sel.mates.len(), "mates distinct");
            let (w, p): (u32, f64) = sel
                .mates
                .iter()
                .map(|id| {
                    let c = cands.iter().find(|c| c.id == *id).unwrap();
                    (c.weight, c.penalty)
                })
                .fold((0, 0.0), |(aw, ap), (w, p)| (aw + w, ap + p));
            prop_assert_eq!(w + sel.free_nodes, target, "Σ weights = W (Eq. 3)");
            prop_assert!((p - sel.performance_impact).abs() < 1e-9, "PI = Σ p (Eq. 1)");
        }
    }

    /// Larger m never yields a worse optimum (search-space monotonicity).
    #[test]
    fn more_mates_never_worse(cands in arb_candidates(), target in 1u32..12) {
        let pi = |m: usize| {
            pick_mates(
                &cands,
                target,
                0,
                &SdPolicyConfig { max_mates: m, ..SdPolicyConfig::default() },
            )
            .map(|s| s.performance_impact)
        };
        if let (Some(p2), Some(p3)) = (pi(2), pi(3)) {
            prop_assert!(p3 <= p2 + 1e-9, "m=3 ({p3}) worse than m=2 ({p2})");
        }
        if let (Some(p1), Some(p2)) = (pi(1), pi(2)) {
            prop_assert!(p2 <= p1 + 1e-9);
        }
    }
}
