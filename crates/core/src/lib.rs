//! # sd-policy — the Slowdown Driven scheduling policy
//!
//! The primary contribution of *"Holistic Slowdown Driven Scheduling and
//! Resource Management for Malleable Jobs"* (D'Amico, Jokanovic, Corbalan —
//! ICPP 2019), implemented against the `slurm-sim` substrate:
//!
//! * [`policy`] — Listing 1: the scheduling algorithm. For every queued job
//!   the static backfill trial runs first; when it fails, the policy
//!   estimates `static_end` (from the reservation profile) and `mall_end`
//!   (worst-case runtime model) and co-schedules the job onto shrunk *mates*
//!   only when the predicted slowdown improves.
//! * [`mates`] — Listing 2 / Eqs. 1–3: the NP-complete mate-selection
//!   problem and the paper's heuristic (penalty-sorted candidate list capped
//!   at `nm`, combinations of at most `m` mates, Σ weights = W).
//! * [`penalty`] — Eq. 4: `p = (wait + increase + req)/req`.
//! * [`maxsd`] — the MAX_SLOWDOWN cut-off: static values (MAXSD 5/10/50/∞)
//!   and the feedback-driven `DynAVGSD` variant.
//! * [`models`] — §3.4: the ideal (Eq. 5) and worst-case (Eq. 6) runtime
//!   models (implementation shared with the simulator), plus closed-form
//!   helpers used to property-test the simulator's work integrator.
//!
//! ```
//! use sd_policy::{SdPolicy, SdPolicyConfig, MaxSlowdown};
//! use slurm_sim::{run_trace, SlurmConfig, WorstCaseModel};
//! use workload::PaperWorkload;
//! use drom::SharingFactor;
//!
//! let w = PaperWorkload::W3Ricc;
//! let trace = w.generate(42, 0.02);
//! let policy = SdPolicy::new(SdPolicyConfig {
//!     max_slowdown: MaxSlowdown::Static(10.0),
//!     ..SdPolicyConfig::default()
//! });
//! let result = run_trace(
//!     w.cluster(0.02),
//!     SlurmConfig::default(),
//!     &trace,
//!     Box::new(WorstCaseModel),
//!     SharingFactor::HALF,
//!     policy,
//! );
//! assert_eq!(result.leftover_pending, 0);
//! ```

pub mod config;
pub mod mates;
pub mod maxsd;
pub mod models;
pub mod penalty;
pub mod policy;

pub use config::SdPolicyConfig;
pub use maxsd::MaxSlowdown;
pub use policy::SdPolicy;
