//! Mate penalty — the paper's Eq. 4.
//!
//! `pᵢ = (wait_time + increase + req_time) / req_time`
//!
//! "The penalty will give precedence to jobs that waited less in the queue
//! and jobs that request a larger amount of time, so the impact in slowdown
//! will be minimum." The `increase` term is the worst-case (Eq. 6) runtime
//! stretch over the co-residency window.

/// Eq. 4: estimated post-shrink slowdown of a mate.
///
/// * `wait` — seconds the mate spent queued before starting,
/// * `increase` — estimated runtime stretch from lending cores,
/// * `req_time` — the mate's user-requested wall time (the only duration the
///   scheduler can know — paper §3.2.2).
pub fn mate_penalty(wait: u64, increase: u64, req_time: u64) -> f64 {
    let req = req_time.max(1) as f64;
    (wait as f64 + increase as f64 + req) / req
}

/// Worst-case (Eq. 6) runtime increase of a mate shrunk to the fraction
/// `keep_fraction` of its nodes' cores for `overlap` seconds: during the
/// window it progresses at `keep_fraction`, so it must run an extra
/// `(1 − keep_fraction) · overlap` afterwards.
pub fn shrink_increase(keep_fraction: f64, overlap: u64) -> u64 {
    let f = keep_fraction.clamp(0.0, 1.0);
    ((1.0 - f) * overlap as f64).ceil() as u64
}

/// Wall-clock duration of the new (malleable-backfilled) job under the
/// worst-case model: it runs its whole life at `rate`, so
/// `wall = ceil(req_time / rate)` (this is `req_time + runtime_increase` in
/// Listing 1's terms).
pub fn malleable_wall_time(req_time: u64, rate: f64) -> u64 {
    debug_assert!(rate > 0.0);
    (req_time as f64 / rate).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn penalty_formula() {
        // wait 100, increase 50, req 150 → (100+50+150)/150 = 2.0
        assert!((mate_penalty(100, 50, 150) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn no_wait_no_increase_is_unit_penalty() {
        assert!((mate_penalty(0, 0, 500) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn penalty_prefers_long_requests() {
        // Same wait and increase: the longer job has the lower penalty —
        // the paper's fairness argument.
        let short = mate_penalty(600, 300, 600);
        let long = mate_penalty(600, 300, 86_400);
        assert!(long < short);
    }

    #[test]
    fn penalty_prefers_recent_starters() {
        let waited_long = mate_penalty(10_000, 100, 3_600);
        let waited_short = mate_penalty(10, 100, 3_600);
        assert!(waited_short < waited_long);
    }

    #[test]
    fn zero_req_time_guarded() {
        let p = mate_penalty(10, 10, 0);
        assert!(p.is_finite());
    }

    #[test]
    fn shrink_increase_half_rate() {
        // Shrunk to half speed for 1000 s → 500 s extra.
        assert_eq!(shrink_increase(0.5, 1000), 500);
        assert_eq!(shrink_increase(1.0, 1000), 0);
        assert_eq!(shrink_increase(0.0, 1000), 1000);
    }

    #[test]
    fn malleable_wall_time_inflates_by_rate() {
        assert_eq!(malleable_wall_time(1000, 0.5), 2000);
        assert_eq!(malleable_wall_time(1000, 1.0), 1000);
        assert_eq!(malleable_wall_time(999, 0.3), 3330);
    }
}
