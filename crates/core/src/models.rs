//! Runtime models for malleable jobs — the paper's §3.4.
//!
//! The executable models are shared with the simulator
//! ([`slurm_sim::rate`]); this module re-exports them under their paper
//! names and provides the **closed-form per-slot sums** of Eqs. 5 and 6,
//! used by the property tests to show the simulator's continuous work
//! integrator is exactly the equations' limit.
//!
//! * Eq. 5 (ideal): `increase = Σₜ (req_cpus / used_cpusₜ) · timeₜ − Σₜ timeₜ`
//!   — performance proportional to total assigned resources.
//! * Eq. 6 (worst case): same with `used` replaced by
//!   `min_n cpus_per_node(n, t) · nodes` — the least-served node paces the
//!   whole job.
//!
//! (The paper writes the sums as total runtime contributions; the increase
//! is that total minus the static duration.)

pub use slurm_sim::rate::{AppAwareModel, IdealModel, RateInputs, RateModel, WorstCaseModel};

/// One resource-configuration slot: the job held `cpus_per_node[i]` on each
/// of its nodes for `static_work` seconds of *static-equivalent* progress.
#[derive(Debug, Clone)]
pub struct Slot {
    pub cpus_per_node: Vec<u32>,
    /// Seconds of full-rate work completed during the slot.
    pub static_work: f64,
}

/// Wall-clock time needed to complete the slots under the **ideal** model
/// (Eq. 5): each work unit stretches by `req/used`.
pub fn ideal_wall_time(slots: &[Slot], full_cores: u32) -> f64 {
    slots
        .iter()
        .map(|s| {
            let used: u64 = s.cpus_per_node.iter().map(|&c| c as u64).sum();
            let req = full_cores as u64 * s.cpus_per_node.len() as u64;
            s.static_work * req as f64 / used.max(1) as f64
        })
        .sum()
}

/// Wall-clock time under the **worst-case** model (Eq. 6): the stretch is
/// `full / min_n(cpus_n)` per slot.
pub fn worst_case_wall_time(slots: &[Slot], full_cores: u32) -> f64 {
    slots
        .iter()
        .map(|s| {
            let min = s.cpus_per_node.iter().copied().min().unwrap_or(0).max(1);
            s.static_work * full_cores as f64 / min as f64
        })
        .sum()
}

/// Runtime **increase** (the paper's `increase` term): wall time minus the
/// static duration, returned **raw**.
///
/// A negative value means the wall-clock model disagrees with the static
/// duration it was integrated from — under Eqs. 5/6 the per-slot stretch is
/// ≥ 1, so `wall ≥ static` always holds for consistent inputs. Clamping here
/// (as an earlier revision did) masked exactly that class of integration
/// bug; the invariant is now pinned by property tests
/// (`tests/prop_models.rs` drives the simulator's integrator through random
/// timelines and asserts the raw increase stays non-negative), and any new
/// call site should assert it too rather than re-clamp.
pub fn increase(wall: f64, static_duration: f64) -> f64 {
    wall - static_duration
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(cpus: &[u32], work: f64) -> Slot {
        Slot {
            cpus_per_node: cpus.to_vec(),
            static_work: work,
        }
    }

    #[test]
    fn full_allocation_has_no_increase() {
        let slots = [slot(&[48, 48], 500.0)];
        assert_eq!(ideal_wall_time(&slots, 48), 500.0);
        assert_eq!(worst_case_wall_time(&slots, 48), 500.0);
    }

    #[test]
    fn half_allocation_doubles_wall_time() {
        let slots = [slot(&[24, 24], 500.0)];
        assert_eq!(ideal_wall_time(&slots, 48), 1000.0);
        assert_eq!(worst_case_wall_time(&slots, 48), 1000.0);
        assert_eq!(increase(1000.0, 500.0), 500.0);
    }

    #[test]
    fn increase_is_raw_not_clamped() {
        // A wall time below the static duration signals an inconsistent
        // model/integrator pair; the raw negative must surface.
        assert_eq!(increase(400.0, 500.0), -100.0);
    }

    #[test]
    fn increase_non_negative_for_model_wall_times() {
        // For wall times produced by Eqs. 5/6 the raw value is always ≥ 0 —
        // the invariant call sites assert.
        for cores in [&[1u32, 48][..], &[24, 24], &[48, 48], &[5, 40, 10]] {
            let work = 321.0;
            let slots = [slot(cores, work)];
            assert!(increase(ideal_wall_time(&slots, 48), work) >= 0.0);
            assert!(increase(worst_case_wall_time(&slots, 48), work) >= 0.0);
        }
    }

    #[test]
    fn unbalanced_slots_separate_the_models() {
        // One node full, one at half: ideal rate 0.75, worst 0.5.
        let slots = [slot(&[48, 24], 300.0)];
        assert!((ideal_wall_time(&slots, 48) - 400.0).abs() < 1e-9);
        assert!((worst_case_wall_time(&slots, 48) - 600.0).abs() < 1e-9);
    }

    #[test]
    fn multi_slot_timeline_accumulates() {
        let slots = [slot(&[24, 24], 100.0), slot(&[48, 48], 200.0), slot(&[48, 24], 60.0)];
        let ideal = 200.0 + 200.0 + 80.0;
        let worst = 200.0 + 200.0 + 120.0;
        assert!((ideal_wall_time(&slots, 48) - ideal).abs() < 1e-9);
        assert!((worst_case_wall_time(&slots, 48) - worst).abs() < 1e-9);
    }

    #[test]
    fn closed_form_matches_rate_models() {
        // For a single slot the closed form must equal work/rate with the
        // corresponding RateModel.
        let cpus = [36u32, 12];
        let work = 250.0;
        let inputs = RateInputs {
            cores: &cpus,
            full_cores: 48,
            app: None,
            neighbour_mem: 0.0,
        };
        let slots = [slot(&cpus, work)];
        let ideal_rate = IdealModel.rate(&inputs);
        let worst_rate = WorstCaseModel.rate(&inputs);
        assert!((ideal_wall_time(&slots, 48) - work / ideal_rate).abs() < 1e-9);
        assert!((worst_case_wall_time(&slots, 48) - work / worst_rate).abs() < 1e-9);
    }

    #[test]
    fn ideal_never_exceeds_worst_case() {
        let slots = [
            slot(&[48, 1], 10.0),
            slot(&[20, 30, 40], 70.0),
            slot(&[5], 3.0),
        ];
        assert!(ideal_wall_time(&slots, 48) <= worst_case_wall_time(&slots, 48) + 1e-9);
    }
}
