//! The MAX_SLOWDOWN cut-off (paper §3.2.2).
//!
//! `P` bounds the penalty a mate may accumulate: it "reduc\[es\] the eligible
//! mates to reduce the computation, and avoid\[s\] penalizing jobs that have a
//! high slowdown". Two implementations, exactly as the paper describes:
//!
//! 1. a **static value** chosen by the administrator (evaluated as MAXSD 5 /
//!    10 / 50 / ∞ in Figs. 1–3), computed against *user-estimated* times;
//! 2. a **dynamic value** (`DynAVGSD`): the average slowdown of the running
//!    jobs, refreshed "every time the controller is not busy" — here, once
//!    per scheduling pass — using real durations, which is what gives the
//!    variant its extra precision on Workload 2.

use simkit::SimTime;
use slurm_sim::SimState;

/// The cut-off policy for mate penalties.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MaxSlowdown {
    /// Fixed cut-off (MAXSD n).
    Static(f64),
    /// No cut-off (MAXSD infinite).
    Infinite,
    /// Feedback from the system: average slowdown of running jobs.
    DynAvg,
}

impl MaxSlowdown {
    /// The sweep evaluated in the paper's Figs. 1–3.
    pub fn paper_sweep() -> [MaxSlowdown; 5] {
        [
            MaxSlowdown::Static(5.0),
            MaxSlowdown::Static(10.0),
            MaxSlowdown::Static(50.0),
            MaxSlowdown::Infinite,
            MaxSlowdown::DynAvg,
        ]
    }

    pub fn label(&self) -> String {
        match self {
            MaxSlowdown::Static(v) => format!("MAXSD {}", v),
            MaxSlowdown::Infinite => "MAXSD inf".to_string(),
            MaxSlowdown::DynAvg => "DynAVGSD".to_string(),
        }
    }

    /// Resolves the numeric cut-off at this instant. For [`MaxSlowdown::DynAvg`]
    /// this is the current average estimated slowdown of running jobs.
    pub fn cutoff(&self, st: &SimState) -> f64 {
        match self {
            MaxSlowdown::Static(v) => *v,
            MaxSlowdown::Infinite => f64::INFINITY,
            MaxSlowdown::DynAvg => running_avg_slowdown(st),
        }
    }
}

/// Average *estimated final* slowdown of the currently running jobs, using
/// real durations: `((now − submit) + remaining_wall) / static_runtime`.
///
/// Returns `+∞` when nothing is running (nothing to protect, no filter).
pub fn running_avg_slowdown(st: &SimState) -> f64 {
    let now = st.now;
    let mut sum = 0.0;
    let mut n = 0u64;
    for id in st.running_ids() {
        let job = st.job(id);
        let Some(run) = job.running() else { continue };
        let total = job.spec.static_runtime;
        let predicted_end = run.predicted_end(now, total);
        let end = if predicted_end == SimTime::MAX {
            continue;
        } else {
            predicted_end
        };
        let response = end.since(job.spec.submit) as f64;
        sum += response / total.max(1) as f64;
        n += 1;
    }
    if n == 0 {
        f64::INFINITY
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{ClusterSpec, JobId};
    use drom::SharingFactor;
    use slurm_sim::{SlurmConfig, WorstCaseModel};

    fn state_with_running(jobs: Vec<swf::SwfJob>, start: &[u64]) -> SimState {
        let mut spec = ClusterSpec::ricc();
        spec.nodes = 8;
        let mut st = SimState::new(
            spec,
            SlurmConfig::default(),
            &swf::Trace::new(Default::default(), jobs),
            Box::new(WorstCaseModel),
            SharingFactor::HALF,
        );
        // Drain submit events, then start the requested jobs.
        while let Some(ev) = st.events.pop() {
            st.now = ev.time;
            st.dispatch(ev.payload);
        }
        for &id in start {
            assert!(st.start_static(JobId(id)));
        }
        st
    }

    #[test]
    fn static_and_infinite_cutoffs() {
        let st = state_with_running(vec![], &[]);
        assert_eq!(MaxSlowdown::Static(10.0).cutoff(&st), 10.0);
        assert_eq!(MaxSlowdown::Infinite.cutoff(&st), f64::INFINITY);
    }

    #[test]
    fn dynavg_empty_system_is_infinite() {
        let st = state_with_running(vec![], &[]);
        assert_eq!(MaxSlowdown::DynAvg.cutoff(&st), f64::INFINITY);
    }

    #[test]
    fn dynavg_tracks_running_jobs() {
        // Two jobs submitted at 0, started immediately, 100 s runtimes:
        // estimated slowdown of each = (0 + 100)/100 = 1.0.
        let st = state_with_running(
            vec![
                swf::SwfJob::for_simulation(1, 0, 100, 8, 200),
                swf::SwfJob::for_simulation(2, 0, 100, 8, 200),
            ],
            &[1, 2],
        );
        let avg = running_avg_slowdown(&st);
        assert!((avg - 1.0).abs() < 1e-9, "avg {avg}");
    }

    #[test]
    fn dynavg_reflects_waiting_before_start() {
        // Job submitted at 0 but the state clock has advanced to 100 when it
        // starts → estimated slowdown (100 + 100)/100 = 2.
        let mut st = state_with_running(vec![swf::SwfJob::for_simulation(1, 0, 100, 8, 200)], &[]);
        st.now = simkit::SimTime(100);
        assert!(st.start_static(JobId(1)));
        let avg = running_avg_slowdown(&st);
        assert!((avg - 2.0).abs() < 1e-9, "avg {avg}");
    }

    #[test]
    fn labels_match_paper_figures() {
        let labels: Vec<String> = MaxSlowdown::paper_sweep()
            .iter()
            .map(|m| m.label())
            .collect();
        assert_eq!(
            labels,
            vec!["MAXSD 5", "MAXSD 10", "MAXSD 50", "MAXSD inf", "DynAVGSD"]
        );
    }
}
