//! SD-Policy configuration.

use crate::maxsd::MaxSlowdown;

/// Tunables of the Slowdown Driven policy (paper §3.2–3.3).
#[derive(Debug, Clone, PartialEq)]
pub struct SdPolicyConfig {
    /// The penalty cut-off `P` (paper: MAX_SLOWDOWN).
    pub max_slowdown: MaxSlowdown,
    /// Maximum mates per co-schedule, the paper's `m`. "From our evaluation
    /// … we did not see improvements … increasing m over two."
    pub max_mates: usize,
    /// Candidate-list cap, the paper's `nm`: only the `nm` lowest-penalty
    /// mates are considered.
    pub candidate_cap: usize,
    /// "Options such as including free nodes to reduce fragmentation … are
    /// supported": allow idle nodes to count toward the weight constraint.
    pub include_free_nodes: bool,
    /// Maximum flexible (malleable) trials per scheduling pass; bounds
    /// scheduler latency on deep queues, like SLURM's `bf_max_job_start`.
    pub max_trials_per_pass: usize,
    /// The expand half of the resource manager: once the queue is drained,
    /// move shrunk borrowers onto idle whole nodes at full width (DMR-style
    /// node reconfiguration), returning their mates to full rate. Without it
    /// co-scheduled pairs stay shrunk while the machine idles — the
    /// makespan/energy regression.
    pub expand_on_idle: bool,
}

impl Default for SdPolicyConfig {
    fn default() -> Self {
        SdPolicyConfig {
            max_slowdown: MaxSlowdown::DynAvg,
            max_mates: 2,
            candidate_cap: 64,
            include_free_nodes: false,
            max_trials_per_pass: 32,
            expand_on_idle: true,
        }
    }
}

impl SdPolicyConfig {
    /// Paper label for experiment tables: `MAXSD 10`, `DynAVGSD`, …
    pub fn label(&self) -> String {
        self.max_slowdown.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_optima() {
        let c = SdPolicyConfig::default();
        assert_eq!(c.max_mates, 2, "m = 2 is the paper's optimal value");
        assert_eq!(c.max_slowdown, MaxSlowdown::DynAvg);
        assert!(!c.include_free_nodes);
    }

    #[test]
    fn label_delegates_to_cutoff() {
        let c = SdPolicyConfig {
            max_slowdown: MaxSlowdown::Static(10.0),
            ..SdPolicyConfig::default()
        };
        assert_eq!(c.label(), "MAXSD 10");
    }
}
