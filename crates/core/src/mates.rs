//! Mate selection — the paper's Eqs. 1–3 and Listing 2.
//!
//! Minimise the Performance Impact `PI = Σ xᵢ·pᵢ` (Eq. 1) subject to
//! `pᵢ < P` (Eq. 2, the MAX_SLOWDOWN cut-off) and `Σ xᵢ·wᵢ = W` (Eq. 3,
//! whole-node weights). Selecting mates is NP-complete; the paper's
//! heuristic sorts candidates by penalty, truncates to `nm`, and tries
//! combinations of at most `m` mates (with `m = 2` found optimal).
//!
//! For `m ≤ 2` the exact optimum over the truncated list is found in
//! `O(nm)` by bucketing candidates per weight (the best pair for a weight
//! split is always the two lowest-penalty candidates of the buckets). For
//! `m ≥ 3` a bounded depth-first search over the buckets is used.

use crate::config::SdPolicyConfig;
use crate::penalty::{mate_penalty, shrink_increase};
use cluster::JobId;
use simkit::SimTime;
use slurm_sim::SimState;
use std::collections::BTreeMap;

/// A scored candidate mate.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    pub id: JobId,
    /// Whole nodes the mate occupies (its weight `wᵢ`).
    pub weight: u32,
    /// Eq. 4 penalty for the concrete co-schedule being considered.
    pub penalty: f64,
}

/// The chosen mate set (plus optional idle nodes).
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    pub mates: Vec<JobId>,
    /// Idle nodes included toward the weight constraint (0 unless
    /// `include_free_nodes` is on).
    pub free_nodes: u32,
    /// The objective value `PI` (Eq. 1).
    pub performance_impact: f64,
}

/// Collects, filters and scores candidate mates for a job needing
/// `mall_wall` seconds of co-residency (paper: `filter_and_sort`).
///
/// Filters applied, in order:
/// * eligibility (running, malleable, full width, not already sharing) —
///   pre-maintained by the simulator's mate pool;
/// * the finish-inside constraint: the new job's requested end
///   (`now + mall_wall`) must not exceed the mate's requested end;
/// * the cut-off `pᵢ < P` (Eq. 2);
/// * the `nm` cap on the candidate list.
pub fn collect_candidates(
    st: &SimState,
    mall_wall: u64,
    cutoff: f64,
    cfg: &SdPolicyConfig,
) -> Vec<Candidate> {
    let now = st.now;
    let new_end = now.after(mall_wall);
    // Index prune (incremental mode): the running-by-end index knows the
    // latest requested end among *all* running jobs (a superset of the mate
    // pool). If even that falls short of the new job's end, the
    // finish-inside constraint rejects every candidate — skip the
    // scan-and-score entirely. The outcome is identical either way; the
    // legacy path keeps the unconditional scan as the perf baseline.
    if st.cfg.incremental && st.latest_running_req_end().is_none_or(|latest| latest < new_end) {
        return Vec::new();
    }
    let full = st.spec().node.cores();
    let mut out: Vec<Candidate> = Vec::with_capacity(cfg.candidate_cap.min(64));
    // The pool is sorted by base penalty ((wait+req)/req); the full Eq. 4
    // penalty adds increase/req, so pool order is a good (not perfect)
    // visiting order. We scan a bounded multiple of the cap, score exactly,
    // then sort and truncate — the paper's sort-then-truncate. The pool
    // entries carry every filter/score input (denormalised at insertion),
    // so the scan never touches the job table.
    let scan_limit = cfg.candidate_cap.saturating_mul(4).max(16);
    for e in st.eligible_mates().iter().take(scan_limit) {
        // Finish-inside-mate constraint (requested-time based, §3.2.4).
        if e.req_end < new_end {
            continue;
        }
        let keep = st.sharing().keep_cores(full, e.ranks_per_node);
        if keep >= full {
            continue; // nothing can be freed
        }
        let increase = shrink_increase(keep as f64 / full as f64, mall_wall);
        let p = mate_penalty(e.wait, increase, e.req_time);
        if p >= cutoff {
            continue;
        }
        out.push(Candidate {
            id: e.id,
            weight: e.weight,
            penalty: p,
        });
    }
    out.sort_by(|a, b| {
        a.penalty
            .partial_cmp(&b.penalty)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.id.cmp(&b.id))
    });
    out.truncate(cfg.candidate_cap);
    out
}

/// Finds the minimum-PI combination of ≤ `max_mates` candidates whose
/// weights sum to exactly `target` (Eq. 3), optionally topping up with idle
/// nodes. Returns `None` when no combination exists.
pub fn pick_mates(
    candidates: &[Candidate],
    target: u32,
    free_nodes_available: u32,
    cfg: &SdPolicyConfig,
) -> Option<Selection> {
    if target == 0 || candidates.is_empty() {
        return None;
    }
    let free = if cfg.include_free_nodes {
        free_nodes_available.min(target.saturating_sub(1))
    } else {
        0
    };
    let mut best: Option<Selection> = None;
    // Using f idle nodes reduces the weight the mates must cover. Prefer
    // more idle nodes first (less shrink impact), but still compare by PI.
    for used_free in (0..=free).rev() {
        let need = target - used_free;
        let found = match cfg.max_mates {
            0 => None,
            1 => best_single(candidates, need),
            2 => best_pair(candidates, need),
            m => best_combo(candidates, need, m),
        };
        if let Some((mates, pi)) = found {
            let better = match &best {
                None => true,
                Some(b) => pi < b.performance_impact,
            };
            if better {
                best = Some(Selection {
                    mates,
                    free_nodes: used_free,
                    performance_impact: pi,
                });
            }
        }
    }
    best
}

/// Cheapest single candidate of exactly the needed weight (m = 1).
fn best_single(candidates: &[Candidate], need: u32) -> Option<(Vec<JobId>, f64)> {
    candidates
        .iter()
        .filter(|c| c.weight == need)
        .map(|c| (vec![c.id], c.penalty))
        .next() // list is penalty-sorted
}

/// Exact minimum over singles and pairs: bucket candidates by weight; the
/// optimal pair for a split (w, need−w) is the cheapest candidate of each
/// bucket (or the two cheapest of the same bucket when w = need−w).
fn best_pair(candidates: &[Candidate], need: u32) -> Option<(Vec<JobId>, f64)> {
    // weight → up to two cheapest candidates (list is penalty-sorted).
    let mut buckets: BTreeMap<u32, [Option<&Candidate>; 2]> = BTreeMap::new();
    for c in candidates {
        let slot = buckets.entry(c.weight).or_insert([None, None]);
        if slot[0].is_none() {
            slot[0] = Some(c);
        } else if slot[1].is_none() {
            slot[1] = Some(c);
        }
    }
    let mut best: Option<(Vec<JobId>, f64)> = None;
    let mut consider = |mates: Vec<JobId>, pi: f64| {
        if best.as_ref().is_none_or(|(_, b)| pi < *b) {
            best = Some((mates, pi));
        }
    };
    // Singles.
    if let Some([Some(c), _]) = buckets.get(&need) {
        consider(vec![c.id], c.penalty);
    }
    // Pairs.
    for (&w1, slot1) in buckets.range(..=need / 2) {
        let w2 = need - w1;
        if w2 < w1 {
            continue;
        }
        if w1 == w2 {
            if let [Some(a), Some(b)] = slot1 {
                consider(vec![a.id, b.id], a.penalty + b.penalty);
            }
        } else if let (Some(a), Some([Some(b), _])) = (slot1[0], buckets.get(&w2)) {
            consider(vec![a.id, b.id], a.penalty + b.penalty);
        }
    }
    best
}

/// Bounded DFS for `m ≥ 3` (ablation configurations): candidates are
/// penalty-sorted, so the first complete combination per branch is cheap and
/// pruning on the running PI keeps the search small for `nm ≤ 64`.
fn best_combo(candidates: &[Candidate], need: u32, max_mates: usize) -> Option<(Vec<JobId>, f64)> {
    fn dfs(
        cands: &[Candidate],
        start: usize,
        need: u32,
        left: usize,
        acc: &mut Vec<JobId>,
        acc_pi: f64,
        best: &mut Option<(Vec<JobId>, f64)>,
    ) {
        if need == 0 {
            if best.as_ref().is_none_or(|(_, b)| acc_pi < *b) {
                *best = Some((acc.clone(), acc_pi));
            }
            return;
        }
        if left == 0 || start >= cands.len() {
            return;
        }
        if let Some((_, b)) = best {
            if acc_pi >= *b {
                return; // prune: penalties are non-negative
            }
        }
        for i in start..cands.len() {
            let c = &cands[i];
            if c.weight > need {
                continue;
            }
            acc.push(c.id);
            dfs(cands, i + 1, need - c.weight, left - 1, acc, acc_pi + c.penalty, best);
            acc.pop();
        }
    }
    let mut best = None;
    let mut acc = Vec::with_capacity(max_mates);
    dfs(candidates, 0, need, max_mates, &mut acc, 0.0, &mut best);
    best
}

/// Wall-clock end instant of a co-schedule beginning now (helper shared
/// with the policy; exposed for tests).
pub fn mall_end(now: SimTime, mall_wall: u64) -> SimTime {
    now.after(mall_wall)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(id: u64, weight: u32, penalty: f64) -> Candidate {
        Candidate {
            id: JobId(id),
            weight,
            penalty,
        }
    }

    fn cfg() -> SdPolicyConfig {
        SdPolicyConfig::default()
    }

    #[test]
    fn single_exact_weight_preferred_when_cheapest() {
        let cands = vec![cand(1, 4, 1.5), cand(2, 2, 1.0), cand(3, 2, 1.1)];
        let sel = pick_mates(&cands, 4, 0, &cfg()).unwrap();
        // Single (p=1.5) vs pair 2+3 (p=2.1): single wins.
        assert_eq!(sel.mates, vec![JobId(1)]);
        assert!((sel.performance_impact - 1.5).abs() < 1e-12);
    }

    #[test]
    fn pair_beats_expensive_single() {
        let cands = vec![cand(1, 4, 9.0), cand(2, 2, 1.0), cand(3, 2, 1.1)];
        let sel = pick_mates(&cands, 4, 0, &cfg()).unwrap();
        assert_eq!(sel.mates, vec![JobId(2), JobId(3)]);
        assert!((sel.performance_impact - 2.1).abs() < 1e-12);
    }

    #[test]
    fn same_weight_pair_uses_two_cheapest() {
        let cands = vec![cand(1, 3, 2.0), cand(2, 3, 1.0), cand(3, 3, 3.0)];
        // Candidates must be penalty-sorted (collect_candidates guarantees).
        let mut sorted = cands.clone();
        sorted.sort_by(|a, b| a.penalty.partial_cmp(&b.penalty).unwrap());
        let sel = pick_mates(&sorted, 6, 0, &cfg()).unwrap();
        assert_eq!(sel.mates.len(), 2);
        assert!(sel.mates.contains(&JobId(2)) && sel.mates.contains(&JobId(1)));
        assert!((sel.performance_impact - 3.0).abs() < 1e-12);
    }

    #[test]
    fn no_combination_returns_none() {
        let cands = vec![cand(1, 3, 1.0), cand(2, 3, 1.0)];
        assert!(pick_mates(&cands, 5, 0, &cfg()).is_none());
        assert!(pick_mates(&cands, 7, 0, &cfg()).is_none());
        assert!(pick_mates(&[], 2, 0, &cfg()).is_none());
    }

    #[test]
    fn mates_never_exceed_two_by_default() {
        let cands = vec![cand(1, 1, 0.1), cand(2, 1, 0.1), cand(3, 1, 0.1)];
        // Needs 3 × weight-1 mates but m=2 → impossible.
        assert!(pick_mates(&cands, 3, 0, &cfg()).is_none());
    }

    #[test]
    fn three_mates_found_when_m_is_three() {
        let cands = vec![cand(1, 1, 0.1), cand(2, 1, 0.2), cand(3, 1, 0.3), cand(4, 2, 5.0)];
        let cfg3 = SdPolicyConfig {
            max_mates: 3,
            ..cfg()
        };
        let sel = pick_mates(&cands, 3, 0, &cfg3).unwrap();
        assert_eq!(sel.mates, vec![JobId(1), JobId(2), JobId(3)]);
        assert!((sel.performance_impact - 0.6).abs() < 1e-12);
    }

    #[test]
    fn dfs_matches_pair_search_for_m2() {
        let cands = vec![
            cand(1, 2, 1.3),
            cand(2, 3, 1.7),
            cand(3, 5, 2.0),
            cand(4, 2, 2.5),
            cand(5, 3, 0.9),
        ];
        let mut sorted = cands.clone();
        sorted.sort_by(|a, b| a.penalty.partial_cmp(&b.penalty).unwrap());
        let pair = best_pair(&sorted, 5).unwrap();
        let combo = best_combo(&sorted, 5, 2).unwrap();
        assert!((pair.1 - combo.1).abs() < 1e-12);
    }

    #[test]
    fn free_nodes_reduce_required_weight() {
        let cands = vec![cand(1, 2, 1.0)];
        let with_free = SdPolicyConfig {
            include_free_nodes: true,
            ..cfg()
        };
        // Target 4, only a weight-2 mate: impossible without free nodes…
        assert!(pick_mates(&cands, 4, 0, &cfg()).is_none());
        // …possible with 2 idle nodes.
        let sel = pick_mates(&cands, 4, 2, &with_free).unwrap();
        assert_eq!(sel.free_nodes, 2);
        assert_eq!(sel.mates, vec![JobId(1)]);
    }

    #[test]
    fn free_nodes_cannot_cover_everything() {
        // At least one mate must participate (otherwise it's a static start).
        let with_free = SdPolicyConfig {
            include_free_nodes: true,
            ..cfg()
        };
        let cands = vec![cand(1, 2, 1.0)];
        let sel = pick_mates(&cands, 2, 10, &with_free).unwrap();
        assert_eq!(sel.free_nodes, 0, "free nodes capped at target-1");
        assert_eq!(sel.mates, vec![JobId(1)]);
    }
}
