//! The SD-Policy scheduler — the paper's Listing 1.
//!
//! ```text
//! schedule(new_job)
//!   if !(nodes = select_nodes(j, free_nodes, null))     ← static trial
//!       if !malleable(j) return
//!   else run_job(j, nodes)
//!   static_end = get_wait_time(j) + j.req_time          ← profile estimate
//!   mall_end   = j.req_time + runtime_increase(j)       ← worst-case model
//!   if static_end > mall_end
//!       s_mates = select_nodes(j, free_nodes, nodes)    ← Listing 2
//!       if s_mates
//!           update_stats(j, s_mates)
//!           run_job(j, get_nodelist(s_mates))
//! ```
//!
//! The static trial and the backfill bookkeeping are the shared
//! [`slurm_sim::backfill_pass`]; this module contributes the *flexible hook*
//! that runs "for each job right after the static trial" (§3.1).

use crate::config::SdPolicyConfig;
use crate::mates::{collect_candidates, pick_mates};
use crate::penalty::malleable_wall_time;
use cluster::JobId;
use simkit::SimTime;
use slurm_sim::{backfill_pass, Availability, DirtyFlags, Scheduler, SimState};

/// The Slowdown Driven policy.
#[derive(Debug, Clone)]
pub struct SdPolicy {
    pub cfg: SdPolicyConfig,
    /// MAX_SLOWDOWN cut-off resolved once per scheduling pass ("updated
    /// every time the controller is not busy", §3.2.2).
    pass_cutoff: Option<f64>,
    trials_this_pass: usize,
}

impl SdPolicy {
    pub fn new(cfg: SdPolicyConfig) -> Self {
        SdPolicy {
            cfg,
            pass_cutoff: None,
            trials_this_pass: 0,
        }
    }

    /// Cut-off for this pass, computing the DynAVGSD feedback lazily.
    fn cutoff(&mut self, st: &SimState) -> f64 {
        if let Some(c) = self.pass_cutoff {
            return c;
        }
        let c = self.cfg.max_slowdown.cutoff(st);
        self.pass_cutoff = Some(c);
        c
    }

    /// The malleable trial for one job that failed the static trial.
    /// Returns `true` when the job was started through co-scheduling.
    ///
    /// `est_static_start` is `None` when the pass did not need the job's
    /// est for its own bookkeeping (EASY non-head); it is resolved here,
    /// *only* for jobs that actually reach a trial — the cheap disqualifiers
    /// (trial budget, non-malleable) come first. An infeasible est
    /// (`SimTime::MAX`) bails before the trial budget is charged, exactly
    /// as the old always-computed flow never called the hook for such jobs.
    fn try_malleable<A: Availability>(
        &mut self,
        st: &mut SimState,
        id: JobId,
        est_static_start: Option<SimTime>,
        profile: &mut A,
    ) -> bool {
        if self.trials_this_pass >= self.cfg.max_trials_per_pass {
            return false;
        }
        let (malleable, req_time, req_nodes, ranks) = {
            let s = &st.job(id).spec;
            (s.malleable, s.req_time, s.req_nodes, s.ranks_per_node)
        };
        if !malleable {
            return false;
        }
        let est_static_start = match est_static_start {
            Some(e) => e,
            None => {
                let e = profile.earliest_start(req_nodes, req_time, st.now);
                if e == SimTime::MAX {
                    return false;
                }
                debug_assert!(e > st.now, "the static trial already failed");
                e
            }
        };
        self.trials_this_pass += 1;

        // Planned (worst-case, §3.4) rate if co-scheduled: the freed share
        // of each node. All trace jobs share the configured ranks-per-node,
        // so the plan rate is uniform across mates.
        let full = st.spec().node.cores();
        let freed = st.sharing().freed_cores(full, ranks);
        if freed == 0 {
            return false;
        }
        let plan_rate = freed as f64 / full as f64;
        let mall_wall = malleable_wall_time(req_time, plan_rate);

        // Listing 1's condition: only co-schedule when the estimated end
        // improves over waiting for a static allocation.
        let static_end = est_static_start.after(req_time);
        let mall_end = st.now.after(mall_wall);
        if static_end <= mall_end {
            return false;
        }

        let cutoff = self.cutoff(st);
        let candidates = collect_candidates(st, mall_wall, cutoff, &self.cfg);
        if candidates.is_empty() {
            return false;
        }
        let free_avail = st.cluster.empty_node_count();
        let Some(selection) = pick_mates(&candidates, req_nodes, free_avail, &self.cfg) else {
            return false;
        };
        if st
            .co_schedule(id, &selection.mates, selection.free_nodes)
            .is_err()
        {
            return false;
        }
        // In-place pass-profile delta (incremental mode; the legacy path
        // rebuilds instead): a malleable start changes availability only
        // through the idle nodes it took — the shared mate nodes keep their
        // predicted release because the finish-inside constraint caps the
        // borrower's requested end at the mates'.
        if st.cfg.incremental && selection.free_nodes > 0 {
            let req_end = st.job(id).running().expect("just started").req_end;
            profile.reserve(st.now, req_end.since(st.now), selection.free_nodes);
        }
        true
    }
}

impl Default for SdPolicy {
    fn default() -> Self {
        SdPolicy::new(SdPolicyConfig::default())
    }
}

impl Scheduler for SdPolicy {
    fn schedule(&mut self, st: &mut SimState) {
        self.pass_cutoff = None; // refresh DynAVGSD feedback per pass
        self.trials_this_pass = 0;
        let mut profile = backfill_pass(st, |st, id, est, profile| {
            self.try_malleable(st, id, est, profile)
        });
        // Expand side: idle whole nodes that no pending job is counting on
        // (per the end-of-pass profile, reservations included) can host
        // shrunk borrowers at full width, returning their mates to full
        // rate. Relocation is itself a backfill decision: the borrower's
        // remaining *requested* wall time must fit before any reservation.
        if self.cfg.expand_on_idle && st.cluster.empty_node_count() > 0 {
            for id in st.shrunk_borrowers() {
                let (width, remaining) = {
                    let job = st.job(id);
                    let run = job.running().expect("shrunk borrower runs");
                    // Remaining *requested* work at full width: req_time
                    // minus progress (DMR reports iteration progress, so the
                    // scheduler may use it — same liberty as DynAVGSD).
                    let left = (job.spec.req_time as f64 - run.work_done).ceil();
                    (run.nodes.len() as u32, (left.max(1.0)) as u64)
                };
                // Same query under both settings: the linear sweep is pinned
                // against the legacy oracle by a property test, so the
                // legacy path no longer needs the quadratic scan here.
                let start_now = profile.earliest_start(width, remaining, st.now);
                if st.cluster.empty_node_count() < width || start_now != st.now {
                    continue;
                }
                if st.relocate_borrower(id) {
                    profile.reserve(st.now, remaining, width);
                }
            }
        }
        st.recycle_pass_profile(profile);
    }

    /// A pure-capacity change can only matter if there is a queue to serve
    /// or a shrunk borrower that idle nodes could now host; otherwise the
    /// pass is a provable no-op and the controller may skip it.
    fn pass_needed(&self, st: &SimState, dirty: DirtyFlags) -> bool {
        dirty.queue
            || (dirty.capacity
                && (!st.queue.is_empty()
                    || (self.cfg.expand_on_idle
                        && st.has_shrunk_borrowers()
                        && st.cluster.empty_node_count() > 0)))
    }

    fn name(&self) -> &'static str {
        "sd-policy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxsd::MaxSlowdown;
    use cluster::ClusterSpec;
    use drom::SharingFactor;
    use slurm_sim::{run_trace, SlurmConfig, StaticBackfill, WorstCaseModel};
    use swf::{SwfJob, Trace};

    fn spec(nodes: u32) -> ClusterSpec {
        let mut s = ClusterSpec::ricc(); // 8-core nodes
        s.nodes = nodes;
        s
    }

    fn job(id: u64, submit: u64, run: u64, nodes: u64, req: u64) -> SwfJob {
        SwfJob::for_simulation(id, submit, run, nodes * 8, req)
    }

    fn run_policy(jobs: Vec<SwfJob>, nodes: u32, cfg: SdPolicyConfig) -> slurm_sim::SimResult {
        run_trace(
            spec(nodes),
            SlurmConfig {
                self_check: true,
                ..SlurmConfig::default()
            },
            &Trace::new(Default::default(), jobs),
            Box::new(WorstCaseModel),
            SharingFactor::HALF,
            SdPolicy::new(cfg),
        )
    }

    #[test]
    fn co_schedules_when_slowdown_improves() {
        // J1 fills the machine for 10 000 s. J2 (short) would wait 10 000 s
        // statically; malleably it runs at half rate → 200 s. Clear win.
        let res = run_policy(
            vec![job(1, 0, 10_000, 2, 10_000), job(2, 10, 100, 2, 100)],
            2,
            SdPolicyConfig {
                max_slowdown: MaxSlowdown::Infinite,
                ..SdPolicyConfig::default()
            },
        );
        assert_eq!(res.stats.started_malleable, 1);
        let o2 = res.outcomes.iter().find(|o| o.id.0 == 2).unwrap();
        assert_eq!(o2.wait(), 0, "J2 started immediately via malleability");
        assert_eq!(o2.runtime(), 200, "stretched by the worst-case model");
        assert!(o2.malleable_backfilled);
        // The mate was stretched but not past its requested limit horizon.
        let o1 = res.outcomes.iter().find(|o| o.id.0 == 1).unwrap();
        assert!(o1.was_mate);
        assert_eq!(o1.runtime(), 10_100, "mate lost 100 s (half rate for 200 s)");
    }

    #[test]
    fn no_co_schedule_when_static_is_sooner() {
        // J1 ends at 100; J2 would wait only 90 s statically but lose 100 s
        // by running at half rate → static wins, no malleability.
        let res = run_policy(
            vec![job(1, 0, 100, 2, 100), job(2, 10, 100, 2, 100)],
            2,
            SdPolicyConfig {
                max_slowdown: MaxSlowdown::Infinite,
                ..SdPolicyConfig::default()
            },
        );
        assert_eq!(res.stats.started_malleable, 0);
        let o2 = res.outcomes.iter().find(|o| o.id.0 == 2).unwrap();
        assert_eq!(o2.start.secs(), 100);
        assert_eq!(o2.runtime(), 100);
    }

    #[test]
    fn cutoff_filters_all_mates() {
        // With a cut-off of 1.0 every mate's penalty (≥ 1 + increase/req)
        // fails Eq. 2 → behaves like static backfill.
        let res = run_policy(
            vec![job(1, 0, 10_000, 2, 10_000), job(2, 10, 100, 2, 100)],
            2,
            SdPolicyConfig {
                max_slowdown: MaxSlowdown::Static(1.0),
                ..SdPolicyConfig::default()
            },
        );
        assert_eq!(res.stats.started_malleable, 0);
    }

    #[test]
    fn finish_inside_constraint_blocks_long_jobs() {
        // J2's malleable duration (2 × 6000 = 12 000) exceeds the mate's
        // remaining requested window (10 000) → not admitted.
        let res = run_policy(
            vec![job(1, 0, 10_000, 2, 10_000), job(2, 10, 6_000, 2, 6_000)],
            2,
            SdPolicyConfig {
                max_slowdown: MaxSlowdown::Infinite,
                ..SdPolicyConfig::default()
            },
        );
        assert_eq!(res.stats.started_malleable, 0);
        let o2 = res.outcomes.iter().find(|o| o.id.0 == 2).unwrap();
        assert_eq!(o2.start.secs(), 10_000);
    }

    #[test]
    fn weight_constraint_selects_two_mates() {
        // Two 1-node mates serve a 2-node arrival (Σw = W with m = 2).
        let res = run_policy(
            vec![
                job(1, 0, 10_000, 1, 10_000),
                job(2, 0, 10_000, 1, 10_000),
                job(3, 10, 100, 2, 100),
            ],
            2,
            SdPolicyConfig {
                max_slowdown: MaxSlowdown::Infinite,
                ..SdPolicyConfig::default()
            },
        );
        assert_eq!(res.stats.started_malleable, 1);
        assert_eq!(res.stats.unique_mates, 2);
        let o3 = res.outcomes.iter().find(|o| o.id.0 == 3).unwrap();
        assert_eq!(o3.wait(), 0);
        assert_eq!(o3.nodes, 2);
    }

    #[test]
    fn static_jobs_never_touched() {
        // Malleability disabled ⇒ SD-Policy degenerates to static backfill
        // (the paper's mixed-workload support, worst case).
        let jobs: Vec<SwfJob> = (1..=30)
            .map(|i| job(i, i * 11, 200 + i * 13, 1 + i % 3, 500 + i * 13))
            .collect();
        let static_res = run_trace(
            spec(4),
            SlurmConfig {
                malleable_fraction: 0.0,
                ..SlurmConfig::default()
            },
            &Trace::new(Default::default(), jobs.clone()),
            Box::new(WorstCaseModel),
            SharingFactor::HALF,
            StaticBackfill,
        );
        let sd_res = run_trace(
            spec(4),
            SlurmConfig {
                malleable_fraction: 0.0,
                ..SlurmConfig::default()
            },
            &Trace::new(Default::default(), jobs),
            Box::new(WorstCaseModel),
            SharingFactor::HALF,
            SdPolicy::default(),
        );
        assert_eq!(static_res.outcomes, sd_res.outcomes);
        assert_eq!(sd_res.stats.started_malleable, 0);
    }

    #[test]
    fn improves_slowdown_on_congested_workload() {
        // A congested stream of short jobs behind long fillers: SD-Policy
        // must beat static backfill on average slowdown (the paper's
        // headline claim).
        // Weight constraint (Eq. 3) needs mates whose node counts sum to
        // exactly W, so 1-node arrivals need 1-node mates.
        let mut jobs = Vec::new();
        let mut id = 1;
        for f in 0..4u64 {
            jobs.push(job(id, f, 20_000, 1, 22_000));
            id += 1;
        }
        for wave in 0..6u64 {
            let t0 = 100 + wave * 3_000;
            for k in 0..6u64 {
                jobs.push(job(id, t0 + k * 37, 300, 1, 400));
                id += 1;
            }
        }
        let static_res = run_trace(
            spec(4),
            SlurmConfig::default(),
            &Trace::new(Default::default(), jobs.clone()),
            Box::new(WorstCaseModel),
            SharingFactor::HALF,
            StaticBackfill,
        );
        let sd_res = run_policy(
            jobs,
            4,
            SdPolicyConfig {
                max_slowdown: MaxSlowdown::Static(50.0),
                ..SdPolicyConfig::default()
            },
        );
        assert!(sd_res.stats.started_malleable > 0);
        assert!(
            sd_res.mean_slowdown() < static_res.mean_slowdown(),
            "SD {} vs static {}",
            sd_res.mean_slowdown(),
            static_res.mean_slowdown()
        );
        assert_eq!(sd_res.leftover_pending, 0);
        assert_eq!(sd_res.leftover_running, 0);
    }

    #[test]
    fn dynavg_cutoff_runs_end_to_end() {
        let jobs: Vec<SwfJob> = (1..=40)
            .map(|i| job(i, i * 29, 150 + (i * 37) % 800, 1 + i % 4, 1_000))
            .collect();
        let res = run_policy(jobs, 4, SdPolicyConfig::default());
        assert_eq!(res.outcomes.len(), 40);
        assert_eq!(res.leftover_pending, 0);
    }

    #[test]
    fn include_free_nodes_enables_partial_idle_starts() {
        // 3-node machine: J1 holds 2 nodes for long; 1 node idle. J2 wants
        // 2 nodes → static fails, but mate(1 node worth? J1 weight 2)…
        // With free nodes: J1 not needed for full weight — selection uses
        // mate weight 2 only; so craft: J1 weight 1, J2 wants 2, 1 idle.
        let res = run_trace(
            spec(3),
            SlurmConfig {
                self_check: true,
                ..SlurmConfig::default()
            },
            &Trace::new(
                Default::default(),
                vec![
                    job(1, 0, 10_000, 1, 10_000), // runs on node A
                    job(2, 0, 10_000, 2, 10_000), // runs on nodes B, C
                    job(3, 10, 100, 2, 100),      // wants 2 nodes
                ],
            ),
            Box::new(WorstCaseModel),
            SharingFactor::HALF,
            SdPolicy::new(SdPolicyConfig {
                max_slowdown: MaxSlowdown::Infinite,
                include_free_nodes: true,
                ..SdPolicyConfig::default()
            }),
        );
        // All three nodes busy → no free nodes; fall back to mate-only.
        // (This test exercises the path; the free-node case is covered in
        // mates::tests and the integration suite.)
        assert_eq!(res.outcomes.len(), 3);
        assert_eq!(res.leftover_pending, 0);
    }
}
