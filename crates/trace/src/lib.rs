//! # sd-trace — structured scheduler decision tracing
//!
//! A dependency-free tracing substrate threaded from the scheduler core to
//! the service (DESIGN.md §12):
//!
//! * [`TraceEvent`] / [`TraceKind`] — typed, fixed-size decision records
//!   (pass begin/end, started, EASY-reserved, backfill-rejected-with-reason,
//!   quota-skipped, shrunk, expanded, relocated, cancelled, completed),
//! * [`TraceRing`] — a bounded ring of events with **lock-free readers**
//!   (seqlock per slot, every word an atomic — readers never block the
//!   scheduler thread, torn reads are detected and dropped),
//! * [`TraceSink`] — the probe handle embedded in `SimState`: dormant it is
//!   a `None` check, armed it is one relaxed atomic load per probe (the
//!   same idiom as `slurm_sim::timing`),
//! * [`render_virtual`] — the canonical virtual-time rendering (wall-clock
//!   fields excluded) pinned byte-identical across runs by the determinism
//!   tests,
//! * [`chrome_trace`] — Chrome trace-event JSON (`chrome://tracing` /
//!   Perfetto): scheduler passes as nested `B`/`E` spans over the virtual
//!   timeline, per-job decisions as instant events.
//!
//! Wall-clock time appears only in `PassBegin`/`PassEnd` (`wall_ns` since
//! the ring's creation instant); every other field is virtual time or a job
//! identifier, so the virtual-time stream is deterministic by construction.

use std::fmt;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why the backfill pass declined to act on a pending job this pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Fits eventually but not now, and no reservation was placed (EASY
    /// mode, non-head job).
    NoFitNow,
    /// Requests more nodes than the cluster will ever have free.
    NeverFits,
    /// The profile said "now" but node selection failed (fragmentation).
    Fragmentation,
}

impl RejectReason {
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::NoFitNow => "no_fit_now",
            RejectReason::NeverFits => "never_fits",
            RejectReason::Fragmentation => "fragmentation",
        }
    }

    fn from_code(code: u32) -> RejectReason {
        match code {
            0 => RejectReason::NoFitNow,
            1 => RejectReason::NeverFits,
            _ => RejectReason::Fragmentation,
        }
    }

    fn code(self) -> u32 {
        match self {
            RejectReason::NoFitNow => 0,
            RejectReason::NeverFits => 1,
            RejectReason::Fragmentation => 2,
        }
    }
}

/// One scheduler decision. All payloads are plain integers so an event
/// packs into three 64-bit words in the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A scheduler pass is starting. `wall_ns` is wall-clock nanoseconds
    /// since the ring was created — the only non-deterministic field.
    PassBegin { pass: u64, wall_ns: u64 },
    /// The pass finished; `started` jobs left the queue during it.
    PassEnd { pass: u64, wall_ns: u64, started: u32 },
    /// A job entered the pending queue.
    Submitted { job: u64 },
    /// A job started (static backfill or malleable co-schedule).
    Started { job: u64, malleable: bool, nodes: u32, wait: u64 },
    /// The profile reserved a future start for this job.
    EasyReserved { job: u64, est: u64 },
    /// The pass looked at the job and moved on.
    BackfillRejected { job: u64, reason: RejectReason },
    /// The tenant's quota blocked the job this pass.
    QuotaSkipped { job: u64, tenant: u64 },
    /// A running mate shrank to lend nodes to `borrower`.
    Shrunk { mate: u64, borrower: u64 },
    /// A running job expanded back onto reclaimed nodes (now `nodes` wide).
    Expanded { job: u64, nodes: u32 },
    /// A borrower was relocated onto idle nodes, freeing its lenders.
    Relocated { job: u64, nodes: u32 },
    /// A pending or running job was cancelled.
    Cancelled { job: u64 },
    /// A job finished.
    Completed { job: u64 },
}

/// A field value for rendering: numeric payloads plus symbolic names
/// (reject reasons) stay distinguishable without string allocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldVal {
    U64(u64),
    Str(&'static str),
}

impl fmt::Display for FieldVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldVal::U64(v) => write!(f, "{v}"),
            FieldVal::Str(s) => write!(f, "{s}"),
        }
    }
}

impl TraceKind {
    /// Stable snake-case event name used by every rendering.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::PassBegin { .. } => "pass_begin",
            TraceKind::PassEnd { .. } => "pass_end",
            TraceKind::Submitted { .. } => "submitted",
            TraceKind::Started { .. } => "started",
            TraceKind::EasyReserved { .. } => "easy_reserved",
            TraceKind::BackfillRejected { .. } => "backfill_rejected",
            TraceKind::QuotaSkipped { .. } => "quota_skipped",
            TraceKind::Shrunk { .. } => "shrunk",
            TraceKind::Expanded { .. } => "expanded",
            TraceKind::Relocated { .. } => "relocated",
            TraceKind::Cancelled { .. } => "cancelled",
            TraceKind::Completed { .. } => "completed",
        }
    }

    /// All payload fields, in declaration order.
    pub fn fields(&self) -> Vec<(&'static str, FieldVal)> {
        use FieldVal::{Str, U64};
        match *self {
            TraceKind::PassBegin { pass, wall_ns } => {
                vec![("pass", U64(pass)), ("wall_ns", U64(wall_ns))]
            }
            TraceKind::PassEnd { pass, wall_ns, started } => vec![
                ("pass", U64(pass)),
                ("wall_ns", U64(wall_ns)),
                ("started", U64(started as u64)),
            ],
            TraceKind::Submitted { job } => vec![("job", U64(job))],
            TraceKind::Started { job, malleable, nodes, wait } => vec![
                ("job", U64(job)),
                ("malleable", U64(malleable as u64)),
                ("nodes", U64(nodes as u64)),
                ("wait", U64(wait)),
            ],
            TraceKind::EasyReserved { job, est } => {
                vec![("job", U64(job)), ("est", U64(est))]
            }
            TraceKind::BackfillRejected { job, reason } => {
                vec![("job", U64(job)), ("reason", Str(reason.name()))]
            }
            TraceKind::QuotaSkipped { job, tenant } => {
                vec![("job", U64(job)), ("tenant", U64(tenant))]
            }
            TraceKind::Shrunk { mate, borrower } => {
                vec![("mate", U64(mate)), ("borrower", U64(borrower))]
            }
            TraceKind::Expanded { job, nodes } => {
                vec![("job", U64(job)), ("nodes", U64(nodes as u64))]
            }
            TraceKind::Relocated { job, nodes } => {
                vec![("job", U64(job)), ("nodes", U64(nodes as u64))]
            }
            TraceKind::Cancelled { job } => vec![("job", U64(job))],
            TraceKind::Completed { job } => vec![("job", U64(job))],
        }
    }

    /// Like [`fields`](Self::fields) but with wall-clock fields removed —
    /// the deterministic subset rendered by [`render_virtual`].
    pub fn virtual_fields(&self) -> Vec<(&'static str, FieldVal)> {
        self.fields()
            .into_iter()
            .filter(|(k, _)| *k != "wall_ns")
            .collect()
    }

    /// The job a decision is primarily about (`None` for pass markers).
    pub fn job(&self) -> Option<u64> {
        match *self {
            TraceKind::PassBegin { .. } | TraceKind::PassEnd { .. } => None,
            TraceKind::Submitted { job }
            | TraceKind::Started { job, .. }
            | TraceKind::EasyReserved { job, .. }
            | TraceKind::BackfillRejected { job, .. }
            | TraceKind::QuotaSkipped { job, .. }
            | TraceKind::Expanded { job, .. }
            | TraceKind::Relocated { job, .. }
            | TraceKind::Cancelled { job }
            | TraceKind::Completed { job } => Some(job),
            TraceKind::Shrunk { borrower, .. } => Some(borrower),
        }
    }

    /// Whether the event mentions `job` in any role (a `Shrunk` event
    /// involves both the lender and the borrower).
    pub fn involves(&self, job: u64) -> bool {
        match *self {
            TraceKind::Shrunk { mate, borrower } => mate == job || borrower == job,
            _ => self.job() == Some(job),
        }
    }

    /// Pack into `(w1, w2, w3)`: tag in `w1[0..8]`, 32-bit aux payload in
    /// `w1[32..64]`, two full-width words after that.
    fn encode(&self) -> (u64, u64, u64) {
        fn w1(tag: u8, aux: u32) -> u64 {
            tag as u64 | (aux as u64) << 32
        }
        match *self {
            TraceKind::PassBegin { pass, wall_ns } => (w1(0, 0), pass, wall_ns),
            TraceKind::PassEnd { pass, wall_ns, started } => (w1(1, started), pass, wall_ns),
            TraceKind::Submitted { job } => (w1(2, 0), job, 0),
            TraceKind::Started { job, malleable, nodes, wait } => {
                debug_assert!(nodes < 1 << 31);
                (w1(3, nodes | (malleable as u32) << 31), job, wait)
            }
            TraceKind::EasyReserved { job, est } => (w1(4, 0), job, est),
            TraceKind::BackfillRejected { job, reason } => (w1(5, reason.code()), job, 0),
            TraceKind::QuotaSkipped { job, tenant } => (w1(6, 0), job, tenant),
            TraceKind::Shrunk { mate, borrower } => (w1(7, 0), mate, borrower),
            TraceKind::Expanded { job, nodes } => (w1(8, nodes), job, 0),
            TraceKind::Relocated { job, nodes } => (w1(9, nodes), job, 0),
            TraceKind::Cancelled { job } => (w1(10, 0), job, 0),
            TraceKind::Completed { job } => (w1(11, 0), job, 0),
        }
    }

    fn decode(w1: u64, w2: u64, w3: u64) -> TraceKind {
        let tag = (w1 & 0xff) as u8;
        let aux = (w1 >> 32) as u32;
        match tag {
            0 => TraceKind::PassBegin { pass: w2, wall_ns: w3 },
            1 => TraceKind::PassEnd { pass: w2, wall_ns: w3, started: aux },
            2 => TraceKind::Submitted { job: w2 },
            3 => TraceKind::Started {
                job: w2,
                malleable: aux >> 31 != 0,
                nodes: aux & 0x7fff_ffff,
                wait: w3,
            },
            4 => TraceKind::EasyReserved { job: w2, est: w3 },
            5 => TraceKind::BackfillRejected { job: w2, reason: RejectReason::from_code(aux) },
            6 => TraceKind::QuotaSkipped { job: w2, tenant: w3 },
            7 => TraceKind::Shrunk { mate: w2, borrower: w3 },
            8 => TraceKind::Expanded { job: w2, nodes: aux },
            9 => TraceKind::Relocated { job: w2, nodes: aux },
            10 => TraceKind::Cancelled { job: w2 },
            _ => TraceKind::Completed { job: w2 },
        }
    }
}

/// One traced decision: global sequence number (total pushes before it),
/// virtual time in seconds, and the typed payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    pub seq: u64,
    pub t: u64,
    pub kind: TraceKind,
}

/// One ring slot: a per-slot sequence word plus four payload words, all
/// atomics so concurrent tailing needs no `unsafe`. For event index `i`
/// the sequence word holds `2i + 1` while the writer is mid-store and
/// `2i + 2` once the payload is stable; readers accept a slot only when
/// the stable stamp for the exact index they want brackets the payload
/// loads, so overwrites and in-flight writes read as "dropped", never torn.
#[derive(Default)]
struct Slot {
    seq: AtomicU64,
    time: AtomicU64,
    w1: AtomicU64,
    w2: AtomicU64,
    w3: AtomicU64,
}

fn stable_stamp(index: u64) -> u64 {
    2 * index + 2
}

/// Bounded lock-free trace ring. Single logical writer (the scheduler
/// thread owning `SimState`), any number of concurrent readers. When the
/// ring wraps, the oldest events are overwritten; readers learn how many
/// they missed via [`TraceTail::dropped`].
pub struct TraceRing {
    enabled: AtomicBool,
    /// Total events ever pushed; also the next event's sequence number.
    head: AtomicU64,
    /// Writer claim flag — uncontended in the single-writer design, kept
    /// so a second writer spins instead of corrupting slots.
    writing: AtomicBool,
    mask: u64,
    slots: Box<[Slot]>,
    epoch: Instant,
}

impl fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.capacity())
            .field("head", &self.head.load(Ordering::Relaxed))
            .field("enabled", &self.enabled())
            .finish()
    }
}

/// The result of tailing the ring from a cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceTail {
    pub events: Vec<TraceEvent>,
    /// Pass this back as the next cursor to continue where this read ended.
    pub next: u64,
    /// Events between the cursor and `next` that were overwritten (or
    /// mid-overwrite) before they could be read.
    pub dropped: u64,
}

impl TraceRing {
    /// Create a ring holding at least `capacity` events (rounded up to a
    /// power of two, minimum 8), enabled from the start.
    pub fn new(capacity: usize) -> TraceRing {
        let cap = capacity.clamp(8, 1 << 24).next_power_of_two();
        let slots: Vec<Slot> = (0..cap).map(|_| Slot::default()).collect();
        TraceRing {
            enabled: AtomicBool::new(true),
            head: AtomicU64::new(0),
            writing: AtomicBool::new(false),
            mask: (cap - 1) as u64,
            slots: slots.into_boxed_slice(),
            epoch: Instant::now(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Total events ever pushed (== the sequence number the next event
    /// will get).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// How many events have been overwritten since creation.
    pub fn overwritten(&self) -> u64 {
        self.pushed().saturating_sub(self.capacity() as u64)
    }

    /// Wall-clock nanoseconds since the ring was created — the timestamp
    /// domain of `PassBegin`/`PassEnd`.
    pub fn wall_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Append one event. Readers tailing concurrently never block this.
    pub fn push(&self, t: u64, kind: TraceKind) {
        while self
            .writing
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
        let i = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(i & self.mask) as usize];
        let (w1, w2, w3) = kind.encode();
        // Seqlock write: odd stamp, full fence, payload, full fence, even
        // stamp. The fences give the store-store ordering the stamp
        // protocol needs on weakly-ordered targets.
        slot.seq.store(2 * i + 1, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        slot.time.store(t, Ordering::Relaxed);
        slot.w1.store(w1, Ordering::Relaxed);
        slot.w2.store(w2, Ordering::Relaxed);
        slot.w3.store(w3, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        slot.seq.store(stable_stamp(i), Ordering::Relaxed);
        self.head.store(i + 1, Ordering::Release);
        self.writing.store(false, Ordering::Release);
    }

    /// Read up to `limit` events starting at sequence number `cursor`.
    /// Events older than `head - capacity` are gone and counted in
    /// [`TraceTail::dropped`].
    pub fn read_since(&self, cursor: u64, limit: usize) -> TraceTail {
        let head = self.pushed();
        let oldest = head.saturating_sub(self.capacity() as u64);
        let lo = cursor.max(oldest).min(head);
        let hi = head.min(lo.saturating_add(limit as u64));
        let mut dropped = lo - cursor.min(lo);
        let mut events = Vec::with_capacity((hi - lo) as usize);
        for i in lo..hi {
            let slot = &self.slots[(i & self.mask) as usize];
            let want = stable_stamp(i);
            let s1 = slot.seq.load(Ordering::Relaxed);
            fence(Ordering::SeqCst);
            if s1 != want {
                dropped += 1; // overwritten (or mid-write) while we read
                continue;
            }
            let t = slot.time.load(Ordering::Relaxed);
            let w1 = slot.w1.load(Ordering::Relaxed);
            let w2 = slot.w2.load(Ordering::Relaxed);
            let w3 = slot.w3.load(Ordering::Relaxed);
            fence(Ordering::SeqCst);
            let s2 = slot.seq.load(Ordering::Relaxed);
            if s2 != want {
                dropped += 1;
                continue;
            }
            events.push(TraceEvent { seq: i, t, kind: TraceKind::decode(w1, w2, w3) });
        }
        TraceTail { events, next: hi, dropped }
    }

    /// Everything still held in the ring, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.read_since(0, usize::MAX).events
    }
}

/// The probe handle owned by `SimState`. Detached (the default) every
/// probe is an `Option` check; attached but disabled it is one relaxed
/// atomic load — the same dormant-until-enabled contract as
/// `slurm_sim::timing`.
#[derive(Clone, Default)]
pub struct TraceSink {
    ring: Option<Arc<TraceRing>>,
}

impl fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.ring {
            Some(r) => write!(f, "TraceSink({r:?})"),
            None => write!(f, "TraceSink(detached)"),
        }
    }
}

impl TraceSink {
    pub fn detached() -> TraceSink {
        TraceSink::default()
    }

    pub fn attached(ring: Arc<TraceRing>) -> TraceSink {
        TraceSink { ring: Some(ring) }
    }

    pub fn ring(&self) -> Option<&Arc<TraceRing>> {
        self.ring.as_ref()
    }

    /// True when probes should bother building event payloads.
    #[inline]
    pub fn active(&self) -> bool {
        matches!(&self.ring, Some(r) if r.enabled())
    }

    #[inline]
    pub fn emit(&self, t: u64, kind: TraceKind) {
        if let Some(r) = &self.ring {
            if r.enabled() {
                r.push(t, kind);
            }
        }
    }

    /// Wall-clock nanoseconds in the attached ring's epoch (0 if detached).
    pub fn wall_ns(&self) -> u64 {
        self.ring.as_ref().map_or(0, |r| r.wall_ns())
    }
}

/// Render the deterministic virtual-time stream: one line per event,
/// `seq t name k=v ...`, wall-clock fields omitted. Two runs of the same
/// scenario must produce byte-identical output (pinned by
/// `tests/trace_determinism.rs`).
pub fn render_virtual(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 48);
    for ev in events {
        out.push_str(&format!("{} {} {}", ev.seq, ev.t, ev.kind.name()));
        for (k, v) in ev.kind.virtual_fields() {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
    }
    out
}

/// Render events as a Chrome trace-event JSON array (load in
/// `chrome://tracing` or <https://ui.perfetto.dev>). Scheduler passes
/// become `B`/`E` duration spans on the virtual timeline (1 virtual second
/// = 1 trace second; `ts` is in microseconds), per-job decisions become
/// instant events. Only passes whose begin *and* end survived in the ring
/// are emitted, so `B` and `E` counts always match.
pub fn chrome_trace(events: &[TraceEvent]) -> String {
    let mut entries: Vec<String> = Vec::with_capacity(events.len());
    let mut open: Option<(u64, u64, u64)> = None; // (pass, t, wall_ns)
    for ev in events {
        let ts = ev.t.saturating_mul(1_000_000);
        match ev.kind {
            TraceKind::PassBegin { pass, wall_ns } => open = Some((pass, ev.t, wall_ns)),
            TraceKind::PassEnd { pass, wall_ns, started } => {
                if let Some((p, t0, w0)) = open.take() {
                    if p == pass {
                        entries.push(format!(
                            "{{\"name\":\"pass {p}\",\"cat\":\"sched\",\"ph\":\"B\",\
                             \"pid\":1,\"tid\":1,\"ts\":{}}}",
                            t0.saturating_mul(1_000_000)
                        ));
                        entries.push(format!(
                            "{{\"name\":\"pass {p}\",\"cat\":\"sched\",\"ph\":\"E\",\
                             \"pid\":1,\"tid\":1,\"ts\":{ts},\"args\":{{\
                             \"started\":{started},\"wall_us\":{}}}}}",
                            wall_ns.saturating_sub(w0) / 1_000
                        ));
                    }
                }
            }
            ref kind => {
                let mut args = String::new();
                for (k, v) in kind.virtual_fields() {
                    if !args.is_empty() {
                        args.push(',');
                    }
                    match v {
                        FieldVal::U64(n) => args.push_str(&format!("\"{k}\":{n}")),
                        FieldVal::Str(s) => args.push_str(&format!("\"{k}\":\"{s}\"")),
                    }
                }
                entries.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"decision\",\"ph\":\"i\",\"s\":\"g\",\
                     \"pid\":1,\"tid\":2,\"ts\":{ts},\"args\":{{{args}}}}}",
                    kind.name()
                ));
            }
        }
    }
    let mut out = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(e);
        if i + 1 < entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::{prop_assert, prop_assert_eq, proptest};

    fn ev(i: u64) -> TraceKind {
        TraceKind::Submitted { job: i }
    }

    #[test]
    fn roundtrip_every_kind() {
        let kinds = [
            TraceKind::PassBegin { pass: 7, wall_ns: 123_456 },
            TraceKind::PassEnd { pass: 7, wall_ns: 223_456, started: 3 },
            TraceKind::Submitted { job: 42 },
            TraceKind::Started { job: 42, malleable: true, nodes: 16, wait: 900 },
            TraceKind::Started { job: 43, malleable: false, nodes: 1, wait: 0 },
            TraceKind::EasyReserved { job: 5, est: 3_600 },
            TraceKind::BackfillRejected { job: 6, reason: RejectReason::NeverFits },
            TraceKind::BackfillRejected { job: 6, reason: RejectReason::Fragmentation },
            TraceKind::QuotaSkipped { job: 9, tenant: 2 },
            TraceKind::Shrunk { mate: 3, borrower: 9 },
            TraceKind::Expanded { job: 3, nodes: 12 },
            TraceKind::Relocated { job: 9, nodes: 4 },
            TraceKind::Cancelled { job: 1 },
            TraceKind::Completed { job: 2 },
        ];
        let ring = TraceRing::new(32);
        for (i, k) in kinds.iter().enumerate() {
            ring.push(i as u64, *k);
        }
        let got = ring.snapshot();
        assert_eq!(got.len(), kinds.len());
        for (i, (e, k)) in got.iter().zip(kinds.iter()).enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.t, i as u64);
            assert_eq!(&e.kind, k, "kind {i} did not round-trip");
        }
    }

    #[test]
    fn wraparound_keeps_newest_and_counts_overwritten() {
        let ring = TraceRing::new(8);
        assert_eq!(ring.capacity(), 8);
        for i in 0..20u64 {
            ring.push(i, ev(i));
        }
        assert_eq!(ring.pushed(), 20);
        assert_eq!(ring.overwritten(), 12);
        let tail = ring.read_since(0, usize::MAX);
        assert_eq!(tail.dropped, 12);
        assert_eq!(tail.next, 20);
        let seqs: Vec<u64> = tail.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<u64>>());
        for e in &tail.events {
            assert_eq!(e.kind, ev(e.seq));
        }
        // Cursor resume: nothing new yet.
        let again = ring.read_since(tail.next, usize::MAX);
        assert!(again.events.is_empty());
        assert_eq!(again.dropped, 0);
        assert_eq!(again.next, 20);
    }

    #[test]
    fn cursor_and_limit_page_through() {
        let ring = TraceRing::new(64);
        for i in 0..10u64 {
            ring.push(i, ev(i));
        }
        let mut cursor = 0;
        let mut seen = Vec::new();
        loop {
            let tail = ring.read_since(cursor, 3);
            if tail.events.is_empty() {
                break;
            }
            seen.extend(tail.events.iter().map(|e| e.seq));
            cursor = tail.next;
        }
        assert_eq!(seen, (0..10).collect::<Vec<u64>>());
    }

    #[test]
    fn disabled_sink_emits_nothing() {
        let ring = Arc::new(TraceRing::new(8));
        let sink = TraceSink::attached(ring.clone());
        ring.disable();
        assert!(!sink.active());
        sink.emit(1, ev(1));
        assert_eq!(ring.pushed(), 0);
        ring.enable();
        sink.emit(2, ev(2));
        assert_eq!(ring.pushed(), 1);
        // Detached sink is inert and reports zero wall time.
        let d = TraceSink::detached();
        assert!(!d.active());
        assert_eq!(d.wall_ns(), 0);
        d.emit(3, ev(3));
    }

    #[test]
    fn virtual_rendering_hides_wall_time() {
        let ring = TraceRing::new(8);
        ring.push(10, TraceKind::PassBegin { pass: 1, wall_ns: 999 });
        ring.push(10, TraceKind::Started { job: 4, malleable: false, nodes: 2, wait: 5 });
        ring.push(10, TraceKind::PassEnd { pass: 1, wall_ns: 1_999, started: 1 });
        let text = render_virtual(&ring.snapshot());
        assert_eq!(
            text,
            "0 10 pass_begin pass=1\n\
             1 10 started job=4 malleable=0 nodes=2 wait=5\n\
             2 10 pass_end pass=1 started=1\n"
        );
        assert!(!text.contains("999"));
    }

    #[test]
    fn chrome_trace_pairs_and_instants() {
        let ring = TraceRing::new(8);
        ring.push(10, TraceKind::PassBegin { pass: 1, wall_ns: 1_000 });
        ring.push(
            10,
            TraceKind::BackfillRejected { job: 3, reason: RejectReason::NoFitNow },
        );
        ring.push(12, TraceKind::PassEnd { pass: 1, wall_ns: 41_000, started: 0 });
        // An unmatched begin (as after ring overflow) must not emit a span.
        ring.push(15, TraceKind::PassBegin { pass: 2, wall_ns: 50_000 });
        let json = chrome_trace(&ring.snapshot());
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 1);
        assert!(json.contains("\"ts\":10000000"));
        assert!(json.contains("\"reason\":\"no_fit_now\""));
        assert!(json.contains("\"wall_us\":40"));
    }

    #[test]
    fn concurrent_tailing_never_tears() {
        use std::sync::atomic::AtomicBool;
        let ring = Arc::new(TraceRing::new(16));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let ring = ring.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut cursor = 0;
                    let mut seen = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let tail = ring.read_since(cursor, 64);
                        for e in &tail.events {
                            // Payload must always match the seq it claims.
                            assert_eq!(e.kind, TraceKind::Submitted { job: e.seq });
                            assert_eq!(e.t, e.seq);
                        }
                        seen += tail.events.len() as u64 + tail.dropped;
                        cursor = tail.next;
                    }
                    (seen, cursor)
                })
            })
            .collect();
        const N: u64 = 20_000;
        for i in 0..N {
            ring.push(i, ev(i));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            let (seen, cursor) = r.join().unwrap();
            assert!(cursor <= N);
            assert_eq!(seen, cursor, "events + dropped must cover the cursor range");
        }
        assert_eq!(ring.pushed(), N);
    }

    proptest! {
        // Any push count / capacity / cursor: the tail reports exactly the
        // still-held suffix, dropped covers the gap, payloads match seqs.
        fn prop_ring_tail_consistent(
            cap_pow in 3u32..10,
            pushes in 0usize..2_000,
            cursor in 0u64..4_000,
        ) {
            let cap = 1usize << cap_pow;
            let ring = TraceRing::new(cap);
            for i in 0..pushes as u64 {
                ring.push(i, TraceKind::Submitted { job: i });
            }
            prop_assert_eq!(ring.pushed(), pushes as u64);
            prop_assert_eq!(
                ring.overwritten(),
                (pushes as u64).saturating_sub(cap as u64)
            );
            let tail = ring.read_since(cursor, usize::MAX);
            let oldest = (pushes as u64).saturating_sub(cap as u64);
            let lo = cursor.max(oldest).min(pushes as u64);
            prop_assert_eq!(tail.next, pushes as u64);
            prop_assert_eq!(tail.dropped, lo - cursor.min(lo));
            prop_assert_eq!(tail.events.len() as u64, pushes as u64 - lo);
            for (off, e) in tail.events.iter().enumerate() {
                prop_assert_eq!(e.seq, lo + off as u64);
                prop_assert!(e.kind == TraceKind::Submitted { job: e.seq });
            }
        }
    }
}
