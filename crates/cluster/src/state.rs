//! Dynamic cluster occupancy.
//!
//! [`ClusterState`] is the single source of truth for "who holds how many
//! cores where". The scheduler (static backfill or SD-Policy) queries free
//! capacity and registers placements; the node-level DROM layer refines
//! *which* cores within each node. Every mutation keeps the per-node and
//! whole-cluster counters consistent, and [`ClusterState::validate`] checks
//! the invariants (used liberally by tests and `debug_assert!`s).

use crate::spec::ClusterSpec;
use std::collections::BTreeSet;

/// Identifier of a job, assigned by the workload manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Index of a node within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Occupancy of one node: which jobs hold how many cores.
#[derive(Debug, Clone, Default)]
pub struct NodeOccupancy {
    /// `(job, cores)` pairs; tiny in practice (1–3 entries), so a vector
    /// beats any map. Order is insertion order (deterministic).
    pub jobs: Vec<(JobId, u32)>,
    pub cores_used: u32,
}

impl NodeOccupancy {
    pub fn cores_of(&self, job: JobId) -> Option<u32> {
        self.jobs.iter().find(|(j, _)| *j == job).map(|&(_, c)| c)
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

/// Errors from placement operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// Node does not have the requested free cores.
    Insufficient { node: NodeId, free: u32, want: u32 },
    /// The job already occupies this node.
    AlreadyPlaced { node: NodeId },
    /// The job is not present where expected.
    NotPlaced { node: NodeId },
    /// Core count must be ≥ 1.
    ZeroCores,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::Insufficient { node, free, want } => {
                write!(f, "{node}: want {want} cores, only {free} free")
            }
            AllocError::AlreadyPlaced { node } => write!(f, "job already placed on {node}"),
            AllocError::NotPlaced { node } => write!(f, "job not placed on {node}"),
            AllocError::ZeroCores => write!(f, "zero cores requested"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Live occupancy of the whole machine.
#[derive(Debug, Clone)]
pub struct ClusterState {
    spec: ClusterSpec,
    nodes: Vec<NodeOccupancy>,
    /// Completely idle nodes, ascending — maintained incrementally so the
    /// scheduler's "first n idle nodes" never scans the whole machine.
    idle: BTreeSet<NodeId>,
    busy_cores: u64,
}

impl ClusterState {
    pub fn new(spec: ClusterSpec) -> Self {
        let n = spec.nodes as usize;
        ClusterState {
            spec,
            nodes: vec![NodeOccupancy::default(); n],
            idle: (0..n as u32).map(NodeId).collect(),
            busy_cores: 0,
        }
    }

    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Number of completely idle nodes.
    pub fn empty_node_count(&self) -> u32 {
        self.idle.len() as u32
    }

    /// Total busy cores across the machine.
    pub fn busy_cores(&self) -> u64 {
        self.busy_cores
    }

    /// Machine utilisation in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.busy_cores as f64 / self.spec.total_cores() as f64
    }

    pub fn occupancy(&self, node: NodeId) -> &NodeOccupancy {
        &self.nodes[node.0 as usize]
    }

    /// Free cores on `node`.
    pub fn free_cores(&self, node: NodeId) -> u32 {
        self.spec.node.cores() - self.nodes[node.0 as usize].cores_used
    }

    /// Iterates over the ids of completely idle nodes, ascending (served
    /// from the idle index, not a machine scan).
    pub fn empty_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.idle.iter().copied()
    }

    /// Collects the first `n` idle nodes (ascending id) in O(n). Returns
    /// `None` when fewer than `n` are idle — the static placement test.
    pub fn take_empty_nodes(&self, n: u32) -> Option<Vec<NodeId>> {
        if self.empty_node_count() < n {
            return None;
        }
        Some(self.empty_nodes().take(n as usize).collect())
    }

    /// Places `job` on each node in `nodes` with `cores` cores per node.
    ///
    /// All-or-nothing: verifies capacity on every node before mutating.
    pub fn place(&mut self, job: JobId, nodes: &[NodeId], cores: u32) -> Result<(), AllocError> {
        if cores == 0 {
            return Err(AllocError::ZeroCores);
        }
        for &n in nodes {
            let occ = &self.nodes[n.0 as usize];
            if occ.cores_of(job).is_some() {
                return Err(AllocError::AlreadyPlaced { node: n });
            }
            let free = self.spec.node.cores() - occ.cores_used;
            if free < cores {
                return Err(AllocError::Insufficient {
                    node: n,
                    free,
                    want: cores,
                });
            }
        }
        for &n in nodes {
            let occ = &mut self.nodes[n.0 as usize];
            if occ.is_empty() {
                self.idle.remove(&n);
            }
            occ.jobs.push((job, cores));
            occ.cores_used += cores;
            self.busy_cores += cores as u64;
        }
        Ok(())
    }

    /// Changes the cores `job` holds on `node` (shrink or expand).
    pub fn set_cores(&mut self, job: JobId, node: NodeId, cores: u32) -> Result<(), AllocError> {
        if cores == 0 {
            return Err(AllocError::ZeroCores);
        }
        let total = self.spec.node.cores();
        let occ = &mut self.nodes[node.0 as usize];
        let Some(entry) = occ.jobs.iter_mut().find(|(j, _)| *j == job) else {
            return Err(AllocError::NotPlaced { node });
        };
        let old = entry.1;
        let others = occ.cores_used - old;
        if others + cores > total {
            return Err(AllocError::Insufficient {
                node,
                free: total - others,
                want: cores,
            });
        }
        entry.1 = cores;
        occ.cores_used = others + cores;
        self.busy_cores = self.busy_cores - old as u64 + cores as u64;
        Ok(())
    }

    /// Removes `job` from `node`, returning the cores it held.
    pub fn remove_from_node(&mut self, job: JobId, node: NodeId) -> Result<u32, AllocError> {
        let occ = &mut self.nodes[node.0 as usize];
        let Some(pos) = occ.jobs.iter().position(|(j, _)| *j == job) else {
            return Err(AllocError::NotPlaced { node });
        };
        let (_, cores) = occ.jobs.remove(pos);
        occ.cores_used -= cores;
        self.busy_cores -= cores as u64;
        if occ.is_empty() {
            self.idle.insert(node);
        }
        Ok(cores)
    }

    /// Removes `job` from every node in `nodes`.
    pub fn remove(&mut self, job: JobId, nodes: &[NodeId]) -> Result<(), AllocError> {
        for &n in nodes {
            self.remove_from_node(job, n)?;
        }
        Ok(())
    }

    /// Per-node occupancies in ascending node id, for persistence.
    pub fn occupancies(&self) -> &[NodeOccupancy] {
        &self.nodes
    }

    /// Rebuilds a state from a per-node occupancy snapshot; the idle index
    /// and busy-core counter are re-derived, and the result is validated.
    pub fn from_occupancies(
        spec: ClusterSpec,
        nodes: Vec<NodeOccupancy>,
    ) -> Result<ClusterState, String> {
        if nodes.len() != spec.nodes as usize {
            return Err(format!(
                "occupancy snapshot covers {} nodes, spec has {}",
                nodes.len(),
                spec.nodes
            ));
        }
        let mut idle = BTreeSet::new();
        let mut busy_cores = 0u64;
        for (i, occ) in nodes.iter().enumerate() {
            if occ.is_empty() {
                idle.insert(NodeId(i as u32));
            }
            busy_cores += occ.cores_used as u64;
        }
        let cs = ClusterState {
            spec,
            nodes,
            idle,
            busy_cores,
        };
        cs.validate()?;
        Ok(cs)
    }

    /// Checks every invariant; returns a description of the first violation.
    /// Used by tests and the simulator's self-check mode.
    pub fn validate(&self) -> Result<(), String> {
        let mut empty = 0u32;
        let mut busy = 0u64;
        let cores = self.spec.node.cores();
        for (i, occ) in self.nodes.iter().enumerate() {
            let sum: u32 = occ.jobs.iter().map(|&(_, c)| c).sum();
            if sum != occ.cores_used {
                return Err(format!("node {i}: cores_used {} != sum {sum}", occ.cores_used));
            }
            if sum > cores {
                return Err(format!("node {i}: oversubscribed ({sum} > {cores})"));
            }
            for (idx, &(j, c)) in occ.jobs.iter().enumerate() {
                if c == 0 {
                    return Err(format!("node {i}: {j} holds 0 cores"));
                }
                if occ.jobs[..idx].iter().any(|&(j2, _)| j2 == j) {
                    return Err(format!("node {i}: {j} appears twice"));
                }
            }
            if occ.is_empty() {
                empty += 1;
                if !self.idle.contains(&NodeId(i as u32)) {
                    return Err(format!("node {i}: idle but missing from index"));
                }
            } else if self.idle.contains(&NodeId(i as u32)) {
                return Err(format!("node {i}: occupied but in the idle index"));
            }
            busy += sum as u64;
        }
        if empty != self.empty_node_count() {
            return Err(format!(
                "idle index size {} != actual {empty}",
                self.empty_node_count()
            ));
        }
        if busy != self.busy_cores {
            return Err(format!("busy_cores counter {} != actual {busy}", self.busy_cores));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ClusterSpec;

    fn small() -> ClusterState {
        // 4 nodes × 8 cores
        let mut spec = ClusterSpec::ricc();
        spec.nodes = 4;
        ClusterState::new(spec)
    }

    #[test]
    fn exclusive_place_and_remove() {
        let mut cs = small();
        assert_eq!(cs.empty_node_count(), 4);
        let nodes = cs.take_empty_nodes(2).unwrap();
        cs.place(JobId(1), &nodes, 8).unwrap();
        assert_eq!(cs.empty_node_count(), 2);
        assert_eq!(cs.busy_cores(), 16);
        assert!(cs.validate().is_ok());
        cs.remove(JobId(1), &nodes).unwrap();
        assert_eq!(cs.empty_node_count(), 4);
        assert_eq!(cs.busy_cores(), 0);
        assert!(cs.validate().is_ok());
    }

    #[test]
    fn placement_is_all_or_nothing() {
        let mut cs = small();
        cs.place(JobId(1), &[NodeId(0)], 8).unwrap();
        // Second placement spans a full and a busy node; must not touch node 1.
        let err = cs.place(JobId(2), &[NodeId(1), NodeId(0)], 8).unwrap_err();
        assert!(matches!(err, AllocError::Insufficient { node: NodeId(0), .. }));
        assert!(cs.occupancy(NodeId(1)).is_empty());
        assert!(cs.validate().is_ok());
    }

    #[test]
    fn co_scheduling_shares_a_node() {
        let mut cs = small();
        cs.place(JobId(1), &[NodeId(0)], 8).unwrap();
        cs.set_cores(JobId(1), NodeId(0), 4).unwrap(); // shrink the mate
        cs.place(JobId(2), &[NodeId(0)], 4).unwrap(); // co-schedule
        assert_eq!(cs.free_cores(NodeId(0)), 0);
        assert_eq!(cs.occupancy(NodeId(0)).jobs.len(), 2);
        assert!(cs.validate().is_ok());

        cs.remove(JobId(2), &[NodeId(0)]).unwrap();
        cs.set_cores(JobId(1), NodeId(0), 8).unwrap(); // expand back
        assert_eq!(cs.free_cores(NodeId(0)), 0);
        assert!(cs.validate().is_ok());
    }

    #[test]
    fn set_cores_cannot_oversubscribe() {
        let mut cs = small();
        cs.place(JobId(1), &[NodeId(0)], 4).unwrap();
        cs.place(JobId(2), &[NodeId(0)], 4).unwrap();
        let err = cs.set_cores(JobId(1), NodeId(0), 5).unwrap_err();
        assert!(matches!(err, AllocError::Insufficient { .. }));
        assert_eq!(cs.occupancy(NodeId(0)).cores_of(JobId(1)), Some(4));
    }

    #[test]
    fn double_place_rejected() {
        let mut cs = small();
        cs.place(JobId(1), &[NodeId(0)], 2).unwrap();
        let err = cs.place(JobId(1), &[NodeId(0)], 2).unwrap_err();
        assert_eq!(err, AllocError::AlreadyPlaced { node: NodeId(0) });
    }

    #[test]
    fn remove_unplaced_job_errors() {
        let mut cs = small();
        let err = cs.remove_from_node(JobId(9), NodeId(3)).unwrap_err();
        assert_eq!(err, AllocError::NotPlaced { node: NodeId(3) });
    }

    #[test]
    fn zero_core_requests_rejected() {
        let mut cs = small();
        assert_eq!(cs.place(JobId(1), &[NodeId(0)], 0), Err(AllocError::ZeroCores));
        cs.place(JobId(1), &[NodeId(0)], 1).unwrap();
        assert_eq!(cs.set_cores(JobId(1), NodeId(0), 0), Err(AllocError::ZeroCores));
    }

    #[test]
    fn utilization_tracks_busy_cores() {
        let mut cs = small(); // 32 cores total
        assert_eq!(cs.utilization(), 0.0);
        cs.place(JobId(1), &[NodeId(0), NodeId(1)], 8).unwrap();
        assert!((cs.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn take_empty_nodes_insufficient_returns_none() {
        let mut cs = small();
        for i in 0..4 {
            cs.place(JobId(i), &[NodeId(i as u32)], 1).unwrap();
        }
        assert!(cs.take_empty_nodes(1).is_none());
    }
}
