//! Machine descriptions and presets for the systems evaluated in the paper.

use crate::cpumask::CpuMask;
use crate::power::PowerModel;

/// Immutable description of one compute node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    pub sockets: u32,
    pub cores_per_socket: u32,
    /// Main memory in GiB (used by the application models).
    pub memory_gib: u32,
    pub power: PowerModel,
}

impl NodeSpec {
    /// Total cores on the node.
    pub fn cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// CPU mask for socket `s` (cores are numbered socket-major, matching
    /// how SLURM's task/affinity lays out block distributions).
    pub fn socket_mask(&self, s: u32) -> CpuMask {
        assert!(s < self.sockets, "socket {s} out of range {}", self.sockets);
        let lo = (s * self.cores_per_socket) as usize;
        CpuMask::range(self.cores() as usize, lo, lo + self.cores_per_socket as usize)
    }

    /// Socket index a core belongs to.
    pub fn socket_of(&self, core: u32) -> u32 {
        core / self.cores_per_socket
    }
}

/// A cluster: `nodes` identical nodes of a given [`NodeSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    pub name: String,
    pub nodes: u32,
    pub node: NodeSpec,
}

impl ClusterSpec {
    pub fn new(name: &str, nodes: u32, node: NodeSpec) -> Self {
        ClusterSpec {
            name: name.to_string(),
            nodes,
            node,
        }
    }

    /// Total cores in the machine.
    pub fn total_cores(&self) -> u64 {
        self.nodes as u64 * self.node.cores() as u64
    }

    /// Nodes needed to hold `procs` processors at full-node granularity
    /// (the select/linear rule: whole nodes only).
    pub fn nodes_for_procs(&self, procs: u64) -> u32 {
        let per = self.node.cores() as u64;
        (procs.div_ceil(per)).min(self.nodes as u64) as u32
    }

    // ----- presets matching the paper's Table 1 systems -----

    /// MareNostrum4 nodes: 2 × Intel Xeon Platinum 8160 (24 c), 96 GB.
    /// Used for Workload 5 (49 nodes, 2352 cores).
    pub fn marenostrum4(nodes: u32) -> ClusterSpec {
        ClusterSpec::new(
            "MareNostrum4",
            nodes,
            NodeSpec {
                sockets: 2,
                cores_per_socket: 24,
                memory_gib: 96,
                power: PowerModel::mn4_node(),
            },
        )
    }

    /// The Cirne-model system of Workloads 1–2: 1024 nodes / 49152 cores
    /// (48-core nodes, MN4-like).
    pub fn cirne_system() -> ClusterSpec {
        let mut c = Self::marenostrum4(1024);
        c.name = "Cirne-1024".into();
        c
    }

    /// RICC (Workload 3): 1024 nodes / 8192 cores → 8-core nodes (2 × 4).
    pub fn ricc() -> ClusterSpec {
        ClusterSpec::new(
            "RICC",
            1024,
            NodeSpec {
                sockets: 2,
                cores_per_socket: 4,
                memory_gib: 12,
                power: PowerModel {
                    idle_watts: 120.0,
                    core_watts: 15.0,
                },
            },
        )
    }

    /// CEA Curie primary partition (Workload 4): 5040 nodes / 80640 cores
    /// → 16-core nodes (2 × 8 SandyBridge).
    pub fn cea_curie() -> ClusterSpec {
        ClusterSpec::new(
            "CEA-Curie",
            5040,
            NodeSpec {
                sockets: 2,
                cores_per_socket: 8,
                memory_gib: 64,
                power: PowerModel {
                    idle_watts: 150.0,
                    core_watts: 12.0,
                },
            },
        )
    }

    /// The 49-node MN4 subset used for the real-run evaluation (Workload 5):
    /// one node is the controller, 48 are compute — the paper quotes
    /// "49 computing nodes … total 2353 cores" for 49 × 48 + controller; we
    /// model the 49 compute nodes (2352 cores) and keep the controller
    /// outside the simulated machine.
    pub fn mn4_real_run() -> ClusterSpec {
        let mut c = Self::marenostrum4(49);
        c.name = "MN4-49".into();
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_sizes_match_table1() {
        assert_eq!(ClusterSpec::cirne_system().total_cores(), 49_152);
        assert_eq!(ClusterSpec::ricc().total_cores(), 8_192);
        assert_eq!(ClusterSpec::cea_curie().total_cores(), 80_640);
        assert_eq!(ClusterSpec::mn4_real_run().total_cores(), 2_352);
    }

    #[test]
    fn socket_masks_partition_the_node() {
        let node = ClusterSpec::marenostrum4(1).node;
        let s0 = node.socket_mask(0);
        let s1 = node.socket_mask(1);
        assert_eq!(s0.count(), 24);
        assert_eq!(s1.count(), 24);
        assert!(s0.is_disjoint(&s1));
        let mut all = s0.clone();
        all.union_with(&s1);
        assert_eq!(all.count(), 48);
    }

    #[test]
    fn socket_of_maps_cores() {
        let node = ClusterSpec::ricc().node;
        assert_eq!(node.socket_of(0), 0);
        assert_eq!(node.socket_of(3), 0);
        assert_eq!(node.socket_of(4), 1);
        assert_eq!(node.socket_of(7), 1);
    }

    #[test]
    fn nodes_for_procs_rounds_up_whole_nodes() {
        let c = ClusterSpec::cea_curie(); // 16-core nodes
        assert_eq!(c.nodes_for_procs(1), 1);
        assert_eq!(c.nodes_for_procs(16), 1);
        assert_eq!(c.nodes_for_procs(17), 2);
        assert_eq!(c.nodes_for_procs(79_808), 4_988); // Table 1 max job
        assert_eq!(c.nodes_for_procs(u64::MAX), 5_040, "clamped to machine");
    }

    #[test]
    #[should_panic(expected = "socket 2 out of range")]
    fn socket_mask_bounds_checked() {
        ClusterSpec::ricc().node.socket_mask(2);
    }
}
